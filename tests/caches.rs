//! Per-`Database` cache handles: every facade instance owns its own
//! [`CqaCaches`] bundle, so one tenant's scans and groundings can never be
//! evicted by another tenant's churn (ROADMAP "Worklist-cache scope").
//! The free functions keep using the process-wide default bundle — that
//! behaviour is pinned separately in `worklist_cache.rs`.
//!
//! Only per-handle counters are read here, so the tests are immune to the
//! global counters moving under parallel test threads.

use cqa::Database;

fn tenant(tag: &str) -> Database {
    // One key conflict + one dangling FK: 4 repairs, Example-19 shape.
    Database::from_script(&format!(
        "CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);
         CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
         INSERT INTO r VALUES ('a{tag}', 'b'), ('a{tag}', 'c');
         INSERT INTO s VALUES (NULL, 'a{tag}');",
    ))
    .unwrap()
}

#[test]
fn worklist_cache_is_per_tenant() {
    let db = tenant("main");
    let first = db.repairs().unwrap();
    assert_eq!(db.caches().worklist.stats(), (0, 1), "first call scans");
    let second = db.repairs().unwrap();
    assert_eq!(second, first);
    assert_eq!(db.caches().worklist.stats(), (1, 1), "repeat call hits");

    // Hammer 20 other tenants — more than the 8-entry LRU capacity. With
    // the old process-wide cache this evicted `db`'s entry; per-tenant
    // handles must be untouched.
    for i in 0..20 {
        let other = tenant(&format!("t{i}"));
        let _ = other.repairs().unwrap();
        assert_eq!(other.caches().worklist.stats(), (0, 1));
    }
    let third = db.repairs().unwrap();
    assert_eq!(third, first);
    assert_eq!(
        db.caches().worklist.stats(),
        (2, 1),
        "no cross-tenant eviction: still a hit after 20 other tenants"
    );

    // Clones are views of the same tenant: they share the bundle.
    let fork = db.clone();
    let _ = fork.repairs().unwrap();
    assert_eq!(db.caches().worklist.stats(), (3, 1));
}

#[test]
fn grounding_cache_hits_and_regrounds_incrementally() {
    let mut db = tenant("ground");
    let first = db.repairs_via_program().unwrap();
    assert_eq!(
        db.caches().grounding.stats(),
        (0, 0, 1),
        "first call grounds from scratch"
    );
    let second = db.repairs_via_program().unwrap();
    assert_eq!(second, first);
    assert_eq!(
        db.caches().grounding.stats(),
        (1, 0, 1),
        "repeat call reuses the grounding"
    );

    // CQA through the program route rides the same cached grounding (the
    // query rules are added to a clone).
    let answers = db.consistent_answers("q(v) :- s(u, v).").unwrap();
    assert_eq!(answers.len(), 1);

    // Insert-only drift: the cache diffs the instances and regrounds
    // incrementally instead of rebuilding.
    db.insert("s", [cqa::s("extra"), cqa::s("aground")])
        .unwrap();
    let third = db.repairs_via_program().unwrap();
    let (h, regrounds, m) = db.caches().grounding.stats();
    assert_eq!(
        (h, regrounds, m),
        (1, 1, 1),
        "insert-only drift must take the incremental reground path"
    );
    // And the reground result is the real thing: same as the engine.
    assert_eq!(third, db.repairs().unwrap());

    // A fresh tenant over the same script grounds independently.
    let other = tenant("ground");
    let _ = other.repairs_via_program().unwrap();
    assert_eq!(other.caches().grounding.stats(), (0, 0, 1));
    assert_eq!(db.caches().grounding.stats().2, 1, "untouched by the twin");
}
