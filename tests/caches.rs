//! Per-`Database` cache handles: every facade instance owns its own
//! [`CqaCaches`] bundle, so one tenant's scans and groundings can never be
//! evicted by another tenant's churn (ROADMAP "Worklist-cache scope").
//! The free functions keep using the process-wide default bundle — that
//! behaviour is pinned separately in `worklist_cache.rs`.
//!
//! The grounding cache's drift trichotomy (hit / incremental reground /
//! rebuild) and its size-aware eviction budget are pinned here too: any
//! drift — insertions, deletions, or both — must take the incremental
//! path, with rebuild reserved for drifts beyond the escape-hatch
//! fraction.
//!
//! Only per-handle counters are read here, so the tests are immune to the
//! global counters moving under parallel test threads.

use cqa::core::{CqaCaches, GroundingCacheStats, ProgramStyle};
use cqa::Database;

fn tenant(tag: &str) -> Database {
    // One key conflict (the FK target survives either resolution):
    // 2 repairs, Example-19 shape.
    Database::from_script(&format!(
        "CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);
         CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
         INSERT INTO r VALUES ('a{tag}', 'b'), ('a{tag}', 'c');
         INSERT INTO s VALUES (NULL, 'a{tag}');",
    ))
    .unwrap()
}

/// Shorthand: the counters this suite actually drives (evictions are
/// pinned separately, against an explicit budget).
fn counts(db: &Database) -> (u64, u64, u64, u64) {
    let s = db.caches().grounding.stats();
    (s.hits, s.regrounds, s.rebuilds, s.misses)
}

/// Worklist counters as a (hits, misses, evictions) triple.
fn wl(db: &Database) -> (u64, u64, u64) {
    let s = db.caches().worklist.stats();
    (s.hits, s.misses, s.evictions)
}

#[test]
fn worklist_cache_is_per_tenant() {
    let db = tenant("main");
    let first = db.repairs().unwrap();
    assert_eq!(wl(&db), (0, 1, 0), "first call scans");
    let second = db.repairs().unwrap();
    assert_eq!(second, first);
    assert_eq!(wl(&db), (1, 1, 0), "repeat call hits");

    // Hammer 20 other tenants — more than the 8-entry LRU capacity. With
    // the old process-wide cache this evicted `db`'s entry; per-tenant
    // handles must be untouched.
    for i in 0..20 {
        let other = tenant(&format!("t{i}"));
        let _ = other.repairs().unwrap();
        assert_eq!(wl(&other), (0, 1, 0));
    }
    let third = db.repairs().unwrap();
    assert_eq!(third, first);
    assert_eq!(
        wl(&db),
        (2, 1, 0),
        "no cross-tenant eviction: still a hit after 20 other tenants"
    );

    // Clones are views of the same tenant: they share the bundle.
    let fork = db.clone();
    let _ = fork.repairs().unwrap();
    assert_eq!(wl(&db), (3, 1, 0));
}

#[test]
fn worklist_eviction_counter_reports_capacity_pressure() {
    // Every mutation reassigns the version stamp, so each round is a
    // fresh key: ten distinct keys against the 8-entry LRU must evict
    // exactly twice, and the named counter must say so.
    let mut db = tenant("evict");
    for i in 0..10 {
        let _ = db.repairs().unwrap();
        db.insert("r", [cqa::s(&format!("v{i}")), cqa::s("w")])
            .unwrap();
    }
    let s = db.caches().worklist.stats();
    assert_eq!((s.hits, s.misses), (0, 10), "each round is a fresh key");
    assert_eq!(s.evictions, 2, "capacity 8 under 10 distinct keys");
}

#[test]
fn grounding_cache_hits_and_regrounds_incrementally() {
    let mut db = tenant("ground");
    let first = db.repairs_via_program().unwrap();
    assert_eq!(counts(&db), (0, 0, 0, 1), "first call grounds from scratch");
    let second = db.repairs_via_program().unwrap();
    assert_eq!(second, first);
    assert_eq!(
        counts(&db),
        (1, 0, 0, 1),
        "repeat call reuses the grounding"
    );
    // The paired incremental solver rides the same cache entry: the first
    // call solved every component from scratch, the repeat answered them
    // all from the per-partition model cache.
    let solver = db.caches().grounding.solver_stats();
    assert!(solver.partition_misses > 0, "first call solved components");
    assert!(solver.partition_hits > 0, "repeat call reused them");

    // CQA through the program route rides the same cached grounding (the
    // query rules are added to a clone).
    let answers = db.consistent_answers("q(v) :- s(u, v).").unwrap();
    assert_eq!(answers.len(), 1);

    // Insert-only drift: the cache replays the delta onto the live state
    // instead of rebuilding.
    db.insert("s", [cqa::s("extra"), cqa::s("aground")])
        .unwrap();
    let third = db.repairs_via_program().unwrap();
    assert_eq!(
        counts(&db),
        (1, 1, 0, 1),
        "insert-only drift must take the incremental reground path"
    );
    // And the reground result is the real thing: same as the engine.
    assert_eq!(third, db.repairs().unwrap());

    // A fresh tenant over the same script grounds independently.
    let other = tenant("ground");
    let _ = other.repairs_via_program().unwrap();
    assert_eq!(counts(&other), (0, 0, 0, 1));
    assert_eq!(counts(&db).3, 1, "untouched by the twin");
}

#[test]
fn grounding_cache_regrounds_through_deletions() {
    // The DRed end-to-end: deletions (and mixed churn) must ride the
    // incremental path too — PR 4 rebuilt here.
    let mut db = tenant("dred");
    // Pad with clean rows so a 2-atom churn stays under the rebuild
    // escape-hatch fraction.
    for i in 0..8 {
        db.insert("r", [cqa::s(&format!("clean{i}")), cqa::s("y")])
            .unwrap();
    }
    let _ = db.repairs_via_program().unwrap();
    assert_eq!(counts(&db), (0, 0, 0, 1));

    // Delete-only drift.
    assert!(db.delete("r", [cqa::s("adred"), cqa::s("b")]).unwrap());
    let after_delete = db.repairs_via_program().unwrap();
    assert_eq!(
        counts(&db),
        (0, 1, 0, 1),
        "delete-only drift must take the incremental reground path"
    );
    assert_eq!(after_delete, db.repairs().unwrap());

    // Mixed churn: one insert + one delete between calls.
    db.insert("r", [cqa::s("anew"), cqa::s("b")]).unwrap();
    assert!(db.delete("s", [cqa::null(), cqa::s("adred")]).unwrap());
    let after_mixed = db.repairs_via_program().unwrap();
    assert_eq!(
        counts(&db),
        (0, 2, 0, 1),
        "mixed insert/delete drift regrounds incrementally"
    );
    assert_eq!(after_mixed, db.repairs().unwrap());

    // CQA over the churned instance agrees across routes as well.
    let direct = db.repairs().unwrap();
    assert!(!direct.is_empty());
}

#[test]
fn oversized_drift_takes_the_rebuild_escape_hatch() {
    // Replacing (almost) the whole instance costs more to replay than to
    // reground from scratch: the cache must rebuild, and say so.
    let mut db = tenant("hatch");
    let _ = db.repairs_via_program().unwrap();
    assert_eq!(counts(&db), (0, 0, 0, 1));
    // Drop every r row and insert fresh ones: drift ≈ 2× the instance.
    assert!(db.delete("r", [cqa::s("ahatch"), cqa::s("b")]).unwrap());
    assert!(db.delete("r", [cqa::s("ahatch"), cqa::s("c")]).unwrap());
    for i in 0..6 {
        db.insert("r", [cqa::s(&format!("fresh{i}")), cqa::s("y")])
            .unwrap();
    }
    let rebuilt = db.repairs_via_program().unwrap();
    assert_eq!(
        counts(&db),
        (0, 0, 1, 1),
        "drift beyond the escape-hatch fraction rebuilds"
    );
    assert_eq!(rebuilt, db.repairs().unwrap());
}

#[test]
fn batch_mutators_match_singles_and_reground_once() {
    // `insert_many`/`delete_many` must be semantically identical to the
    // equivalent sequence of single-atom calls — same instance, same
    // repairs — while presenting the churn to the grounding cache as ONE
    // drift (one reground) instead of N.
    use cqa::relational::Tuple;
    let mut singles = tenant("batch");
    let mut batched = tenant("batch");

    let rows: Vec<Tuple> = (0..4)
        .map(|k| Tuple::from([cqa::s(&format!("pad{k}")), cqa::s("y")]))
        .collect();

    // Pad both tenants with clean rows so the 4-atom batch drift stays
    // under the rebuild escape-hatch fraction (the incremental path is
    // the point of the pin).
    for k in 0..8 {
        for db in [&mut singles, &mut batched] {
            assert!(db
                .insert("r", [cqa::s(&format!("clean{k}")), cqa::s("z")])
                .unwrap());
        }
    }

    // Prime both caches on the same base state.
    let base_s = singles.repairs_via_program().unwrap();
    let base_b = batched.repairs_via_program().unwrap();
    assert_eq!(base_s, base_b);
    assert_eq!(counts(&singles), (0, 0, 0, 1));
    assert_eq!(counts(&batched), (0, 0, 0, 1));

    // Insert: N single calls vs one batch. Duplicates inside the batch
    // input and re-inserts of existing atoms are both no-ops, so the
    // reported count is the number of *genuinely new* atoms.
    for row in &rows {
        assert!(singles.insert("r", row.clone()).unwrap());
        let _ = singles.repairs_via_program().unwrap(); // a reground per call
    }
    let mut batch_input = rows.clone();
    batch_input.push(rows[0].clone()); // duplicate inside the batch
    batch_input.push(Tuple::from([cqa::s("abatch"), cqa::s("b")])); // already present
    let inserted = batched.insert_many("r", batch_input).unwrap();
    assert_eq!(inserted, rows.len(), "only genuinely-new atoms count");
    let after_b = batched.repairs_via_program().unwrap();

    let after_s = singles.repairs_via_program().unwrap();
    assert_eq!(after_s, after_b, "batch insert == singles insert");
    assert_eq!(
        singles.instance().len(),
        batched.instance().len(),
        "identical instances after the two insert styles"
    );
    // Singles reground once per mutation (plus the final call hits);
    // the batch path regrounds exactly once for the whole fleet.
    assert_eq!(counts(&singles), (1, rows.len() as u64, 0, 1));
    assert_eq!(counts(&batched), (0, 1, 0, 1));

    // Delete: same contract, including absent rows being no-ops.
    let mut doomed: Vec<Tuple> = rows[..2].to_vec();
    doomed.push(Tuple::from([cqa::s("never-there"), cqa::s("y")]));
    let removed = batched.delete_many("r", doomed).unwrap();
    assert_eq!(removed, 2, "absent rows do not count as deletions");
    for row in &rows[..2] {
        assert!(singles.delete("r", row.clone()).unwrap());
    }
    assert_eq!(singles.repairs().unwrap(), batched.repairs().unwrap());
    let _ = batched.repairs_via_program().unwrap();
    assert_eq!(
        counts(&batched),
        (0, 2, 0, 1),
        "the whole delete batch is one more reground"
    );

    // An all-no-op batch leaves the cache (and WAL, pinned elsewhere)
    // untouched: the next program call is a pure hit.
    assert_eq!(
        batched
            .insert_many("r", vec![Tuple::from([cqa::s("pad3"), cqa::s("y")]); 3])
            .unwrap(),
        0
    );
    assert_eq!(batched.delete_many("r", Vec::<Tuple>::new()).unwrap(), 0);
    let _ = batched.repairs_via_program().unwrap();
    assert_eq!(counts(&batched), (1, 2, 0, 1), "no-op batches don't drift");
}

#[test]
fn grounding_cache_eviction_is_size_aware() {
    // A budget small enough for exactly one Example-19 grounding: a
    // second key (different program style) must evict the first, and the
    // eviction counter must say so.
    let caches = CqaCaches::with_grounding_budget(1);
    let db = tenant("evict");
    let reps = cqa::core::repairs_via_program_in(
        db.instance(),
        db.constraints(),
        ProgramStyle::Corrected,
        &caches,
    )
    .unwrap();
    assert_eq!(reps.len(), 2); // the key conflict's two resolutions
    let s = caches.grounding.stats();
    assert_eq!(
        (s.misses, s.evictions),
        (1, 0),
        "a single oversized entry is never evicted"
    );
    // Same key again: still a hit — the most recent entry survives even
    // over budget.
    let _ = cqa::core::repairs_via_program_in(
        db.instance(),
        db.constraints(),
        ProgramStyle::Corrected,
        &caches,
    )
    .unwrap();
    assert_eq!(caches.grounding.stats().hits, 1);
    // A second key blows the budget: the older entry goes.
    let _ = cqa::core::repairs_via_program_in(
        db.instance(),
        db.constraints(),
        ProgramStyle::PaperExact,
        &caches,
    )
    .unwrap();
    let s = caches.grounding.stats();
    assert_eq!(s.evictions, 1, "size budget evicted the LRU entry");
    // The first key is cold again.
    let _ = cqa::core::repairs_via_program_in(
        db.instance(),
        db.constraints(),
        ProgramStyle::Corrected,
        &caches,
    )
    .unwrap();
    let s = caches.grounding.stats();
    assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 2));

    // A default-budget bundle holds both styles without evicting.
    let roomy = CqaCaches::new();
    for style in [ProgramStyle::Corrected, ProgramStyle::PaperExact] {
        let _ = cqa::core::repairs_via_program_in(db.instance(), db.constraints(), style, &roomy)
            .unwrap();
    }
    for style in [ProgramStyle::Corrected, ProgramStyle::PaperExact] {
        let _ = cqa::core::repairs_via_program_in(db.instance(), db.constraints(), style, &roomy)
            .unwrap();
    }
    let s = roomy.grounding.stats();
    assert_eq!(
        s,
        GroundingCacheStats {
            hits: 2,
            regrounds: 0,
            rebuilds: 0,
            misses: 2,
            evictions: 0
        },
        "both keys fit the default budget"
    );
}

#[test]
fn facade_budget_knob_detaches_the_bundle() {
    let db = tenant("knob").with_grounding_budget(1);
    let _ = db.repairs_via_program().unwrap();
    let _ = db.repairs_via_program().unwrap();
    let s = db.caches().grounding.stats();
    assert_eq!((s.hits, s.misses), (1, 1), "tiny budget still caches one");
}
