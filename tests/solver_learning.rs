//! Solver suite for conflict-driven clause learning.
//!
//! Two contracts of the CDCL rewrite in `cqa-asp::solve`:
//!
//! 1. **Learned clauses are implied.** Every 1UIP clause the solver learns
//!    must be a logical consequence of the input formula plus the blocking
//!    clauses of the models reported *before* it was learned (blocking
//!    clauses are part of the enumeration state, so a clause learned from
//!    one is implied only modulo the already-reported models). Checked by
//!    refutation: formula ∧ blockings ∧ ¬C must be unsatisfiable,
//!    decided by the retained basic DPLL engine — the same oracle the
//!    stability tests lean on.
//! 2. **Enumeration order is preserved.** With blocking-clause
//!    enumeration, the model sequence — set *and* order — must equal the
//!    pre-refactor chronological solver's (`for_each_model_basic`), and
//!    `stable_models` over the random ground-program corpus of
//!    `asp_properties.rs` must keep matching the brute-force subset
//!    oracle byte-for-byte.

use cqa::asp::solve::{Cnf, Lit};
use cqa::asp::{is_stable, stable_models, GroundProgram, GroundRule};
use cqa::relational::testing::XorShift;
use std::collections::BTreeSet;
use std::ops::ControlFlow;

fn random_cnf(rng: &mut XorShift, vars: usize, clauses: usize) -> Cnf {
    let mut cnf = Cnf::new(vars);
    for _ in 0..clauses {
        let len = 1 + rng.below(3);
        let lits: Vec<Lit> = (0..len)
            .map(|_| {
                let v = rng.below(vars) as u32;
                if rng.chance(1, 2) {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect();
        cnf.add_clause(lits);
    }
    cnf
}

/// Everything the instrumented run emits, in emission order.
enum Event {
    Model(Vec<bool>),
    Learnt(Vec<Lit>),
}

fn instrumented_events(cnf: &Cnf, decide: usize) -> Vec<Event> {
    use std::cell::RefCell;
    let events: RefCell<Vec<Event>> = RefCell::new(Vec::new());
    let _ = cnf.for_each_model_instrumented(
        decide,
        |m| {
            events.borrow_mut().push(Event::Model(m.to_vec()));
            ControlFlow::<()>::Continue(())
        },
        |c| events.borrow_mut().push(Event::Learnt(c.to_vec())),
    );
    events.into_inner()
}

/// The blocking clause the solver would add for `model` (negation of the
/// decide-range assignment; the level-0 filtering the solver applies only
/// strengthens the clause, so the unfiltered version is a sound stand-in
/// on the implication side).
fn blocking_clause(model: &[bool], decide: usize) -> Vec<Lit> {
    (0..decide as u32)
        .map(|v| Lit {
            var: v,
            positive: !model[v as usize],
        })
        .collect()
}

#[test]
fn learned_clauses_are_implied() {
    let mut rng = XorShift::new(601);
    let mut checked = 0usize;
    for round in 0..200 {
        let vars = 3 + round % 5;
        let cnf = random_cnf(&mut rng, vars, 3 + round % 9);
        let mut blockings: Vec<Vec<Lit>> = Vec::new();
        for event in instrumented_events(&cnf, vars) {
            match event {
                Event::Model(m) => blockings.push(blocking_clause(&m, vars)),
                Event::Learnt(clause) => {
                    // Refute: formula ∧ blockings-so-far ∧ ¬clause.
                    let mut refute = cnf.clone();
                    for b in &blockings {
                        refute.add_clause(b.iter().copied());
                    }
                    for lit in &clause {
                        refute.add_clause([Lit {
                            var: lit.var,
                            positive: !lit.positive,
                        }]);
                    }
                    let mut sat = false;
                    let _ = refute.for_each_model_basic(vars, |_| {
                        sat = true;
                        ControlFlow::Break(())
                    });
                    assert!(
                        !sat,
                        "round {round}: learned clause {clause:?} is not implied ({cnf:?})"
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 0, "the corpus must force the solver to learn");
}

#[test]
fn blocking_enumeration_matches_pre_refactor_sequence() {
    let mut rng = XorShift::new(602);
    for round in 0..300 {
        let vars = 2 + round % 7;
        let cnf = random_cnf(&mut rng, vars, 2 + round % 11);
        for decide in [vars, 1 + vars / 2] {
            let mut new_models = Vec::new();
            let _ = cnf.for_each_model(decide, |m| {
                new_models.push(m.to_vec());
                ControlFlow::<()>::Continue(())
            });
            let mut old_models = Vec::new();
            let _ = cnf.for_each_model_basic(decide, |m| {
                old_models.push(m.to_vec());
                ControlFlow::<()>::Continue(())
            });
            assert_eq!(
                new_models, old_models,
                "round {round} decide {decide}: {cnf:?}"
            );
        }
    }
}

// --- stable-model corpus (the asp_properties.rs generator) -------------

fn build(n: u32, rules: &[(Vec<u32>, Vec<u32>, Vec<u32>)]) -> GroundProgram {
    let mut gp = GroundProgram::default();
    for a in 0..n {
        gp.intern(cqa::asp::GroundAtom {
            pred: cqa::asp::PredId(a),
            args: vec![],
        });
    }
    for (head, pos, neg) in rules {
        let clean = |v: &Vec<u32>| {
            let mut out: Vec<u32> = v.iter().map(|x| x % n).collect();
            out.sort_unstable();
            out.dedup();
            out
        };
        let rule = GroundRule {
            head: clean(head),
            pos: clean(pos),
            neg: clean(neg),
        };
        if rule.head.iter().any(|h| rule.pos.contains(h)) {
            continue;
        }
        gp.push_rule(rule);
    }
    gp
}

fn subset_oracle(gp: &GroundProgram) -> Vec<BTreeSet<u32>> {
    let n = gp.atom_count();
    let mut out = Vec::new();
    for mask in 0u32..(1 << n) {
        let m: BTreeSet<u32> = (0..n as u32).filter(|a| mask & (1 << a) != 0).collect();
        let classical = gp.rules.iter().all(|r| {
            let body = r.pos.iter().all(|p| m.contains(p)) && r.neg.iter().all(|x| !m.contains(x));
            !body || r.head.iter().any(|h| m.contains(h))
        });
        if classical && is_stable(gp, &m) {
            out.push(m);
        }
    }
    out.sort();
    out
}

#[test]
fn stable_enumeration_unchanged_on_asp_properties_corpus() {
    let mut rng = XorShift::new(501); // the asp_properties.rs seed
    for _ in 0..128 {
        let rules: Vec<(Vec<u32>, Vec<u32>, Vec<u32>)> = (0..1 + rng.below(6))
            .map(|_| {
                let mut draw = |max_len: usize| -> Vec<u32> {
                    (0..rng.below(max_len))
                        .map(|_| rng.below(6) as u32)
                        .collect()
                };
                (draw(3), draw(3), draw(2))
            })
            .collect();
        let gp = build(6, &rules);
        assert_eq!(stable_models(&gp), subset_oracle(&gp), "rules {rules:?}");
    }
}
