//! Property suite: the decision-search repair engine agrees with the
//! brute-force oracle that enumerates the entire Proposition-1 candidate
//! space, on randomly generated small databases and constraint sets.
//!
//! This is the strongest correctness evidence for the repair semantics:
//! the oracle implements Definitions 6–7 literally (every subset of the
//! atom universe, filtered by `|=_N`, minimised under `≤_D`), with no
//! shared code with the engine's search. Both search strategies — the
//! incremental worklist and the naive full-rescan — are held to the same
//! oracle. Randomness is the workspace's deterministic [`XorShift`].

use cqa::constraints::{builders, v, Constraint, Ic, IcSet};
use cqa::core::{bruteforce, repairs, repairs_with_config, RepairConfig, SearchStrategy};
use cqa::prelude::*;
use cqa::relational::testing::XorShift;
use cqa::relational::DatabaseAtom;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a"])
        .relation("R", ["x", "y"])
        .finish()
        .unwrap()
        .into_shared()
}

/// The constraint pool; subsets of it form the random IC sets.
fn pool(sc: &Schema) -> Vec<Constraint> {
    vec![
        // RIC: P(x) → ∃y R(x, y)
        Constraint::from(
            Ic::builder(sc, "ric")
                .body_atom("P", [v("x")])
                .head_atom("R", [v("x"), v("y")])
                .finish()
                .unwrap(),
        ),
        // UIC: R(x,y) → P(x)
        Constraint::from(
            Ic::builder(sc, "uic")
                .body_atom("R", [v("x"), v("y")])
                .head_atom("P", [v("x")])
                .finish()
                .unwrap(),
        ),
        // FD / key on R[1]
        Constraint::from(builders::functional_dependency(sc, "R", &[0], 1).unwrap()),
        // NNC on R[1] (the referencing side; non-conflicting)
        Constraint::from(builders::not_null(sc, "R", 0).unwrap()),
        // denial: P(x) ∧ R(x,x) → false
        Constraint::from(
            Ic::builder(sc, "den")
                .body_atom("P", [v("x")])
                .body_atom("R", [v("x"), v("x")])
                .finish()
                .unwrap(),
        ),
    ]
}

fn value(rng: &mut XorShift) -> Value {
    match rng.below(3) {
        0 => s("c0"),
        1 => s("c1"),
        _ => Value::Null,
    }
}

fn instance(rng: &mut XorShift, sc: &Arc<Schema>) -> Instance {
    let mut d = Instance::empty(sc.clone());
    for _ in 0..rng.below(3) {
        d.insert_named("P", [value(rng)]).unwrap();
    }
    for _ in 0..rng.below(3) {
        d.insert_named("R", [value(rng), value(rng)]).unwrap();
    }
    d
}

fn subset(rng: &mut XorShift, sc: &Schema) -> IcSet {
    let mask = rng.below(32) as u8;
    pool(sc)
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, c)| c)
        .collect()
}

#[test]
fn engine_equals_oracle() {
    let sc = schema();
    let mut rng = XorShift::new(301);
    let mut checked = 0;
    while checked < 48 {
        let d = instance(&mut rng, &sc);
        let ics = subset(&mut rng, &sc);
        let universe = bruteforce::candidate_universe(&d, &ics);
        if universe.len() > 14 {
            continue; // keep the oracle tractable
        }
        checked += 1;
        let via_oracle = bruteforce::oracle_repairs(&d, &ics);
        for strategy in [SearchStrategy::Incremental, SearchStrategy::FullRescan] {
            let via_engine = repairs_with_config(
                &d,
                &ics,
                RepairConfig {
                    strategy,
                    ..RepairConfig::default()
                },
            )
            .unwrap();
            assert_eq!(via_engine, via_oracle, "strategy {strategy:?}");
        }
    }
}

#[test]
fn repairs_satisfy_invariants() {
    let sc = schema();
    let mut rng = XorShift::new(302);
    for _ in 0..48 {
        let d = instance(&mut rng, &sc);
        let ics = subset(&mut rng, &sc);
        let reps = repairs(&d, &ics).unwrap();
        // Non-empty (Proposition 1(b)).
        assert!(!reps.is_empty());
        // Every repair consistent.
        for r in &reps {
            assert!(cqa::constraints::is_consistent(r, &ics));
        }
        // Pairwise not strictly dominated.
        for (i, a) in reps.iter().enumerate() {
            for (j, b) in reps.iter().enumerate() {
                if i != j {
                    assert!(!cqa::core::lt_d(&d, a, b).unwrap());
                }
            }
        }
        // Active-domain containment (Proposition 1(a)).
        let mut allowed = d.active_domain();
        allowed.extend(ics.constants());
        allowed.insert(Value::Null);
        for r in &reps {
            for val in r.active_domain() {
                assert!(allowed.contains(&val));
            }
        }
        // Consistent databases are their own single repair.
        if cqa::constraints::is_consistent(&d, &ics) {
            assert_eq!(reps, vec![d.clone()]);
        }
    }
}

#[test]
fn inserted_nulls_only_at_existential_positions() {
    // With only the RIC present, inserted atoms are R(x, null).
    let sc = schema();
    let mut rng = XorShift::new(303);
    for _ in 0..48 {
        let d = instance(&mut rng, &sc);
        let ics: IcSet = pool(&sc).into_iter().take(1).collect();
        let reps = repairs(&d, &ics).unwrap();
        for r in &reps {
            let delta = cqa::relational::delta(&d, r).unwrap();
            for atom in &delta.inserted {
                let DatabaseAtom { rel, tuple } = atom;
                assert_eq!(*rel, sc.rel_id("R").unwrap());
                assert!(tuple.get(1).is_null());
                assert!(!tuple.get(0).is_null());
            }
        }
    }
}
