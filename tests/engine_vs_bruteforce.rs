//! Property suite: the decision-search repair engine agrees with the
//! brute-force oracle that enumerates the entire Proposition-1 candidate
//! space, on randomly generated small databases and constraint sets.
//!
//! This is the strongest correctness evidence for the repair semantics:
//! the oracle implements Definitions 6–7 literally (every subset of the
//! atom universe, filtered by `|=_N`, minimised under `≤_D`), with no
//! shared code with the engine's search.

use cqa::constraints::{builders, v, Constraint, Ic, IcSet};
use cqa::core::{bruteforce, repairs};
use cqa::prelude::*;
use cqa::relational::DatabaseAtom;
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a"])
        .relation("R", ["x", "y"])
        .finish()
        .unwrap()
        .into_shared()
}

/// The constraint pool; subsets of it form the random IC sets.
fn pool(sc: &Schema) -> Vec<Constraint> {
    vec![
        // RIC: P(x) → ∃y R(x, y)
        Constraint::from(
            Ic::builder(sc, "ric")
                .body_atom("P", [v("x")])
                .head_atom("R", [v("x"), v("y")])
                .finish()
                .unwrap(),
        ),
        // UIC: R(x,y) → P(x)
        Constraint::from(
            Ic::builder(sc, "uic")
                .body_atom("R", [v("x"), v("y")])
                .head_atom("P", [v("x")])
                .finish()
                .unwrap(),
        ),
        // FD / key on R[1]
        Constraint::from(builders::functional_dependency(sc, "R", &[0], 1).unwrap()),
        // NNC on R[1] (the referencing side; non-conflicting)
        Constraint::from(builders::not_null(sc, "R", 0).unwrap()),
        // denial: P(x) ∧ R(x,x) → false
        Constraint::from(
            Ic::builder(sc, "den")
                .body_atom("P", [v("x")])
                .body_atom("R", [v("x"), v("x")])
                .finish()
                .unwrap(),
        ),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(s("c0")),
        Just(s("c1")),
        Just(Value::Null),
    ]
}

fn instance_strategy(sc: Arc<Schema>) -> impl Strategy<Value = Instance> {
    let p_rows = proptest::collection::btree_set(value_strategy(), 0..3);
    let r_rows = proptest::collection::btree_set(
        (value_strategy(), value_strategy()),
        0..3,
    );
    (p_rows, r_rows).prop_map(move |(ps, rs)| {
        let mut d = Instance::empty(sc.clone());
        for p in ps {
            d.insert_named("P", [p]).unwrap();
        }
        for (x, y) in rs {
            d.insert_named("R", [x, y]).unwrap();
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_equals_oracle(
        d in instance_strategy(schema()),
        mask in 0u8..32,
    ) {
        let sc = schema();
        let ics: IcSet = pool(&sc)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        let universe = bruteforce::candidate_universe(&d, &ics);
        prop_assume!(universe.len() <= 14); // keep the oracle tractable
        let via_engine = repairs(&d, &ics).unwrap();
        let via_oracle = bruteforce::oracle_repairs(&d, &ics);
        prop_assert_eq!(via_engine, via_oracle);
    }

    #[test]
    fn repairs_satisfy_invariants(
        d in instance_strategy(schema()),
        mask in 0u8..32,
    ) {
        let sc = schema();
        let ics: IcSet = pool(&sc)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        let reps = repairs(&d, &ics).unwrap();
        // Non-empty (Proposition 1(b)).
        prop_assert!(!reps.is_empty());
        // Every repair consistent.
        for r in &reps {
            prop_assert!(cqa::constraints::is_consistent(r, &ics));
        }
        // Pairwise not strictly dominated.
        for (i, a) in reps.iter().enumerate() {
            for (j, b) in reps.iter().enumerate() {
                if i != j {
                    prop_assert!(!cqa::core::lt_d(&d, a, b).unwrap());
                }
            }
        }
        // Active-domain containment (Proposition 1(a)).
        let mut allowed = d.active_domain();
        allowed.extend(ics.constants());
        allowed.insert(Value::Null);
        for r in &reps {
            for val in r.active_domain() {
                prop_assert!(allowed.contains(&val));
            }
        }
        // Consistent databases are their own single repair.
        if cqa::constraints::is_consistent(&d, &ics) {
            prop_assert_eq!(reps, vec![d.clone()]);
        }
    }

    #[test]
    fn inserted_nulls_only_at_existential_positions(
        d in instance_strategy(schema()),
    ) {
        // With only the RIC present, inserted atoms are R(x, null).
        let sc = schema();
        let ics: IcSet = pool(&sc).into_iter().take(1).collect();
        let reps = repairs(&d, &ics).unwrap();
        for r in &reps {
            let delta = cqa::relational::delta(&d, r).unwrap();
            for atom in &delta.inserted {
                let DatabaseAtom { rel, tuple } = atom;
                prop_assert_eq!(*rel, sc.rel_id("R").unwrap());
                prop_assert!(tuple.get(1).is_null());
                prop_assert!(!tuple.get(0).is_null());
            }
        }
    }
}
