//! End-to-end: SQL scripts through the full pipeline — parse, check,
//! repair (both engines), answer queries consistently.

use cqa::Database;

/// The paper's Example 19 in SQL, driven through every public path.
#[test]
fn example19_full_pipeline() {
    let db = Database::from_script(
        "CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);
         CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
         INSERT INTO r VALUES ('a', 'b'), ('a', 'c');
         INSERT INTO s VALUES ('e', 'f'), (NULL, 'a');",
    )
    .unwrap();
    assert!(!db.is_consistent());
    assert_eq!(db.violations().len(), 3);
    let direct = db.repairs().unwrap();
    let programmatic = db.repairs_via_program().unwrap();
    assert_eq!(direct, programmatic);
    assert_eq!(direct.len(), 4);

    // the Example 21 program text round-trips through the ASP printer
    let program = db.repair_program_text().unwrap();
    assert!(program.contains("r_ts(x0, x1) :- r(x0, x1)."));
    assert!(program.contains(":- r_ta(x0, x1), r_fa(x0, x1)."));

    // consistent answers
    assert_eq!(db.consistent_answers("q(v) :- s(u, v).").unwrap().len(), 1);
    assert_eq!(db.consistent_answers("q(x) :- r(x, y).").unwrap().len(), 1);
    assert!(db
        .consistent_answers("q(x, y) :- r(x, y).")
        .unwrap()
        .is_empty());
    assert!(db.consistent_answer_boolean("b() :- r('a', y).").unwrap());
    assert!(!db.consistent_answer_boolean("b() :- r('a', 'b').").unwrap());
}

/// Example 6 as SQL: check constraints and nulls.
#[test]
fn example6_check_constraint_sql() {
    let mut db = Database::from_script(
        "CREATE TABLE emp (id INT, name TEXT, salary INT, CHECK (salary > 100));
         INSERT INTO emp VALUES (32, NULL, 1000), (41, 'Paul', NULL);",
    )
    .unwrap();
    assert!(db.is_consistent());
    db.insert("emp", [cqa::i(32), cqa::null(), cqa::i(50)])
        .unwrap();
    assert!(!db.is_consistent());
    // The repair deletes the bad row.
    let reps = db.repairs().unwrap();
    assert_eq!(reps.len(), 1);
    assert_eq!(reps[0].len(), 2);
}

/// Free-form constraints (form (1)) combined with DDL sugar.
#[test]
fn custom_constraints_and_union_queries() {
    let db = Database::from_script(
        "CREATE TABLE works (person TEXT, dept TEXT);
         CREATE TABLE dept (name TEXT);
         CREATE TABLE manager (person TEXT);
         INSERT INTO works VALUES ('ann', 'cs'), ('bob', 'math');
         INSERT INTO dept VALUES ('cs');
         CONSTRAINT dept_exists: works(p, d) -> dept(d);
         CONSTRAINT managers_work: manager(p) -> exists d: works(p, d);",
    )
    .unwrap();
    assert!(!db.is_consistent()); // math missing from dept
    let reps = db.repairs().unwrap();
    assert_eq!(reps.len(), 2); // delete works(bob,math) or insert dept(math)

    // union query over both repairs: persons certainly employed
    let people = db
        .consistent_answers("p(x) :- works(x, 'cs'). p(x) :- manager(x).")
        .unwrap();
    assert_eq!(people.len(), 1); // ann
}

/// Inserting into the parsed instance then re-checking (mutation path).
#[test]
fn mutation_path() {
    let mut db = Database::from_script("CREATE TABLE t (a TEXT NOT NULL);").unwrap();
    assert!(db.is_consistent());
    db.insert("t", [cqa::null()]).unwrap();
    assert!(!db.is_consistent());
    let reps = db.repairs().unwrap();
    assert_eq!(reps.len(), 1);
    assert!(reps[0].is_empty());
}

/// Larger script: everything at once, exercised through CQA.
#[test]
fn kitchen_sink_script() {
    let db = Database::from_script(
        "
        -- a simple order-management schema
        CREATE TABLE customer (id INT PRIMARY KEY, name TEXT NOT NULL);
        CREATE TABLE product  (sku TEXT PRIMARY KEY, price INT, CHECK (price > 0));
        CREATE TABLE orders   (
            id INT PRIMARY KEY,
            cust INT,
            sku TEXT,
            FOREIGN KEY (cust) REFERENCES customer(id),
            FOREIGN KEY (sku) REFERENCES product(sku)
        );
        INSERT INTO customer VALUES (1, 'Ann'), (2, NULL);       -- NOT NULL breach
        INSERT INTO product  VALUES ('p1', 10), ('p2', -5);      -- CHECK breach
        INSERT INTO orders   VALUES (100, 1, 'p1'), (101, 3, 'p1'), (102, NULL, 'p2');
        ",
    )
    .unwrap();
    assert!(!db.is_consistent());
    // `customer.name NOT NULL` clashes with the orders→customer foreign
    // key (name is existentially quantified in it): an Example-20
    // conflicting set, so the default semantics refuses…
    assert!(matches!(
        db.repairs(),
        Err(cqa::Error::Core(
            cqa::core::CoreError::ConflictingConstraints(_)
        ))
    ));
    // …and Rep_d (deletion-preferring) is the prescribed fallback.
    let db = db.with_config(cqa::prelude::RepairConfig {
        semantics: cqa::prelude::RepairSemantics::DeletionPreferring,
        ..cqa::prelude::RepairConfig::default()
    });
    let reps = db.repairs().unwrap();
    assert!(!reps.is_empty());
    for r in &reps {
        assert!(cqa::constraints::is_consistent(r, db.constraints()));
    }
    // Order 100 links to an existing customer and product in some repairs,
    // but customer 1 / product p1 survive everywhere:
    let sure = db
        .consistent_answers("q(o) :- orders(o, c, s), customer(c, n), product(s, p).")
        .unwrap();
    assert_eq!(sure.len(), 1);
    let order100: Vec<_> = sure.iter().collect();
    assert_eq!(order100[0].get(0), &cqa::i(100));
}
