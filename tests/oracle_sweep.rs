//! Deterministic sweep: engine vs brute-force oracle over every subset
//! of a five-constraint pool on systematically chosen tiny instances.
//! (This sweep is what originally caught the Definition-6 reading bug —
//! see the notes in `cqa_core::repair` — and stays as a regression fence.)

use cqa::constraints::{builders, v, Constraint, Ic, IcSet};
use cqa::core::{bruteforce, repairs};
use cqa::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a"])
        .relation("R", ["x", "y"])
        .finish()
        .unwrap()
        .into_shared()
}

fn pool(sc: &Schema) -> Vec<Constraint> {
    vec![
        Constraint::from(
            Ic::builder(sc, "ric")
                .body_atom("P", [v("x")])
                .head_atom("R", [v("x"), v("y")])
                .finish()
                .unwrap(),
        ),
        Constraint::from(
            Ic::builder(sc, "uic")
                .body_atom("R", [v("x"), v("y")])
                .head_atom("P", [v("x")])
                .finish()
                .unwrap(),
        ),
        Constraint::from(builders::functional_dependency(sc, "R", &[0], 1).unwrap()),
        Constraint::from(builders::not_null(sc, "R", 0).unwrap()),
        Constraint::from(
            Ic::builder(sc, "den")
                .body_atom("P", [v("x")])
                .body_atom("R", [v("x"), v("x")])
                .finish()
                .unwrap(),
        ),
    ]
}

#[test]
fn exhaustive_small_sweep() {
    let sc = schema();
    // empty instance, every mask
    for mask in 0u8..32 {
        let d = Instance::empty(sc.clone());
        let ics: IcSet = pool(&sc)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        let universe = bruteforce::candidate_universe(&d, &ics);
        if universe.len() > 14 {
            continue;
        }
        let e = repairs(&d, &ics).unwrap();
        let o = bruteforce::oracle_repairs(&d, &ics);
        if e != o {
            println!("MISMATCH mask={mask} universe={}", universe.len());
            println!(
                "engine: {:?}",
                e.iter()
                    .map(cqa::relational::display::instance_set)
                    .collect::<Vec<_>>()
            );
            println!(
                "oracle: {:?}",
                o.iter()
                    .map(cqa::relational::display::instance_set)
                    .collect::<Vec<_>>()
            );
            panic!();
        }
    }
    // single-tuple instances
    for mask in 0u8..32 {
        for val in [s("c0"), null()] {
            let mut d = Instance::empty(sc.clone());
            d.insert_named("P", [val]).unwrap();
            let ics: IcSet = pool(&sc)
                .into_iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, c)| c)
                .collect();
            let universe = bruteforce::candidate_universe(&d, &ics);
            if universe.len() > 14 {
                continue;
            }
            let e = repairs(&d, &ics).unwrap();
            let o = bruteforce::oracle_repairs(&d, &ics);
            if e != o {
                println!("MISMATCH mask={mask} val={val} universe={}", universe.len());
                println!(
                    "engine: {:?}",
                    e.iter()
                        .map(cqa::relational::display::instance_set)
                        .collect::<Vec<_>>()
                );
                println!(
                    "oracle: {:?}",
                    o.iter()
                        .map(cqa::relational::display::instance_set)
                        .collect::<Vec<_>>()
                );
                panic!();
            }
        }
    }
}
