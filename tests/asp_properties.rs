//! Property suite for the ASP substrate: the watched-literal + GL-reduct
//! stable-model enumeration agrees with a brute-force subset oracle on
//! random ground programs, and the shift transformation preserves stable
//! models on head-cycle-free programs. Randomness is the workspace's
//! deterministic [`XorShift`].

use cqa::asp::{is_hcf, is_stable, shift, stable_models, GroundProgram, GroundRule};
use cqa::relational::testing::XorShift;
use std::collections::BTreeSet;

/// Build a ground program over `n` propositional atoms from rule specs.
fn build(n: u32, rules: &[(Vec<u32>, Vec<u32>, Vec<u32>)]) -> GroundProgram {
    let mut gp = GroundProgram::default();
    for a in 0..n {
        gp.intern(cqa::asp::GroundAtom {
            pred: cqa::asp::PredId(a),
            args: vec![],
        });
    }
    for (head, pos, neg) in rules {
        let clean = |v: &Vec<u32>| {
            let mut out: Vec<u32> = v.iter().map(|x| x % n).collect();
            out.sort_unstable();
            out.dedup();
            out
        };
        let rule = GroundRule {
            head: clean(head),
            pos: clean(pos),
            neg: clean(neg),
        };
        // skip tautologies the grounder would drop
        if rule.head.iter().any(|h| rule.pos.contains(h)) {
            continue;
        }
        gp.push_rule(rule);
    }
    gp
}

/// Brute-force stable models: every subset, classical-model + reduct
/// minimality checks via the public `is_stable`.
fn oracle(gp: &GroundProgram) -> Vec<BTreeSet<u32>> {
    let n = gp.atom_count();
    let mut out = Vec::new();
    for mask in 0u32..(1 << n) {
        let m: BTreeSet<u32> = (0..n as u32).filter(|a| mask & (1 << a) != 0).collect();
        let classical = gp.rules.iter().all(|r| {
            let body = r.pos.iter().all(|p| m.contains(p)) && r.neg.iter().all(|x| !m.contains(x));
            !body || r.head.iter().any(|h| m.contains(h))
        });
        if classical && is_stable(gp, &m) {
            out.push(m);
        }
    }
    out.sort();
    out
}

fn random_rule(rng: &mut XorShift, n: u32) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let draw = |rng: &mut XorShift, max_len: usize| -> Vec<u32> {
        (0..rng.below(max_len))
            .map(|_| rng.below(n as usize) as u32)
            .collect()
    };
    (draw(rng, 3), draw(rng, 3), draw(rng, 2))
}

fn random_rules(
    rng: &mut XorShift,
    n: u32,
    max_rules: usize,
) -> Vec<(Vec<u32>, Vec<u32>, Vec<u32>)> {
    (0..1 + rng.below(max_rules))
        .map(|_| random_rule(rng, n))
        .collect()
}

#[test]
fn solver_equals_oracle() {
    let mut rng = XorShift::new(501);
    for _ in 0..128 {
        let rules = random_rules(&mut rng, 6, 6);
        let gp = build(6, &rules);
        assert_eq!(stable_models(&gp), oracle(&gp), "rules {rules:?}");
    }
}

#[test]
fn shift_preserves_stable_models_on_hcf() {
    let mut rng = XorShift::new(502);
    let mut checked = 0;
    while checked < 128 {
        let rules = random_rules(&mut rng, 6, 6);
        let gp = build(6, &rules);
        if !is_hcf(&gp) {
            continue;
        }
        checked += 1;
        let shifted = shift(&gp).unwrap();
        assert!(shifted.is_normal());
        assert_eq!(
            stable_models(&gp),
            stable_models(&shifted),
            "rules {rules:?}"
        );
    }
}

#[test]
fn stable_models_are_minimal_reduct_models() {
    let mut rng = XorShift::new(503);
    for _ in 0..128 {
        let rules = random_rules(&mut rng, 5, 5);
        let gp = build(5, &rules);
        for m in stable_models(&gp) {
            // No proper subset of a stable model is also stable w.r.t.
            // the *same* model's reduct (minimality sanity).
            assert!(is_stable(&gp, &m));
            for drop in m.iter().copied().collect::<Vec<_>>() {
                let mut smaller = m.clone();
                smaller.remove(&drop);
                // smaller may be a classical model, but never the same
                // stable model (stability is about the reduct of m).
                assert_ne!(&smaller, &m);
            }
        }
    }
}

#[test]
fn empty_program_has_empty_stable_model() {
    let gp = build(3, &[]);
    assert_eq!(stable_models(&gp), vec![BTreeSet::new()]);
}

#[test]
fn facts_force_atoms() {
    // a. b ∨ c ← a.
    let gp = build(
        3,
        &[(vec![0], vec![], vec![]), (vec![1, 2], vec![0], vec![])],
    );
    let models = stable_models(&gp);
    assert_eq!(models.len(), 2);
    assert!(models.iter().all(|m| m.contains(&0) && m.len() == 2));
}
