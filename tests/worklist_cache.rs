//! The root-worklist cache: repeated `repairs*` calls over an unchanged
//! instance must skip the O(instance) full violation scan, and any content
//! mutation must invalidate exactly (the cache keys on
//! `Instance::version`, which every mutation reassigns).
//!
//! Single test function on purpose: the hit/miss counters are process-wide
//! and this file is its own test binary, so the deltas observed here are
//! not perturbed by other tests.

use cqa::core::{repairs_with_config, worklist_cache_stats, RepairConfig, SearchStrategy};
use cqa::prelude::*;

/// The counters this suite drives, as a destructurable pair.
fn hm() -> (u64, u64) {
    let s = worklist_cache_stats();
    (s.hits, s.misses)
}

#[test]
fn cache_hits_repeats_and_invalidates_on_mutation() {
    let w = cqa_bench::example19_scaled(30, 2, 1, 71);
    let mut d = w.instance;
    let ics = w.ics;
    let config = RepairConfig::default();

    let (h0, m0) = hm();
    let first = repairs_with_config(&d, &ics, config).unwrap();
    let (h1, m1) = hm();
    assert_eq!(m1, m0 + 1, "first call scans");
    assert_eq!(h1, h0, "nothing to hit yet");

    let second = repairs_with_config(&d, &ics, config).unwrap();
    let (h2, m2) = hm();
    assert_eq!(m2, m1, "repeat call must not rescan");
    assert_eq!(h2, h1 + 1, "repeat call hits");
    assert_eq!(second, first);

    // The parallel strategy shares the same cache.
    let parallel = repairs_with_config(
        &d,
        &ics,
        RepairConfig {
            strategy: SearchStrategy::Parallel { threads: 2 },
            ..config
        },
    )
    .unwrap();
    let (h3, m3) = hm();
    assert_eq!(m3, m2);
    assert_eq!(h3, h2 + 1);
    assert_eq!(parallel, first);

    // A clone shares the version stamp: still a hit.
    let fork = d.clone();
    let _ = repairs_with_config(&fork, &ics, config).unwrap();
    let (h4, m4) = hm();
    assert_eq!((h4, m4), (h3 + 1, m3));

    // Mutating between calls invalidates: new conflict, fresh scan, and —
    // decisively — the *result* reflects the mutation.
    d.insert_named("R", [s("dupX"), s("a")]).unwrap();
    d.insert_named("R", [s("dupX"), s("b")]).unwrap();
    let third = repairs_with_config(&d, &ics, config).unwrap();
    let (h5, m5) = hm();
    assert_eq!(m5, m4 + 1, "mutation must force a rescan");
    assert_eq!(h5, h4);
    assert_eq!(
        third.len(),
        first.len() * 2,
        "the extra key conflict doubles the repair count"
    );

    // Same instance, different constraint set: the key includes the ICs.
    let fewer: IcSet = ics.constraints().iter().take(1).cloned().collect();
    let _ = repairs_with_config(&d, &fewer, config).unwrap();
    let (h6, m6) = hm();
    assert_eq!(m6, m5 + 1, "different ICs must not reuse the scan");
    assert_eq!(h6, h5);
}
