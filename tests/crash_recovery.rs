//! Crash-recovery harness: SIGKILL a churning writer process at
//! randomized points and prove the reopened database is byte-identical
//! to a never-crashed oracle that applied the same durable prefix.
//!
//! Mechanics: the harness re-invokes its own test binary
//! (`current_exe()`) filtered to the [`crash_writer_child`] test, which
//! opens the store and applies a deterministic op sequence, dropping an
//! ack marker file after each op returns (i.e. after its WAL frame is
//! fsynced — `FsyncPolicy::Always`). The parent waits for the ack at a
//! randomized kill point, then SIGKILLs the child — no atexit handlers,
//! no flush, the honest crash. Because the facade filters no-ops before
//! the WAL, sequence numbers are 1:1 with effective ops, so the
//! recovered `RecoveryReport::last_seq` *is* the length of the durable
//! prefix: the oracle replays exactly that many ops in memory and the
//! two states must agree atom-for-atom, repair-for-repair.
//!
//! The suite is expensive (25 process spawns) and so is env-guarded:
//! it runs only when `CQA_CRASH_TESTS` is set (CI sets it; see
//! `.github/workflows/ci.yml`). Locally:
//!
//! ```text
//! CQA_CRASH_TESTS=1 cargo test --release --test crash_recovery -- --nocapture
//! ```

use cqa::relational::testing::XorShift;
use cqa::storage::{FsyncPolicy, StoreOptions};
use cqa::Database;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Base script: one key conflict (2 repairs), an FK with a null, and an
/// anchor row the churn's FK targets.
const SCRIPT: &str = "CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);
     CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
     INSERT INTO r VALUES ('a', 'b'), ('a', 'c'), ('anchor', 'z');
     INSERT INTO s VALUES (NULL, 'a');";

/// Ops per child run. Every op is *effective* (insert of a new atom,
/// delete of a present one, a fresh constraint) so op index k ↔ WAL
/// sequence k+1.
const OPS: usize = 48;

/// Ops that append a *constraint frame* instead of a data delta — kill
/// points land before, on, and after these indices across rounds, so
/// recovery through constraint frames is exercised under real SIGKILL.
/// Both indices are ≡ 1 (mod 3) slots (s-inserts nothing ever deletes),
/// so hijacking them leaves the rest of the op chain intact.
const CONSTRAINT_OPS: [usize; 2] = [7, 25];

/// Apply op `k` of the deterministic churn to `db`. Panics if the op
/// was a no-op — the 1:1 seq↔op mapping is load-bearing.
fn apply_op(db: &mut Database, k: usize) {
    if CONSTRAINT_OPS.contains(&k) {
        // Satisfied-by-construction NNCs: each appends exactly one WAL
        // frame (keeping the op↔seq mapping) without changing the
        // repair space, so oracle comparisons stay cheap.
        let (name, text) = if k == CONSTRAINT_OPS[0] {
            ("nn_r_x", "not null r(x)")
        } else {
            ("nn_s_v", "not null s(v)")
        };
        db.add_constraint(name, text).expect("constraint op");
        return;
    }
    let effective = match k % 3 {
        0 => db
            .insert("r", [cqa::s(&format!("w{k}")), cqa::s("y")])
            .unwrap(),
        1 => db
            .insert("s", [cqa::s(&format!("u{k}")), cqa::s("anchor")])
            .unwrap(),
        // k ≥ 2 here, and k-2 ≡ 0 (mod 3): that row was inserted at op
        // k-2 and never touched since.
        _ => db
            .delete("r", [cqa::s(&format!("w{}", k - 2)), cqa::s("y")])
            .unwrap(),
    };
    assert!(effective, "op {k} must be effective");
}

/// The never-crashed oracle: base script + the first `n` churn ops,
/// purely in memory.
fn oracle(n: usize) -> Database {
    let mut db = Database::from_script(SCRIPT).unwrap();
    for k in 0..n {
        apply_op(&mut db, k);
    }
    db
}

fn aggressive_options() -> StoreOptions {
    StoreOptions {
        fsync: FsyncPolicy::Always,
        compact_num: 1,
        compact_den: 2,
        compact_min_wal_bytes: 0,
        ..StoreOptions::default()
    }
}

fn durable_options() -> StoreOptions {
    StoreOptions {
        fsync: FsyncPolicy::Always,
        ..StoreOptions::default()
    }
}

/// Child mode: re-invoked by the harness with `CQA_CRASH_CHILD_DIR`
/// set. Opens the store, churns, drops an ack marker per completed op.
/// As a test in its own right (env unset) it is a no-op pass.
#[test]
fn crash_writer_child() {
    let Ok(dir) = std::env::var("CQA_CRASH_CHILD_DIR") else {
        return;
    };
    let ack_dir = PathBuf::from(std::env::var("CQA_CRASH_ACK_DIR").expect("ack dir"));
    let options = if std::env::var("CQA_CRASH_COMPACT").is_ok() {
        aggressive_options()
    } else {
        durable_options()
    };
    let mut db = Database::open_with(&dir, options).expect("child opens store");
    for k in 0..OPS {
        apply_op(&mut db, k);
        // The op has returned: its frame is on disk and fsynced. Only
        // now may the ack appear — the marker's existence is the claim
        // "op k is durable", which the parent holds us to after SIGKILL.
        std::fs::File::create(ack_dir.join(format!("ack.{k}"))).expect("ack marker");
    }
}

fn wait_for_ack(ack_dir: &Path, k: usize, child: &mut std::process::Child) -> bool {
    let marker = ack_dir.join(format!("ack.{k}"));
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        if marker.exists() {
            return true;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            // Child finished all ops before the kill point was reached —
            // only legal when every marker is already down.
            assert!(status.success(), "child failed: {status:?}");
            return marker.exists();
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for ack.{k}");
}

#[test]
fn crash_recovery_survives_sigkill_mid_churn() {
    if std::env::var("CQA_CRASH_TESTS").is_err() {
        eprintln!("crash harness skipped: set CQA_CRASH_TESTS=1 to run");
        return;
    }
    let exe = std::env::current_exe().expect("current_exe");
    let root = std::env::temp_dir().join(format!("cqa-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let mut rng = XorShift::new(0xC4A5_4B1D);
    for round in 0..25 {
        let dir = root.join(format!("store{round}"));
        let ack_dir = root.join(format!("ack{round}"));
        std::fs::create_dir_all(&ack_dir).unwrap();

        // Every third round churns with an aggressive compaction
        // fraction, so kills land inside segment-rewrite/manifest-
        // rename windows too (the incremental compaction protocol).
        let compact = round % 3 == 0;
        let options = if compact {
            aggressive_options()
        } else {
            durable_options()
        };
        let catalog = cqa::sql::parse_script(SCRIPT).unwrap();
        drop(
            Database::persistent_with(&dir, catalog.instance, catalog.constraints, options)
                .unwrap(),
        );

        let kill_after = rng.below(OPS);
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("crash_writer_child")
            .arg("--exact")
            .arg("--nocapture")
            .env("CQA_CRASH_CHILD_DIR", &dir)
            .env("CQA_CRASH_ACK_DIR", &ack_dir)
            .env_remove("CQA_CRASH_TESTS");
        if compact {
            cmd.env("CQA_CRASH_COMPACT", "1");
        }
        let mut child = cmd
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn child");

        wait_for_ack(&ack_dir, kill_after, &mut child);
        child.kill().expect("SIGKILL");
        child.wait().expect("reap");

        // Recover. The durable horizon must cover every acked op; the
        // recovered state must equal the oracle at exactly that horizon.
        let back =
            Database::open(&dir).unwrap_or_else(|e| panic!("round {round}: recovery failed: {e}"));
        let report = back.recovery_report().unwrap().clone();
        let durable = report.last_seq as usize;
        assert!(
            durable > kill_after,
            "round {round}: acked op {kill_after} lost (durable horizon {durable})"
        );
        assert!(
            durable <= OPS,
            "round {round}: horizon {durable} beyond the op stream"
        );

        let want = oracle(durable);
        let got_atoms: Vec<_> = back.instance().atoms().collect();
        let want_atoms: Vec<_> = want.instance().atoms().collect();
        assert_eq!(
            got_atoms, want_atoms,
            "round {round} (kill@{kill_after}, compact={compact}): \
             recovered instance diverges from the oracle at horizon {durable}"
        );
        assert_eq!(
            back.repairs().unwrap(),
            want.repairs().unwrap(),
            "round {round}: repair spaces diverge"
        );
        assert_eq!(
            back.consistent_answers("q(v) :- s(u, v).").unwrap(),
            want.consistent_answers("q(v) :- s(u, v).").unwrap(),
            "round {round}: consistent answers diverge"
        );

        // The reopened handle keeps working: finish the op stream and
        // compare against the full-run oracle.
        let mut back = back;
        for k in durable..OPS {
            apply_op(&mut back, k);
        }
        let full = oracle(OPS);
        let got: Vec<_> = back.instance().atoms().collect();
        let want: Vec<_> = full.instance().atoms().collect();
        assert_eq!(got, want, "round {round}: post-recovery churn diverges");

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ack_dir);
    }
    let _ = std::fs::remove_dir_all(&root);
}
