//! Property suite for Theorem 4: on RIC-acyclic constraint sets, the
//! stable models of the Definition-9 repair program (Corrected style)
//! correspond one-to-one to the repairs found by the direct engine.
//! CQA via cautious reasoning must likewise agree with CQA via repair
//! intersection — including when the direct route fans repair search and
//! answer intersection over the parallel pool (`CQA_TEST_THREADS`).
//!
//! The suite also pins the **incremental grounder**: regrounding a live
//! [`GroundingState`] after random fact-delta sequences must produce a
//! ground program equal — as a set of atom-level rules — to grounding the
//! grown program from scratch. Randomness is the workspace's
//! deterministic [`XorShift`].

use cqa::asp::{ground, GroundingState};
use cqa::constraints::{builders, graph, v, Constraint, Ic, IcSet};
use cqa::core::query::AnswerSemantics;
use cqa::core::{
    consistent_answers, consistent_answers_full, consistent_answers_via_program, repair_program,
    repairs, repairs_via_program, ConjunctiveQuery, ProgramStyle, Query, RepairConfig,
    SearchStrategy,
};
use cqa::prelude::*;
use cqa::relational::testing::{env_threads, XorShift};
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a"])
        .relation("R", ["x", "y"])
        .relation("T", ["t", "u", "w"])
        .finish()
        .unwrap()
        .into_shared()
}

/// The 6-constraint pool: RIC, UIC, single-column FD, composite-determinant
/// FD, NNC and a denial — every Definition-9-expressible shape the repair
/// program must agree with the engine on.
fn pool(sc: &Schema) -> Vec<Constraint> {
    vec![
        // RIC: P(x) → ∃y R(x,y)
        Constraint::from(
            Ic::builder(sc, "ric")
                .body_atom("P", [v("x")])
                .head_atom("R", [v("x"), v("y")])
                .finish()
                .unwrap(),
        ),
        // UIC chain: T(x,y,z) → P(x)
        Constraint::from(
            Ic::builder(sc, "uic")
                .body_atom("T", [v("x"), v("y"), v("z")])
                .head_atom("P", [v("x")])
                .finish()
                .unwrap(),
        ),
        // key on R[1]
        Constraint::from(builders::functional_dependency(sc, "R", &[0], 1).unwrap()),
        // composite-determinant FD: T[1,2] → T[3]
        Constraint::from(builders::functional_dependency(sc, "T", &[0, 1], 2).unwrap()),
        // NNC on P[1]
        Constraint::from(builders::not_null(sc, "P", 0).unwrap()),
        // denial: T(x, y, _) ∧ R(x, x) → false
        Constraint::from(
            Ic::builder(sc, "den")
                .body_atom("T", [v("x"), v("y"), v("z")])
                .body_atom("R", [v("x"), v("x")])
                .finish()
                .unwrap(),
        ),
    ]
}

fn value(rng: &mut XorShift) -> Value {
    match rng.below(3) {
        0 => s("c0"),
        1 => s("c1"),
        _ => Value::Null,
    }
}

fn instance(rng: &mut XorShift, sc: &Arc<Schema>) -> Instance {
    let mut d = Instance::empty(sc.clone());
    for _ in 0..rng.below(3) {
        d.insert_named("P", [value(rng)]).unwrap();
    }
    for _ in 0..rng.below(3) {
        d.insert_named("R", [value(rng), value(rng)]).unwrap();
    }
    for _ in 0..rng.below(2) {
        d.insert_named("T", [value(rng), value(rng), value(rng)])
            .unwrap();
    }
    d
}

/// Random RIC-acyclic subset of the pool (resampling until acyclic).
fn acyclic_subset(rng: &mut XorShift, sc: &Schema) -> IcSet {
    loop {
        let mask = rng.below(64) as u8;
        let ics: IcSet = pool(sc)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        if graph::is_ric_acyclic(&ics) {
            return ics;
        }
    }
}

#[test]
fn theorem4_engine_equals_program() {
    let sc = schema();
    let mut rng = XorShift::new(401);
    for _ in 0..48 {
        let d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        let via_engine = repairs(&d, &ics).unwrap();
        let via_program = repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        assert_eq!(via_engine, via_program);
    }
}

#[test]
fn cqa_direct_equals_cqa_via_program() {
    let sc = schema();
    let mut rng = XorShift::new(402);
    // The direct route runs serially and across the parallel pool — the
    // CI matrix pins CQA_TEST_THREADS ∈ {1, 4} — and every configuration
    // must agree with cautious reasoning over the repair program.
    let strategies = [
        SearchStrategy::Incremental,
        SearchStrategy::Parallel { threads: 1 },
        SearchStrategy::Parallel {
            threads: env_threads(4),
        },
    ];
    for _ in 0..48 {
        let d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        // Q(x): R(x, y) — which first components are certain?
        let q: Query = ConjunctiveQuery::builder(&sc, "q", ["x"])
            .atom("R", [cqa::constraints::v("x"), cqa::constraints::v("y")])
            .finish()
            .unwrap()
            .into();
        let via_program = consistent_answers_via_program(
            &d,
            &ics,
            &q,
            ProgramStyle::Corrected,
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        for strategy in strategies {
            let direct = consistent_answers(
                &d,
                &ics,
                &q,
                RepairConfig {
                    strategy,
                    ..RepairConfig::default()
                },
                AnswerSemantics::IncludeNullAnswers,
            )
            .unwrap();
            assert_eq!(direct, via_program, "strategy {strategy:?}");
        }
    }
}

#[test]
fn parallel_intersection_matches_serial_across_semantics() {
    // The chunked parallel answer intersection must be byte-identical to
    // the serial loop under both answer-filtering modes and both query
    // null semantics.
    let sc = schema();
    let mut rng = XorShift::new(405);
    let threads = env_threads(4);
    for _ in 0..24 {
        let d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        let q: Query = ConjunctiveQuery::builder(&sc, "q", ["x", "y"])
            .atom("R", [cqa::constraints::v("x"), cqa::constraints::v("y")])
            .finish()
            .unwrap()
            .into();
        for semantics in [
            AnswerSemantics::IncludeNullAnswers,
            AnswerSemantics::ExcludeNullAnswers,
        ] {
            for qsem in [
                cqa::core::QueryNullSemantics::NullAsValue,
                cqa::core::QueryNullSemantics::SqlThreeValued,
            ] {
                let serial =
                    consistent_answers_full(&d, &ics, &q, RepairConfig::default(), semantics, qsem)
                        .unwrap();
                let parallel = consistent_answers_full(
                    &d,
                    &ics,
                    &q,
                    RepairConfig {
                        strategy: SearchStrategy::Parallel { threads },
                        ..RepairConfig::default()
                    },
                    semantics,
                    qsem,
                )
                .unwrap();
                assert_eq!(serial, parallel, "{semantics:?} {qsem:?}");
            }
        }
    }
}

#[test]
fn paper_exact_repairs_are_superset_of_corrected() {
    // The paper-exact program can add spurious deletion models in the
    // all-null-witness corner, but never loses a real repair.
    let sc = schema();
    let mut rng = XorShift::new(403);
    for _ in 0..48 {
        let d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        let corrected = repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        let paper = repairs_via_program(&d, &ics, ProgramStyle::PaperExact).unwrap();
        for r in &corrected {
            assert!(paper.contains(r));
        }
    }
}

/// A fresh atom for the delta stream: unique constants so insertions are
/// genuinely new, plus occasional null/shared values to hit the guard and
/// patch paths.
fn delta_atom(rng: &mut XorShift, round: usize, step: usize) -> (&'static str, Vec<Value>) {
    let fresh = |tag: &str| s(&format!("{tag}{round}_{step}"));
    match rng.below(4) {
        0 => (
            "P",
            vec![if rng.chance(1, 4) { null() } else { fresh("p") }],
        ),
        1 => ("R", vec![fresh("r"), value(rng)]),
        2 => ("T", vec![fresh("t"), value(rng), value(rng)]),
        _ => ("R", vec![value(rng), value(rng)]),
    }
}

#[test]
fn incremental_reground_equals_scratch_over_delta_sequences() {
    // The oracle sweep of the incremental grounder: random instances ×
    // random RIC-acyclic constraint subsets × random fact-delta sequences
    // (insertions via the seminaive worklist, removals via the DRed
    // delete–rederive two-pass — nothing rebuilds). After every delta the
    // live state's ground program must equal — as a set of atom-level
    // rules — a from-scratch grounding of its program.
    let sc = schema();
    let mut rng = XorShift::new(404);
    for round in 0..24 {
        let d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        for style in [ProgramStyle::Corrected, ProgramStyle::PaperExact] {
            let program = repair_program(&d, &ics, style).unwrap();
            let mut state = GroundingState::new(&program);
            assert_eq!(
                state.ground_program().resolved_rules(),
                ground(state.program()).resolved_rules(),
                "fresh state, round {round}, {style:?}"
            );
            for step in 0..6 {
                if rng.chance(1, 5) {
                    // Remove a random existing fact (DRed path).
                    let facts = state.program().facts().to_vec();
                    if let Some((pred, args)) = facts.get(rng.below(facts.len().max(1))).cloned() {
                        state.remove_facts([(pred, args)]);
                    }
                } else {
                    let (pred, args) = delta_atom(&mut rng, round, step);
                    state.add_fact_named(pred, args).unwrap();
                }
                let scratch = ground(state.program());
                assert_eq!(
                    state.ground_program().resolved_rules(),
                    scratch.resolved_rules(),
                    "round {round}, step {step}, {style:?}"
                );
            }
        }
    }
}

#[test]
fn deletion_heavy_reground_equals_scratch() {
    // The DRed stress: grow each instance with a burst of insertions,
    // then delete facts (mostly batches, sometimes the same atom twice —
    // the multiset edge) until few remain, checking the atom-level
    // invariant after every step. Deletions dominate 3:1.
    let sc = schema();
    let mut rng = XorShift::new(406);
    for round in 0..12 {
        let d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        for style in [ProgramStyle::Corrected, ProgramStyle::PaperExact] {
            let program = repair_program(&d, &ics, style).unwrap();
            let mut state = GroundingState::new(&program);
            for step in 0..4 {
                let (pred, args) = delta_atom(&mut rng, round, step);
                state.add_fact_named(pred, args).unwrap();
            }
            for step in 0..10 {
                let facts = state.program().facts().to_vec();
                if facts.is_empty() {
                    break;
                }
                // A removal batch of 1–3 facts, duplicates allowed (an
                // absent second occurrence must be a no-op).
                let batch: Vec<_> = (0..1 + rng.below(3))
                    .map(|_| facts[rng.below(facts.len())].clone())
                    .collect();
                state.remove_facts(batch);
                let scratch = ground(state.program());
                assert_eq!(
                    state.ground_program().resolved_rules(),
                    scratch.resolved_rules(),
                    "round {round}, deletion step {step}, {style:?}"
                );
            }
        }
    }
}

#[test]
fn alternating_churn_reground_equals_scratch() {
    // Strict insert/delete alternation — the multi-tenant churn shape the
    // grounding cache replays — over both program styles, ending with the
    // CQA-level agreement between routes on the churned instance.
    let sc = schema();
    let mut rng = XorShift::new(407);
    for round in 0..12 {
        let mut d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        for style in [ProgramStyle::Corrected, ProgramStyle::PaperExact] {
            let program = repair_program(&d, &ics, style).unwrap();
            let mut state = GroundingState::new(&program);
            for step in 0..8 {
                if step % 2 == 0 {
                    let (pred, args) = delta_atom(&mut rng, round, step);
                    state.add_fact_named(pred, args).unwrap();
                } else {
                    let facts = state.program().facts().to_vec();
                    if let Some((pred, args)) = facts.get(rng.below(facts.len().max(1))).cloned() {
                        state.remove_facts([(pred, args)]);
                    }
                }
                let scratch = ground(state.program());
                assert_eq!(
                    state.ground_program().resolved_rules(),
                    scratch.resolved_rules(),
                    "round {round}, churn step {step}, {style:?}"
                );
            }
        }
        // End-to-end on a churned *instance*: mutate d the same way and
        // confirm both CQA routes still agree (the cache layer will replay
        // exactly this kind of drift).
        let atoms: Vec<_> = d.atoms().collect();
        if let Some(atom) = atoms.first() {
            d.remove(atom.rel, &atom.tuple);
        }
        d.insert_named("R", [s(&format!("churn{round}")), value(&mut rng)])
            .unwrap();
        let via_engine = repairs(&d, &ics).unwrap();
        let via_program = repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        assert_eq!(via_engine, via_program, "churned instance, round {round}");
    }
}
