//! Property suite for Theorem 4: on RIC-acyclic constraint sets, the
//! stable models of the Definition-9 repair program (Corrected style)
//! correspond one-to-one to the repairs found by the direct engine.
//! CQA via cautious reasoning must likewise agree with CQA via repair
//! intersection. Randomness is the workspace's deterministic [`XorShift`].

use cqa::constraints::{builders, graph, v, Constraint, Ic, IcSet};
use cqa::core::query::AnswerSemantics;
use cqa::core::{
    consistent_answers, consistent_answers_via_program, repairs, repairs_via_program,
    ConjunctiveQuery, ProgramStyle, Query, RepairConfig,
};
use cqa::prelude::*;
use cqa::relational::testing::XorShift;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a"])
        .relation("R", ["x", "y"])
        .relation("T", ["t"])
        .finish()
        .unwrap()
        .into_shared()
}

fn pool(sc: &Schema) -> Vec<Constraint> {
    vec![
        // RIC: P(x) → ∃y R(x,y)
        Constraint::from(
            Ic::builder(sc, "ric")
                .body_atom("P", [v("x")])
                .head_atom("R", [v("x"), v("y")])
                .finish()
                .unwrap(),
        ),
        // UIC chain: T(x) → P(x)
        Constraint::from(
            Ic::builder(sc, "uic")
                .body_atom("T", [v("x")])
                .head_atom("P", [v("x")])
                .finish()
                .unwrap(),
        ),
        // key on R[1]
        Constraint::from(builders::functional_dependency(sc, "R", &[0], 1).unwrap()),
        // NNC on P[1]
        Constraint::from(builders::not_null(sc, "P", 0).unwrap()),
        // denial: T(x) ∧ R(x, x) → false
        Constraint::from(
            Ic::builder(sc, "den")
                .body_atom("T", [v("x")])
                .body_atom("R", [v("x"), v("x")])
                .finish()
                .unwrap(),
        ),
    ]
}

fn value(rng: &mut XorShift) -> Value {
    match rng.below(3) {
        0 => s("c0"),
        1 => s("c1"),
        _ => Value::Null,
    }
}

fn instance(rng: &mut XorShift, sc: &Arc<Schema>) -> Instance {
    let mut d = Instance::empty(sc.clone());
    for _ in 0..rng.below(3) {
        d.insert_named("P", [value(rng)]).unwrap();
    }
    for _ in 0..rng.below(3) {
        d.insert_named("R", [value(rng), value(rng)]).unwrap();
    }
    for _ in 0..rng.below(2) {
        d.insert_named("T", [value(rng)]).unwrap();
    }
    d
}

/// Random RIC-acyclic subset of the pool (resampling until acyclic).
fn acyclic_subset(rng: &mut XorShift, sc: &Schema) -> IcSet {
    loop {
        let mask = rng.below(32) as u8;
        let ics: IcSet = pool(sc)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        if graph::is_ric_acyclic(&ics) {
            return ics;
        }
    }
}

#[test]
fn theorem4_engine_equals_program() {
    let sc = schema();
    let mut rng = XorShift::new(401);
    for _ in 0..48 {
        let d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        let via_engine = repairs(&d, &ics).unwrap();
        let via_program = repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        assert_eq!(via_engine, via_program);
    }
}

#[test]
fn cqa_direct_equals_cqa_via_program() {
    let sc = schema();
    let mut rng = XorShift::new(402);
    for _ in 0..48 {
        let d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        // Q(x): R(x, y) — which first components are certain?
        let q: Query = ConjunctiveQuery::builder(&sc, "q", ["x"])
            .atom("R", [cqa::constraints::v("x"), cqa::constraints::v("y")])
            .finish()
            .unwrap()
            .into();
        let direct = consistent_answers(
            &d,
            &ics,
            &q,
            RepairConfig::default(),
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        let via_program = consistent_answers_via_program(
            &d,
            &ics,
            &q,
            ProgramStyle::Corrected,
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        assert_eq!(direct, via_program);
    }
}

#[test]
fn paper_exact_repairs_are_superset_of_corrected() {
    // The paper-exact program can add spurious deletion models in the
    // all-null-witness corner, but never loses a real repair.
    let sc = schema();
    let mut rng = XorShift::new(403);
    for _ in 0..48 {
        let d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        let corrected = repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        let paper = repairs_via_program(&d, &ics, ProgramStyle::PaperExact).unwrap();
        for r in &corrected {
            assert!(paper.contains(r));
        }
    }
}
