//! Property suite for Theorem 4: on RIC-acyclic constraint sets, the
//! stable models of the Definition-9 repair program (Corrected style)
//! correspond one-to-one to the repairs found by the direct engine.
//! CQA via cautious reasoning must likewise agree with CQA via repair
//! intersection.

use cqa::constraints::{builders, graph, v, Constraint, Ic, IcSet};
use cqa::core::query::AnswerSemantics;
use cqa::core::{
    consistent_answers, consistent_answers_via_program, repairs, repairs_via_program,
    ConjunctiveQuery, ProgramStyle, Query, RepairConfig,
};
use cqa::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a"])
        .relation("R", ["x", "y"])
        .relation("T", ["t"])
        .finish()
        .unwrap()
        .into_shared()
}

fn pool(sc: &Schema) -> Vec<Constraint> {
    vec![
        // RIC: P(x) → ∃y R(x,y)
        Constraint::from(
            Ic::builder(sc, "ric")
                .body_atom("P", [v("x")])
                .head_atom("R", [v("x"), v("y")])
                .finish()
                .unwrap(),
        ),
        // UIC chain: T(x) → P(x)
        Constraint::from(
            Ic::builder(sc, "uic")
                .body_atom("T", [v("x")])
                .head_atom("P", [v("x")])
                .finish()
                .unwrap(),
        ),
        // key on R[1]
        Constraint::from(builders::functional_dependency(sc, "R", &[0], 1).unwrap()),
        // NNC on P[1]
        Constraint::from(builders::not_null(sc, "P", 0).unwrap()),
        // denial: T(x) ∧ R(x, x) → false
        Constraint::from(
            Ic::builder(sc, "den")
                .body_atom("T", [v("x")])
                .body_atom("R", [v("x"), v("x")])
                .finish()
                .unwrap(),
        ),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![Just(s("c0")), Just(s("c1")), Just(Value::Null)]
}

fn instance_strategy(sc: Arc<Schema>) -> impl Strategy<Value = Instance> {
    let p_rows = proptest::collection::btree_set(value_strategy(), 0..3);
    let r_rows =
        proptest::collection::btree_set((value_strategy(), value_strategy()), 0..3);
    let t_rows = proptest::collection::btree_set(value_strategy(), 0..2);
    (p_rows, r_rows, t_rows).prop_map(move |(ps, rs, ts)| {
        let mut d = Instance::empty(sc.clone());
        for p in ps {
            d.insert_named("P", [p]).unwrap();
        }
        for (x, y) in rs {
            d.insert_named("R", [x, y]).unwrap();
        }
        for t in ts {
            d.insert_named("T", [t]).unwrap();
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn theorem4_engine_equals_program(
        d in instance_strategy(schema()),
        mask in 0u8..32,
    ) {
        let sc = schema();
        let ics: IcSet = pool(&sc)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        prop_assume!(graph::is_ric_acyclic(&ics));
        let via_engine = repairs(&d, &ics).unwrap();
        let via_program = repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        prop_assert_eq!(via_engine, via_program);
    }

    #[test]
    fn cqa_direct_equals_cqa_via_program(
        d in instance_strategy(schema()),
        mask in 0u8..32,
    ) {
        let sc = schema();
        let ics: IcSet = pool(&sc)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        prop_assume!(graph::is_ric_acyclic(&ics));
        // Q(x): R(x, y) — which first components are certain?
        let q: Query = ConjunctiveQuery::builder(&sc, "q", ["x"])
            .atom("R", [cqa::constraints::v("x"), cqa::constraints::v("y")])
            .finish()
            .unwrap()
            .into();
        let direct = consistent_answers(
            &d,
            &ics,
            &q,
            RepairConfig::default(),
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        let via_program = consistent_answers_via_program(
            &d,
            &ics,
            &q,
            ProgramStyle::Corrected,
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        prop_assert_eq!(direct, via_program);
    }

    #[test]
    fn paper_exact_repairs_are_superset_of_corrected(
        d in instance_strategy(schema()),
        mask in 0u8..32,
    ) {
        // The paper-exact program can add spurious deletion models in the
        // all-null-witness corner, but never loses a real repair.
        let sc = schema();
        let ics: IcSet = pool(&sc)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        prop_assume!(graph::is_ric_acyclic(&ics));
        let corrected = repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        let paper = repairs_via_program(&d, &ics, ProgramStyle::PaperExact).unwrap();
        for r in &corrected {
            prop_assert!(paper.contains(r));
        }
    }
}
