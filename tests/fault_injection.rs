//! Deterministic storage fault matrix (ISSUE 7 tentpole, part 1).
//!
//! Every byte the store moves goes through the [`Vfs`] seam, so this
//! suite can enumerate fault points instead of sampling them: a profile
//! run against `FaultScript::profile()` counts the workload's fsyncs,
//! writes, renames and removes, and the matrix then replays the same
//! workload once per operation index with exactly that operation
//! scripted to fail — fsync failures (including group-commit leader
//! fsyncs and segment/manifest syncs), short writes (WAL frames,
//! segment bodies, the manifest), ENOSPC byte budgets, lost renames at
//! the crash point between a fully-synced `manifest.tmp` and its
//! rename, lost removes (segment housekeeping), and bit-flips on read.
//! The churn itself spans two relations and includes an
//! `add_constraint` op, so constraint frames and the incremental
//! segment-reuse path both sit inside the fault window.
//!
//! The invariant under every point, checked against a never-faulted
//! in-memory oracle:
//!
//! * a failing call surfaces a **typed** [`Error::Storage`] — never a
//!   panic, never a hang — and either leaves the in-memory `Database`
//!   unchanged (the fault hit before the mutation was acknowledged) or
//!   the mutation was already durable and only housekeeping
//!   (compaction) failed after it;
//! * reopening the directory with a clean [`RealVfs`] — the post-crash
//!   process — recovers to **exactly** the durable horizon: the
//!   recovered state equals the oracle replayed to
//!   [`RecoveryReport::last_seq`], the horizon never drops below the
//!   acknowledged prefix and never exceeds the attempted one, and a
//!   second reopen is a fixpoint (nothing further to heal).
//!
//! A seeded randomized sweep then flips and truncates arbitrary bytes
//! of the WAL and snapshot directly: `Database::open` must never panic
//! and never return state beyond the durable horizon.

use cqa::relational::testing::XorShift;
use cqa::storage::{FaultScript, FaultVfs, FsyncPolicy, StoreOptions};
use cqa::{Database, Error};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cqa-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Nearly no constraints: the matrix is about bytes, not repairs, and a
/// trivially-satisfied IC set keeps each of the ~200 runs cheap. Two
/// relations, one of which the churn barely touches, so incremental
/// compaction exercises both the rewrite and the reuse path.
const SEED: &str = "CREATE TABLE r (x TEXT, y TEXT);
     CREATE TABLE t (p TEXT);
     INSERT INTO r VALUES ('a', 'b'), ('c', 'd');
     INSERT INTO t VALUES ('cold');";

/// Effective ops per run; op `k` ↔ WAL seq `k+1` (no-ops never reach
/// the WAL, and every op below is effective).
const OPS: usize = 10;

/// Op `k` of the deterministic churn. Two deletes target rows inserted
/// earlier in the same run, op 5 appends a constraint frame, op 8
/// dirties the second relation — the whole sequence stays effective.
fn apply_op(db: &mut Database, k: usize) -> Result<bool, Error> {
    match k {
        3 => db.delete("r", [cqa::s("w0"), cqa::s("y")]),
        // Satisfied by construction (no null ever lands in r.x), so the
        // repair space stays trivial; what matters is the tagged WAL
        // frame it appends.
        5 => db.add_constraint("nn_r_x", "not null r(x)").map(|()| true),
        7 => db.delete("r", [cqa::s("w4"), cqa::s("y")]),
        8 => db.insert("t", [cqa::s("hot")]),
        _ => db.insert("r", [cqa::s(&format!("w{k}")), cqa::s("y")]),
    }
}

/// Aggressive compaction so segment rewrites (fresh segments + fsyncs +
/// manifest tmp + rename + dir syncs) happen *during* the churn,
/// putting the whole compaction protocol inside the fault window.
fn options() -> StoreOptions {
    StoreOptions {
        fsync: FsyncPolicy::Always,
        compact_num: 1,
        compact_den: 2,
        compact_min_wal_bytes: 0,
        ..StoreOptions::default()
    }
}

/// The never-faulted oracle: seed + the first `n` ops, in memory.
fn oracle(n: usize) -> Database {
    let catalog = cqa::sql::parse_script(SEED).unwrap();
    let mut db = Database::new(catalog.instance, catalog.constraints);
    for k in 0..n {
        assert!(
            apply_op(&mut db, k).unwrap(),
            "oracle op {k} must be effective"
        );
    }
    db
}

/// Canonical, order-independent view of a database's atoms.
fn atoms(db: &Database) -> Vec<String> {
    let mut v: Vec<String> = db.instance().atoms().map(|a| format!("{a:?}")).collect();
    v.sort();
    v
}

/// What one faulted lifecycle acknowledged before it stopped.
struct RunResult {
    /// Ops durably acknowledged: `Ok` returns, plus an op whose mutation
    /// landed (WAL + memory) before housekeeping-only compaction failed.
    acked: usize,
    /// `acked`, plus one if the failing op had already attempted its WAL
    /// append (the frame may be wholly or partly on disk).
    attempted: usize,
    /// Did `Database::persistent_with_vfs` itself succeed?
    create_ok: bool,
}

/// Create + churn + sync under `script`, asserting the typed-error /
/// unchanged-memory contract at the fault itself.
fn run_workload(dir: &Path, script: FaultScript) -> RunResult {
    let _ = std::fs::remove_dir_all(dir);
    let vfs = FaultVfs::new(script);
    let catalog = cqa::sql::parse_script(SEED).unwrap();
    let db = Database::persistent_with_vfs(
        dir,
        catalog.instance,
        catalog.constraints,
        options(),
        Arc::new(vfs.clone()),
    );
    let mut db = match db {
        Ok(db) => db,
        Err(e) => {
            assert!(
                matches!(e, Error::Storage(_)),
                "create fault must be typed: {e}"
            );
            return RunResult {
                acked: 0,
                attempted: 0,
                create_ok: false,
            };
        }
    };
    let mut acked = 0;
    for k in 0..OPS {
        let before = atoms(&db);
        match apply_op(&mut db, k) {
            Ok(effective) => {
                assert!(effective, "op {k} must be effective");
                acked += 1;
            }
            Err(e) => {
                assert!(
                    matches!(e, Error::Storage(_)),
                    "op fault must be typed: {e}"
                );
                if atoms(&db) == before {
                    // Fault before acknowledgement: memory untouched, the
                    // frame may still be (partly) on disk.
                    return RunResult {
                        acked,
                        attempted: acked + 1,
                        create_ok: true,
                    };
                }
                // The mutation was durable (WAL frame synced, memory
                // applied) and only post-mutation compaction failed: the
                // op counts as acknowledged.
                assert_eq!(
                    atoms(&db),
                    atoms(&oracle(acked + 1)),
                    "an error after mutation must leave exactly the mutated state"
                );
                return RunResult {
                    acked: acked + 1,
                    attempted: acked + 1,
                    create_ok: true,
                };
            }
        }
    }
    if let Err(e) = db.sync() {
        assert!(
            matches!(e, Error::Storage(_)),
            "sync fault must be typed: {e}"
        );
    }
    RunResult {
        acked,
        attempted: acked,
        create_ok: true,
    }
}

/// Reopen `dir` with the real filesystem — the post-crash process — and
/// hold recovery to the durable-horizon contract.
fn check_reopen(dir: &Path, r: &RunResult, what: &str) {
    match Database::open_with(dir, options()) {
        Err(e) => {
            assert!(
                matches!(e, Error::Storage(_)),
                "[{what}] reopen fault must be typed: {e}"
            );
            assert!(
                !r.create_ok,
                "[{what}] a store that acknowledged its creation must always reopen"
            );
        }
        Ok(db) => {
            let report = db.recovery_report().expect("opened stores report").clone();
            let last = report.last_seq as usize;
            assert!(
                last >= r.acked,
                "[{what}] acknowledged writes lost: horizon {last} < acked {}",
                r.acked
            );
            assert!(
                last <= r.attempted,
                "[{what}] horizon {last} beyond attempted {}",
                r.attempted
            );
            assert_eq!(
                atoms(&db),
                atoms(&oracle(last)),
                "[{what}] recovered state must equal the oracle at seq {last}"
            );
            drop(db);
            // Healing is a fixpoint: the second open finds nothing torn.
            let again = Database::open_with(dir, options()).unwrap();
            let rep2 = again.recovery_report().unwrap();
            assert_eq!(
                rep2.last_seq as usize, last,
                "[{what}] horizon stable across reopens"
            );
            assert_eq!(
                rep2.bytes_truncated, 0,
                "[{what}] first open already healed the tail"
            );
            assert_eq!(atoms(&again), atoms(&oracle(last)));
        }
    }
}

/// The tentpole matrix: profile the workload's I/O, then fail each
/// operation index in turn. ISSUE 7 acceptance requires ≥ 20 points.
#[test]
fn fault_matrix_every_point_is_typed_or_recoverable() {
    let base = scratch("matrix");
    let dir = base.join("store");

    // Profile pass: count the workload's operations.
    let vfs = FaultVfs::new(FaultScript::profile());
    {
        let catalog = cqa::sql::parse_script(SEED).unwrap();
        let mut db = Database::persistent_with_vfs(
            &dir,
            catalog.instance,
            catalog.constraints,
            options(),
            Arc::new(vfs.clone()),
        )
        .unwrap();
        for k in 0..OPS {
            assert!(apply_op(&mut db, k).unwrap());
        }
        db.sync().unwrap();
    }
    let profile = vfs.counts();
    assert!(profile.fsyncs > 0 && profile.writes > 0 && profile.renames > 0);

    let mut points = 0usize;
    let mut run_point = |what: String, script: FaultScript| {
        let r = run_workload(&dir, script);
        check_reopen(&dir, &r, &what);
        points += 1;
    };

    // Keep each sweep to ~24 runs even if compaction inflates the counts.
    let stride = |n: u64| (n / 24).max(1);

    // Fail the Nth fsync (WAL append syncs, snapshot syncs, dir syncs),
    // both surviving the fault and dying at it.
    let s = stride(profile.fsyncs);
    for n in (1..=profile.fsyncs).step_by(s as usize) {
        run_point(format!("fsync#{n}"), FaultScript::default().fail_fsync(n));
        run_point(
            format!("fsync#{n}+crash"),
            FaultScript::default().fail_fsync(n).crash_after_fault(),
        );
    }

    // Short-write the Nth write: 3 bytes of a frame header or snapshot
    // body reach disk, the rest is torn.
    let s = stride(profile.writes);
    for n in (1..=profile.writes).step_by(s as usize) {
        run_point(
            format!("short-write#{n}"),
            FaultScript::default().short_write(n, 3),
        );
    }

    // ENOSPC at increasing byte budgets across the whole lifecycle.
    for i in 0..8u64 {
        let budget = profile.bytes_written * i / 8;
        run_point(
            format!("enospc@{budget}"),
            FaultScript::default().enospc_after(budget),
        );
    }

    // Lose the Nth rename — the crash point between a fully-synced
    // `manifest.tmp` and the `rename` — and die there.
    for n in 1..=profile.renames {
        run_point(
            format!("rename#{n}+crash"),
            FaultScript::default().fail_rename(n).crash_after_fault(),
        );
    }

    // Lose the Nth remove — replaced-segment housekeeping after an
    // incremental compaction. A lost remove must never corrupt: at
    // worst it leaves debris for the next open's sweep.
    assert!(
        profile.removes > 0,
        "churn must delete replaced segments for the remove sweep to bite"
    );
    let s = stride(profile.removes);
    for n in (1..=profile.removes).step_by(s as usize) {
        run_point(format!("remove#{n}"), FaultScript::default().fail_remove(n));
        run_point(
            format!("remove#{n}+crash"),
            FaultScript::default().fail_remove(n).crash_after_fault(),
        );
    }

    assert!(
        points >= 20,
        "matrix must enumerate ≥ 20 fault points, got {points}"
    );
    println!("fault matrix: {points} points, profile {profile:?}");
    let _ = std::fs::remove_dir_all(&base);
}

/// Bit-flips on the read path of `Database::open`: a flipped snapshot
/// read fails its CRC with a typed error and leaves the disk intact; a
/// flipped WAL read is indistinguishable from on-disk corruption, so
/// open heals the log to the last verifiable frame — never past the
/// durable horizon, never a panic.
#[test]
fn read_corruption_on_open_is_typed_or_healed() {
    let base = scratch("readflip");

    // Profile how many reads one open performs.
    let healthy = |dir: &Path| {
        let _ = std::fs::remove_dir_all(dir);
        let catalog = cqa::sql::parse_script(SEED).unwrap();
        let mut db =
            Database::persistent_with(dir, catalog.instance, catalog.constraints, options())
                .unwrap();
        for k in 0..OPS {
            assert!(apply_op(&mut db, k).unwrap());
        }
        db.sync().unwrap();
    };
    let dir = base.join("store");
    healthy(&dir);
    let vfs = FaultVfs::new(FaultScript::profile());
    Database::open_with_vfs(&dir, options(), Arc::new(vfs.clone())).unwrap();
    let reads = vfs.counts().reads;
    assert!(reads > 0, "open must read");

    for n in 1..=reads {
        for offset in [0u64, 3, 9, 21, 64] {
            healthy(&dir);
            let what = format!("read#{n}@{offset}");
            let vfs = FaultVfs::new(FaultScript::default().flip_read(n, offset));
            match Database::open_with_vfs(&dir, options(), Arc::new(vfs)) {
                Err(e) => {
                    assert!(
                        matches!(e, Error::Storage(_)),
                        "[{what}] must be typed: {e}"
                    );
                    // The corruption was in the read buffer, not on disk:
                    // a clean reopen sees the full history.
                    let back = Database::open_with(&dir, options()).unwrap();
                    assert_eq!(back.recovery_report().unwrap().last_seq as usize, OPS);
                    assert_eq!(atoms(&back), atoms(&oracle(OPS)), "[{what}] disk intact");
                }
                Ok(db) => {
                    let last = db.recovery_report().unwrap().last_seq as usize;
                    assert!(
                        last <= OPS,
                        "[{what}] horizon {last} beyond attempted {OPS}"
                    );
                    assert_eq!(atoms(&db), atoms(&oracle(last)), "[{what}] oracle-equal");
                    drop(db);
                    // Whatever the flip made open truncate is truncated
                    // consistently: a clean reopen agrees.
                    let back = Database::open_with(&dir, options()).unwrap();
                    assert_eq!(back.recovery_report().unwrap().last_seq as usize, last);
                    assert_eq!(
                        atoms(&back),
                        atoms(&oracle(last)),
                        "[{what}] stable after heal"
                    );
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Satellite: torn WAL tails are *reported*, not just healed —
/// `Database::recovery_report` surfaces the truncated byte count.
#[test]
fn torn_wal_tail_reports_nonzero_truncation() {
    let base = scratch("torn");
    let dir = base.join("store");
    let catalog = cqa::sql::parse_script(SEED).unwrap();
    // No compaction: keep every frame in the WAL so the report is exact.
    let opts = StoreOptions {
        fsync: FsyncPolicy::Always,
        compact_min_wal_bytes: u64::MAX,
        ..StoreOptions::default()
    };
    let mut db =
        Database::persistent_with(&dir, catalog.instance, catalog.constraints, opts).unwrap();
    for k in 0..OPS {
        assert!(apply_op(&mut db, k).unwrap());
    }
    drop(db);

    // A torn append: 10 garbage bytes that are not a complete frame.
    use std::io::Write;
    let mut wal = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("wal"))
        .unwrap();
    wal.write_all(&[0xAB; 10]).unwrap();
    drop(wal);

    let back = Database::open_with(&dir, opts).unwrap();
    let report = back.recovery_report().expect("opened stores report");
    assert_eq!(
        report.bytes_truncated, 10,
        "the torn tail is measured, not just dropped"
    );
    assert_eq!(report.frames_applied as usize, OPS);
    assert_eq!(report.last_seq as usize, OPS);
    assert_eq!(atoms(&back), atoms(&oracle(OPS)));
    let _ = std::fs::remove_dir_all(&base);
}

/// Satellite: seeded randomized corruption — flip, truncate or smear
/// arbitrary bytes of the WAL, the manifest or a segment file.
/// `Database::open` must never panic and never return state beyond the
/// durable horizon.
#[test]
fn randomized_corruption_sweep_never_panics_never_exceeds_horizon() {
    let base = scratch("fuzz");
    let dir = base.join("store");
    let mut rng = XorShift::new(0xFA17_5EED);
    let mut opened = 0usize;
    let mut rejected = 0usize;

    for trial in 0..48 {
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = cqa::sql::parse_script(SEED).unwrap();
        let mut db =
            Database::persistent_with(&dir, catalog.instance, catalog.constraints, options())
                .unwrap();
        for k in 0..OPS {
            assert!(apply_op(&mut db, k).unwrap());
        }
        db.sync().unwrap();
        drop(db);

        // 1–3 corruptions per trial. Half land on the WAL (often
        // healable by tail truncation); the rest hit the manifest or a
        // live segment (typed rejection — the manifest is the root of
        // trust and pins every segment's length and CRC).
        for _ in 0..1 + rng.below(3) {
            let path = if rng.chance(1, 2) {
                dir.join("wal")
            } else {
                let mut snaps: Vec<_> = std::fs::read_dir(&dir)
                    .unwrap()
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n == "manifest" || n.starts_with("seg-"))
                    })
                    .collect();
                snaps.sort();
                snaps[rng.below(snaps.len())].clone()
            };
            let mut bytes = std::fs::read(&path).unwrap();
            if bytes.is_empty() {
                continue;
            }
            match rng.below(3) {
                0 => {
                    let i = rng.below(bytes.len());
                    bytes[i] ^= 1 << rng.below(8);
                }
                1 => {
                    let keep = rng.below(bytes.len() + 1);
                    bytes.truncate(keep);
                }
                _ => {
                    let i = rng.below(bytes.len());
                    let end = (i + 1 + rng.below(16)).min(bytes.len());
                    for b in &mut bytes[i..end] {
                        *b = 0xEE;
                    }
                }
            }
            std::fs::write(&path, &bytes).unwrap();
        }

        match Database::open_with(&dir, options()) {
            Err(e) => {
                assert!(
                    matches!(e, Error::Storage(_)),
                    "trial {trial}: typed error, got {e}"
                );
                rejected += 1;
            }
            Ok(db) => {
                let last = db.recovery_report().unwrap().last_seq as usize;
                assert!(
                    last <= OPS,
                    "trial {trial}: horizon {last} beyond durable {OPS}"
                );
                assert_eq!(
                    atoms(&db),
                    atoms(&oracle(last)),
                    "trial {trial}: recovered state must sit exactly on the horizon"
                );
                opened += 1;
            }
        }
    }
    // The sweep must actually exercise both outcomes.
    assert!(
        opened > 0,
        "no trial recovered — sweep too destructive to mean anything"
    );
    assert!(
        rejected > 0,
        "no trial was rejected — sweep too gentle to mean anything"
    );
    let _ = std::fs::remove_dir_all(&base);
}
