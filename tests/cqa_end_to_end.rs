//! End-to-end consistent query answering scenarios: every query shape the
//! library supports (joins, negation, builtins, unions, boolean), across
//! both CQA engines, under both repair semantics and both query-null
//! semantics.

use cqa::constraints::{builders, v, IcSet};
use cqa::core::query::{AnswerSemantics, QueryNullSemantics};
use cqa::core::{
    consistent_answers, consistent_answers_full, consistent_answers_via_program, ConjunctiveQuery,
    ProgramStyle, Query, RepairConfig, RepairSemantics,
};
use cqa::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A small personnel database with one key conflict and one dangling
/// reference — two independent choice points, four repairs.
fn setup() -> (Arc<Schema>, Instance, IcSet) {
    let sc = Schema::builder()
        .relation("emp", ["id", "dept"])
        .relation("dept", ["code", "head"])
        .finish()
        .unwrap()
        .into_shared();
    let mut d = Instance::empty(sc.clone());
    // key conflict on emp 1
    d.insert_named("emp", [s("1"), s("cs")]).unwrap();
    d.insert_named("emp", [s("1"), s("ee")]).unwrap();
    // clean employee
    d.insert_named("emp", [s("2"), s("cs")]).unwrap();
    // dangling: emp 3 references a department that does not exist
    d.insert_named("emp", [s("3"), s("ghost")]).unwrap();
    d.insert_named("dept", [s("cs"), s("ada")]).unwrap();
    d.insert_named("dept", [s("ee"), s("grace")]).unwrap();
    let mut ics = IcSet::default();
    ics.push(builders::functional_dependency(&sc, "emp", &[0], 1).unwrap());
    ics.push(builders::foreign_key(&sc, "emp", &[1], "dept", &[0]).unwrap());
    (sc, d, ics)
}

fn agree(d: &Instance, ics: &IcSet, q: &Query) -> BTreeSet<Tuple> {
    let direct = consistent_answers(
        d,
        ics,
        q,
        RepairConfig::default(),
        AnswerSemantics::IncludeNullAnswers,
    )
    .unwrap();
    let via_program = consistent_answers_via_program(
        d,
        ics,
        q,
        ProgramStyle::Corrected,
        AnswerSemantics::IncludeNullAnswers,
    )
    .unwrap();
    assert_eq!(direct, via_program, "engines disagree on {q:?}");
    direct.tuples
}

#[test]
fn repair_structure() {
    let (_, d, ics) = setup();
    // 2 (key choice) × 2 (delete emp 3 / insert dept(ghost, null)) = 4.
    let reps = cqa::core::repairs(&d, &ics).unwrap();
    assert_eq!(reps.len(), 4);
}

#[test]
fn join_queries() {
    let (sc, d, ics) = setup();
    // employees whose department head is certain
    let q: Query = ConjunctiveQuery::builder(&sc, "q", ["e", "h"])
        .atom("emp", [v("e"), v("dd")])
        .atom("dept", [v("dd"), v("h")])
        .finish()
        .unwrap()
        .into();
    let answers = agree(&d, &ics, &q);
    // emp 2 → cs → ada holds in every repair; emp 1's dept flips; emp 3's
    // dept row (ghost, null) has head null — a join partner, but the
    // deletion repair removes emp 3 entirely.
    assert_eq!(
        answers,
        BTreeSet::from([Tuple::new(vec![s("2"), s("ada")])])
    );
}

// negation needs the head var to avoid ranging over emp ids; rewrite:
#[test]
fn negation_queries_safe() {
    let (sc, d, ics) = setup();
    // certain department heads, with a (vacuous) negated-atom guard
    let q: Query = ConjunctiveQuery::builder(&sc, "q", ["h"])
        .atom("dept", [v("c"), v("h")])
        .not_atom("emp", [v("c"), v("c")])
        .finish()
        .unwrap()
        .into();
    // `not emp(c, c)` is true for every department (no emp row has
    // id = dept), so this reduces to certain dept heads.
    let answers = agree(&d, &ics, &q);
    assert!(answers.contains(&Tuple::new(vec![s("ada")])));
    assert!(answers.contains(&Tuple::new(vec![s("grace")])));
}

#[test]
fn builtin_queries() {
    let (sc, d, ics) = setup();
    let q: Query = ConjunctiveQuery::builder(&sc, "q", ["e"])
        .atom("emp", [v("e"), v("dd")])
        .cmp(v("e"), CmpOp::Gt, cqa::constraints::c(s("1")))
        .finish()
        .unwrap()
        .into();
    let answers = agree(&d, &ics, &q);
    // emp 2 certain; emp 3 uncertain (deleted in half the repairs).
    assert_eq!(answers, BTreeSet::from([Tuple::new(vec![s("2")])]));
}

#[test]
fn union_queries() {
    let (sc, d, ics) = setup();
    let q1 = ConjunctiveQuery::builder(&sc, "q", ["x"])
        .atom("emp", [v("x"), v("dd")])
        .finish()
        .unwrap();
    let q2 = ConjunctiveQuery::builder(&sc, "q", ["x"])
        .atom("dept", [v("x"), v("h")])
        .finish()
        .unwrap();
    let q = Query::union(vec![q1, q2]).unwrap();
    let answers = agree(&d, &ics, &q);
    // emp ids 1, 2 certain (1 keeps one row in every repair);
    // dept codes cs, ee certain; emp 3 and ghost uncertain.
    assert_eq!(
        answers,
        BTreeSet::from([
            Tuple::new(vec![s("1")]),
            Tuple::new(vec![s("2")]),
            Tuple::new(vec![s("cs")]),
            Tuple::new(vec![s("ee")]),
        ])
    );
}

#[test]
fn boolean_queries() {
    let (sc, d, ics) = setup();
    let yes: Query = ConjunctiveQuery::builder(&sc, "b", Vec::<String>::new())
        .atom("emp", [cqa::constraints::c(s("2")), v("dd")])
        .finish()
        .unwrap()
        .into();
    let direct = consistent_answers(
        &d,
        &ics,
        &yes,
        RepairConfig::default(),
        AnswerSemantics::IncludeNullAnswers,
    )
    .unwrap();
    assert!(direct.is_yes());
    let no: Query = ConjunctiveQuery::builder(&sc, "b", Vec::<String>::new())
        .atom("emp", [v("x"), cqa::constraints::c(s("ghost"))])
        .finish()
        .unwrap()
        .into();
    let direct_no = consistent_answers(
        &d,
        &ics,
        &no,
        RepairConfig::default(),
        AnswerSemantics::IncludeNullAnswers,
    )
    .unwrap();
    assert!(!direct_no.is_yes());
}

#[test]
fn null_answer_filtering_and_sql_mode() {
    let (sc, d, ics) = setup();
    // dept rows with any head value — the insertion repair adds
    // dept(ghost, null).
    let q: Query = ConjunctiveQuery::builder(&sc, "q", ["c", "h"])
        .atom("dept", [v("c"), v("h")])
        .finish()
        .unwrap()
        .into();
    let with_nulls = consistent_answers_full(
        &d,
        &ics,
        &q,
        RepairConfig::default(),
        AnswerSemantics::IncludeNullAnswers,
        QueryNullSemantics::NullAsValue,
    )
    .unwrap();
    // (ghost, null) is NOT consistent (absent from deletion repairs), so
    // both filters agree here:
    let filtered = consistent_answers_full(
        &d,
        &ics,
        &q,
        RepairConfig::default(),
        AnswerSemantics::ExcludeNullAnswers,
        QueryNullSemantics::NullAsValue,
    )
    .unwrap();
    assert_eq!(with_nulls.tuples, filtered.tuples);
    // SQL three-valued mode returns a subset of as-value answers here.
    let sql = consistent_answers_full(
        &d,
        &ics,
        &q,
        RepairConfig::default(),
        AnswerSemantics::IncludeNullAnswers,
        QueryNullSemantics::SqlThreeValued,
    )
    .unwrap();
    assert!(sql.tuples.is_subset(&with_nulls.tuples));
}

#[test]
fn repd_cqa_on_conflicting_sets() {
    // Add a NOT NULL on dept.head: conflicts with the FK's existential
    // attribute; CQA must be run under Rep_d.
    let (sc, d, mut ics) = setup();
    ics.push(builders::not_null(&sc, "dept", 1).unwrap());
    let q: Query = ConjunctiveQuery::builder(&sc, "q", ["e"])
        .atom("emp", [v("e"), v("dd")])
        .finish()
        .unwrap()
        .into();
    assert!(consistent_answers(
        &d,
        &ics,
        &q,
        RepairConfig::default(),
        AnswerSemantics::IncludeNullAnswers
    )
    .is_err());
    let repd = consistent_answers(
        &d,
        &ics,
        &q,
        RepairConfig {
            semantics: RepairSemantics::DeletionPreferring,
            ..RepairConfig::default()
        },
        AnswerSemantics::IncludeNullAnswers,
    )
    .unwrap();
    // Under Rep_d emp 3 is always deleted (no dept(ghost,·) insertion is
    // allowed), so only 1 and 2 remain certain.
    assert_eq!(
        repd.tuples,
        BTreeSet::from([Tuple::new(vec![s("1")]), Tuple::new(vec![s("2")])])
    );
}

#[test]
fn monotone_queries_sound_under_repair_count() {
    // Sanity: consistent answers ⊆ plain answers for positive queries.
    let (sc, d, ics) = setup();
    let q: Query = ConjunctiveQuery::builder(&sc, "q", ["e", "dd"])
        .atom("emp", [v("e"), v("dd")])
        .finish()
        .unwrap()
        .into();
    let consistent = agree(&d, &ics, &q);
    let plain = q.eval(&d);
    assert!(consistent.is_subset(&plain));
}
