//! Cross-strategy oracle: the parallel work-stealing search must produce
//! repair *sequences* — ordered lists of traced repairs, not just sets —
//! byte-identical to both sequential strategies, over random instances and
//! every subset of a constraint pool that includes single-column FDs,
//! composite-determinant FDs and (composite) referential ICs. Small cases
//! are additionally held to the brute-force Definition-6/7 oracle.
//!
//! Enumeration order is part of the paper-facing semantics here (the
//! pinned lexicographic order every display and test in this workspace
//! relies on), so the assertions compare full `Vec<TracedRepair>` values:
//! order, instances, and the decision traces kept through deduplication.

use cqa::constraints::{builders, v, Constraint, Ic, IcSet};
use cqa::core::{
    bruteforce, repairs_with_config, repairs_with_trace, RepairConfig, SearchStrategy,
};
use cqa::prelude::*;
use cqa::relational::testing::{env_threads, XorShift};
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a"])
        .relation("R", ["x", "y"])
        .relation("T", ["u", "v", "w"])
        .finish()
        .unwrap()
        .into_shared()
}

/// The constraint pool; subsets of it form the random IC sets. Covers the
/// shapes the parallel scheduler must not reorder: plain and composite
/// FDs, plain and composite referential ICs, a UIC and a denial.
fn pool(sc: &Schema) -> Vec<Constraint> {
    vec![
        // RIC: P(x) → ∃y R(x, y)
        Constraint::from(
            Ic::builder(sc, "ric")
                .body_atom("P", [v("x")])
                .head_atom("R", [v("x"), v("y")])
                .finish()
                .unwrap(),
        ),
        // UIC: R(x,y) → P(x)
        Constraint::from(
            Ic::builder(sc, "uic")
                .body_atom("R", [v("x"), v("y")])
                .head_atom("P", [v("x")])
                .finish()
                .unwrap(),
        ),
        // FD / key on R[1]
        Constraint::from(builders::functional_dependency(sc, "R", &[0], 1).unwrap()),
        // Composite-determinant FD: T[1,2] → T[3]
        Constraint::from(builders::functional_dependency(sc, "T", &[0, 1], 2).unwrap()),
        // Composite referential IC: T[1,2] → R[1,2]
        Constraint::from(builders::foreign_key(sc, "T", &[0, 1], "R", &[0, 1]).unwrap()),
        // denial: P(x) ∧ R(x,x) → false
        Constraint::from(
            Ic::builder(sc, "den")
                .body_atom("P", [v("x")])
                .body_atom("R", [v("x"), v("x")])
                .finish()
                .unwrap(),
        ),
    ]
}

fn value(rng: &mut XorShift) -> Value {
    match rng.below(3) {
        0 => s("c0"),
        1 => s("c1"),
        _ => Value::Null,
    }
}

fn instance(rng: &mut XorShift, sc: &Arc<Schema>) -> Instance {
    let mut d = Instance::empty(sc.clone());
    for _ in 0..rng.below(3) {
        d.insert_named("P", [value(rng)]).unwrap();
    }
    for _ in 0..rng.below(3) {
        d.insert_named("R", [value(rng), value(rng)]).unwrap();
    }
    for _ in 0..rng.below(3) {
        d.insert_named("T", [value(rng), value(rng), value(rng)])
            .unwrap();
    }
    d
}

fn subset(rng: &mut XorShift, sc: &Schema) -> IcSet {
    let mask = rng.below(64) as u8;
    pool(sc)
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, c)| c)
        .collect()
}

fn config_for(strategy: SearchStrategy) -> RepairConfig {
    RepairConfig {
        strategy,
        ..RepairConfig::default()
    }
}

#[test]
fn parallel_matches_sequential_and_oracle() {
    let sc = schema();
    let mut rng = XorShift::new(411);
    let strategies = [
        SearchStrategy::Parallel { threads: 1 },
        SearchStrategy::Parallel { threads: 2 },
        SearchStrategy::Parallel { threads: 4 },
        SearchStrategy::Parallel {
            threads: env_threads(4),
        },
        SearchStrategy::FullRescan,
    ];
    let mut checked = 0;
    let mut oracle_checked = 0;
    while checked < 40 {
        let d = instance(&mut rng, &sc);
        let ics = subset(&mut rng, &sc);
        let reference = repairs_with_trace(&d, &ics, RepairConfig::default());
        let Ok(reference) = reference else {
            continue; // conflicting set under NullBased: rejected upfront
        };
        checked += 1;
        for strategy in strategies {
            let via = repairs_with_trace(&d, &ics, config_for(strategy)).unwrap();
            assert_eq!(
                via, reference,
                "strategy {strategy:?} diverged from Incremental"
            );
        }
        // Small cases: hold every strategy to the brute-force oracle too.
        let universe = bruteforce::candidate_universe(&d, &ics);
        if universe.len() <= 14 {
            oracle_checked += 1;
            let via_oracle = bruteforce::oracle_repairs(&d, &ics);
            let instances: Vec<Instance> = reference.iter().map(|t| t.instance.clone()).collect();
            assert_eq!(instances, via_oracle, "engine family vs brute force");
        }
    }
    assert!(
        oracle_checked >= 5,
        "oracle cross-check starved: {oracle_checked} cases"
    );
}

#[test]
fn parallel_matches_sequential_on_conflict_heavy_instances() {
    // Denser instances (more interacting violations, deeper trees) with
    // the full pool active — the regime where work stealing actually
    // migrates subtrees between workers.
    let sc = schema();
    let mut rng = XorShift::new(422);
    let ics: IcSet = pool(&sc).into_iter().collect();
    for _ in 0..6 {
        let mut d = Instance::empty(sc.clone());
        for _ in 0..4 {
            d.insert_named("P", [value(&mut rng)]).unwrap();
            d.insert_named("R", [value(&mut rng), value(&mut rng)])
                .unwrap();
            d.insert_named("T", [value(&mut rng), value(&mut rng), value(&mut rng)])
                .unwrap();
        }
        let reference = repairs_with_config(&d, &ics, RepairConfig::default()).unwrap();
        assert!(!reference.is_empty());
        for threads in [2usize, 4, 8] {
            let via =
                repairs_with_config(&d, &ics, config_for(SearchStrategy::Parallel { threads }))
                    .unwrap();
            assert_eq!(via, reference, "threads={threads}");
        }
    }
}
