//! Integration tests for the cancellation/deadline governor (ISSUE 7).
//!
//! The adversarial instance is `GROUPS` primary-key conflict groups of
//! `ROWS` tuples each: every repair keeps exactly one tuple per group,
//! so there are `ROWS^GROUPS` repairs — far too many to enumerate in
//! any test-sized wall-clock budget. A correct governor turns that
//! non-termination into a prompt, typed [`CoreError::Interrupted`]
//! while leaving the database fully usable afterwards.

use cqa::core::{CoreError, InterruptPhase, RepairConfig, SearchStrategy};
use cqa::{Database, Error};
use std::time::{Duration, Instant};

const GROUPS: usize = 12;
const ROWS: usize = 3;

/// `ROWS^GROUPS` repairs behind one primary-key constraint.
fn adversarial_db() -> Database {
    let mut db = Database::from_script("CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);").unwrap();
    for g in 0..GROUPS {
        db.insert_many(
            "r",
            (0..ROWS).map(|r| [cqa::s(&format!("k{g}")), cqa::s(&format!("v{r}"))]),
        )
        .unwrap();
    }
    db
}

fn assert_interrupted(err: Error, phase: InterruptPhase) {
    match err {
        Error::Core(CoreError::Interrupted { phase: p, .. }) => assert_eq!(p, phase),
        other => panic!("expected Interrupted({phase}), got {other:?}"),
    }
}

/// A 10 ms deadline stops the sequential repair search in well under a
/// second, even though full enumeration would take effectively forever.
#[test]
fn deadline_interrupts_sequential_search_promptly() {
    let db = adversarial_db().with_deadline(Duration::from_millis(10));
    let start = Instant::now();
    let err = db.repairs().unwrap_err();
    let elapsed = start.elapsed();
    assert_interrupted(err, InterruptPhase::RepairSearch);
    assert!(
        elapsed < Duration::from_secs(1),
        "governor took {elapsed:?} to honour a 10ms deadline"
    );
}

/// The same deadline stops the work-stealing parallel pool: all workers
/// observe the trip, the scope joins, and the error is typed — no hang,
/// no panic.
#[test]
fn deadline_interrupts_parallel_search_promptly() {
    let db = adversarial_db()
        .with_config(RepairConfig {
            strategy: SearchStrategy::Parallel { threads: 4 },
            ..RepairConfig::default()
        })
        .with_deadline(Duration::from_millis(10));
    let start = Instant::now();
    let err = db.repairs().unwrap_err();
    let elapsed = start.elapsed();
    assert_interrupted(err, InterruptPhase::RepairSearch);
    assert!(
        elapsed < Duration::from_secs(1),
        "parallel governor took {elapsed:?} to honour a 10ms deadline"
    );
}

/// CQA rides on the repair search, so the deadline reaches it too.
#[test]
fn deadline_interrupts_cqa() {
    let db = adversarial_db().with_deadline(Duration::from_millis(10));
    let start = Instant::now();
    let err = db.consistent_answers("q(x) :- r(x, y).").unwrap_err();
    assert_interrupted(err, InterruptPhase::RepairSearch);
    assert!(start.elapsed() < Duration::from_secs(1));
}

/// The Π(D, IC) program route is governed across all of its stages
/// (grounding, stable-model enumeration, extraction); with 3^12 stable
/// models the trip lands in whichever stage the deadline catches.
#[test]
fn deadline_interrupts_program_route() {
    let db = adversarial_db().with_deadline(Duration::from_millis(10));
    let start = Instant::now();
    let err = db.repairs_via_program().unwrap_err();
    let elapsed = start.elapsed();
    match err {
        Error::Core(CoreError::Interrupted { .. }) => {}
        other => panic!("expected Interrupted, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(1),
        "program-route governor took {elapsed:?}"
    );
}

/// Another thread can cancel through [`Database::cancel_handle`] while a
/// search is in flight.
#[test]
fn manual_cancel_from_another_thread() {
    let db = adversarial_db();
    let handle = db.cancel_handle();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        handle.cancel();
    });
    let start = Instant::now();
    let err = db.repairs().unwrap_err();
    canceller.join().unwrap();
    assert_interrupted(err, InterruptPhase::RepairSearch);
    assert!(start.elapsed() < Duration::from_secs(2));
}

/// A trip is sticky until [`Database::reset_cancel`]; afterwards the
/// same database answers normally — the caches survived the interrupt.
#[test]
fn tripped_handle_is_sticky_until_reset() {
    let mut db = Database::from_script(
        "CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);
         INSERT INTO r VALUES ('a', 'b'), ('a', 'c');",
    )
    .unwrap();
    db.cancel_handle().cancel();
    let err = db.repairs().unwrap_err();
    assert_interrupted(err, InterruptPhase::RepairSearch);
    db.reset_cancel();
    assert_eq!(db.repairs().unwrap().len(), 2);
    assert_eq!(db.repairs_via_program().unwrap().len(), 2);
}

/// Clones share the cancel root: tripping the original's handle stops a
/// clone's in-flight search too.
#[test]
fn clones_share_the_cancel_root() {
    let db = adversarial_db();
    let clone = db.clone();
    let handle = db.cancel_handle();
    let worker = std::thread::spawn(move || clone.repairs());
    std::thread::sleep(Duration::from_millis(20));
    handle.cancel();
    let err = worker.join().unwrap().unwrap_err();
    assert_interrupted(err, InterruptPhase::RepairSearch);
}

/// A generous deadline changes nothing: governed calls return exactly
/// the ungoverned results (delegation is behaviour-preserving).
#[test]
fn generous_deadline_is_transparent() {
    let db = Database::from_script(
        "CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);
         CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
         INSERT INTO r VALUES ('a', 'b'), ('a', 'c');
         INSERT INTO s VALUES ('e', 'f'), (NULL, 'a');",
    )
    .unwrap();
    let baseline_repairs = db.repairs().unwrap();
    let baseline_answers = db.consistent_answers("q(v) :- s(u, v).").unwrap();
    let governed = db.clone().with_deadline(Duration::from_secs(120));
    assert_eq!(governed.repairs().unwrap(), baseline_repairs);
    assert_eq!(governed.repairs_via_program().unwrap(), baseline_repairs);
    assert_eq!(
        governed.consistent_answers("q(v) :- s(u, v).").unwrap(),
        baseline_answers
    );
    assert!(governed
        .consistent_answer_boolean("b() :- s(u, 'a').")
        .unwrap());
}

/// An interrupt reports how many sound partial results existed; for the
/// repair search that is the candidate count, which stays below the full
/// repair count when the trip lands mid-search.
#[test]
fn interrupt_reports_partial_progress() {
    let db = adversarial_db().with_deadline(Duration::from_millis(50));
    match db.repairs().unwrap_err() {
        Error::Core(CoreError::Interrupted { phase, partial }) => {
            assert_eq!(phase, InterruptPhase::RepairSearch);
            assert!(
                partial < ROWS.pow(GROUPS as u32),
                "partial={partial} should undercount the 3^12 repairs"
            );
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}
