//! End-to-end reproduction of every worked example in Bravo & Bertossi,
//! *Semantically Correct Query Answers in the Presence of Null Values*
//! (EDBT 2006). One test per example (examples that share a setup are
//! grouped), asserting the exact artefacts the paper states: relevant
//! attribute sets, consistency verdicts, repair sets, stable models,
//! graph shapes, HCF conditions.

use cqa::constraints::alt::{satisfies_alt, AltSemantics};
use cqa::constraints::classify::{classify, IcClass};
use cqa::constraints::{
    builders, c, graph, insertion_allowed, is_consistent, satisfies_via_projection, v,
};
use cqa::core::classic;
use cqa::prelude::*;
use cqa::relational::display::instance_set;
use std::collections::BTreeSet;
use std::sync::Arc;

fn inst(sc: &Arc<Schema>, rows: &[(&str, Vec<Value>)]) -> Instance {
    let mut d = Instance::empty(sc.clone());
    for (rel, vals) in rows {
        d.insert_named(rel, Tuple::new(vals.clone())).unwrap();
    }
    d
}

fn sets(repairs: &[Instance]) -> BTreeSet<String> {
    repairs.iter().map(instance_set).collect()
}

fn expect(items: &[&str]) -> BTreeSet<String> {
    items.iter().map(|s| s.to_string()).collect()
}

/// Example 1: the three syntactic classes build and classify.
#[test]
fn example01_constraint_classes() {
    let sc = Schema::builder()
        .relation("P", ["a", "b"])
        .relation("R", ["x", "y", "z"])
        .relation("S", ["s"])
        .relation("R2", ["u", "v"])
        .finish()
        .unwrap();
    // (a) universal: P(x,y) ∧ R(y,z,w) → S(x) ∨ z ≠ 2 ∨ w ≤ y
    let a = Ic::builder(&sc, "a")
        .body_atom("P", [v("x"), v("y")])
        .body_atom("R", [v("y"), v("z"), v("w")])
        .head_atom("S", [v("x")])
        .builtin(v("z"), CmpOp::Neq, c(2))
        .builtin(v("w"), CmpOp::Leq, v("y"))
        .finish()
        .unwrap();
    assert_eq!(classify(&a), IcClass::Universal);
    // (b) referential: P(x,y) → ∃z R(x,y,z)
    let b = Ic::builder(&sc, "b")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("R", [v("x"), v("y"), v("z")])
        .finish()
        .unwrap();
    assert_eq!(classify(&b), IcClass::Referential);
    // (c) disjunctive existential: S(x) → ∃yz (R2(x,y) ∨ R(x,y,z))
    let cc = Ic::builder(&sc, "c")
        .body_atom("S", [v("x")])
        .head_atom("R2", [v("x"), v("y")])
        .head_atom("R", [v("x"), v("y2"), v("z")])
        .finish()
        .unwrap();
    assert_eq!(classify(&cc), IcClass::GeneralExistential);
}

/// Examples 2 and 3: dependency graph, contraction, RIC-acyclicity.
#[test]
fn example02_03_dependency_graphs() {
    let sc = Schema::builder()
        .relation("S", ["s"])
        .relation("Q", ["q"])
        .relation("R", ["r"])
        .relation("T", ["x", "y"])
        .finish()
        .unwrap();
    let ic1 = Ic::builder(&sc, "ic1")
        .body_atom("S", [v("x")])
        .head_atom("Q", [v("x")])
        .finish()
        .unwrap();
    let ic2 = Ic::builder(&sc, "ic2")
        .body_atom("Q", [v("x")])
        .head_atom("R", [v("x")])
        .finish()
        .unwrap();
    let ic3 = Ic::builder(&sc, "ic3")
        .body_atom("Q", [v("x")])
        .head_atom("T", [v("x"), v("y")])
        .finish()
        .unwrap();
    let mut ics = IcSet::new([
        Constraint::from(ic1),
        Constraint::from(ic2),
        Constraint::from(ic3),
    ]);
    let g = graph::dependency_graph(&ics);
    assert_eq!(g.vertices.len(), 4);
    assert_eq!(g.edges.len(), 3);
    let gc = graph::contracted_dependency_graph(&ics);
    assert_eq!(gc.components.len(), 2); // {S,Q,R} and {T}
    assert!(graph::is_ric_acyclic(&ics));

    // Example 3's extension: T(x,y) → R(y) merges everything; cyclic.
    let ic4 = Ic::builder(&sc, "ic4")
        .body_atom("T", [v("x"), v("y")])
        .head_atom("R", [v("y")])
        .finish()
        .unwrap();
    ics.push(ic4);
    let gc2 = graph::contracted_dependency_graph(&ics);
    assert_eq!(gc2.components.len(), 1);
    assert!(!graph::is_ric_acyclic(&ics));
}

/// Example 4: the four-way semantics comparison on D = {P(a,b,null)}.
#[test]
fn example04_semantics_matrix() {
    let sc = Schema::builder()
        .relation("P", ["a", "b", "c"])
        .relation("R", ["x", "y"])
        .finish()
        .unwrap();
    let psi1 = Ic::builder(&sc, "psi1")
        .body_atom("P", [v("x"), v("y"), v("z")])
        .head_atom("R", [v("y"), v("z")])
        .finish()
        .unwrap();
    let psi2 = Ic::builder(&sc, "psi2")
        .body_atom("P", [v("x"), v("y"), v("z")])
        .head_atom("R", [v("x"), v("y")])
        .finish()
        .unwrap();
    let sc = Arc::new(sc);
    let d = inst(&sc, &[("P", vec![s("a"), s("b"), null()])]);
    // ψ1 verdicts: (a) BB04 ✓, (b) simple ✓, (c) partial ✗, (d) full ✗.
    assert!(satisfies_alt(&d, &psi1, AltSemantics::Bb04));
    assert!(satisfies_alt(&d, &psi1, AltSemantics::SimpleMatch));
    assert!(!satisfies_alt(&d, &psi1, AltSemantics::PartialMatch));
    assert!(!satisfies_alt(&d, &psi1, AltSemantics::FullMatch));
    assert!(satisfies_via_projection(&d, &psi1)); // |=_N agrees with simple
                                                  // ψ2: only BB04 accepts (the null is not in a relevant attribute).
    assert!(satisfies_alt(&d, &psi2, AltSemantics::Bb04));
    assert!(!satisfies_alt(&d, &psi2, AltSemantics::SimpleMatch));
    assert!(!satisfies_via_projection(&d, &psi2));
}

/// Example 5: the Course/Exp foreign key under simple match.
#[test]
fn example05_course_exp_foreign_key() {
    let sc = Schema::builder()
        .relation("Course", ["Code", "ID", "Term"])
        .relation("Exp", ["ID", "Code", "Times"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("Course", vec![s("CS27"), s("21"), s("W04")]),
            ("Course", vec![s("CS18"), s("34"), null()]),
            ("Course", vec![s("CS50"), null(), s("W05")]),
            ("Exp", vec![s("21"), s("CS27"), s("3")]),
            ("Exp", vec![s("34"), s("CS18"), null()]),
            ("Exp", vec![s("45"), s("CS32"), s("2")]),
        ],
    );
    let fk = builders::foreign_key(&sc, "Course", &[1, 0], "Exp", &[0, 1]).unwrap();
    let ics = IcSet::new([Constraint::from(fk.clone())]);
    // DB2 accepts this database (nulls in Term/Times are irrelevant;
    // Course(CS50, null, W05) has a null referencing attribute).
    assert!(is_consistent(&d, &ics));
    // Inserting (CS41, 18, null) is rejected: both referencing attributes
    // non-null, no matching Exp row.
    assert!(!insertion_allowed(
        &d,
        &ics,
        "Course",
        [s("CS41"), s("18"), null()]
    ));
    // Partial and full match would NOT accept the original database:
    assert!(!satisfies_alt(&d, &fk, AltSemantics::PartialMatch));
    assert!(!satisfies_alt(&d, &fk, AltSemantics::FullMatch));
}

/// Example 6: the salary check constraint.
#[test]
fn example06_salary_check() {
    let sc = Schema::builder()
        .relation("Emp", ["ID", "Name", "Salary"])
        .finish()
        .unwrap()
        .into_shared();
    let chk = builders::check_column(&sc, "Emp", 2, CmpOp::Gt, 100).unwrap();
    let ics = IcSet::new([Constraint::from(chk)]);
    let d = inst(
        &sc,
        &[
            ("Emp", vec![i(32), null(), i(1000)]),
            ("Emp", vec![i(41), s("Paul"), null()]),
        ],
    );
    assert!(is_consistent(&d, &ics));
    assert!(!insertion_allowed(&d, &ics, "Emp", [i(32), null(), i(50)]));
}

/// Example 7: set semantics — duplicate rows collapse, and the FD
/// encoding of a key is satisfied by a single (collapsed) row.
#[test]
fn example07_bag_vs_set() {
    let sc = Schema::builder()
        .relation("P", ["A", "B"])
        .finish()
        .unwrap()
        .into_shared();
    let mut d = Instance::empty(sc.clone());
    assert!(d.insert_named("P", [s("a"), s("b")]).unwrap());
    assert!(!d.insert_named("P", [s("a"), s("b")]).unwrap()); // collapses
    assert_eq!(d.len(), 1);
    let fd = builders::functional_dependency(&sc, "P", &[0], 1).unwrap();
    assert!(is_consistent(&d, &IcSet::new([Constraint::from(fd)])));
}

/// Example 8: the multi-row age check with a null age.
#[test]
fn example08_person_age_check() {
    let sc = Schema::builder()
        .relation("Person", ["Name", "Dad", "Mom", "Age"])
        .finish()
        .unwrap()
        .into_shared();
    let chk = Ic::builder(&sc, "age")
        .body_atom("Person", [v("x"), v("y"), v("z"), v("w")])
        .body_atom("Person", [v("z"), v("s"), v("t"), v("u")])
        .builtin(v("u"), CmpOp::Gt, v("w"))
        .finish()
        .unwrap();
    // relevant attrs: Name, Mom, Age (the paper's statement)
    assert_eq!(
        chk.relevant().display(&sc),
        "{Person[1], Person[3], Person[4]}"
    );
    let ics = IcSet::new([Constraint::from(chk)]);
    let d = inst(
        &sc,
        &[
            ("Person", vec![s("Lee"), s("Rod"), s("Mary"), i(27)]),
            ("Person", vec![s("Rod"), s("Joe"), s("Tess"), i(55)]),
            ("Person", vec![s("Mary"), s("Adam"), s("Ann"), null()]),
        ],
    );
    assert!(is_consistent(&d, &ics));
}

/// Example 9: nulls in referenced attributes are not witnesses.
#[test]
fn example09_referenced_null_no_witness() {
    let sc = Schema::builder()
        .relation("Course", ["Code", "Term", "ID"])
        .relation("Employee", ["Term", "ID"])
        .finish()
        .unwrap()
        .into_shared();
    let uic = Ic::builder(&sc, "ref")
        .body_atom("Course", [v("x"), v("y"), v("z")])
        .head_atom("Employee", [v("y"), v("z")])
        .finish()
        .unwrap();
    let d = inst(
        &sc,
        &[
            ("Course", vec![s("CS18"), s("W04"), i(34)]),
            ("Employee", vec![s("W04"), null()]),
        ],
    );
    let ics = IcSet::new([Constraint::from(uic.clone())]);
    assert!(!is_consistent(&d, &ics));
    assert!(!satisfies_alt(&d, &uic, AltSemantics::LeveneLoizou));
}

/// Example 10: relevant attributes and projections of ψ and γ.
#[test]
fn example10_relevant_attributes() {
    let sc = Schema::builder()
        .relation("P", ["A", "B", "C"])
        .relation("R", ["A", "B"])
        .finish()
        .unwrap();
    let psi = Ic::builder(&sc, "psi")
        .body_atom("P", [v("x"), v("y"), v("z")])
        .head_atom("R", [v("x"), v("y")])
        .finish()
        .unwrap();
    assert_eq!(psi.relevant().display(&sc), "{P[1], P[2], R[1], R[2]}");
    let gamma = Ic::builder(&sc, "gamma")
        .body_atom("P", [v("x"), v("y"), v("z")])
        .body_atom("R", [v("z"), v("w")])
        .head_atom("R", [v("x"), v("vv")])
        .builtin(v("w"), CmpOp::Gt, c(3))
        .finish()
        .unwrap();
    assert_eq!(gamma.relevant().display(&sc), "{P[1], P[3], R[1], R[2]}");
    // And D^A(ψ) projects P onto its first two columns:
    let sc = Arc::new(sc);
    let d = inst(
        &sc,
        &[
            ("P", vec![s("a"), s("b"), s("a")]),
            ("P", vec![s("b"), s("c"), s("a")]),
        ],
    );
    let p = sc.rel_id("P").unwrap();
    let projected = psi.relevant().project_relation(&d, p);
    assert_eq!(projected.len(), 2);
    assert!(projected.contains(&Tuple::new(vec![s("a"), s("b")])));
}

/// Example 11: the consistent database with strategic nulls; adding
/// P(f, d, null) breaks constraint (a).
#[test]
fn example11_consistency_and_breaking_insert() {
    let sc = Schema::builder()
        .relation("P", ["A", "B", "C"])
        .relation("R", ["D", "E"])
        .relation("T", ["F"])
        .finish()
        .unwrap()
        .into_shared();
    let a = Ic::builder(&sc, "a")
        .body_atom("P", [v("x"), v("y"), v("z")])
        .head_atom("R", [v("x"), v("y")])
        .finish()
        .unwrap();
    let b = Ic::builder(&sc, "b")
        .body_atom("T", [v("x")])
        .head_atom("P", [v("x"), v("y"), v("z")])
        .finish()
        .unwrap();
    let ics = IcSet::new([Constraint::from(a), Constraint::from(b)]);
    let d = inst(
        &sc,
        &[
            ("P", vec![s("a"), s("d"), s("e")]),
            ("P", vec![s("b"), null(), s("g")]),
            ("R", vec![s("a"), s("d")]),
            ("T", vec![s("b")]),
        ],
    );
    assert!(is_consistent(&d, &ics));
    assert!(!insertion_allowed(&d, &ics, "P", [s("f"), s("d"), null()]));
}

/// Example 12: joins through null (null as an ordinary constant in ψ^N).
#[test]
fn example12_null_joins() {
    let sc = Schema::builder()
        .relation("P1", ["A", "B", "C"])
        .relation("P2", ["D", "E"])
        .relation("Q", ["F", "G", "H"])
        .finish()
        .unwrap()
        .into_shared();
    let psi = Ic::builder(&sc, "psi")
        .body_atom("P1", [v("x"), v("y"), v("w")])
        .body_atom("P2", [v("y"), v("z")])
        .head_atom("Q", [v("x"), v("z"), v("u")])
        .finish()
        .unwrap();
    let d = inst(
        &sc,
        &[
            ("P1", vec![s("a"), s("b"), s("c")]),
            ("P1", vec![s("d"), null(), s("c")]),
            ("P1", vec![s("b"), s("e"), null()]),
            ("P1", vec![null(), s("b"), s("b")]),
            ("P2", vec![s("b"), s("a")]),
            ("P2", vec![s("e"), s("c")]),
            ("P2", vec![s("d"), null()]),
            ("P2", vec![null(), s("b")]),
            ("Q", vec![s("a"), s("a"), s("c")]),
            ("Q", vec![s("b"), null(), s("c")]),
            ("Q", vec![s("b"), s("c"), s("d")]),
            ("Q", vec![null(), s("c"), s("a")]),
        ],
    );
    let ics = IcSet::new([Constraint::from(psi.clone())]);
    assert!(is_consistent(&d, &ics));
    assert!(satisfies_via_projection(&d, &psi));
}

/// Example 13: a repeated existential variable satisfied by a null witness.
#[test]
fn example13_repeated_existential_null_witness() {
    let sc = Schema::builder()
        .relation("P", ["A", "B"])
        .relation("Q", ["X", "Y", "Z"])
        .finish()
        .unwrap()
        .into_shared();
    let psi = Ic::builder(&sc, "psi")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("Q", [v("x"), v("z"), v("z")])
        .finish()
        .unwrap();
    assert_eq!(psi.relevant().display(&sc), "{P[1], Q[1], Q[2], Q[3]}");
    let d = inst(
        &sc,
        &[
            ("P", vec![s("a"), s("b")]),
            ("P", vec![null(), s("c")]),
            ("Q", vec![s("a"), null(), null()]),
        ],
    );
    assert!(is_consistent(&d, &IcSet::new([Constraint::from(psi)])));
}

/// Examples 14 and 15: classic repairs (domain-parameterised) vs the two
/// null-based repairs.
#[test]
fn example14_15_classic_vs_null_repairs() {
    let sc = Schema::builder()
        .relation("Course", ["ID", "Code"])
        .relation("Student", ["ID", "Name"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("Course", vec![s("21"), s("C15")]),
            ("Course", vec![s("34"), s("C18")]),
            ("Student", vec![s("21"), s("Ann")]),
            ("Student", vec![s("45"), s("Paul")]),
        ],
    );
    let ric = builders::foreign_key(&sc, "Course", &[0], "Student", &[0]).unwrap();
    let ics = IcSet::new([Constraint::from(ric)]);
    // Example 14: classic repairs — one deletion plus one per domain value.
    for k in [2usize, 5] {
        let domain: Vec<Value> = (0..k).map(|j| s(&format!("mu{j}"))).collect();
        let classic_reps = classic::repairs_with_domain(&d, &ics, &domain, 1 << 20).unwrap();
        assert_eq!(classic_reps.len(), k + 1);
    }
    // Example 15: exactly two null-based repairs.
    let reps = repairs(&d, &ics).unwrap();
    assert_eq!(
        sets(&reps),
        expect(&[
            "{Course(21, C15), Student(21, Ann), Student(45, Paul)}",
            "{Course(21, C15), Course(34, C18), Student(21, Ann), Student(34, null), Student(45, Paul)}",
        ])
    );
}

/// Example 16: two repairs, shown pairwise ≤_D-incomparable.
#[test]
fn example16_two_repairs() {
    let sc = Schema::builder()
        .relation("Q", ["x", "y"])
        .relation("P", ["a", "b"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[("Q", vec![s("a"), s("b")]), ("P", vec![s("a"), s("c")])],
    );
    let psi1 = Ic::builder(&sc, "psi1")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("Q", [v("x"), v("z")])
        .finish()
        .unwrap();
    let psi2 = Ic::builder(&sc, "psi2")
        .body_atom("Q", [v("x"), v("y")])
        .builtin(v("y"), CmpOp::Neq, c(s("b")))
        .finish()
        .unwrap();
    let ics = IcSet::new([Constraint::from(psi1), Constraint::from(psi2)]);
    let reps = repairs(&d, &ics).unwrap();
    assert_eq!(sets(&reps), expect(&["{}", "{Q(a, null), P(a, c)}"]));
    assert!(!cqa::core::leq_d(&d, &reps[0], &reps[1]).unwrap());
    assert!(!cqa::core::leq_d(&d, &reps[1], &reps[0]).unwrap());
}

/// Example 17: R(b, null) is the insertion repair; R(b, d) is dominated.
#[test]
fn example17_null_beats_value() {
    let sc = Schema::builder()
        .relation("P", ["a", "b"])
        .relation("R", ["x", "y"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("P", vec![s("a"), null()]),
            ("P", vec![s("b"), s("c")]),
            ("R", vec![s("a"), s("b")]),
        ],
    );
    let ric = Ic::builder(&sc, "ric")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("R", [v("x"), v("z")])
        .finish()
        .unwrap();
    let ics = IcSet::new([Constraint::from(ric)]);
    let reps = repairs(&d, &ics).unwrap();
    assert_eq!(
        sets(&reps),
        expect(&[
            "{P(a, null), P(b, c), R(a, b), R(b, null)}",
            "{P(a, null), R(a, b)}",
        ])
    );
    // D3 (with R(b,d)) is consistent but strictly dominated:
    let d3 = d.with_atom(&cqa::relational::DatabaseAtom::new(
        sc.rel_id("R").unwrap(),
        Tuple::new(vec![s("b"), s("d")]),
    ));
    assert!(is_consistent(&d3, &ics));
    assert!(cqa::core::lt_d(&d, &reps[0], &d3).unwrap());
}

/// Example 18: the RIC-cyclic set with four repairs.
#[test]
fn example18_cyclic_four_repairs() {
    let sc = Schema::builder()
        .relation("P", ["a", "b"])
        .relation("T", ["t"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("P", vec![s("a"), s("b")]),
            ("P", vec![null(), s("a")]),
            ("T", vec![s("c")]),
        ],
    );
    let uic = Ic::builder(&sc, "uic")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("T", [v("x")])
        .finish()
        .unwrap();
    let ric = Ic::builder(&sc, "ric")
        .body_atom("T", [v("x")])
        .head_atom("P", [v("y"), v("x")])
        .finish()
        .unwrap();
    let ics = IcSet::new([Constraint::from(uic), Constraint::from(ric)]);
    assert!(!graph::is_ric_acyclic(&ics)); // cyclic — CQA still decidable
    let reps = repairs(&d, &ics).unwrap();
    assert_eq!(
        sets(&reps),
        expect(&[
            "{P(null, a), P(null, c), P(a, b), T(a), T(c)}",
            "{P(null, a), P(a, b), T(a)}",
            "{P(null, a), P(null, c), T(c)}",
            "{P(null, a)}",
        ])
    );
}

/// Example 19: key + foreign key + NOT NULL; four repairs.
#[test]
fn example19_four_repairs() {
    let sc = Schema::builder()
        .relation("R", ["X", "Y"])
        .relation("S", ["U", "V"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("R", vec![s("a"), s("b")]),
            ("R", vec![s("a"), s("c")]),
            ("S", vec![s("e"), s("f")]),
            ("S", vec![null(), s("a")]),
        ],
    );
    let mut ics = IcSet::default();
    ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
    ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
    ics.push(builders::not_null(&sc, "R", 0).unwrap());
    assert!(ics.is_non_conflicting());
    let reps = repairs(&d, &ics).unwrap();
    assert_eq!(
        sets(&reps),
        expect(&[
            "{R(a, b), R(f, null), S(null, a), S(e, f)}",
            "{R(a, c), R(f, null), S(null, a), S(e, f)}",
            "{R(a, b), S(null, a)}",
            "{R(a, c), S(null, a)}",
        ])
    );
}

/// Example 20: a conflicting NNC; Rep_d prefers the deletion repair.
#[test]
fn example20_conflicting_nnc_repd() {
    let sc = Schema::builder()
        .relation("P", ["a"])
        .relation("Q", ["x", "y"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("P", vec![s("a")]),
            ("P", vec![s("b")]),
            ("Q", vec![s("b"), s("c")]),
        ],
    );
    let ric = Ic::builder(&sc, "ric")
        .body_atom("P", [v("x")])
        .head_atom("Q", [v("x"), v("y")])
        .finish()
        .unwrap();
    let mut ics = IcSet::default();
    ics.push(ric);
    ics.push(builders::not_null(&sc, "Q", 1).unwrap());
    assert_eq!(ics.conflicting_pairs(), vec![(0, 1)]);
    // Null-based semantics refuses:
    assert!(repairs(&d, &ics).is_err());
    // Rep_d gives the deletion repair only:
    let reps = cqa::core::repairs_with_config(
        &d,
        &ics,
        RepairConfig {
            semantics: RepairSemantics::DeletionPreferring,
            ..RepairConfig::default()
        },
    )
    .unwrap();
    assert_eq!(sets(&reps), expect(&["{P(b), Q(b, c)}"]));
    // Classic semantics over an explicit domain recovers the µ-family:
    let domain: Vec<Value> = vec![s("m1"), s("m2"), s("m3")];
    let classic_reps = classic::repairs_with_domain(&d, &ics, &domain, 1 << 20).unwrap();
    assert_eq!(classic_reps.len(), 4); // deletion + 3 µ-insertions
}

/// Examples 19/21/23: the repair program, its four stable models, and the
/// Theorem-4 correspondence (engine == program).
#[test]
fn example21_23_repair_program_stable_models() {
    let sc = Schema::builder()
        .relation("R", ["X", "Y"])
        .relation("S", ["U", "V"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("R", vec![s("a"), s("b")]),
            ("R", vec![s("a"), s("c")]),
            ("S", vec![s("e"), s("f")]),
            ("S", vec![null(), s("a")]),
        ],
    );
    let mut ics = IcSet::default();
    ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
    ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
    ics.push(builders::not_null(&sc, "R", 0).unwrap());
    for style in [ProgramStyle::PaperExact, ProgramStyle::Corrected] {
        let program = cqa::core::repair_program(&d, &ics, style).unwrap();
        let gp = cqa::asp::ground(&program);
        let models = cqa::asp::stable_models(&gp);
        assert_eq!(models.len(), 4, "{style:?}");
        let via_program = cqa::core::repairs_via_program(&d, &ics, style).unwrap();
        let via_engine = repairs(&d, &ics).unwrap();
        assert_eq!(via_program, via_engine, "{style:?}");
    }
}

/// Example 22: the Q′/Q″ partition expansion — 2² = 4 rules for a
/// two-atom disjunctive head.
#[test]
fn example22_partition_expansion() {
    let sc = Schema::builder()
        .relation("P", ["A", "B"])
        .relation("R", ["X"])
        .relation("S", ["Y"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[("P", vec![s("a"), s("b")]), ("P", vec![s("c"), null()])],
    );
    let uic = Ic::builder(&sc, "uic")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("R", [v("x")])
        .head_atom("S", [v("y")])
        .finish()
        .unwrap();
    let mut ics = IcSet::default();
    ics.push(uic);
    ics.push(builders::not_null(&sc, "P", 1).unwrap());
    let program = cqa::core::repair_program(&d, &ics, ProgramStyle::PaperExact).unwrap();
    let text = program.to_string();
    let partition_rules = text
        .lines()
        .filter(|l| l.contains("P_fa(x") && l.contains("R_ta("))
        .count();
    assert_eq!(partition_rules, 4);
}

/// Example 24 + Theorem 5: bilateral predicates and the HCF condition;
/// verified against the ground program.
#[test]
fn example24_bilateral_and_hcf() {
    let sc = Schema::builder()
        .relation("T", ["t"])
        .relation("R", ["a", "b"])
        .relation("S", ["u", "v"])
        .finish()
        .unwrap()
        .into_shared();
    let ric = Ic::builder(&sc, "ric")
        .body_atom("T", [v("x")])
        .head_atom("R", [v("x"), v("y")])
        .finish()
        .unwrap();
    let uic = Ic::builder(&sc, "uic")
        .body_atom("S", [v("x"), v("y")])
        .head_atom("T", [v("x")])
        .finish()
        .unwrap();
    let ics = IcSet::new([Constraint::from(ric), Constraint::from(uic)]);
    let bilateral = graph::bilateral_predicates(&ics);
    assert_eq!(bilateral.len(), 1);
    assert!(bilateral.contains(&sc.rel_id("T").unwrap()));
    assert!(graph::theorem5_hcf_condition(&ics));
    // The ground repair program is indeed HCF, and shifting preserves its
    // stable models (Section 6).
    let d = inst(&sc, &[("S", vec![s("1"), s("2")]), ("T", vec![s("9")])]);
    let program = cqa::core::repair_program(&d, &ics, ProgramStyle::Corrected).unwrap();
    let gp = cqa::asp::ground(&program);
    assert!(cqa::asp::is_hcf(&gp));
    let shifted = cqa::asp::shift(&gp).unwrap();
    assert!(shifted.is_normal());
    assert_eq!(
        cqa::asp::stable_models(&gp),
        cqa::asp::stable_models(&shifted)
    );
    // Counterexample from the text after Theorem 5: P(x,y) → P(y,x) fails
    // the syntactic condition.
    let sc2 = Schema::builder()
        .relation("P", ["a", "b"])
        .finish()
        .unwrap();
    let sym = Ic::builder(&sc2, "sym")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("P", [v("y"), v("x")])
        .finish()
        .unwrap();
    assert!(!graph::theorem5_hcf_condition(&IcSet::new([
        Constraint::from(sym)
    ])));
}

/// Proposition 1: repairs stay within adom(D) ∪ const(IC) ∪ {null}, and
/// the repair set is finite and non-empty.
#[test]
fn proposition1_active_domain_containment() {
    let sc = Schema::builder()
        .relation("R", ["X", "Y"])
        .relation("S", ["U", "V"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("R", vec![s("a"), s("b")]),
            ("R", vec![s("a"), s("c")]),
            ("S", vec![s("e"), s("f")]),
        ],
    );
    let mut ics = IcSet::default();
    ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
    ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
    let reps = repairs(&d, &ics).unwrap();
    assert!(!reps.is_empty());
    let mut allowed = d.active_domain();
    allowed.extend(ics.constants());
    allowed.insert(Value::Null);
    for r in &reps {
        for value in r.active_domain() {
            assert!(allowed.contains(&value), "{value} escaped the bound");
        }
    }
}
