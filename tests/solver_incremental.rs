//! Oracle suite for the incremental stable-model solver (ISSUE 8).
//!
//! [`resolve_on_state`] carries a [`SolverState`] — per-partition model
//! cache, premise-tagged learned clauses, warm heuristics — across
//! reground deltas. None of that state may ever be observable in the
//! answer: after ANY churn sequence, resolving on the long-lived state
//! must equal resolving on a fresh state, which in turn must equal the
//! monolithic (unpartitioned) enumeration over the same ground program.
//! The sweep runs at thread counts {1, `CQA_TEST_THREADS`} so the CI
//! matrix exercises both the sequential path (portfolio minimality +
//! warm-start chaining) and the partition fan-out.
//!
//! Randomness is the workspace's deterministic [`XorShift`]; the
//! instance/constraint generators mirror `engine_vs_program.rs` so the
//! solver sees the same Definition-9 shapes the grounder oracle pins.

use cqa::asp::{resolve_on_state, stable_models_with, GroundingState, SolveOptions, SolverState};
use cqa::constraints::{builders, graph, v, Constraint, Ic, IcSet};
use cqa::core::{repair_program, ProgramStyle};
use cqa::prelude::*;
use cqa::relational::testing::{env_threads, XorShift};
use cqa::CancelToken;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a"])
        .relation("R", ["x", "y"])
        .relation("T", ["t", "u", "w"])
        .finish()
        .unwrap()
        .into_shared()
}

/// The same 6-constraint pool `engine_vs_program.rs` sweeps: RIC, UIC,
/// single-column FD, composite-determinant FD, NNC and a denial.
fn pool(sc: &Schema) -> Vec<Constraint> {
    vec![
        Constraint::from(
            Ic::builder(sc, "ric")
                .body_atom("P", [v("x")])
                .head_atom("R", [v("x"), v("y")])
                .finish()
                .unwrap(),
        ),
        Constraint::from(
            Ic::builder(sc, "uic")
                .body_atom("T", [v("x"), v("y"), v("z")])
                .head_atom("P", [v("x")])
                .finish()
                .unwrap(),
        ),
        Constraint::from(builders::functional_dependency(sc, "R", &[0], 1).unwrap()),
        Constraint::from(builders::functional_dependency(sc, "T", &[0, 1], 2).unwrap()),
        Constraint::from(builders::not_null(sc, "P", 0).unwrap()),
        Constraint::from(
            Ic::builder(sc, "den")
                .body_atom("T", [v("x"), v("y"), v("z")])
                .body_atom("R", [v("x"), v("x")])
                .finish()
                .unwrap(),
        ),
    ]
}

fn value(rng: &mut XorShift) -> Value {
    match rng.below(3) {
        0 => s("c0"),
        1 => s("c1"),
        _ => Value::Null,
    }
}

fn instance(rng: &mut XorShift, sc: &Arc<Schema>) -> Instance {
    let mut d = Instance::empty(sc.clone());
    for _ in 0..rng.below(3) {
        d.insert_named("P", [value(rng)]).unwrap();
    }
    for _ in 0..rng.below(3) {
        d.insert_named("R", [value(rng), value(rng)]).unwrap();
    }
    for _ in 0..rng.below(2) {
        d.insert_named("T", [value(rng), value(rng), value(rng)])
            .unwrap();
    }
    d
}

/// Random RIC-acyclic subset of the pool (resampling until acyclic).
fn acyclic_subset(rng: &mut XorShift, sc: &Schema) -> IcSet {
    loop {
        let mask = rng.below(64) as u8;
        let ics: IcSet = pool(sc)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        if graph::is_ric_acyclic(&ics) {
            return ics;
        }
    }
}

/// A fresh atom for the delta stream: unique constants so insertions are
/// genuinely new, plus occasional null/shared values to hit the guard and
/// patch paths.
fn delta_atom(rng: &mut XorShift, round: usize, step: usize) -> (&'static str, Vec<Value>) {
    let fresh = |tag: &str| s(&format!("{tag}{round}_{step}"));
    match rng.below(4) {
        0 => (
            "P",
            vec![if rng.chance(1, 4) { null() } else { fresh("p") }],
        ),
        1 => ("R", vec![fresh("r"), value(rng)]),
        2 => ("T", vec![fresh("t"), value(rng), value(rng)]),
        _ => ("R", vec![value(rng), value(rng)]),
    }
}

/// One random fact delta against a live grounding state: removal of an
/// existing fact 1 time in 4 (the DRed + retraction-log path), insertion
/// otherwise (the seminaive worklist path).
fn churn(state: &mut GroundingState, rng: &mut XorShift, round: usize, step: usize) {
    if rng.chance(1, 4) {
        let facts = state.program().facts().to_vec();
        if let Some((pred, args)) = facts.get(rng.below(facts.len().max(1))).cloned() {
            state.remove_facts([(pred, args)]);
            return;
        }
    }
    let (pred, args) = delta_atom(rng, round, step);
    state.add_fact_named(pred, args).unwrap();
}

#[test]
fn delta_aware_resolve_equals_fresh_resolve_under_churn() {
    // The core soundness oracle for learned-clause reuse, tombstoning,
    // model caching and warm-start: a solver state dragged through an
    // arbitrary churn history answers exactly like one born this instant.
    let sc = schema();
    let mut rng = XorShift::new(501);
    let cancel = CancelToken::never();
    let thread_counts = [1, env_threads(4)];
    for round in 0..10 {
        let d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        for style in [ProgramStyle::Corrected, ProgramStyle::PaperExact] {
            let program = repair_program(&d, &ics, style).unwrap();
            let mut state = GroundingState::new(&program);
            let mut live = SolverState::new();
            for step in 0..6 {
                churn(&mut state, &mut rng, round, step);
                for &threads in &thread_counts {
                    let opts = SolveOptions { threads };
                    let via_live = resolve_on_state(&state, &mut live, opts, &cancel).unwrap();
                    let via_fresh =
                        resolve_on_state(&state, &mut SolverState::new(), opts, &cancel).unwrap();
                    assert_eq!(
                        via_live, via_fresh,
                        "round {round}, step {step}, {style:?}, threads {threads}"
                    );
                }
            }
            // The long-lived state must actually have exercised the cache
            // (every second resolve at the other thread count re-answers
            // identical partitions), not vacuously agreed.
            assert!(live.stats().partition_hits > 0, "round {round}, {style:?}");
        }
    }
}

#[test]
fn partitioned_resolve_equals_monolithic_over_constraint_pool() {
    // The splitting-theorem oracle at integration scale: per-component
    // solving + cartesian combination must reproduce the monolithic
    // enumeration over every repair-program shape the pool generates,
    // at both CI thread counts.
    let sc = schema();
    let mut rng = XorShift::new(502);
    let cancel = CancelToken::never();
    let thread_counts = [1, env_threads(4)];
    for round in 0..16 {
        let d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        for style in [ProgramStyle::Corrected, ProgramStyle::PaperExact] {
            let program = repair_program(&d, &ics, style).unwrap();
            let state = GroundingState::new(&program);
            let monolithic =
                stable_models_with(state.ground_program(), SolveOptions::default(), &cancel)
                    .unwrap();
            for &threads in &thread_counts {
                let partitioned = resolve_on_state(
                    &state,
                    &mut SolverState::new(),
                    SolveOptions { threads },
                    &cancel,
                )
                .unwrap();
                assert_eq!(
                    partitioned, monolithic,
                    "round {round}, {style:?}, threads {threads}"
                );
            }
        }
    }
}
