//! Oracle suite for the fast-path planner: on every combination the
//! planner dispatches to a polynomial route, its answers must be
//! byte-identical to repair-based enumeration
//! (`consistent_answers_enumerated`) *and* to cautious reasoning over the
//! repair program (`consistent_answers_via_program`), across the PR-4
//! 6-constraint pool × random instances × both answer semantics × both
//! query null semantics. Combinations the planner correctly declines are
//! still checked (plan-first equals enumeration trivially there) and the
//! pinned-refusal tests assert the planner *refuses* the fast path where
//! soundness demands it (existential ICs, existential query variables,
//! disjunctive queries).

use cqa::constraints::{builders, graph, v, Constraint, Ic, IcSet};
use cqa::core::query::AnswerSemantics;
use cqa::core::{
    consistent_answers_enumerated, consistent_answers_full, consistent_answers_via_program,
    plan_query, ConjunctiveQuery, PlanRoute, ProgramStyle, Query, QueryNullSemantics, RepairConfig,
};
use cqa::prelude::*;
use cqa::relational::testing::XorShift;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a"])
        .relation("R", ["x", "y"])
        .relation("T", ["t", "u", "w"])
        .finish()
        .unwrap()
        .into_shared()
}

/// The PR-4 pool: RIC, UIC, single-column FD, composite-determinant FD,
/// NNC and a denial.
fn pool(sc: &Schema) -> Vec<Constraint> {
    vec![
        Constraint::from(
            Ic::builder(sc, "ric")
                .body_atom("P", [v("x")])
                .head_atom("R", [v("x"), v("y")])
                .finish()
                .unwrap(),
        ),
        Constraint::from(
            Ic::builder(sc, "uic")
                .body_atom("T", [v("x"), v("y"), v("z")])
                .head_atom("P", [v("x")])
                .finish()
                .unwrap(),
        ),
        Constraint::from(builders::functional_dependency(sc, "R", &[0], 1).unwrap()),
        Constraint::from(builders::functional_dependency(sc, "T", &[0, 1], 2).unwrap()),
        Constraint::from(builders::not_null(sc, "P", 0).unwrap()),
        Constraint::from(
            Ic::builder(sc, "den")
                .body_atom("T", [v("x"), v("y"), v("z")])
                .body_atom("R", [v("x"), v("x")])
                .finish()
                .unwrap(),
        ),
    ]
}

fn value(rng: &mut XorShift) -> Value {
    match rng.below(3) {
        0 => s("c0"),
        1 => s("c1"),
        _ => Value::Null,
    }
}

fn instance(rng: &mut XorShift, sc: &Arc<Schema>) -> Instance {
    let mut d = Instance::empty(sc.clone());
    for _ in 0..rng.below(3) {
        d.insert_named("P", [value(rng)]).unwrap();
    }
    for _ in 0..rng.below(4) {
        d.insert_named("R", [value(rng), value(rng)]).unwrap();
    }
    for _ in 0..rng.below(3) {
        d.insert_named("T", [value(rng), value(rng), value(rng)])
            .unwrap();
    }
    d
}

fn acyclic_subset(rng: &mut XorShift, sc: &Schema) -> IcSet {
    loop {
        let mask = rng.below(64) as u8;
        let ics: IcSet = pool(sc)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        if graph::is_ric_acyclic(&ics) {
            return ics;
        }
    }
}

/// Quantifier-free queries touching every pool relation: plain scans, a
/// builtin, negation against a constrained relation, a self-join-shaped
/// negation, and a ground boolean sentence.
fn query_pool(sc: &Arc<Schema>) -> Vec<Query> {
    let qv = v;
    let qc = |val: Value| c(val);
    vec![
        ConjunctiveQuery::builder(sc, "q_r", ["x", "y"])
            .atom("R", [qv("x"), qv("y")])
            .finish()
            .unwrap()
            .into(),
        ConjunctiveQuery::builder(sc, "q_p", ["x"])
            .atom("P", [qv("x")])
            .finish()
            .unwrap()
            .into(),
        ConjunctiveQuery::builder(sc, "q_t", ["x", "y", "z"])
            .atom("T", [qv("x"), qv("y"), qv("z")])
            .cmp(qv("y"), CmpOp::Neq, qc(s("c1")))
            .finish()
            .unwrap()
            .into(),
        ConjunctiveQuery::builder(sc, "q_neg_p", ["x", "y"])
            .atom("R", [qv("x"), qv("y")])
            .not_atom("P", [qv("x")])
            .finish()
            .unwrap()
            .into(),
        ConjunctiveQuery::builder(sc, "q_neg_r", ["x", "y"])
            .atom("R", [qv("x"), qv("y")])
            .not_atom("R", [qv("y"), qv("x")])
            .finish()
            .unwrap()
            .into(),
        ConjunctiveQuery::builder(sc, "q_bool", Vec::<String>::new())
            .atom("R", [qc(s("c0")), qc(s("c1"))])
            .finish()
            .unwrap()
            .into(),
    ]
}

#[test]
fn planner_equals_enumeration_and_program_on_the_pool() {
    let sc = schema();
    let mut rng = XorShift::new(901);
    let queries = query_pool(&sc);
    let config = RepairConfig::default();
    let mut routes = (0usize, 0usize, 0usize); // (fo, chase, fallback)
    for round in 0..48 {
        let d = instance(&mut rng, &sc);
        let ics = acyclic_subset(&mut rng, &sc);
        for (qi, q) in queries.iter().enumerate() {
            let route = plan_query(&ics, q, &config).route;
            match route {
                PlanRoute::FoRewrite => routes.0 += 1,
                PlanRoute::Chase => routes.1 += 1,
                PlanRoute::Enumerate => routes.2 += 1,
            }
            for semantics in [
                AnswerSemantics::IncludeNullAnswers,
                AnswerSemantics::ExcludeNullAnswers,
            ] {
                for qsem in [
                    QueryNullSemantics::NullAsValue,
                    QueryNullSemantics::SqlThreeValued,
                ] {
                    let planned =
                        consistent_answers_full(&d, &ics, q, config, semantics, qsem).unwrap();
                    let enumerated =
                        consistent_answers_enumerated(&d, &ics, q, config, semantics, qsem)
                            .unwrap();
                    assert_eq!(
                        planned, enumerated,
                        "round {round}, query {qi}, {route:?}, {semantics:?}, {qsem:?}"
                    );
                    // The program route evaluates queries with null as a
                    // value; compare on that semantics only.
                    if qsem == QueryNullSemantics::NullAsValue {
                        let via_program = consistent_answers_via_program(
                            &d,
                            &ics,
                            q,
                            ProgramStyle::Corrected,
                            semantics,
                        )
                        .unwrap();
                        assert_eq!(
                            planned, via_program,
                            "program route: round {round}, query {qi}, {route:?}, {semantics:?}"
                        );
                    }
                }
            }
        }
    }
    // The sweep must actually exercise both fast paths — a planner that
    // declined everything would pass the equalities vacuously.
    assert!(
        routes.0 >= 10,
        "FO-rewrite dispatched only {} times",
        routes.0
    );
    assert!(routes.1 >= 10, "chase dispatched only {} times", routes.1);
    assert!(
        routes.2 >= 10,
        "fallback dispatched only {} times",
        routes.2
    );
}

#[test]
fn pinned_refusals() {
    let sc = schema();
    let config = RepairConfig::default();
    let fd_only: IcSet = IcSet::new([Constraint::from(
        builders::functional_dependency(&sc, "R", &[0], 1).unwrap(),
    )]);
    let with_ric: IcSet = IcSet::new([
        Constraint::from(builders::functional_dependency(&sc, "R", &[0], 1).unwrap()),
        Constraint::from(
            Ic::builder(&sc, "ric")
                .body_atom("P", [v("x")])
                .head_atom("R", [v("x"), v("y")])
                .finish()
                .unwrap(),
        ),
    ]);
    let qf: Query = ConjunctiveQuery::builder(&sc, "q", ["x", "y"])
        .atom("R", [v("x"), v("y")])
        .finish()
        .unwrap()
        .into();
    let existential: Query = ConjunctiveQuery::builder(&sc, "e", ["x"])
        .atom("R", [v("x"), v("y")])
        .finish()
        .unwrap()
        .into();
    let union = Query::union(vec![
        ConjunctiveQuery::builder(&sc, "u1", ["x"])
            .atom("R", [v("x"), c(s("c0"))])
            .finish()
            .unwrap(),
        ConjunctiveQuery::builder(&sc, "u2", ["x"])
            .atom("R", [v("x"), c(s("c1"))])
            .finish()
            .unwrap(),
    ])
    .unwrap();

    // Dispatchable baseline.
    assert_eq!(
        plan_query(&fd_only, &qf, &config).route,
        PlanRoute::FoRewrite
    );
    // Existential ICs (a RIC admits insertion repairs) must refuse.
    assert_eq!(
        plan_query(&with_ric, &qf, &config).route,
        PlanRoute::Enumerate
    );
    // Existential query variables must refuse.
    assert_eq!(
        plan_query(&fd_only, &existential, &config).route,
        PlanRoute::Enumerate
    );
    // Disjunctive (union) queries must refuse.
    assert_eq!(
        plan_query(&fd_only, &union, &config).route,
        PlanRoute::Enumerate
    );

    // And the refusals still answer correctly through the fallback.
    let mut d = Instance::empty(sc.clone());
    d.insert_named("R", [s("c0"), s("c0")]).unwrap();
    d.insert_named("R", [s("c0"), s("c1")]).unwrap();
    for q in [&existential, &union] {
        let planned = consistent_answers_full(
            &d,
            &fd_only,
            q,
            config,
            AnswerSemantics::IncludeNullAnswers,
            QueryNullSemantics::NullAsValue,
        )
        .unwrap();
        let enumerated = consistent_answers_enumerated(
            &d,
            &fd_only,
            q,
            config,
            AnswerSemantics::IncludeNullAnswers,
            QueryNullSemantics::NullAsValue,
        )
        .unwrap();
        assert_eq!(planned, enumerated);
    }
    // The union's consistent answer needs cross-disjunct compensation —
    // the exact case a per-disjunct fast path would get wrong.
    let union_answers = consistent_answers_enumerated(
        &d,
        &fd_only,
        &union,
        config,
        AnswerSemantics::IncludeNullAnswers,
        QueryNullSemantics::NullAsValue,
    )
    .unwrap();
    assert_eq!(
        union_answers.tuples,
        std::collections::BTreeSet::from([Tuple::new(vec![s("c0")])])
    );
}

#[test]
fn facade_surfaces_planner_routes() {
    let mut db = Database::from_script(
        "CREATE TABLE r (k TEXT PRIMARY KEY, v TEXT);
         INSERT INTO r VALUES ('k1', 'a');
         INSERT INTO r VALUES ('k2', 'a');
         INSERT INTO r VALUES ('k2', 'b');",
    )
    .unwrap();
    let before = db.planner_stats();
    assert_eq!(before.fo_rewrite, 0);
    // A key FD + quantifier-free query: planned to the FO-rewrite route.
    let plan = db.query_plan("q(k, v) :- r(k, v).").unwrap();
    assert_eq!(plan.route, cqa::core::PlanRoute::FoRewrite);
    assert!(plan.declined.is_empty());
    let answers = db.consistent_answers("q(k, v) :- r(k, v).").unwrap();
    assert_eq!(
        answers,
        std::collections::BTreeSet::from([Tuple::new(vec![s("k1"), s("a")])])
    );
    let after = db.planner_stats();
    assert_eq!(after.fo_rewrite, before.fo_rewrite + 1);
    assert_eq!(after.last_route, Some(cqa::core::PlanRoute::FoRewrite));
    // An existential query falls back — and says why.
    let plan = db.query_plan("e(k) :- r(k, v).").unwrap();
    assert_eq!(plan.route, cqa::core::PlanRoute::Enumerate);
    assert_eq!(
        plan.declined,
        vec![cqa::core::DeclineReason::ExistentialQueryVars]
    );
    let _ = db.consistent_answers("e(k) :- r(k, v).").unwrap();
    assert_eq!(db.planner_stats().fallbacks, after.fallbacks + 1);
    // Keep the borrow checker honest about mutability usage.
    db.insert("r", Tuple::new(vec![s("k3"), s("c")])).unwrap();
    let grown = db.consistent_answers("q(k, v) :- r(k, v).").unwrap();
    assert!(grown.contains(&Tuple::new(vec![s("k3"), s("c")])));
}
