//! Facade-level durability: `Database::persistent` / `Database::open`
//! round-trips, recovery reports, corrupted-tail handling, and the
//! warm-cache recovery trajectory (ISSUE 6 acceptance: reopen-then-churn
//! shows *regrounds*, not rebuilds).
//!
//! Every test owns a scratch directory under the system temp dir and
//! cleans it up on entry, so re-runs and parallel tests never collide.

use cqa::storage::{FsyncPolicy, StoreOptions};
use cqa::{Database, Error};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cqa-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Example-19 shape: one key conflict (2 repairs), an FK, a null.
const SCRIPT: &str = "CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);
     CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
     INSERT INTO r VALUES ('a', 'b'), ('a', 'c');
     INSERT INTO s VALUES (NULL, 'a');";

fn seeded(dir: &PathBuf) -> Database {
    let catalog = cqa::sql::parse_script(SCRIPT).unwrap();
    Database::persistent(dir, catalog.instance, catalog.constraints).unwrap()
}

#[test]
fn create_churn_reopen_round_trips() {
    let dir = scratch("roundtrip");
    let mut db = seeded(&dir);
    assert!(db.is_persistent());
    assert!(db.recovery_report().is_none(), "fresh stores don't recover");

    // Churn: two effective singles, one batch, one no-op (never logged).
    assert!(db.insert("r", [cqa::s("w1"), cqa::s("y")]).unwrap());
    assert!(db.delete("r", [cqa::s("a"), cqa::s("b")]).unwrap());
    assert!(!db.insert("r", [cqa::s("w1"), cqa::s("y")]).unwrap());
    assert_eq!(
        db.insert_many("s", (0..3).map(|k| [cqa::s(&format!("u{k}")), cqa::s("a")]),)
            .unwrap(),
        3
    );
    db.sync().unwrap();

    let want_atoms: Vec<_> = db.instance().atoms().collect();
    let want_repairs = db.repairs().unwrap();
    let want_answers = db.consistent_answers("q(v) :- s(u, v).").unwrap();
    drop(db);

    let back = Database::open(&dir).unwrap();
    assert!(back.is_persistent());
    let report = back.recovery_report().expect("opened stores report");
    // 3 effective frames: insert, delete, insert_many (the no-op insert
    // never reached the WAL).
    assert_eq!(report.frames_applied, 3);
    assert_eq!(report.frames_skipped, 0);
    assert_eq!(report.bytes_truncated, 0);
    assert_eq!(report.last_seq, 3);
    assert_eq!(report.snapshot_last_seq, 0);

    let got_atoms: Vec<_> = back.instance().atoms().collect();
    assert_eq!(got_atoms, want_atoms, "instance survives byte-identically");
    assert_eq!(back.repairs().unwrap(), want_repairs);
    assert_eq!(
        back.consistent_answers("q(v) :- s(u, v).").unwrap(),
        want_answers
    );
}

#[test]
fn reopen_then_churn_regrounds_not_rebuilds() {
    // Seed the *snapshot* with enough clean rows that the WAL drift and
    // the post-reopen churn stay under the rebuild escape-hatch fraction
    // — the incremental path is what this test pins.
    let dir = scratch("warm");
    let mut script = String::from(SCRIPT);
    for k in 0..20 {
        script.push_str(&format!("INSERT INTO r VALUES ('clean{k}', 'z');"));
    }
    let catalog = cqa::sql::parse_script(&script).unwrap();
    let mut db = Database::persistent(&dir, catalog.instance, catalog.constraints).unwrap();
    for k in 0..4 {
        assert!(db
            .insert("r", [cqa::s(&format!("pad{k}")), cqa::s("z")])
            .unwrap());
    }
    drop(db);

    // Recovery replays the WAL through the incremental engine: the
    // snapshot state is grounded (miss), then the whole WAL drift is
    // evolved onto it (reground) — never a rebuild, and the reopened
    // handle starts *warm*.
    let mut back = Database::open(&dir).unwrap();
    let stats = back.caches().grounding.stats();
    assert_eq!(
        (stats.misses, stats.regrounds, stats.rebuilds),
        (1, 1, 0),
        "recovery = one snapshot grounding + one incremental evolve"
    );

    // First query after reopen rides the recovered grounding: a pure hit.
    let first = back.repairs_via_program().unwrap();
    let stats = back.caches().grounding.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1), "reopen starts warm");

    // Churn after reopen continues the incremental trajectory.
    assert!(back.insert("r", [cqa::s("post"), cqa::s("z")]).unwrap());
    assert!(back.delete("r", [cqa::s("pad0"), cqa::s("z")]).unwrap());
    let second = back.repairs_via_program().unwrap();
    let stats = back.caches().grounding.stats();
    assert_eq!(stats.rebuilds, 0, "churn after reopen must not rebuild");
    assert_eq!(stats.regrounds, 2, "…it regrounds incrementally");
    // The clean churn rows shift the repair instances but not the
    // conflict structure: still the one key conflict, two resolutions.
    assert_eq!(first.len(), second.len());
    assert_eq!(second, back.repairs().unwrap());
}

#[test]
fn corrupted_wal_tail_is_detected_and_dropped() {
    let dir = scratch("bitflip");
    let mut db = seeded(&dir);
    for k in 0..5 {
        assert!(db
            .insert("r", [cqa::s(&format!("w{k}")), cqa::s("y")])
            .unwrap());
    }
    let want_after_4: Vec<_> = {
        // What the instance looked like before the 5th insert.
        let catalog = cqa::sql::parse_script(SCRIPT).unwrap();
        let mut oracle = Database::new(catalog.instance, catalog.constraints);
        for k in 0..4 {
            oracle
                .insert("r", [cqa::s(&format!("w{k}")), cqa::s("y")])
                .unwrap();
        }
        oracle.instance().atoms().collect()
    };
    drop(db);

    // Flip one bit in the last frame's payload: CRC must catch it, the
    // frame (and only that frame) must be dropped.
    let wal = dir.join("wal");
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();

    let back = Database::open(&dir).unwrap();
    let report = back.recovery_report().unwrap();
    assert_eq!(report.frames_applied, 4, "the flipped frame is dropped");
    assert!(report.bytes_truncated > 0, "…and reported as truncated");
    let got: Vec<_> = back.instance().atoms().collect();
    assert_eq!(got, want_after_4, "state = everything before the bad frame");
    drop(back);

    // The open itself truncated the bad tail: a second open is clean.
    let again = Database::open(&dir).unwrap();
    let report = again.recovery_report().unwrap();
    assert_eq!(report.frames_applied, 4);
    assert_eq!(report.bytes_truncated, 0, "tail already healed");
    drop(again);

    // Truncation mid-frame at every offset over the last 40 bytes: never
    // a panic, always a clean open with a ≤4-frame replay.
    let healthy = std::fs::read(&wal).unwrap();
    for cut in 1..=40usize.min(healthy.len() - 8) {
        std::fs::write(&wal, &healthy[..healthy.len() - cut]).unwrap();
        let db = Database::open(&dir).unwrap();
        assert!(db.recovery_report().unwrap().frames_applied <= 4);
        drop(db);
        std::fs::write(&wal, &healthy).unwrap();
    }

    // A mangled WAL magic is a hard error — corrupt, not silently empty —
    // and must surface as `Err`, never a panic.
    let mut mangled = healthy.clone();
    mangled[0] ^= 0xFF;
    std::fs::write(&wal, &mangled).unwrap();
    match Database::open(&dir) {
        Err(Error::Storage(_)) => {}
        other => panic!("wrong-magic WAL must be a storage error, got {other:?}"),
    }
    std::fs::write(&wal, &healthy).unwrap();

    // A truncated *manifest* is also a hard error, never a panic.
    let snap = dir.join("manifest");
    let snap_bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &snap_bytes[..snap_bytes.len() / 2]).unwrap();
    assert!(matches!(Database::open(&dir), Err(Error::Storage(_))));
    std::fs::write(&snap, &snap_bytes).unwrap();
    assert!(Database::open(&dir).is_ok(), "restored store opens again");
}

#[test]
fn constraints_persist_as_wal_frames() {
    let dir = scratch("constraints");
    let mut db = seeded(&dir);
    let before = db.repairs().unwrap();
    let n_constraints = db.constraints().len();
    // A new constraint is an O(delta) WAL append — a tagged constraint
    // frame, not a forced snapshot rewrite.
    db.add_constraint("nn_s_u", "not null s(u)").unwrap();
    let with_nnc = db.repairs().unwrap();
    assert_ne!(before, with_nnc, "the NNC changes the repair space");
    assert!(db.insert("r", [cqa::s("late"), cqa::s("y")]).unwrap());
    drop(db);

    let back = Database::open(&dir).unwrap();
    assert_eq!(
        back.constraints().len(),
        n_constraints + 1,
        "the script's constraints plus the late NNC all survive"
    );
    let report = back.recovery_report().unwrap();
    assert_eq!(
        report.frames_applied, 2,
        "the constraint frame and the insert both ride the WAL"
    );
    assert_eq!(report.constraint_frames, 1);
    assert_eq!(
        report.snapshot_last_seq, 0,
        "no compaction happened on the way"
    );
    assert_eq!(back.repairs().unwrap().len(), with_nnc.len());
}

/// ISSUE 10 acceptance: `add_constraint` on a persistent database is an
/// O(delta) append, pinned by the storage counters — no compaction, no
/// segment rewrite, exactly one constraint frame.
#[test]
fn add_constraint_is_an_append_not_a_compaction() {
    let dir = scratch("odelta");
    let mut db = seeded(&dir);
    let n_constraints = db.constraints().len();
    let before = db.storage_stats().unwrap();
    assert_eq!(before.compactions, 0);
    db.add_constraint("nn_s_u", "not null s(u)").unwrap();
    let after = db.storage_stats().unwrap();
    assert_eq!(
        after.compactions, 0,
        "constraint change must not trigger compaction"
    );
    assert_eq!(after.segments_written, 0, "…or any segment rewrite");
    assert_eq!(after.appends - before.appends, 1, "exactly one WAL frame");
    assert_eq!(after.constraint_frames - before.constraint_frames, 1);

    // The constraint still folds into the manifest at the next ordinary
    // compaction, after which the WAL no longer carries it.
    drop(db);
    let back = Database::open(&dir).unwrap();
    assert_eq!(back.recovery_report().unwrap().constraint_frames, 1);
    assert_eq!(back.constraints().len(), n_constraints + 1);
}

/// ISSUE 10 satellite: one cross-relation batch = one WAL frame and
/// (under `Always`) one fsync, not one per row or per relation.
#[test]
fn cross_relation_batches_coalesce_frames_and_fsyncs() {
    let dir = scratch("batchall");
    let mut db = seeded(&dir);
    let before = db.storage_stats().unwrap();
    let rows: Vec<(&str, [cqa::DbValue; 2])> = vec![
        ("r", [cqa::s("m0"), cqa::s("y")]),
        ("r", [cqa::s("m1"), cqa::s("y")]),
        ("s", [cqa::s("m2"), cqa::s("a")]),
        ("r", [cqa::s("a"), cqa::s("c")]), // duplicate: filtered, never logged
    ];
    assert_eq!(db.insert_all(rows).unwrap(), 3);
    let after = db.storage_stats().unwrap();
    assert_eq!(
        after.appends - before.appends,
        1,
        "three effective rows over two relations = one frame"
    );
    assert_eq!(
        after.fsyncs - before.fsyncs,
        1,
        "…and one fsync under Always"
    );

    assert_eq!(
        db.delete_all(vec![
            ("r", [cqa::s("m0"), cqa::s("y")]),
            ("s", [cqa::s("m2"), cqa::s("a")]),
            ("s", [cqa::s("ghost"), cqa::s("a")]), // absent: filtered
        ])
        .unwrap(),
        2
    );
    let final_stats = db.storage_stats().unwrap();
    assert_eq!(final_stats.appends - after.appends, 1);
    assert_eq!(final_stats.fsyncs - after.fsyncs, 1);
    // An all-no-op batch writes nothing.
    assert_eq!(
        db.insert_all(vec![("r", [cqa::s("a"), cqa::s("c")])])
            .unwrap(),
        0
    );
    assert_eq!(db.storage_stats().unwrap().appends, final_stats.appends);
    let want: Vec<_> = db.instance().atoms().collect();
    drop(db);

    let back = Database::open(&dir).unwrap();
    assert_eq!(back.recovery_report().unwrap().frames_applied, 2);
    let got: Vec<_> = back.instance().atoms().collect();
    assert_eq!(got, want, "cross-relation batches replay faithfully");
}

#[test]
fn batch_mutators_write_one_frame_each() {
    let dir = scratch("frames");
    let mut db = seeded(&dir);
    assert_eq!(
        db.insert_many("r", (0..5).map(|k| [cqa::s(&format!("b{k}")), cqa::s("y")]))
            .unwrap(),
        5
    );
    assert!(db.insert("r", [cqa::s("solo"), cqa::s("y")]).unwrap());
    assert_eq!(
        db.delete_many(
            "r",
            [[cqa::s("b0"), cqa::s("y")], [cqa::s("b1"), cqa::s("y")]]
        )
        .unwrap(),
        2
    );
    // All-no-op batches write nothing at all.
    assert_eq!(
        db.insert_many("r", [[cqa::s("b2"), cqa::s("y")]]).unwrap(),
        0
    );
    drop(db);

    let back = Database::open(&dir).unwrap();
    let report = back.recovery_report().unwrap();
    assert_eq!(
        (report.frames_applied, report.last_seq),
        (3, 3),
        "5-row batch + single + 2-row batch = exactly 3 frames"
    );
    assert_eq!(
        back.instance().len(),
        3 + 5 + 1 - 2,
        "seeded 3 atoms, +5 batch, +1 single, -2 batch"
    );
}

#[test]
fn store_options_knobs_are_honoured() {
    // FsyncPolicy::Never + an aggressive compaction fraction: churn folds
    // into snapshots instead of an ever-growing WAL, and reopen sees a
    // recent snapshot horizon with few (or zero) residual frames.
    let dir = scratch("options");
    let catalog = cqa::sql::parse_script(SCRIPT).unwrap();
    let options = StoreOptions {
        fsync: FsyncPolicy::Never,
        compact_num: 1,
        compact_den: 4,
        compact_min_wal_bytes: 0,
        ..StoreOptions::default()
    };
    let mut db =
        Database::persistent_with(&dir, catalog.instance, catalog.constraints, options).unwrap();
    for k in 0..40 {
        assert!(db
            .insert("r", [cqa::s(&format!("n{k}")), cqa::s("y")])
            .unwrap());
    }
    let want: Vec<_> = db.instance().atoms().collect();
    drop(db);

    let back = Database::open(&dir).unwrap();
    let report = back.recovery_report().unwrap();
    assert!(
        report.snapshot_last_seq > 0,
        "aggressive fraction forced at least one compaction"
    );
    assert_eq!(report.frames_skipped, 0, "reset WALs hold no stale frames");
    let got: Vec<_> = back.instance().atoms().collect();
    assert_eq!(got, want);

    // Reopening an *occupied* path with `persistent` is refused.
    let catalog = cqa::sql::parse_script(SCRIPT).unwrap();
    assert!(matches!(
        Database::persistent(&dir, catalog.instance, catalog.constraints),
        Err(Error::Storage(_))
    ));
    // And opening an empty path is NotAStore, not a panic.
    assert!(matches!(
        Database::open(scratch("void")),
        Err(Error::Storage(_))
    ));
}

/// ISSUE 7 satellite: the write role of a persistent store does not
/// travel with `Clone`. Two handles with divergent in-memory views
/// interleaving WAL appends would leave the log describing a state
/// neither holds, so clones are read-only views: every mutator returns
/// `Error::ReadOnlyClone`, queries still work, and in-memory databases
/// keep their freely-cloning behaviour.
#[test]
fn clones_of_persistent_handles_are_read_only() {
    let dir = scratch("clone");
    let mut db = seeded(&dir);
    assert!(db.is_writer());

    let mut view = db.clone();
    assert!(!view.is_writer(), "the write role stays with the opener");
    assert!(matches!(
        view.insert("r", [cqa::s("z"), cqa::s("z")]),
        Err(Error::ReadOnlyClone)
    ));
    assert!(matches!(
        view.delete("r", [cqa::s("a"), cqa::s("b")]),
        Err(Error::ReadOnlyClone)
    ));
    assert!(matches!(
        view.insert_many("r", vec![[cqa::s("z"), cqa::s("z")]]),
        Err(Error::ReadOnlyClone)
    ));
    assert!(matches!(
        view.delete_many("r", vec![[cqa::s("a"), cqa::s("b")]]),
        Err(Error::ReadOnlyClone)
    ));
    assert!(matches!(
        view.add_constraint("nnc_u", "NOT NULL s(u)"),
        Err(Error::ReadOnlyClone)
    ));
    // A rejected mutation leaves no trace: memory, then (below) disk.
    assert_eq!(view.instance().len(), db.instance().len());
    // The view still answers queries (it shares the cache bundle).
    assert_eq!(view.repairs().unwrap().len(), 2);
    // A clone of the clone is still read-only.
    assert!(!view.clone().is_writer());

    // The writer keeps writing; the view keeps its snapshot of state.
    assert!(db.insert("r", [cqa::s("w"), cqa::s("y")]).unwrap());
    assert!(db.instance().len() > view.instance().len());
    drop(view);
    drop(db);

    // Exactly one frame reached the WAL: the writer's insert.
    let back = Database::open(&dir).unwrap();
    let report = back.recovery_report().unwrap();
    assert_eq!(report.last_seq, 1, "clone mutations never reached the log");
    // The reopened handle holds the write role again.
    assert!(back.is_writer());

    // In-memory databases are unaffected: clones stay writable.
    let mem = Database::from_script(SCRIPT).unwrap();
    let mut mem_clone = mem.clone();
    assert!(mem_clone.is_writer());
    assert!(mem_clone.insert("r", [cqa::s("k"), cqa::s("k")]).unwrap());
}
