//! Determinism under scheduling: the parallel strategy's output must be a
//! pure function of `(instance, constraints, config)` — never of thread
//! interleaving. The work-stealing scheduler is free to explore branches
//! in any order, so this test hammers the same seeded workload many times
//! at several thread counts and requires a single distinct output hash,
//! cross-checked against the sequential reference.

use cqa::core::{repairs_with_trace, RepairConfig, SearchStrategy};
use cqa::relational::display::instance_set;
use cqa::relational::testing::env_threads;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// A stable fingerprint of a full traced-repair sequence: rendered
/// instances in order, plus every decision step.
fn output_hash(repairs: &[cqa::core::TracedRepair]) -> u64 {
    let mut h = DefaultHasher::new();
    for traced in repairs {
        instance_set(&traced.instance).hash(&mut h);
        for step in &traced.steps {
            step.constraint.hash(&mut h);
            format!("{:?}", step.action).hash(&mut h);
            step.atom
                .display(traced.instance.schema())
                .to_string()
                .hash(&mut h);
        }
    }
    h.finish()
}

#[test]
fn fifty_runs_at_four_threads_one_hash() {
    // 4 key conflicts + 1 dangling FK: 2^5 = 32 repairs, a tree deep
    // enough that every run steals across workers differently.
    let w = cqa_bench::example19_scaled(20, 4, 1, 59);
    let reference = repairs_with_trace(&w.instance, &w.ics, RepairConfig::default()).unwrap();
    assert_eq!(reference.len(), 32);
    let expected = output_hash(&reference);
    let threads = env_threads(4);
    let mut hashes: BTreeSet<u64> = BTreeSet::new();
    for run in 0..50 {
        let got = repairs_with_trace(
            &w.instance,
            &w.ics,
            RepairConfig {
                strategy: SearchStrategy::Parallel { threads },
                ..RepairConfig::default()
            },
        )
        .unwrap();
        hashes.insert(output_hash(&got));
        assert_eq!(
            hashes.len(),
            1,
            "run {run} at {threads} threads produced a second distinct output"
        );
    }
    assert_eq!(hashes, BTreeSet::from([expected]));
}

#[test]
fn thread_counts_do_not_change_the_output() {
    let w = cqa_bench::example19_scaled(15, 3, 1, 61);
    let reference = repairs_with_trace(&w.instance, &w.ics, RepairConfig::default()).unwrap();
    let expected = output_hash(&reference);
    for threads in [1usize, 2, 3, 4, 8] {
        for _ in 0..5 {
            let got = repairs_with_trace(
                &w.instance,
                &w.ics,
                RepairConfig {
                    strategy: SearchStrategy::Parallel { threads },
                    ..RepairConfig::default()
                },
            )
            .unwrap();
            assert_eq!(output_hash(&got), expected, "threads={threads}");
        }
    }
}
