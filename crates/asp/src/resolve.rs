//! Delta-aware, partitioned stable-model solving: the solver-side
//! counterpart of the incremental grounder.
//!
//! [`GroundingState`] keeps the ground program current under fact churn
//! for a few milliseconds per delta, but every query still re-enumerated
//! stable models from scratch — an order of magnitude more work than the
//! reground itself. This module closes that gap with a persistent
//! [`SolverState`] kept alongside the grounding:
//!
//! 1. **Partitioned solving.** The ground program is split into connected
//!    components over shared atoms (union–find on the rule/atom incidence
//!    graph). By the splitting theorem, the stable models of an
//!    atom-disjoint union are exactly the unions of per-component stable
//!    models, so each component is solved independently and the results
//!    combined as a cartesian product. A one-fact delta usually touches
//!    one component; the rest hit the cache below.
//! 2. **Per-partition model cache.** Solved components are memoised under
//!    their (sorted) rule content. The key is self-validating: identical
//!    rule content has identical stable models, so entries never go stale
//!    — retraction merely makes them unreachable until the content
//!    reappears. Atom ids are stable for the lifetime of one
//!    [`GroundingState`] (interning is monotone), which is exactly the
//!    lifetime a `SolverState` is paired with.
//! 3. **Learned-clause reuse.** Component solves run on the
//!    premise-tagged encoding ([`crate::solve`], "Incremental solving
//!    architecture"): every learned clause that survives conflict
//!    analysis with a concrete premise — the set of ground rules and
//!    per-atom completion markers it was derived from — is harvested into
//!    the state. A later solve of a *changed* component re-injects a
//!    stored clause iff its premise still holds there: all premise rules
//!    are present, and for every completion marker the component's rules
//!    heading that atom are exactly the recorded ones. Validity is
//!    decided by content alone, so reuse is sound even across retract /
//!    re-add churn; the retraction log of the grounder
//!    ([`GroundingState::retractions_since`]) additionally tombstones
//!    clauses whose premise rules were deleted, keeping the store small.
//! 4. **Warm heuristics.** Saved phases and variable activities chain
//!    across the coNP minimality sub-searches, and `threads > 1` fans
//!    independent component solves across a scoped thread pool (with
//!    portfolio minimality when only one component misses). The final
//!    model set is sorted, so it is identical at every thread count.

use crate::error::AspError;
use crate::ground::{AtomId, GroundProgram, GroundRule, GroundingState};
use crate::solve::Lit;
use crate::stable::{encode_tagged, is_stable_warm, Model, SolveOptions, Warm};
use cqa_relational::{CancelToken, Cancelled};
use std::collections::{HashMap, VecDeque};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Stored clauses are dropped beyond this many literals: long clauses
/// prune little and cost the most to validate and re-inject.
const STORED_CLAUSE_MAX_LITS: usize = 24;
/// Cap on the learned-clause store (FIFO beyond it).
const CLAUSE_STORE_CAP: usize = 2048;
/// Cap on clauses harvested from a single component solve.
const HARVEST_CAP: usize = 256;
/// Cap on memoised components (least-recently-used beyond it).
const MODEL_CACHE_CAP: usize = 8192;

/// Counters of the incremental solver, in the same named-struct shape as
/// the grounding- and worklist-cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStateStats {
    /// Component solves answered from the model cache.
    pub partition_hits: u64,
    /// Component solves that ran the CDCL engine.
    pub partition_misses: u64,
    /// Stored learned clauses re-injected into a later solve.
    pub learned_reused: u64,
    /// Stored learned clauses dropped because a premise rule was
    /// retracted by the grounder.
    pub learned_tombstoned: u64,
}

/// A learned-clause literal in storage form: solver variables are
/// meaningless across solves, so literals are stored against program
/// content — global atom ids, or (rule, head-slot) support positions.
#[derive(Debug, Clone, PartialEq, Eq)]
enum StoredLit {
    /// An atom literal: `(atom, positive)`.
    Atom(AtomId, bool),
    /// A support-variable literal of head slot `slot` of `rules[rule]`
    /// (index into the owning clause's premise rules).
    Support {
        rule: u32,
        slot: u32,
        positive: bool,
    },
}

/// A harvested learned clause with its decoded premise. The clause is
/// implied by the rule clauses / support definitions of `rules` plus the
/// completion clauses of `markers` — and by *nothing else* — so it may be
/// injected into any component where that premise reproduces.
#[derive(Debug, Clone)]
struct StoredClause {
    lits: Vec<StoredLit>,
    /// Sorted, deduplicated premise rules ([`StoredLit::Support`] indexes
    /// into this).
    rules: Vec<GroundRule>,
    /// Atoms whose completion clause is part of the premise: valid only
    /// where the rules heading the atom are exactly those in `rules`.
    markers: Vec<AtomId>,
}

/// Memoised stable models of one component, with an LRU stamp.
#[derive(Debug, Clone)]
struct ModelEntry {
    models: Vec<Model>,
    stamp: u64,
}

/// Persistent solver state paired with one [`GroundingState`]: the
/// per-component model cache, the learned-clause store and the warm
/// search heuristics that make [`resolve_on_state`] incremental. Create
/// it once per grounding lineage and discard it whenever the grounding is
/// rebuilt from scratch (atom ids restart there). `Clone` snapshots the
/// whole state — caches, clause store, heuristics — so benchmarks and
/// speculative resolves can fork a warmed state without re-learning.
#[derive(Debug, Clone)]
pub struct SolverState {
    /// High-water mark of [`GroundingState::retraction_seq`] processed.
    synced_seq: u64,
    models: HashMap<Vec<GroundRule>, ModelEntry>,
    clauses: VecDeque<StoredClause>,
    warm: Warm,
    stamp: u64,
    stats: SolverStateStats,
}

impl SolverState {
    /// Fresh, empty state.
    pub fn new() -> Self {
        SolverState {
            synced_seq: 0,
            models: HashMap::new(),
            clauses: VecDeque::new(),
            warm: Warm::default(),
            stamp: 0,
            stats: SolverStateStats::default(),
        }
    }

    /// Counters since creation.
    pub fn stats(&self) -> SolverStateStats {
        self.stats
    }

    /// Stored learned clauses currently held.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// Memoised components currently held.
    pub fn cached_partitions(&self) -> usize {
        self.models.len()
    }

    /// Ingest the grounder's retraction log: tombstone stored clauses
    /// whose premise mentions a retracted rule. A trimmed (or unknown)
    /// log clears the whole store — injection-time validation keeps
    /// either outcome sound; this only bounds the store.
    fn sync_retractions(&mut self, gs: &GroundingState) {
        let seq = gs.retraction_seq();
        if seq == self.synced_seq {
            return;
        }
        match gs.retractions_since(self.synced_seq) {
            Some(retracted) if !retracted.is_empty() => {
                let before = self.clauses.len();
                self.clauses
                    .retain(|sc| !sc.rules.iter().any(|r| retracted.contains(r)));
                self.stats.learned_tombstoned += (before - self.clauses.len()) as u64;
            }
            Some(_) => {}
            None => {
                self.stats.learned_tombstoned += self.clauses.len() as u64;
                self.clauses.clear();
            }
        }
        self.synced_seq = seq;
    }

    /// Evict past the caps: FIFO for clauses, LRU for memoised models.
    fn evict(&mut self) {
        while self.clauses.len() > CLAUSE_STORE_CAP {
            self.clauses.pop_front();
        }
        while self.models.len() > MODEL_CACHE_CAP {
            let oldest = self
                .models
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over cap");
            self.models.remove(&oldest);
        }
    }
}

impl Default for SolverState {
    fn default() -> Self {
        Self::new()
    }
}

/// Split the rules into connected components over shared atoms. Returns
/// the sorted rule list of each component, in a deterministic order.
/// `None` signals an unconditional falsum (a rule with no atoms at all:
/// an empty-bodied denial) — the program has no models.
fn partition_rules(rules: &[GroundRule]) -> Option<Vec<Vec<GroundRule>>> {
    // Union–find over atoms; each rule unions all its atoms.
    let max_atom = rules
        .iter()
        .flat_map(|r| r.head.iter().chain(&r.pos).chain(&r.neg))
        .max()
        .copied();
    let mut parent: Vec<u32> = (0..max_atom.map_or(0, |m| m + 1)).collect();
    fn find(parent: &mut [u32], a: u32) -> u32 {
        let mut root = a;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = a;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for rule in rules {
        let mut atoms = rule.head.iter().chain(&rule.pos).chain(&rule.neg);
        let Some(&first) = atoms.next() else {
            return None; // ← . : unconditionally violated denial
        };
        let root = find(&mut parent, first);
        for &a in atoms {
            let r = find(&mut parent, a);
            parent[r as usize] = root;
        }
    }
    // Group rules by component root, preserving first-seen order.
    let mut order: Vec<u32> = Vec::new();
    let mut groups: HashMap<u32, Vec<GroundRule>> = HashMap::new();
    for rule in rules {
        let root = find(
            &mut parent,
            rule.head
                .first()
                .copied()
                .unwrap_or_else(|| rule.pos.first().copied().unwrap_or_else(|| rule.neg[0])),
        );
        let entry = groups.entry(root).or_default();
        if entry.is_empty() {
            order.push(root);
        }
        entry.push(rule.clone());
    }
    let mut out = Vec::with_capacity(order.len());
    for root in order {
        let mut part = groups.remove(&root).expect("grouped above");
        part.sort_unstable();
        out.push(part);
    }
    Some(out)
}

/// Solve one component from scratch on the premise-tagged encoding,
/// injecting every still-valid stored clause and harvesting new ones.
/// Returns the component's stable models (global atom ids, sorted), the
/// harvested clauses and the number of stored clauses re-injected.
fn solve_partition(
    gp: &GroundProgram,
    rules: &[GroundRule],
    stored: &VecDeque<StoredClause>,
    threads: usize,
    mut warm: Option<&mut Warm>,
    cancel: &CancelToken,
) -> Result<(Vec<Model>, Vec<StoredClause>, u64), Cancelled> {
    // Local program: atoms re-interned densely, rules re-indexed.
    let mut local = GroundProgram::default();
    let mut to_local: HashMap<AtomId, u32> = HashMap::new();
    let mut to_global: Vec<AtomId> = Vec::new();
    for rule in rules {
        let mut map_ids = |ids: &[AtomId]| -> Vec<AtomId> {
            ids.iter()
                .map(|&a| {
                    *to_local.entry(a).or_insert_with(|| {
                        to_global.push(a);
                        local.intern(gp.atom(a).clone())
                    })
                })
                .collect()
        };
        let head = map_ids(&rule.head);
        let pos = map_ids(&rule.pos);
        let neg = map_ids(&rule.neg);
        local.push_rule(GroundRule { head, pos, neg });
    }
    let n = local.atom_count();
    let encoded = encode_tagged(&local);
    let mut cnf = encoded.cnf;
    let support_base = encoded.support_base;

    // Inject stored clauses whose premise reproduces in this component.
    let mut reused = 0u64;
    'sc: for sc in stored {
        let mut slots: Vec<u32> = Vec::with_capacity(sc.rules.len());
        for r in &sc.rules {
            match rules.binary_search(r) {
                Ok(s) => slots.push(s as u32),
                Err(_) => continue 'sc,
            }
        }
        for &a in &sc.markers {
            if !to_local.contains_key(&a) {
                continue 'sc;
            }
            // Exact head-rule set: both sides drawn from sorted rule
            // lists, so filtered sequences compare as sets.
            let here: Vec<&GroundRule> = rules.iter().filter(|r| r.head.contains(&a)).collect();
            let then: Vec<&GroundRule> = sc.rules.iter().filter(|r| r.head.contains(&a)).collect();
            if here != then {
                continue 'sc;
            }
        }
        let mut lits: Vec<Lit> = Vec::with_capacity(sc.lits.len());
        for l in &sc.lits {
            match *l {
                StoredLit::Atom(a, positive) => {
                    let Some(&v) = to_local.get(&a) else {
                        continue 'sc;
                    };
                    lits.push(Lit { var: v, positive });
                }
                StoredLit::Support {
                    rule,
                    slot,
                    positive,
                } => {
                    let ri = slots[rule as usize] as usize;
                    lits.push(Lit {
                        var: support_base[ri] + slot,
                        positive,
                    });
                }
            }
        }
        let premise: Vec<u32> = slots
            .iter()
            .copied()
            .chain(sc.markers.iter().map(|a| rules.len() as u32 + to_local[a]))
            .collect();
        cnf.add_clause_premised(lits, premise);
        reused += 1;
    }

    // Enumerate supported models; keep the stable ones; harvest every
    // premise-tracked learned clause.
    let mut models: Vec<Model> = Vec::new();
    let mut harvested: Vec<StoredClause> = Vec::new();
    let minimality = SolveOptions { threads };
    let flow = cnf.for_each_model_tracked(
        n,
        cancel,
        |assignment| {
            let local_model: Model = (0..n as AtomId)
                .filter(|&a| assignment[a as usize])
                .collect();
            match is_stable_warm(
                &local,
                &local_model,
                minimality,
                warm.as_deref_mut(),
                cancel,
            ) {
                Err(c) => ControlFlow::Break(c),
                Ok(false) => ControlFlow::Continue(()),
                Ok(true) => {
                    models.push(local_model.iter().map(|&a| to_global[a as usize]).collect());
                    ControlFlow::Continue(())
                }
            }
        },
        |lits, premise| {
            let Some(premise) = premise else { return };
            if lits.len() > STORED_CLAUSE_MAX_LITS || harvested.len() >= HARVEST_CAP {
                return;
            }
            let mut prules: Vec<GroundRule> = Vec::new();
            let mut markers: Vec<AtomId> = Vec::new();
            for &t in premise {
                if (t as usize) < rules.len() {
                    prules.push(rules[t as usize].clone());
                } else {
                    markers.push(to_global[(t - rules.len() as u32) as usize]);
                }
            }
            prules.sort();
            prules.dedup();
            let mut slits: Vec<StoredLit> = Vec::with_capacity(lits.len());
            for &l in lits {
                if (l.var as usize) < n {
                    slits.push(StoredLit::Atom(to_global[l.var as usize], l.positive));
                } else {
                    // Owning rule of a support variable: last base ≤ var
                    // (empty-headed rules share their successor's base but
                    // own no variables).
                    let ri = support_base.partition_point(|&b| b <= l.var) - 1;
                    let slot = l.var - support_base[ri];
                    // Any tracked clause mentioning s(ri, ·) has rule ri
                    // in its premise (every original clause over that
                    // variable does, inductively); skip defensively if
                    // the invariant were ever violated.
                    let Ok(idx) = prules.binary_search(&rules[ri]) else {
                        return;
                    };
                    slits.push(StoredLit::Support {
                        rule: idx as u32,
                        slot,
                        positive: l.positive,
                    });
                }
            }
            harvested.push(StoredClause {
                lits: slits,
                rules: prules,
                markers,
            });
        },
    )?;
    if let ControlFlow::Break(c) = flow {
        return Err(c);
    }
    models.sort();
    Ok((models, harvested, reused))
}

/// Stable models of the grounding's current program through the
/// persistent [`SolverState`]: partition, reuse, solve only what changed.
///
/// The result is exactly [`crate::stable::stable_models`] of
/// [`GroundingState::ground_program`] — same sorted model set at every
/// thread count — but a delta that touches one component re-solves only
/// that component. Do not call on a poisoned grounding (its ground
/// program is partial); rebuild both states instead.
pub fn resolve_on_state(
    gs: &GroundingState,
    ss: &mut SolverState,
    opts: SolveOptions,
    cancel: &CancelToken,
) -> Result<Vec<Model>, AspError> {
    let gp = gs.ground_program();
    ss.sync_retractions(gs);
    ss.stamp += 1;
    let stamp = ss.stamp;

    let Some(partitions) = partition_rules(&gp.rules) else {
        return Ok(Vec::new());
    };

    // Split cache hits from misses.
    let mut per_partition: Vec<Option<Vec<Model>>> = vec![None; partitions.len()];
    let mut misses: Vec<usize> = Vec::new();
    for (i, part) in partitions.iter().enumerate() {
        if let Some(entry) = ss.models.get_mut(part) {
            entry.stamp = stamp;
            ss.stats.partition_hits += 1;
            per_partition[i] = Some(entry.models.clone());
        } else {
            ss.stats.partition_misses += 1;
            misses.push(i);
        }
    }

    let mut solved: Vec<(usize, Vec<Model>, Vec<StoredClause>, u64)> = Vec::new();
    let mut interrupted = false;
    if opts.threads > 1 && misses.len() > 1 {
        // Fan independent components across a scoped pool; minimality
        // stays sequential per worker (the fan-out is the parallelism).
        let stored = &ss.clauses;
        let next = AtomicUsize::new(0);
        let workers = opts.threads.min(misses.len());
        let results = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let misses = &misses;
                let partitions = &partitions;
                let next = &next;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = misses.get(k) else { break };
                        let res = solve_partition(gp, &partitions[i], stored, 1, None, cancel);
                        let failed = res.is_err();
                        out.push((i, res));
                        if failed {
                            break;
                        }
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("partition worker panicked"))
                .collect::<Vec<_>>()
        });
        for (i, res) in results {
            match res {
                Ok((models, harvested, reused)) => solved.push((i, models, harvested, reused)),
                Err(Cancelled) => interrupted = true,
            }
        }
    } else {
        for &i in &misses {
            match solve_partition(
                gp,
                &partitions[i],
                &ss.clauses,
                opts.threads,
                Some(&mut ss.warm),
                cancel,
            ) {
                Ok((models, harvested, reused)) => solved.push((i, models, harvested, reused)),
                Err(Cancelled) => {
                    interrupted = true;
                    break;
                }
            }
        }
    }

    // Merge results into the state (also on the interrupted path: solved
    // components are valid and make the retry cheaper).
    for (i, models, harvested, reused) in solved {
        ss.stats.learned_reused += reused;
        for sc in harvested {
            ss.clauses.push_back(sc);
        }
        ss.models.insert(
            partitions[i].clone(),
            ModelEntry {
                models: models.clone(),
                stamp,
            },
        );
        per_partition[i] = Some(models);
    }
    ss.evict();
    if interrupted {
        return Err(AspError::Interrupted {
            phase: "incremental stable-model resolve",
            partial: per_partition.iter().flatten().count(),
        });
    }

    // Cartesian combination (splitting theorem), then global sort. The
    // product can dwarf the per-partition solves (k components with m
    // models each combine into m^k rows), so the governor is polled here
    // too — partitioned solving must not *reduce* cancellation latency.
    let mut combined: Vec<Model> = vec![Model::new()];
    for models in per_partition {
        let models = models.expect("uninterrupted resolve solved every partition");
        if cancel.check().is_err() {
            return Err(AspError::Interrupted {
                phase: "incremental stable-model resolve",
                partial: combined.len(),
            });
        }
        match models.len() {
            0 => {
                combined.clear();
                break; // a modelless component sinks the whole program
            }
            // The common (deterministic-component) case: append in place
            // instead of re-cloning every accumulated prefix — with k
            // singleton components the naive product is Θ(k²) in total
            // atoms copied, which dwarfs the solves themselves.
            1 => {
                for base in &mut combined {
                    base.extend(models[0].iter().copied());
                }
            }
            _ => {
                let mut next = Vec::with_capacity(combined.len().saturating_mul(models.len()));
                for base in &combined {
                    if cancel.check().is_err() {
                        return Err(AspError::Interrupted {
                            phase: "incremental stable-model resolve",
                            partial: next.len(),
                        });
                    }
                    for m in &models {
                        let mut u = base.clone();
                        u.extend(m.iter().copied());
                        next.push(u);
                    }
                }
                combined = next;
            }
        }
    }
    combined.sort();
    Ok(combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GroundingState;
    use crate::stable::stable_models;
    use crate::syntax::{atom, neg, pos, tv, Program};
    use cqa_relational::i;

    /// A program with several disconnected fact families: p(x) ∨ q(x) per
    /// r(x), with a denial tying p to a side predicate per family.
    fn family_program(members: &[i64]) -> Program {
        let mut p = Program::new();
        p.pred("p", 1).unwrap();
        p.pred("q", 1).unwrap();
        p.pred("bad", 1).unwrap();
        for &m in members {
            p.fact("r", [i(m)]).unwrap();
        }
        p.rule(
            [atom("p", [tv("x")]), atom("q", [tv("x")])],
            [pos(atom("r", [tv("x")]))],
        )
        .unwrap();
        p.rule([], [pos(atom("p", [tv("x")])), pos(atom("bad", [tv("x")]))])
            .unwrap();
        p
    }

    fn resolve_fresh(gs: &GroundingState) -> Vec<Model> {
        let mut ss = SolverState::new();
        resolve_on_state(gs, &mut ss, SolveOptions::default(), &CancelToken::never()).unwrap()
    }

    #[test]
    fn partitioned_resolve_equals_monolithic() {
        let p = family_program(&[1, 2, 3]);
        let gs = GroundingState::new(&p);
        let gp = gs.ground_program();
        let expected = stable_models(gp);
        assert_eq!(resolve_fresh(&gs), expected);
        // 3 disconnected r-families → 2³ = 8 models.
        assert_eq!(expected.len(), 8);
    }

    #[test]
    fn partition_cache_hits_across_deltas() {
        let p = family_program(&[1, 2, 3]);
        let mut gs = GroundingState::new(&p);
        let mut ss = SolverState::new();
        let opts = SolveOptions::default();
        let first = resolve_on_state(&gs, &mut ss, opts, &CancelToken::never()).unwrap();
        assert_eq!(&first, &stable_models(gs.ground_program()));
        let misses_before = ss.stats().partition_misses;
        assert_eq!(ss.stats().partition_hits, 0);

        // A fourth family only adds one component; the three cached ones
        // are reused verbatim.
        gs.add_fact_named("r", [i(4)]).unwrap();
        let second = resolve_on_state(&gs, &mut ss, opts, &CancelToken::never()).unwrap();
        assert_eq!(&second, &stable_models(gs.ground_program()));
        assert_eq!(ss.stats().partition_hits, 3);
        assert_eq!(ss.stats().partition_misses, misses_before + 1);

        // Removing it again restores content the cache still holds: no
        // new solves at all.
        let r = gs.program().pred_id("r").unwrap();
        gs.remove_facts([(r, vec![i(4)])]);
        let third = resolve_on_state(&gs, &mut ss, opts, &CancelToken::never()).unwrap();
        assert_eq!(third, first);
        assert_eq!(ss.stats().partition_misses, misses_before + 1);
    }

    #[test]
    fn threads_do_not_change_the_answer() {
        let p = family_program(&[1, 2, 3, 4, 5]);
        let gs = GroundingState::new(&p);
        let expected = stable_models(gs.ground_program());
        for threads in [1, 2, 4] {
            let mut ss = SolverState::new();
            let got = resolve_on_state(
                &gs,
                &mut ss,
                SolveOptions { threads },
                &CancelToken::never(),
            )
            .unwrap();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn tombstoning_follows_the_retraction_log() {
        // One connected disjunctive component with a denial, so the solve
        // actually learns premise-tracked clauses.
        let mut p = Program::new();
        p.pred("p", 1).unwrap();
        p.pred("q", 1).unwrap();
        for m in 1..=4 {
            p.fact("r", [i(m)]).unwrap();
        }
        p.fact("link", [i(1), i(2)]).unwrap();
        p.fact("link", [i(2), i(3)]).unwrap();
        p.fact("link", [i(3), i(4)]).unwrap();
        p.rule(
            [atom("p", [tv("x")]), atom("q", [tv("x")])],
            [pos(atom("r", [tv("x")]))],
        )
        .unwrap();
        p.rule(
            [],
            [
                pos(atom("link", [tv("x"), tv("y")])),
                pos(atom("p", [tv("x")])),
                pos(atom("p", [tv("y")])),
            ],
        )
        .unwrap();
        let mut gs = GroundingState::new(&p);
        let mut ss = SolverState::new();
        let opts = SolveOptions::default();
        let first = resolve_on_state(&gs, &mut ss, opts, &CancelToken::never()).unwrap();
        assert_eq!(&first, &stable_models(gs.ground_program()));

        // Retract a link: rules over it leave the ground program, and any
        // stored clause premised on them must go too.
        let link = gs.program().pred_id("link").unwrap();
        gs.remove_facts([(link, vec![i(2), i(3)])]);
        let second = resolve_on_state(&gs, &mut ss, opts, &CancelToken::never()).unwrap();
        assert_eq!(&second, &stable_models(gs.ground_program()));
        for sc in &ss.clauses {
            for r in &sc.rules {
                assert!(
                    gs.ground_program().rules.contains(r),
                    "stored clause premised on a rule no longer in the program"
                );
            }
        }
    }

    #[test]
    fn clause_reuse_happens_and_stays_sound() {
        // Churn one family of a multi-family program back and forth; the
        // answers must track the monolithic solver exactly while the
        // stable families' clauses and models are reused.
        let p = family_program(&[1, 2, 3]);
        let mut gs = GroundingState::new(&p);
        let mut ss = SolverState::new();
        let opts = SolveOptions::default();
        for round in 0..6 {
            if round % 2 == 0 {
                gs.add_fact_named("r", [i(9)]).unwrap();
            } else {
                let r = gs.program().pred_id("r").unwrap();
                gs.remove_facts([(r, vec![i(9)])]);
            }
            let got = resolve_on_state(&gs, &mut ss, opts, &CancelToken::never()).unwrap();
            assert_eq!(got, stable_models(gs.ground_program()), "round {round}");
        }
        assert!(ss.stats().partition_hits > 0);
    }

    #[test]
    fn empty_and_denial_only_programs() {
        // No rules at all → the single empty model.
        let p = Program::new();
        let gs = GroundingState::new(&p);
        assert_eq!(resolve_fresh(&gs), vec![Model::new()]);

        // An unsatisfiable component sinks everything.
        let mut p = Program::new();
        p.fact("r", [i(1)]).unwrap();
        p.fact("s", [i(2)]).unwrap();
        p.rule([], [pos(atom("s", [tv("x")]))]).unwrap();
        let gs = GroundingState::new(&p);
        assert_eq!(resolve_fresh(&gs), Vec::<Model>::new());
        assert_eq!(stable_models(gs.ground_program()), Vec::<Model>::new());
    }

    #[test]
    fn cancellation_reports_interrupted() {
        let p = family_program(&[1, 2]);
        let gs = GroundingState::new(&p);
        let mut ss = SolverState::new();
        let tripped = CancelToken::new();
        tripped.cancel();
        match resolve_on_state(&gs, &mut ss, SolveOptions::default(), &tripped) {
            Err(AspError::Interrupted { partial, .. }) => assert_eq!(partial, 0),
            other => panic!("expected Interrupted, got {other:?}"),
        }
        // The same state finishes the job under a fresh token.
        let fresh = CancelToken::never();
        let got = resolve_on_state(&gs, &mut ss, SolveOptions::default(), &fresh).unwrap();
        assert_eq!(got, stable_models(gs.ground_program()));
    }

    #[test]
    fn negation_across_a_component_is_respected() {
        // a ← not b. b ← not a. in one component, plus an unrelated fact
        // family: the product must interleave correctly.
        let mut p = Program::new();
        p.pred("a", 0).unwrap();
        p.pred("b", 0).unwrap();
        p.rule([atom("a", [])], [neg(atom("b", []))]).unwrap();
        p.rule([atom("b", [])], [neg(atom("a", []))]).unwrap();
        p.fact("r", [i(1)]).unwrap();
        p.pred("q", 1).unwrap();
        p.rule(
            [atom("p", [tv("x")]), atom("q", [tv("x")])],
            [pos(atom("r", [tv("x")]))],
        )
        .unwrap();
        let gs = GroundingState::new(&p);
        let expected = stable_models(gs.ground_program());
        assert_eq!(expected.len(), 4);
        assert_eq!(resolve_fresh(&gs), expected);
    }
}
