//! Stable models of ground disjunctive programs (Gelfond–Lifschitz), with
//! cautious/brave reasoning.
//!
//! Enumeration strategy: encode the program as CNF —
//!
//! 1. **Rule clauses**: `head ∨ ¬pos ∨ neg` for every rule;
//! 2. **Support clauses**: for every rule `r` and head atom `a`, an
//!    auxiliary variable `s(r,a)` with `s(r,a) ↔ (pos(r) ∧ ¬neg(r) ∧
//!    ¬(head(r) ∖ {a}))`, and for every atom `a` the clause
//!    `a → ∨ s(r,a)`. Every stable model of a disjunctive program is a
//!    *supported* model in this sense (each true atom has a rule whose
//!    body holds and whose other head atoms are false), so the encoding
//!    prunes the exponential space of unsupported guesses while keeping
//!    all stable models.
//!
//! Each supported model `M` is then checked stable: build the GL-reduct
//! `Π^M` (drop rules with `neg ∩ M ≠ ∅`, then drop negative literals) and
//! test that `M` is a *minimal* model of it. Minimality of a model of a
//! positive disjunctive program is itself coNP, decided here by a second,
//! small CNF search for a strictly smaller model within `M`; for normal
//! (non-disjunctive) programs the least-model fixpoint decides it in
//! polynomial time — the complexity gap of the paper's Section 6 made
//! concrete.

use crate::error::AspError;
use crate::ground::{AtomId, GroundProgram, GroundRule};
use crate::solve::{Cnf, Lit};
use cqa_relational::{CancelToken, Cancelled};
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// A model: the set of true atoms.
pub type Model = BTreeSet<AtomId>;

/// Knobs for the solving entry points that support parallelism.
///
/// `threads > 1` races a small portfolio of diversified CDCL workers on
/// each coNP minimality sub-check (first answer wins; see
/// [`Cnf::satisfiable_portfolio`]) and lets the incremental resolve path
/// fan independent partition solves. The *enumeration* itself stays
/// sequential and lexicographic at every thread count, so the set and
/// order of returned models never depend on `threads`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOptions {
    /// Worker threads for minimality sub-checks and partition fan-out.
    /// `1` (the default) keeps everything on the calling thread.
    pub threads: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions { threads: 1 }
    }
}

/// Warm-start heuristics chained across successive minimality
/// sub-searches: saved phases and variable activities from the previous
/// search seed the next one. Seeding is zip-truncated, so consecutive
/// CNFs of different sizes are fine; it can only re-order the search,
/// never change a verdict.
#[derive(Debug, Default, Clone)]
pub(crate) struct Warm {
    pub phases: Vec<bool>,
    pub acts: Vec<u64>,
    /// Set once a sequential minimality check ran long (see
    /// [`HARD_CHECK_NS`]): from then on `threads > 1` escalates to the
    /// portfolio race. Easy instances resolve checks in microseconds,
    /// where spawning the portfolio's OS threads costs more than the
    /// whole check — so the knob must not engage until a check proves
    /// hard. A heuristic threshold only: both paths return identical
    /// verdicts, so timing jitter cannot change any result.
    pub hard: bool,
}

/// A sequential minimality check running at least this long flips
/// [`Warm::hard`]. A portfolio race pays thread spawns plus a per-worker
/// solver build — construction is proportional to CNF size and runs
/// 1–2 ms on Section-5-scale programs — so escalation only pays once a
/// check's *search* clearly dominates its construction.
const HARD_CHECK_NS: u128 = 5_000_000;

/// Enumerate the stable models, calling `f` for each; `Break` stops early.
pub fn for_each_stable_model<B>(
    gp: &GroundProgram,
    f: impl FnMut(&Model) -> ControlFlow<B>,
) -> ControlFlow<B> {
    for_each_stable_model_cancellable(gp, &CancelToken::never(), f)
        .expect("never-token enumeration cannot be cancelled")
}

/// [`for_each_stable_model`] under a cancellation token. Both the
/// supported-model CDCL enumeration and every coNP minimality sub-search
/// poll the token; models delivered before `Err(Cancelled)` are genuine
/// stable models (the sound prefix of the full enumeration).
pub fn for_each_stable_model_cancellable<B>(
    gp: &GroundProgram,
    cancel: &CancelToken,
    f: impl FnMut(&Model) -> ControlFlow<B>,
) -> Result<ControlFlow<B>, Cancelled> {
    for_each_stable_model_with(gp, SolveOptions::default(), cancel, f)
}

/// [`for_each_stable_model_cancellable`] with explicit [`SolveOptions`].
/// Models arrive in the same (solver-lexicographic) order at every
/// thread count; only the coNP minimality sub-checks are parallelised.
pub fn for_each_stable_model_with<B>(
    gp: &GroundProgram,
    opts: SolveOptions,
    cancel: &CancelToken,
    mut f: impl FnMut(&Model) -> ControlFlow<B>,
) -> Result<ControlFlow<B>, Cancelled> {
    let n = gp.atom_count();
    let cnf = encode(gp);
    // Phases/activities learned in one minimality search seed the next:
    // consecutive candidate models of the same program yield near-identical
    // sub-formulas, so the chained heuristics amortise across the run.
    let mut warm = Warm::default();
    // Cancellation inside the per-model stability check must abort the
    // whole enumeration: smuggle it through the break value.
    let flow = cnf.for_each_model_cancellable(n, cancel, |assignment| {
        let model: Model = (0..n as AtomId)
            .filter(|&a| assignment[a as usize])
            .collect();
        match is_stable_warm(gp, &model, opts, Some(&mut warm), cancel) {
            Err(c) => ControlFlow::Break(Err(c)),
            Ok(false) => ControlFlow::Continue(()),
            Ok(true) => match f(&model) {
                ControlFlow::Break(b) => ControlFlow::Break(Ok(b)),
                ControlFlow::Continue(()) => ControlFlow::Continue(()),
            },
        }
    })?;
    match flow {
        ControlFlow::Continue(()) => Ok(ControlFlow::Continue(())),
        ControlFlow::Break(Ok(b)) => Ok(ControlFlow::Break(b)),
        ControlFlow::Break(Err(c)) => Err(c),
    }
}

/// All stable models, sorted (deterministic order independent of the
/// solver's branching order).
pub fn stable_models(gp: &GroundProgram) -> Vec<Model> {
    stable_models_cancellable(gp, &CancelToken::never())
        .expect("never-token enumeration cannot be interrupted")
}

/// [`stable_models`] under a cancellation token. On interruption returns
/// [`AspError::Interrupted`] whose `partial` counts the stable models
/// fully enumerated and checked before the token tripped.
pub fn stable_models_cancellable(
    gp: &GroundProgram,
    cancel: &CancelToken,
) -> Result<Vec<Model>, AspError> {
    stable_models_with(gp, SolveOptions::default(), cancel)
}

/// [`stable_models_cancellable`] with explicit [`SolveOptions`]. The
/// returned (sorted) model set is identical at every thread count.
pub fn stable_models_with(
    gp: &GroundProgram,
    opts: SolveOptions,
    cancel: &CancelToken,
) -> Result<Vec<Model>, AspError> {
    let mut out = Vec::new();
    let res = for_each_stable_model_with(gp, opts, cancel, |m| {
        out.push(m.clone());
        ControlFlow::<()>::Continue(())
    });
    match res {
        Ok(_) => {
            out.sort();
            Ok(out)
        }
        Err(Cancelled) => Err(AspError::Interrupted {
            phase: "stable-model enumeration",
            partial: out.len(),
        }),
    }
}

/// Cautious consequences: atoms true in *every* stable model.
/// `None` if the program has no stable models (everything follows).
pub fn cautious_consequences(gp: &GroundProgram) -> Option<Model> {
    cautious_consequences_cancellable(gp, &CancelToken::never())
        .expect("never-token enumeration cannot be interrupted")
}

/// [`cautious_consequences`] under a cancellation token. On interruption
/// returns [`AspError::Interrupted`] whose `partial` counts the stable
/// models intersected before the token tripped — the partial intersection
/// itself is *not* returned, because it over-approximates the cautious
/// consequences until every model has been seen.
pub fn cautious_consequences_cancellable(
    gp: &GroundProgram,
    cancel: &CancelToken,
) -> Result<Option<Model>, AspError> {
    let mut acc: Option<Model> = None;
    let mut seen = 0usize;
    let res = for_each_stable_model_cancellable(gp, cancel, |m| {
        seen += 1;
        match &mut acc {
            None => acc = Some(m.clone()),
            Some(inter) => {
                inter.retain(|a| m.contains(a));
                if inter.is_empty() {
                    return ControlFlow::Break(());
                }
            }
        }
        ControlFlow::<()>::Continue(())
    });
    match res {
        Ok(_) => Ok(acc),
        Err(Cancelled) => Err(AspError::Interrupted {
            phase: "cautious consequences",
            partial: seen,
        }),
    }
}

/// Brave consequences: atoms true in *some* stable model.
/// `None` if the program has no stable models.
pub fn brave_consequences(gp: &GroundProgram) -> Option<Model> {
    let mut acc: Option<Model> = None;
    let _ = for_each_stable_model(gp, |m| {
        match &mut acc {
            None => acc = Some(m.clone()),
            Some(seen) => seen.extend(m.iter().copied()),
        }
        ControlFlow::<()>::Continue(())
    });
    acc
}

/// Is `model` a stable model of `gp`?
pub fn is_stable(gp: &GroundProgram, model: &Model) -> bool {
    is_stable_cancellable(gp, model, &CancelToken::never())
        .expect("never-token check cannot be cancelled")
}

/// [`is_stable`] under a cancellation token: the coNP minimality
/// sub-search (disjunctive reducts) polls it per CDCL iteration; the
/// polynomial normal-reduct fast path polls it per fixpoint round.
pub fn is_stable_cancellable(
    gp: &GroundProgram,
    model: &Model,
    cancel: &CancelToken,
) -> Result<bool, Cancelled> {
    is_stable_warm(gp, model, SolveOptions::default(), None, cancel)
}

/// [`is_stable`] with explicit [`SolveOptions`]: `threads > 1` races a
/// portfolio of diversified solvers on the coNP minimality sub-search.
/// The verdict is identical at every thread count.
pub fn is_stable_with(
    gp: &GroundProgram,
    model: &Model,
    opts: SolveOptions,
    cancel: &CancelToken,
) -> Result<bool, Cancelled> {
    is_stable_warm(gp, model, opts, None, cancel)
}

/// Shared body of the `is_stable*` entry points: optional warm-start
/// chaining (sequential callers) and optional portfolio minimality.
pub(crate) fn is_stable_warm(
    gp: &GroundProgram,
    model: &Model,
    opts: SolveOptions,
    warm: Option<&mut Warm>,
    cancel: &CancelToken,
) -> Result<bool, Cancelled> {
    // The GL-reduct: rules whose negative body avoids the model.
    let reduct: Vec<&GroundRule> = gp
        .rules
        .iter()
        .filter(|r| r.neg.iter().all(|n| !model.contains(n)))
        .collect();
    // M must be a model of the reduct…
    for rule in &reduct {
        let body_holds = rule.pos.iter().all(|p| model.contains(p));
        if body_holds && !rule.head.iter().any(|h| model.contains(h)) {
            return Ok(false);
        }
    }
    // …and a minimal one.
    if reduct.iter().all(|r| r.head.len() <= 1) {
        // Normal reduct: minimal model of a definite program = least
        // fixpoint; stable iff lfp == M. Polynomial (Section 6 fast path).
        least_model_equals(&reduct, model, cancel)
    } else {
        Ok(!has_smaller_model(&reduct, model, opts, warm, cancel)?)
    }
}

/// Definite-program least-model check (restricted to rules with bodies in
/// M — others cannot fire below M).
fn least_model_equals(
    reduct: &[&GroundRule],
    model: &Model,
    cancel: &CancelToken,
) -> Result<bool, Cancelled> {
    let mut derived: Model = Model::new();
    loop {
        cancel.check()?;
        let mut grew = false;
        for rule in reduct {
            if rule.head.len() != 1 {
                continue; // denials don't derive
            }
            if rule.pos.iter().all(|p| derived.contains(p)) && derived.insert(rule.head[0]) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    // lfp ⊆ M always (M is a model); stable iff every atom of M derived.
    Ok(&derived == model)
}

/// Search for a model `M′ ⊊ M` of the (positive) reduct: SAT over the
/// atoms of M with "keep" variables. With a `warm` store it seeds (and
/// then refreshes) chained phase/activity heuristics; `opts.threads > 1`
/// escalates to a first-answer-wins portfolio race — immediately for
/// standalone checks, adaptively (once a check proves hard) inside an
/// enumeration, so easy instances never pay thread-spawn overhead.
fn has_smaller_model(
    reduct: &[&GroundRule],
    model: &Model,
    opts: SolveOptions,
    warm: Option<&mut Warm>,
    cancel: &CancelToken,
) -> Result<bool, Cancelled> {
    let atoms: Vec<AtomId> = model.iter().copied().collect();
    let var_of = |a: AtomId| -> Option<u32> { atoms.binary_search(&a).ok().map(|i| i as u32) };
    let mut cnf = Cnf::new(atoms.len());
    for rule in reduct {
        // Atoms outside M in the positive body keep the rule satisfied in
        // any M′ ⊆ M.
        if rule.pos.iter().any(|p| !model.contains(p)) {
            continue;
        }
        // keep(pos) → ∨ keep(head ∩ M)
        let mut clause: Vec<Lit> = rule
            .pos
            .iter()
            .map(|&p| Lit::neg(var_of(p).expect("pos ⊆ M")))
            .collect();
        for h in &rule.head {
            if let Some(v) = var_of(*h) {
                clause.push(Lit::pos(v));
            }
        }
        cnf.add_clause(clause);
    }
    // Strictly smaller: at least one atom dropped.
    cnf.add_clause((0..atoms.len() as u32).map(Lit::neg));
    if let Some(w) = warm {
        if opts.threads > 1 && w.hard {
            // The portfolio diversifies phases itself; warm seeds would
            // only de-diversify the workers.
            return cnf.satisfiable_portfolio(opts.threads, cancel);
        }
        let start = std::time::Instant::now();
        let (sat, phases, acts) = cnf.satisfiable_warm(cancel, &w.phases, &w.acts)?;
        if opts.threads > 1 && start.elapsed().as_nanos() >= HARD_CHECK_NS {
            w.hard = true;
        }
        w.phases = phases;
        w.acts = acts;
        return Ok(sat);
    }
    if opts.threads > 1 {
        // A standalone check has no history to adapt from; the spawn
        // overhead is paid once, not per candidate.
        return cnf.satisfiable_portfolio(opts.threads, cancel);
    }
    cnf.satisfiable_cancellable(cancel)
}

/// A supported-model encoding plus the variable layout incremental
/// consumers need to decode solver literals back into program objects:
/// variables `0..atom_count` are the program's atoms, and variable
/// `support_base[ri] + hi` is the support variable of head slot `hi` of
/// rule `ri`.
pub(crate) struct Encoded {
    pub cnf: Cnf,
    pub support_base: Vec<u32>,
}

/// CNF encoding: rule clauses + support clauses (see module docs).
fn encode(gp: &GroundProgram) -> Cnf {
    encode_impl(gp, false).cnf
}

/// [`encode`] with per-clause premise tags for learned-clause reuse
/// (identical clauses in identical order; only the tags differ):
///
/// * rule clause and support definitions of rule `ri` — premise `{ri}`;
/// * the completion clause `a → ∨ supports(a)` — premise
///   `{rules_len + a} ∪ {ri : a ∈ head(ri)}`. The marker id records that
///   the clause is definitional for atom `a`'s *exact* head-rule set: it
///   is only valid in a program whose rules heading `a` are exactly the
///   heading rules recorded in the premise.
pub(crate) fn encode_tagged(gp: &GroundProgram) -> Encoded {
    encode_impl(gp, true)
}

fn encode_impl(gp: &GroundProgram, tagged: bool) -> Encoded {
    let n = gp.atom_count();
    let rules_len = gp.rules.len() as u32;
    // Auxiliary support variables, one per (rule, head-atom) pair,
    // allocated consecutively per rule.
    let mut support_base: Vec<u32> = Vec::with_capacity(gp.rules.len());
    let mut next = n as u32;
    for rule in &gp.rules {
        support_base.push(next);
        next += rule.head.len() as u32;
    }
    let mut cnf = Cnf::new(next as usize);
    // Supports of each atom, and (tagged only) the rules heading it.
    let mut supports: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut heading: Vec<Vec<u32>> = vec![Vec::new(); if tagged { n } else { 0 }];

    for (ri, rule) in gp.rules.iter().enumerate() {
        let tag = ri as u32;
        let emit = |cnf: &mut Cnf, lits: Vec<Lit>| {
            if tagged {
                cnf.add_clause_premised(lits, [tag]);
            } else {
                cnf.add_clause(lits);
            }
        };
        // Rule clause: ∨ head ∨ ¬pos ∨ neg.
        let clause = rule
            .head
            .iter()
            .map(|&h| Lit::pos(h))
            .chain(rule.pos.iter().map(|&p| Lit::neg(p)))
            .chain(rule.neg.iter().map(|&m| Lit::pos(m)))
            .collect();
        emit(&mut cnf, clause);

        // Support definitions.
        for (hi, &a) in rule.head.iter().enumerate() {
            let s = support_base[ri] + hi as u32;
            supports[a as usize].push(s);
            if tagged {
                heading[a as usize].push(tag);
            }
            // s → pos true, neg false, other heads false.
            let mut condition: Vec<Lit> = Vec::new();
            for &p in &rule.pos {
                emit(&mut cnf, vec![Lit::neg(s), Lit::pos(p)]);
                condition.push(Lit::neg(p));
            }
            for &m in &rule.neg {
                emit(&mut cnf, vec![Lit::neg(s), Lit::neg(m)]);
                condition.push(Lit::pos(m));
            }
            for (hj, &b) in rule.head.iter().enumerate() {
                if hj != hi {
                    emit(&mut cnf, vec![Lit::neg(s), Lit::neg(b)]);
                    condition.push(Lit::pos(b));
                }
            }
            // Completion: condition → s (makes s functionally determined,
            // so each supported model appears exactly once).
            condition.push(Lit::pos(s));
            emit(&mut cnf, condition);
        }
    }
    // a → ∨ supports(a).
    for (a, sup) in supports.iter().enumerate() {
        let mut clause = vec![Lit::neg(a as u32)];
        clause.extend(sup.iter().map(|&s| Lit::pos(s)));
        if tagged {
            let premise = std::iter::once(rules_len + a as u32).chain(heading[a].iter().copied());
            cnf.add_clause_premised(clause, premise);
        } else {
            cnf.add_clause(clause);
        }
    }
    Encoded { cnf, support_base }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::ground;
    use crate::syntax::{atom, neg, pos, tv, Program};
    use cqa_relational::{i, s, Value};

    fn models_of(p: &Program) -> Vec<Vec<String>> {
        let gp = ground(p);
        stable_models(&gp)
            .into_iter()
            .map(|m| {
                m.iter()
                    .map(|&a| crate::display::ground_atom_to_string(p, gp.atom(a)))
                    .collect()
            })
            .collect()
    }

    /// Brute-force stable-model oracle: enumerate all subsets of atoms.
    fn oracle(gp: &GroundProgram) -> Vec<Model> {
        let n = gp.atom_count();
        assert!(n <= 16, "oracle only for tiny programs");
        let mut out = Vec::new();
        for mask in 0u32..(1 << n) {
            let m: Model = (0..n as AtomId).filter(|&a| mask & (1 << a) != 0).collect();
            // classical model check
            let classical = gp.rules.iter().all(|r| {
                let body =
                    r.pos.iter().all(|p| m.contains(p)) && r.neg.iter().all(|x| !m.contains(x));
                !body || r.head.iter().any(|h| m.contains(h))
            });
            if classical && is_stable(gp, &m) {
                out.push(m);
            }
        }
        out
    }

    #[test]
    fn facts_alone_have_one_stable_model() {
        let mut p = Program::new();
        p.fact("r", [i(1)]).unwrap();
        p.fact("r", [i(2)]).unwrap();
        let gp = ground(&p);
        let models = stable_models(&gp);
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].len(), 2);
        assert_eq!(models, oracle(&gp));
    }

    #[test]
    fn disjunctive_fact_gives_two_minimal_models() {
        // a ∨ b. → stable models {a}, {b} (not {a,b}: not minimal).
        let mut p = Program::new();
        p.pred("a", 0).unwrap();
        p.pred("b", 0).unwrap();
        p.rule([atom("a", []), atom("b", [])], []).unwrap();
        let gp = ground(&p);
        let models = stable_models(&gp);
        assert_eq!(models.len(), 2);
        assert!(models.iter().all(|m| m.len() == 1));
        assert_eq!(models, oracle(&gp));
    }

    #[test]
    fn negation_choice_program() {
        // a ← not b. b ← not a. → {a}, {b}.
        let mut p = Program::new();
        p.pred("a", 0).unwrap();
        p.pred("b", 0).unwrap();
        p.rule([atom("a", [])], [neg(atom("b", []))]).unwrap();
        p.rule([atom("b", [])], [neg(atom("a", []))]).unwrap();
        let gp = ground(&p);
        let models = stable_models(&gp);
        assert_eq!(models.len(), 2);
        assert_eq!(models, oracle(&gp));
    }

    #[test]
    fn odd_loop_has_no_stable_model() {
        // a ← not a. → no stable model.
        let mut p = Program::new();
        p.pred("a", 0).unwrap();
        p.rule([atom("a", [])], [neg(atom("a", []))]).unwrap();
        let gp = ground(&p);
        assert!(stable_models(&gp).is_empty());
        assert!(cautious_consequences(&gp).is_none());
        assert_eq!(oracle(&gp), Vec::<Model>::new());
    }

    #[test]
    fn positive_loop_is_unfounded() {
        // a ← b. b ← a. → only {} stable ({a,b} is supported but unfounded).
        let mut p = Program::new();
        p.pred("a", 0).unwrap();
        p.pred("b", 0).unwrap();
        p.rule([atom("a", [])], [pos(atom("b", []))]).unwrap();
        p.rule([atom("b", [])], [pos(atom("a", []))]).unwrap();
        let gp = ground(&p);
        let models = stable_models(&gp);
        assert_eq!(models.len(), 1);
        assert!(models[0].is_empty());
        assert_eq!(models, oracle(&gp));
    }

    #[test]
    fn denial_filters_models() {
        // a ∨ b. ← a. → only {b}.
        let mut p = Program::new();
        p.pred("a", 0).unwrap();
        p.pred("b", 0).unwrap();
        p.rule([atom("a", []), atom("b", [])], []).unwrap();
        p.rule([], [pos(atom("a", []))]).unwrap();
        let gp = ground(&p);
        let models = stable_models(&gp);
        assert_eq!(models.len(), 1);
        assert_eq!(models, oracle(&gp));
    }

    #[test]
    fn disjunction_with_shared_consequence() {
        // a ∨ b. c ← a. c ← b. → {a,c}, {b,c}.
        let mut p = Program::new();
        for q in ["a", "b", "c"] {
            p.pred(q, 0).unwrap();
        }
        p.rule([atom("a", []), atom("b", [])], []).unwrap();
        p.rule([atom("c", [])], [pos(atom("a", []))]).unwrap();
        p.rule([atom("c", [])], [pos(atom("b", []))]).unwrap();
        let gp = ground(&p);
        let models = stable_models(&gp);
        assert_eq!(models.len(), 2);
        assert!(models.iter().all(|m| m.len() == 2));
        assert_eq!(models, oracle(&gp));
    }

    #[test]
    fn non_hcf_program_stable_models() {
        // The classic non-HCF example: a ∨ b. a ← b. b ← a.
        // Minimal models of the reduct: {a,b} is the unique stable model?
        // Check against the oracle rather than intuition.
        let mut p = Program::new();
        p.pred("a", 0).unwrap();
        p.pred("b", 0).unwrap();
        p.rule([atom("a", []), atom("b", [])], []).unwrap();
        p.rule([atom("a", [])], [pos(atom("b", []))]).unwrap();
        p.rule([atom("b", [])], [pos(atom("a", []))]).unwrap();
        let gp = ground(&p);
        assert_eq!(stable_models(&gp), oracle(&gp));
    }

    #[test]
    fn cautious_and_brave() {
        // a ∨ b. c. → cautious {c}, brave {a,b,c}.
        let mut p = Program::new();
        p.pred("a", 0).unwrap();
        p.pred("b", 0).unwrap();
        p.fact("c", []).unwrap();
        p.rule([atom("a", []), atom("b", [])], []).unwrap();
        let gp = ground(&p);
        let cautious = cautious_consequences(&gp).unwrap();
        let brave = brave_consequences(&gp).unwrap();
        assert_eq!(cautious.len(), 1);
        assert_eq!(brave.len(), 3);
    }

    #[test]
    fn grounded_variables_and_negation() {
        // q(x) ← r(x), not bad(x). with bad(2) a fact.
        let mut p = Program::new();
        p.fact("r", [i(1)]).unwrap();
        p.fact("r", [i(2)]).unwrap();
        p.fact("bad", [i(2)]).unwrap();
        p.rule(
            [atom("q", [tv("x")])],
            [pos(atom("r", [tv("x")])), neg(atom("bad", [tv("x")]))],
        )
        .unwrap();
        let models = models_of(&p);
        assert_eq!(models.len(), 1);
        assert!(models[0].contains(&"q(1)".to_string()));
        assert!(!models[0].contains(&"q(2)".to_string()));
    }

    #[test]
    fn cancellation_interrupts_enumeration() {
        // a ∨ b. → two models. A pre-tripped token interrupts before any
        // model is produced; a fresh token reproduces the ungoverned call.
        let mut p = Program::new();
        p.pred("a", 0).unwrap();
        p.pred("b", 0).unwrap();
        p.rule([atom("a", []), atom("b", [])], []).unwrap();
        let gp = ground(&p);
        let tripped = CancelToken::new();
        tripped.cancel();
        match stable_models_cancellable(&gp, &tripped) {
            Err(AspError::Interrupted { partial, .. }) => assert_eq!(partial, 0),
            other => panic!("expected Interrupted, got {other:?}"),
        }
        assert!(matches!(
            cautious_consequences_cancellable(&gp, &tripped),
            Err(AspError::Interrupted { .. })
        ));
        let fresh = CancelToken::new();
        assert_eq!(
            stable_models_cancellable(&gp, &fresh).unwrap(),
            stable_models(&gp)
        );
    }

    #[test]
    fn string_constants_work() {
        let mut p = Program::new();
        p.fact("r", [Value::str("x"), s("y")]).unwrap();
        p.rule(
            [atom("swap", [tv("b"), tv("a")])],
            [pos(atom("r", [tv("a"), tv("b")]))],
        )
        .unwrap();
        let models = models_of(&p);
        assert!(models[0].contains(&"swap(y, x)".to_string()));
    }

    /// A mixed program exercising disjunction, negation and facts, for
    /// the encoding and threading tests below.
    fn mixed_program() -> GroundProgram {
        let mut p = Program::new();
        for q in ["a", "b", "c", "d"] {
            p.pred(q, 0).unwrap();
        }
        p.fact("r", [i(1)]).unwrap();
        p.rule([atom("a", []), atom("b", [])], []).unwrap();
        p.rule([atom("c", [])], [pos(atom("a", [])), neg(atom("d", []))])
            .unwrap();
        p.rule([atom("a", [])], [pos(atom("b", []))]).unwrap();
        p.rule([atom("b", [])], [pos(atom("a", []))]).unwrap();
        p.rule([], [pos(atom("d", []))]).unwrap();
        ground(&p)
    }

    #[test]
    fn tagged_encoding_matches_untagged_clause_for_clause() {
        let gp = mixed_program();
        let plain = encode(&gp);
        let tagged = encode_tagged(&gp);
        assert_eq!(plain.num_vars(), tagged.cnf.num_vars());
        assert_eq!(plain.clauses, tagged.cnf.clauses);
        // Every untagged premise is None; every tagged premise is Some
        // (nothing here overflows PREMISE_CAP).
        assert!(plain.premises.iter().all(|p| p.is_none()));
        assert!(tagged.cnf.premises.iter().all(|p| p.is_some()));
        // Support-variable layout covers exactly the auxiliary range.
        let heads: u32 = gp.rules.iter().map(|r| r.head.len() as u32).sum();
        assert_eq!(tagged.support_base.len(), gp.rules.len());
        assert_eq!(tagged.cnf.num_vars(), gp.atom_count() + heads as usize);
        // Completion premises carry the head-marker id and the heading
        // rule slots; the marker id space starts past the rule slots.
        let rules_len = gp.rules.len() as u32;
        let completion_tail = &tagged.cnf.premises[tagged.cnf.premises.len() - gp.atom_count()..];
        for p in completion_tail {
            let p = p.as_ref().unwrap();
            assert!(
                p.iter().any(|&t| t >= rules_len),
                "missing head marker in {p:?}"
            );
        }
    }

    #[test]
    fn solve_options_threads_never_change_the_models() {
        let gp = mixed_program();
        let baseline = stable_models(&gp);
        for threads in [1, 2, 4] {
            let got =
                stable_models_with(&gp, SolveOptions { threads }, &CancelToken::never()).unwrap();
            assert_eq!(got, baseline, "threads={threads}");
            for m in &baseline {
                assert!(
                    is_stable_with(&gp, m, SolveOptions { threads }, &CancelToken::never())
                        .unwrap()
                );
            }
        }
        assert_eq!(baseline, oracle(&gp));
    }
}
