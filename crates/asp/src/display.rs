//! Pretty printing for programs, rules and ground atoms — the format used
//! when reproducing the paper's Example 21/22 program listings.

use crate::ground::{GroundAtom, GroundProgram};
use crate::syntax::{Literal, Program, Rule, Term};
use cqa_relational::Value;
use std::fmt::Write as _;

fn term_to_string(rule: &Rule, t: &Term) -> String {
    match t {
        Term::Var(v) => rule.var_names[*v as usize].clone(),
        Term::Const(c) => const_to_string(c),
    }
}

fn const_to_string(v: &Value) -> String {
    match v {
        Value::Sym(s) => s.as_str().to_string(),
        other => other.to_string(),
    }
}

fn atom_to_string(program: &Program, rule: &Rule, a: &crate::syntax::RuleAtom) -> String {
    if a.terms.is_empty() {
        return program.pred_name(a.pred).to_string();
    }
    let args: Vec<String> = a.terms.iter().map(|t| term_to_string(rule, t)).collect();
    format!("{}({})", program.pred_name(a.pred), args.join(", "))
}

/// Render one rule, e.g. `q(x) :- r(x, y), not s(y), y != null.`
pub fn rule_to_string(program: &Program, rule: &Rule) -> String {
    let head: Vec<String> = rule
        .head
        .iter()
        .map(|a| atom_to_string(program, rule, a))
        .collect();
    let body: Vec<String> = rule
        .body
        .iter()
        .map(|lit| match lit {
            Literal::Pos(a) => atom_to_string(program, rule, a),
            Literal::Neg(a) => format!("not {}", atom_to_string(program, rule, a)),
            Literal::Cmp(op, l, r) => format!(
                "{} {} {}",
                term_to_string(rule, l),
                op.symbol(),
                term_to_string(rule, r)
            ),
        })
        .collect();
    match (head.is_empty(), body.is_empty()) {
        (true, _) => format!(":- {}.", body.join(", ")),
        (false, true) => format!("{}.", head.join(" v ")),
        (false, false) => format!("{} :- {}.", head.join(" v "), body.join(", ")),
    }
}

/// Render the whole program: facts, then rules.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for (pred, args) in program.facts() {
        if args.is_empty() {
            let _ = writeln!(out, "{}.", program.pred_name(*pred));
        } else {
            let rendered: Vec<String> = args.iter().map(const_to_string).collect();
            let _ = writeln!(
                out,
                "{}({}).",
                program.pred_name(*pred),
                rendered.join(", ")
            );
        }
    }
    for rule in program.rules() {
        let _ = writeln!(out, "{}", rule_to_string(program, rule));
    }
    out
}

/// Render a ground atom, e.g. `r(a, null)`.
pub fn ground_atom_to_string(program: &Program, atom: &GroundAtom) -> String {
    if atom.args.is_empty() {
        return program.pred_name(atom.pred).to_string();
    }
    let args: Vec<String> = atom.args.iter().map(const_to_string).collect();
    format!("{}({})", program.pred_name(atom.pred), args.join(", "))
}

/// Render a model as a sorted atom set `{a, b(1), …}`.
pub fn model_to_string(
    program: &Program,
    gp: &GroundProgram,
    model: &crate::stable::Model,
) -> String {
    let atoms: Vec<String> = model
        .iter()
        .map(|&a| ground_atom_to_string(program, gp.atom(a)))
        .collect();
    format!("{{{}}}", atoms.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::ground;
    use crate::stable::stable_models;
    use crate::syntax::{atom, cmp, neg, pos, tc, tv, BuiltinOp, Program};
    use cqa_relational::{null, s};

    #[test]
    fn rule_rendering_matches_paper_style() {
        let mut p = Program::new();
        p.rule(
            [atom("q", [tv("x")]), atom("r", [tv("x")])],
            [
                pos(atom("s", [tv("x"), tv("y")])),
                neg(atom("t", [tv("y")])),
                cmp(tv("x"), BuiltinOp::Neq, tc(null())),
            ],
        )
        .unwrap();
        assert_eq!(
            rule_to_string(&p, &p.rules()[0]),
            "q(x) v r(x) :- s(x, y), not t(y), x != null."
        );
    }

    #[test]
    fn denial_rendering() {
        let mut p = Program::new();
        p.fact("a", [s("1")]).unwrap();
        p.rule([], [pos(atom("a", [tv("x")]))]).unwrap();
        let text = program_to_string(&p);
        assert!(text.contains("a(1)."));
        assert!(text.contains(":- a(x)."));
    }

    #[test]
    fn model_rendering() {
        let mut p = Program::new();
        p.fact("a", [s("c1")]).unwrap();
        let gp = ground(&p);
        let models = stable_models(&gp);
        assert_eq!(model_to_string(&p, &gp, &models[0]), "{a(c1)}");
    }
}
