#![warn(missing_docs)]

//! # cqa-asp
//!
//! A from-scratch disjunctive logic-programming engine with stable-model
//! semantics — the substrate the paper (Bravo & Bertossi, EDBT 2006,
//! Section 5) runs its repair programs on. The paper uses the DLV system;
//! this crate implements the required fragment natively:
//!
//! * function-free disjunctive rules with default negation and builtin
//!   comparisons (`=`, `≠`, `<`, `≤`, `>`, `≥`) over a finite domain;
//! * program denials (rules with empty heads);
//! * intelligent grounding (possibly-true fixpoint, then rule
//!   instantiation with negative literals resolved against the fixpoint);
//! * enumeration of **stable models** (Gelfond & Lifschitz): classical
//!   models are enumerated by a small DPLL engine over the rule clauses
//!   plus Clark-style support clauses (every true atom needs a supporting
//!   rule whose other head atoms are false), then each candidate passes a
//!   GL-reduct minimality test;
//! * cautious and brave consequences (cautious reasoning is what turns
//!   repair programs into consistent query answering);
//! * head-cycle-freeness (Ben-Eliyahu & Dechter) on the ground dependency
//!   graph, and the shift transformation `sh(Π)` to non-disjunctive
//!   programs (the paper's Section 6);
//! * a polynomial least-model fast path for the stability test of
//!   non-disjunctive programs — the concrete source of the complexity drop
//!   in Corollary 1.
//!
//! The engine is deliberately deterministic: atoms, rules and models are
//! kept and reported in stable orders so that repair enumeration and tests
//! are reproducible.

pub mod display;
pub mod error;
pub mod ground;
pub mod hcf;
pub mod resolve;
pub mod solve;
pub mod stable;
pub mod syntax;

pub use error::AspError;
pub use ground::{
    ground, ground_cancellable, AtomId, GroundAtom, GroundProgram, GroundRule, GroundingState,
};
pub use hcf::{is_hcf, shift};
pub use resolve::{resolve_on_state, SolverState, SolverStateStats};
pub use stable::{
    brave_consequences, cautious_consequences, cautious_consequences_cancellable, is_stable,
    is_stable_cancellable, is_stable_with, stable_models, stable_models_cancellable,
    stable_models_with, SolveOptions,
};
pub use syntax::{
    atom, cmp, neg, pos, tc, tv, AtomSpec, BodyLit, BuiltinOp, PredId, Program, Rule, TermSpec,
};
