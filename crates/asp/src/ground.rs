//! Intelligent grounding: instantiate a non-ground program over its
//! possibly-true Herbrand subset.
//!
//! Phase 1 computes the *possibly-true* atom set `PT`: the least fixpoint
//! of the rules with negative literals ignored (an over-approximation of
//! every atom that can be true in any stable model). Phase 2 re-instantiates
//! each rule against `PT`, evaluating builtins and resolving negative
//! literals whose atoms are definitely false (`∉ PT`), and emits ground
//! rules over dense atom ids. Tautological instances (a head atom also in
//! the positive body) are dropped.

use crate::syntax::{Literal, PredId, Program, Rule, Term};
use cqa_relational::Value;
use std::collections::{BTreeSet, HashMap};

/// Dense ground-atom identifier.
pub type AtomId = u32;

/// A ground atom: predicate plus constant arguments.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundAtom {
    /// Predicate.
    pub pred: PredId,
    /// Ground arguments.
    pub args: Vec<Value>,
}

/// A ground rule over atom ids: `head ← pos, not neg`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroundRule {
    /// Disjunctive head (empty = denial).
    pub head: Vec<AtomId>,
    /// Positive body atoms.
    pub pos: Vec<AtomId>,
    /// Negated body atoms.
    pub neg: Vec<AtomId>,
}

/// The ground program: an atom table plus ground rules. Facts are rules
/// with empty bodies.
#[derive(Debug, Clone, Default)]
pub struct GroundProgram {
    atoms: Vec<GroundAtom>,
    index: HashMap<GroundAtom, AtomId>,
    /// Ground rules, deduplicated, in deterministic order.
    pub rules: Vec<GroundRule>,
}

impl GroundProgram {
    /// Register (or look up) a ground atom.
    pub fn intern(&mut self, atom: GroundAtom) -> AtomId {
        if let Some(&id) = self.index.get(&atom) {
            return id;
        }
        let id = self.atoms.len() as AtomId;
        self.atoms.push(atom.clone());
        self.index.insert(atom, id);
        id
    }

    /// Look up an atom id.
    pub fn atom_id(&self, atom: &GroundAtom) -> Option<AtomId> {
        self.index.get(atom).copied()
    }

    /// The atom for an id.
    pub fn atom(&self, id: AtomId) -> &GroundAtom {
        &self.atoms[id as usize]
    }

    /// Number of interned atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// All atoms with their ids.
    pub fn atoms(&self) -> impl Iterator<Item = (AtomId, &GroundAtom)> {
        self.atoms.iter().enumerate().map(|(i, a)| (i as AtomId, a))
    }

    /// Is every rule non-disjunctive (|head| ≤ 1)?
    pub fn is_normal(&self) -> bool {
        self.rules.iter().all(|r| r.head.len() <= 1)
    }

    /// Add a rule (dedup is the caller's concern; [`ground`] dedups).
    pub fn push_rule(&mut self, rule: GroundRule) {
        self.rules.push(rule);
    }
}

/// Ground `program`.
pub fn ground(program: &Program) -> GroundProgram {
    let mut gp = GroundProgram::default();

    // Possibly-true set, indexed by predicate for joins.
    let mut pt_by_pred: Vec<BTreeSet<Vec<Value>>> = vec![BTreeSet::new(); program.pred_count()];
    for (pred, args) in program.facts() {
        pt_by_pred[pred.index()].insert(args.clone());
    }

    // Phase 1: least fixpoint ignoring negation. New head atoms are
    // buffered per round (the join borrows the possibly-true set).
    loop {
        let mut buffer: Vec<(PredId, Vec<Value>)> = Vec::new();
        for rule in program.rules() {
            instantiate(rule, &pt_by_pred, &mut |bindings| {
                for h in &rule.head {
                    let args = ground_args(&h.terms, bindings);
                    if !pt_by_pred[h.pred.index()].contains(&args) {
                        buffer.push((h.pred, args));
                    }
                }
            });
        }
        let mut grew = false;
        for (pred, args) in buffer {
            if pt_by_pred[pred.index()].insert(args) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Phase 2: emit ground rules. Facts first (stable ids for facts).
    let mut seen_rules: BTreeSet<GroundRule> = BTreeSet::new();
    for (pred, args) in program.facts() {
        let id = gp.intern(GroundAtom {
            pred: *pred,
            args: args.clone(),
        });
        let rule = GroundRule {
            head: vec![id],
            pos: vec![],
            neg: vec![],
        };
        if seen_rules.insert(rule.clone()) {
            gp.push_rule(rule);
        }
    }
    for rule in program.rules() {
        // Capture instantiations first (interning needs &mut gp).
        let mut instances: Vec<Vec<Value>> = Vec::new();
        instantiate(rule, &pt_by_pred, &mut |bindings| {
            instances.push(bindings.iter().map(|b| (*b).expect("safe rule")).collect());
        });
        'instances: for bindings in instances {
            let opt: Vec<Option<Value>> = bindings.into_iter().map(Some).collect();
            let mut head = Vec::with_capacity(rule.head.len());
            for h in &rule.head {
                let args = ground_args(&h.terms, &opt);
                head.push(gp.intern(GroundAtom { pred: h.pred, args }));
            }
            let mut pos_ids = Vec::new();
            let mut neg_ids = Vec::new();
            for lit in &rule.body {
                match lit {
                    Literal::Pos(a) => {
                        let args = ground_args(&a.terms, &opt);
                        pos_ids.push(gp.intern(GroundAtom { pred: a.pred, args }));
                    }
                    Literal::Neg(a) => {
                        let args = ground_args(&a.terms, &opt);
                        if pt_by_pred[a.pred.index()].contains(&args) {
                            neg_ids.push(gp.intern(GroundAtom { pred: a.pred, args }));
                        }
                        // else: definitely false → literal true → drop.
                    }
                    Literal::Cmp(..) => {} // evaluated during instantiation
                }
            }
            // Tautology: head atom in positive body.
            for h in &head {
                if pos_ids.contains(h) {
                    continue 'instances;
                }
            }
            head.sort_unstable();
            head.dedup();
            pos_ids.sort_unstable();
            pos_ids.dedup();
            neg_ids.sort_unstable();
            neg_ids.dedup();
            let grule = GroundRule {
                head,
                pos: pos_ids,
                neg: neg_ids,
            };
            if seen_rules.insert(grule.clone()) {
                gp.push_rule(grule);
            }
        }
    }
    gp
}

fn ground_args(terms: &[Term], bindings: &[Option<Value>]) -> Vec<Value> {
    terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => *c,
            Term::Var(v) => bindings[*v as usize].expect("variable bound by safety"),
        })
        .collect()
}

/// Enumerate all substitutions satisfying the positive body against `pt`
/// and all builtins; negative literals are ignored here.
fn instantiate(rule: &Rule, pt: &[BTreeSet<Vec<Value>>], f: &mut impl FnMut(&[Option<Value>])) {
    let positives: Vec<&crate::syntax::RuleAtom> = rule
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
        .collect();
    let mut bindings: Vec<Option<Value>> = vec![None; rule.var_names.len()];
    rec(rule, &positives, pt, 0, &mut bindings, f);

    fn rec(
        rule: &Rule,
        positives: &[&crate::syntax::RuleAtom],
        pt: &[BTreeSet<Vec<Value>>],
        depth: usize,
        bindings: &mut Vec<Option<Value>>,
        f: &mut impl FnMut(&[Option<Value>]),
    ) {
        if depth == positives.len() {
            // All variables bound (safety). Check builtins.
            for lit in &rule.body {
                if let Literal::Cmp(op, l, r) = lit {
                    let lv = term_val(l, bindings);
                    let rv = term_val(r, bindings);
                    if !op.eval(lv, rv) {
                        return;
                    }
                }
            }
            f(bindings);
            return;
        }
        let atom = positives[depth];
        'rows: for row in &pt[atom.pred.index()] {
            let mut newly: Vec<u32> = Vec::new();
            for (val, term) in row.iter().zip(&atom.terms) {
                match term {
                    Term::Const(c) => {
                        if val != c {
                            undo(bindings, &newly);
                            continue 'rows;
                        }
                    }
                    Term::Var(v) => match &bindings[*v as usize] {
                        Some(b) => {
                            if b != val {
                                undo(bindings, &newly);
                                continue 'rows;
                            }
                        }
                        None => {
                            bindings[*v as usize] = Some(*val);
                            newly.push(*v);
                        }
                    },
                }
            }
            rec(rule, positives, pt, depth + 1, bindings, f);
            undo(bindings, &newly);
        }
    }

    fn term_val<'a>(t: &'a Term, bindings: &'a [Option<Value>]) -> &'a Value {
        match t {
            Term::Const(c) => c,
            Term::Var(v) => bindings[*v as usize].as_ref().expect("bound by safety"),
        }
    }

    fn undo(bindings: &mut [Option<Value>], newly: &[u32]) {
        for v in newly {
            bindings[*v as usize] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{atom, cmp, neg, pos, tc, tv, BuiltinOp, Program};
    use cqa_relational::{i, s};

    #[test]
    fn facts_become_unit_rules() {
        let mut p = Program::new();
        p.fact("r", [s("a")]).unwrap();
        p.fact("r", [s("b")]).unwrap();
        let gp = ground(&p);
        assert_eq!(gp.atom_count(), 2);
        assert_eq!(gp.rules.len(), 2);
        assert!(gp
            .rules
            .iter()
            .all(|r| r.pos.is_empty() && r.head.len() == 1));
    }

    #[test]
    fn transitive_closure_fixpoint() {
        // path(x,y) ← edge(x,y); path(x,z) ← edge(x,y), path(y,z).
        let mut p = Program::new();
        p.fact("edge", [i(1), i(2)]).unwrap();
        p.fact("edge", [i(2), i(3)]).unwrap();
        p.rule(
            [atom("path", [tv("x"), tv("y")])],
            [pos(atom("edge", [tv("x"), tv("y")]))],
        )
        .unwrap();
        p.rule(
            [atom("path", [tv("x"), tv("z")])],
            [
                pos(atom("edge", [tv("x"), tv("y")])),
                pos(atom("path", [tv("y"), tv("z")])),
            ],
        )
        .unwrap();
        let gp = ground(&p);
        let path = p.pred_id("path").unwrap();
        let derived: Vec<&GroundAtom> = gp
            .atoms()
            .map(|(_, a)| a)
            .filter(|a| a.pred == path)
            .collect();
        // path(1,2), path(2,3), path(1,3)
        assert_eq!(derived.len(), 3);
    }

    #[test]
    fn builtins_filter_instances() {
        let mut p = Program::new();
        p.fact("n", [i(1)]).unwrap();
        p.fact("n", [i(5)]).unwrap();
        p.rule(
            [atom("big", [tv("x")])],
            [
                pos(atom("n", [tv("x")])),
                cmp(tv("x"), BuiltinOp::Gt, tc(i(3))),
            ],
        )
        .unwrap();
        let gp = ground(&p);
        let big = p.pred_id("big").unwrap();
        let derived: Vec<&GroundAtom> = gp
            .atoms()
            .map(|(_, a)| a)
            .filter(|a| a.pred == big)
            .collect();
        assert_eq!(derived.len(), 1);
        assert_eq!(derived[0].args, vec![i(5)]);
    }

    #[test]
    fn definitely_false_negatives_are_dropped() {
        // q(x) ← n(x), not m(x): m is never derivable → literal vanishes.
        let mut p = Program::new();
        p.fact("n", [i(1)]).unwrap();
        p.pred("m", 1).unwrap();
        p.rule(
            [atom("q", [tv("x")])],
            [pos(atom("n", [tv("x")])), neg(atom("m", [tv("x")]))],
        )
        .unwrap();
        let gp = ground(&p);
        let q_rule = gp
            .rules
            .iter()
            .find(|r| !r.head.is_empty() && r.head.len() == 1 && !r.pos.is_empty())
            .unwrap();
        assert!(q_rule.neg.is_empty());
    }

    #[test]
    fn possibly_true_negatives_are_kept() {
        // m(1) is a fact, so `not m(x)` stays in the ground rule.
        let mut p = Program::new();
        p.fact("n", [i(1)]).unwrap();
        p.fact("m", [i(1)]).unwrap();
        p.rule(
            [atom("q", [tv("x")])],
            [pos(atom("n", [tv("x")])), neg(atom("m", [tv("x")]))],
        )
        .unwrap();
        let gp = ground(&p);
        let q_rule = gp.rules.iter().find(|r| !r.pos.is_empty()).unwrap();
        assert_eq!(q_rule.neg.len(), 1);
    }

    #[test]
    fn tautologies_dropped_and_rules_deduped() {
        let mut p = Program::new();
        p.fact("r", [i(1)]).unwrap();
        // r(x) ← r(x): tautology.
        p.rule([atom("r", [tv("x")])], [pos(atom("r", [tv("x")]))])
            .unwrap();
        let gp = ground(&p);
        assert_eq!(gp.rules.len(), 1); // just the fact
    }

    #[test]
    fn disjunctive_heads_expand_pt() {
        // a(x) ∨ b(x) ← r(x): both a(1) and b(1) possibly true.
        let mut p = Program::new();
        p.fact("r", [i(1)]).unwrap();
        p.rule(
            [atom("a", [tv("x")]), atom("b", [tv("x")])],
            [pos(atom("r", [tv("x")]))],
        )
        .unwrap();
        p.rule([atom("c", [tv("x")])], [pos(atom("b", [tv("x")]))])
            .unwrap();
        let gp = ground(&p);
        let c = p.pred_id("c").unwrap();
        assert!(gp.atoms().any(|(_, a)| a.pred == c));
    }

    #[test]
    fn denial_rules_ground() {
        let mut p = Program::new();
        p.fact("r", [i(1)]).unwrap();
        p.fact("q", [i(1)]).unwrap();
        p.rule([], [pos(atom("r", [tv("x")])), pos(atom("q", [tv("x")]))])
            .unwrap();
        let gp = ground(&p);
        assert!(gp
            .rules
            .iter()
            .any(|r| r.head.is_empty() && r.pos.len() == 2));
    }
}
