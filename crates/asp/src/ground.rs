//! Intelligent grounding: instantiate a non-ground program over its
//! possibly-true Herbrand subset.
//!
//! Phase 1 computes the *possibly-true* atom set `PT`: the least fixpoint
//! of the rules with negative literals ignored (an over-approximation of
//! every atom that can be true in any stable model). Phase 2 re-instantiates
//! each rule against `PT`, evaluating builtins and resolving negative
//! literals whose atoms are definitely false (`∉ PT`), and emits ground
//! rules over dense atom ids. Tautological instances (a head atom also in
//! the positive body) are dropped.
//!
//! [`ground`] performs both phases from scratch in one call — it is the
//! simple reference grounder and the oracle the incremental path is tested
//! against.
//!
//! ## Incremental grounding architecture
//!
//! [`GroundingState`] is the *persistent*, delta-driven counterpart: it
//! grounds once and then accepts fact deltas, regrounding only the rules
//! touching the delta (mirroring `violations_touching` in the constraint
//! layer). The moving parts:
//!
//! * **Rule occurrence indexes.** Every predicate maps to the list of
//!   (rule, body-literal) positions where it occurs positively and
//!   negatively. A delta atom visits exactly the rules that mention its
//!   predicate — never the whole program.
//! * **Seminaive delta substitution.** A worklist carries newly derived
//!   possibly-true atoms. Popping an atom pins it into each positive
//!   occurrence and joins the *remaining* body literals against the full
//!   `PT` set — the standard seminaive discipline, with the binding set
//!   `instances[rule]` absorbing duplicate derivations. New head atoms
//!   entering `PT` go back on the worklist, so one fact delta propagates
//!   in cost proportional to its derivation cone.
//! * **Refcounted resolved-rule store.** The emitted [`GroundProgram`] is
//!   maintained *in place*: every satisfying binding resolves to a ground
//!   rule which is inserted with a reference count (distinct bindings can
//!   resolve to the same rule). When an atom newly enters `PT`, negative
//!   literals that previously resolved to "definitely false → dropped"
//!   become live: the affected bindings are re-enumerated through the
//!   negative occurrence index, their stale resolution is retracted
//!   (refcount-exact, so a rule shared with an unaffected binding
//!   survives) and the patched resolution emitted. `ground_program()` is
//!   therefore O(1) — there is no materialisation step to re-run.
//! * **Support refcounts.** Alongside `PT` the state tracks, per atom,
//!   how many *derivations* currently justify it: one per occurrence as a
//!   program fact (tracked separately in a fact refcount) plus one per
//!   live binding that grounds a head to it. Insertion bumps them,
//!   deletion retracts them — they are what makes the two-pass deletion
//!   below exact.
//! * **Rule extension.** [`GroundingState::add_rule`] extends a live
//!   state with a new rule (the CQA layer appends query rules to a cached
//!   Π(D, IC) grounding), instantiating just that rule and propagating
//!   whatever its heads add to `PT`.
//!
//! ## Deletion architecture (DRed)
//!
//! `PT` is not monotone under fact removal, so deletions cannot reuse the
//! insertion worklist. [`GroundingState::remove_facts`] instead runs the
//! classic *delete–rederive* two-pass (DRed, Gupta–Mumick–Subrahmanian;
//! the same maintained-consequence-set discipline the repair-free CQA
//! line leans on):
//!
//! 1. **Over-delete.** A worklist seeds with the removed facts' atoms
//!    (their unit rules retracted, fact refcounts decremented). Popping
//!    an atom that is no longer fact-supported deletes it: surviving
//!    bindings whose *negative* literals ground to it are re-resolved
//!    through the negative occurrence index — the exact inverse of the
//!    insertion patch, flipping the literal back to "definitely false →
//!    dropped" — then the atom leaves `PT` and every binding using it
//!    *positively* (found by pinning it into the positive occurrence
//!    indexes, just like insertion) is dropped: its resolved rule is
//!    retracted refcount-exactly and each of its head atoms loses one
//!    support and joins the worklist. This deliberately over-approximates:
//!    an atom is torn down even when alternative derivations remain,
//!    which is what makes the pass sound for *cyclic* derivations (two
//!    atoms supporting only each other both reach the worklist and both
//!    fall, where a pure refcount cut-off would keep the dead loop
//!    alive). Atoms still backed by a program fact are skipped — fact
//!    support is ground and can never be part of a derivation cycle.
//!    The same reasoning generalises to a *stratification cut-off*: a
//!    predicate that sits on no positive cycle of the predicate
//!    dependency graph has well-founded support, so an atom of such a
//!    predicate with a surviving derivation is kept rather than torn
//!    down and rederived. The cut-off only defers — every support
//!    decrement re-queues the head atom — so the atom still falls the
//!    moment its last derivation does.
//! 2. **Rederive.** Every over-deleted atom whose support count is still
//!    positive has a surviving derivation (a fact occurrence or a live
//!    binding untouched by pass 1 — supports are exact here *because*
//!    pass 1 removed every binding in the deleted cone). Those survivors
//!    are re-admitted through the ordinary insertion machinery —
//!    `admit_atom` re-patches their negative occurrences and the
//!    seminaive worklist rebuilds any downstream bindings pass 1 tore
//!    down — so the cost is bounded by the delta's derivation cone, not
//!    the instance.
//!
//! The invariant tying it together: after every public call — any
//! interleaving of `add_facts`, `remove_facts` and `add_rule` — the
//! stored [`GroundProgram`] equals — as a *set* of atom-level rules
//! ([`GroundProgram::resolved_rules`]) — what [`ground`] would produce on
//! the current program. Atom ids and rule order may differ (ids are
//! assigned in discovery order, which differs between the two paths); the
//! stable-model semantics and every downstream answer are unaffected, and
//! the oracle sweep in `tests/engine_vs_program.rs` pins the equality
//! over random mixed insert/delete sequences.

use crate::error::AspError;
use crate::syntax::{AtomSpec, BodyLit, Literal, PredId, Program, Rule, RuleAtom, Term};
use cqa_relational::{CancelToken, Cancelled, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Dense ground-atom identifier.
pub type AtomId = u32;

/// A ground atom: predicate plus constant arguments.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundAtom {
    /// Predicate.
    pub pred: PredId,
    /// Ground arguments.
    pub args: Vec<Value>,
}

/// A ground rule over atom ids: `head ← pos, not neg`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundRule {
    /// Disjunctive head (empty = denial).
    pub head: Vec<AtomId>,
    /// Positive body atoms.
    pub pos: Vec<AtomId>,
    /// Negated body atoms.
    pub neg: Vec<AtomId>,
}

/// The ground program: an atom table plus ground rules. Facts are rules
/// with empty bodies.
#[derive(Debug, Clone, Default)]
pub struct GroundProgram {
    atoms: Vec<GroundAtom>,
    index: HashMap<GroundAtom, AtomId>,
    /// Ground rules, deduplicated, in deterministic order.
    pub rules: Vec<GroundRule>,
}

impl GroundProgram {
    /// Register (or look up) a ground atom.
    pub fn intern(&mut self, atom: GroundAtom) -> AtomId {
        if let Some(&id) = self.index.get(&atom) {
            return id;
        }
        let id = self.atoms.len() as AtomId;
        self.atoms.push(atom.clone());
        self.index.insert(atom, id);
        id
    }

    /// Look up an atom id.
    pub fn atom_id(&self, atom: &GroundAtom) -> Option<AtomId> {
        self.index.get(atom).copied()
    }

    /// The atom for an id.
    pub fn atom(&self, id: AtomId) -> &GroundAtom {
        &self.atoms[id as usize]
    }

    /// Number of interned atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// All atoms with their ids.
    pub fn atoms(&self) -> impl Iterator<Item = (AtomId, &GroundAtom)> {
        self.atoms.iter().enumerate().map(|(i, a)| (i as AtomId, a))
    }

    /// Is every rule non-disjunctive (|head| ≤ 1)?
    pub fn is_normal(&self) -> bool {
        self.rules.iter().all(|r| r.head.len() <= 1)
    }

    /// Add a rule (dedup is the caller's concern; [`ground`] dedups).
    pub fn push_rule(&mut self, rule: GroundRule) {
        self.rules.push(rule);
    }
}

/// Ground `program`.
pub fn ground(program: &Program) -> GroundProgram {
    ground_cancellable(program, &CancelToken::never())
        .expect("never-token grounding cannot be cancelled")
}

/// [`ground`] under a cancellation token, polled once per seminaive
/// fixpoint round (phase 1) and once per rule family during emission
/// (phase 2). Scratch grounding owns all its state, so a cancelled run
/// is simply abandoned — nothing shared is left half-built.
pub fn ground_cancellable(
    program: &Program,
    cancel: &CancelToken,
) -> Result<GroundProgram, Cancelled> {
    let mut gp = GroundProgram::default();

    // Possibly-true set, indexed by predicate for joins.
    let mut pt_by_pred: Vec<BTreeSet<Vec<Value>>> = vec![BTreeSet::new(); program.pred_count()];
    for (pred, args) in program.facts() {
        pt_by_pred[pred.index()].insert(args.clone());
    }

    // Phase 1: least fixpoint ignoring negation. New head atoms are
    // buffered per round (the join borrows the possibly-true set).
    loop {
        cancel.check()?;
        let mut buffer: Vec<(PredId, Vec<Value>)> = Vec::new();
        for rule in program.rules() {
            instantiate(rule, &pt_by_pred, &mut |bindings| {
                for h in &rule.head {
                    let args = ground_args(&h.terms, bindings);
                    if !pt_by_pred[h.pred.index()].contains(&args) {
                        buffer.push((h.pred, args));
                    }
                }
            });
        }
        let mut grew = false;
        for (pred, args) in buffer {
            if pt_by_pred[pred.index()].insert(args) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Phase 2: emit ground rules. Facts first (stable ids for facts).
    let mut seen_rules: BTreeSet<GroundRule> = BTreeSet::new();
    for (pred, args) in program.facts() {
        let id = gp.intern(GroundAtom {
            pred: *pred,
            args: args.clone(),
        });
        let rule = GroundRule {
            head: vec![id],
            pos: vec![],
            neg: vec![],
        };
        if seen_rules.insert(rule.clone()) {
            gp.push_rule(rule);
        }
    }
    for rule in program.rules() {
        cancel.check()?;
        // Capture instantiations first (interning needs &mut gp).
        let mut instances: Vec<Vec<Value>> = Vec::new();
        instantiate(rule, &pt_by_pred, &mut |bindings| {
            instances.push(bindings.iter().map(|b| (*b).expect("safe rule")).collect());
        });
        'instances: for bindings in instances {
            let opt: Vec<Option<Value>> = bindings.into_iter().map(Some).collect();
            let mut head = Vec::with_capacity(rule.head.len());
            for h in &rule.head {
                let args = ground_args(&h.terms, &opt);
                head.push(gp.intern(GroundAtom { pred: h.pred, args }));
            }
            let mut pos_ids = Vec::new();
            let mut neg_ids = Vec::new();
            for lit in &rule.body {
                match lit {
                    Literal::Pos(a) => {
                        let args = ground_args(&a.terms, &opt);
                        pos_ids.push(gp.intern(GroundAtom { pred: a.pred, args }));
                    }
                    Literal::Neg(a) => {
                        let args = ground_args(&a.terms, &opt);
                        if pt_by_pred[a.pred.index()].contains(&args) {
                            neg_ids.push(gp.intern(GroundAtom { pred: a.pred, args }));
                        }
                        // else: definitely false → literal true → drop.
                    }
                    Literal::Cmp(..) => {} // evaluated during instantiation
                }
            }
            // Tautology: head atom in positive body.
            for h in &head {
                if pos_ids.contains(h) {
                    continue 'instances;
                }
            }
            head.sort_unstable();
            head.dedup();
            pos_ids.sort_unstable();
            pos_ids.dedup();
            neg_ids.sort_unstable();
            neg_ids.dedup();
            let grule = GroundRule {
                head,
                pos: pos_ids,
                neg: neg_ids,
            };
            if seen_rules.insert(grule.clone()) {
                gp.push_rule(grule);
            }
        }
    }
    Ok(gp)
}

fn ground_args(terms: &[Term], bindings: &[Option<Value>]) -> Vec<Value> {
    terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => *c,
            Term::Var(v) => bindings[*v as usize].expect("variable bound by safety"),
        })
        .collect()
}

/// Enumerate all substitutions satisfying the positive body against `pt`
/// and all builtins; negative literals are ignored here.
fn instantiate(rule: &Rule, pt: &[BTreeSet<Vec<Value>>], f: &mut impl FnMut(&[Option<Value>])) {
    let positives: Vec<&crate::syntax::RuleAtom> = rule
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
        .collect();
    let mut bindings: Vec<Option<Value>> = vec![None; rule.var_names.len()];
    rec(rule, &positives, pt, 0, &mut bindings, f);

    fn rec(
        rule: &Rule,
        positives: &[&crate::syntax::RuleAtom],
        pt: &[BTreeSet<Vec<Value>>],
        depth: usize,
        bindings: &mut Vec<Option<Value>>,
        f: &mut impl FnMut(&[Option<Value>]),
    ) {
        if depth == positives.len() {
            // All variables bound (safety). Check builtins.
            for lit in &rule.body {
                if let Literal::Cmp(op, l, r) = lit {
                    let lv = term_val(l, bindings);
                    let rv = term_val(r, bindings);
                    if !op.eval(lv, rv) {
                        return;
                    }
                }
            }
            f(bindings);
            return;
        }
        let atom = positives[depth];
        'rows: for row in &pt[atom.pred.index()] {
            let mut newly: Vec<u32> = Vec::new();
            for (val, term) in row.iter().zip(&atom.terms) {
                match term {
                    Term::Const(c) => {
                        if val != c {
                            undo(bindings, &newly);
                            continue 'rows;
                        }
                    }
                    Term::Var(v) => match &bindings[*v as usize] {
                        Some(b) => {
                            if b != val {
                                undo(bindings, &newly);
                                continue 'rows;
                            }
                        }
                        None => {
                            bindings[*v as usize] = Some(*val);
                            newly.push(*v);
                        }
                    },
                }
            }
            rec(rule, positives, pt, depth + 1, bindings, f);
            undo(bindings, &newly);
        }
    }

    fn term_val<'a>(t: &'a Term, bindings: &'a [Option<Value>]) -> &'a Value {
        match t {
            Term::Const(c) => c,
            Term::Var(v) => bindings[*v as usize].as_ref().expect("bound by safety"),
        }
    }

    fn undo(bindings: &mut [Option<Value>], newly: &[u32]) {
        for v in newly {
            bindings[*v as usize] = None;
        }
    }
}

/// Atom-level (id-free) view of one ground rule: `(head, pos, neg)`,
/// each sorted. Two grounders agree exactly when their
/// [`GroundProgram::resolved_rules`] sets are equal.
pub type ResolvedRule = (Vec<GroundAtom>, Vec<GroundAtom>, Vec<GroundAtom>);

impl GroundProgram {
    /// The rule set resolved to atom level, for cross-grounder comparison
    /// (atom ids are assigned in discovery order, so id-level rule sets of
    /// two equivalent groundings generally differ).
    pub fn resolved_rules(&self) -> BTreeSet<ResolvedRule> {
        let resolve = |ids: &[AtomId]| {
            let mut v: Vec<GroundAtom> = ids.iter().map(|&i| self.atom(i).clone()).collect();
            v.sort();
            v
        };
        self.rules
            .iter()
            .map(|r| (resolve(&r.head), resolve(&r.pos), resolve(&r.neg)))
            .collect()
    }
}

/// Body-literal positions of one rule, split by polarity (indices into
/// `rule.body`).
#[derive(Debug, Clone)]
struct RuleInfo {
    positives: Vec<usize>,
    negatives: Vec<usize>,
}

/// What seeds a binding enumeration: nothing (full join), or one body
/// literal pinned to a concrete row.
enum Pin<'a> {
    All,
    /// Pin the `i`-th *positive* literal (index into `RuleInfo::positives`).
    Pos(usize, &'a [Value]),
    /// Pin the `i`-th *negative* literal (index into `RuleInfo::negatives`).
    Neg(usize, &'a [Value]),
}

/// A persistent, incrementally-updatable grounding of a program. See the
/// module docs ("Incremental grounding architecture") for the moving
/// parts; [`ground`] is the from-scratch reference it must agree with.
#[derive(Debug, Clone)]
pub struct GroundingState {
    program: Program,
    info: Vec<RuleInfo>,
    /// pred → [(rule, index into that rule's positives)].
    pos_occ: Vec<Vec<(usize, usize)>>,
    /// pred → [(rule, index into that rule's negatives)].
    neg_occ: Vec<Vec<(usize, usize)>>,
    /// Possibly-true rows per predicate (the seminaive fixpoint).
    pt: Vec<BTreeSet<Vec<Value>>>,
    /// Satisfying bindings (positive body + builtins over `pt`) per rule.
    instances: Vec<BTreeSet<Vec<Value>>>,
    /// Per-atom derivation count: fact occurrences plus live bindings
    /// grounding a head to the atom (absent = zero). Drives DRed pass 2.
    support: Vec<BTreeMap<Vec<Value>, u32>>,
    /// Per-atom *fact* occurrence count (a sub-count of `support`): atoms
    /// still backed by a fact are never over-deleted in DRed pass 1.
    fact_rc: Vec<BTreeMap<Vec<Value>, u32>>,
    /// The emitted ground program, maintained in place.
    gp: GroundProgram,
    /// Emitted rule → (index in `gp.rules`, reference count).
    emitted: BTreeMap<GroundRule, (usize, u32)>,
    /// Per-predicate: does the predicate sit on a *positive* cycle of the
    /// predicate dependency graph? Non-recursive predicates have
    /// well-founded (acyclic) ground support, which lets DRed pass 1 skip
    /// their teardown when a derivation survives (see `remove_facts`).
    recursive: Vec<bool>,
    /// Monotone counter of rules actually removed from `gp` (last
    /// reference retracted). Consumers holding derived artifacts (the
    /// incremental solver's learned clauses) sync against it.
    retract_seq: u64,
    /// Recent retractions, newest last: `(seq, rule)` with `seq` the value
    /// `retract_seq` took when the rule left the ground program. Capped;
    /// [`GroundingState::retractions_since`] reports a trimmed window as
    /// `None` so consumers fall back to a full resync.
    retract_log: VecDeque<(u64, GroundRule)>,
    /// Cumulative count of atoms torn down by DRed pass 1 (observability
    /// for the stratification skip; has no semantic role).
    dred_teardowns: u64,
    /// Cancellation token polled by the propagation/deletion loops.
    cancel: CancelToken,
    /// Set when `cancel` tripped mid-loop: the state is partially
    /// propagated and must be discarded, never reused.
    poisoned: bool,
}

/// Retraction-log retention: enough to span many delta batches between
/// solver syncs while bounding `GroundingState`'s clone cost.
const RETRACT_LOG_CAP: usize = 4096;

/// Bump a refcount map entry (absent = zero).
fn bump(map: &mut BTreeMap<Vec<Value>, u32>, args: &[Value]) {
    *map.entry(args.to_vec()).or_insert(0) += 1;
}

/// Drop one reference from a refcount map entry, removing it at zero.
fn unbump(map: &mut BTreeMap<Vec<Value>, u32>, args: &[Value]) {
    match map.get_mut(args) {
        Some(rc) if *rc > 1 => *rc -= 1,
        Some(_) => {
            map.remove(args);
        }
        None => debug_assert!(false, "refcount underflow"),
    }
}

impl GroundingState {
    /// Ground `program` from scratch into a persistent state.
    pub fn new(program: &Program) -> Self {
        Self::new_governed(program, CancelToken::never())
    }

    /// [`GroundingState::new`] with a cancellation token installed before
    /// the initial propagation runs. Check [`GroundingState::is_poisoned`]
    /// afterwards: a state whose build was interrupted is partial and must
    /// be discarded.
    pub fn new_governed(program: &Program, cancel: CancelToken) -> Self {
        let preds = program.pred_count();
        let mut st = GroundingState {
            program: program.clone(),
            info: Vec::new(),
            pos_occ: vec![Vec::new(); preds],
            neg_occ: vec![Vec::new(); preds],
            pt: vec![BTreeSet::new(); preds],
            instances: vec![BTreeSet::new(); program.rules().len()],
            support: vec![BTreeMap::new(); preds],
            fact_rc: vec![BTreeMap::new(); preds],
            gp: GroundProgram::default(),
            emitted: BTreeMap::new(),
            recursive: Vec::new(),
            retract_seq: 0,
            retract_log: VecDeque::new(),
            dred_teardowns: 0,
            cancel,
            poisoned: false,
        };
        for ri in 0..st.program.rules().len() {
            st.register_rule(ri);
        }
        st.compute_recursion();
        let mut work: VecDeque<(PredId, Vec<Value>)> = VecDeque::new();
        let facts: Vec<(PredId, Vec<Value>)> = st.program.facts().to_vec();
        for (pred, args) in facts {
            st.admit_fact(pred, args, &mut work);
        }
        // Rules with no positive body literals instantiate once, with the
        // empty binding (safety: such rules are variable-free).
        for ri in 0..st.program.rules().len() {
            if st.info[ri].positives.is_empty() {
                let mut found: Vec<Vec<Value>> = Vec::new();
                collect_bindings(
                    &st.program.rules()[ri],
                    &st.info[ri],
                    &st.pt,
                    Pin::All,
                    &mut found,
                );
                for binding in found {
                    st.admit_binding(ri, binding, &mut work);
                }
            }
        }
        st.propagate(&mut work);
        st
    }

    /// The current ground program. O(1): the program is maintained in
    /// place by every delta, never re-materialised.
    pub fn ground_program(&self) -> &GroundProgram {
        &self.gp
    }

    /// The (non-ground) program this state grounds, including every fact
    /// delta applied so far.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Install (or replace) the cancellation token polled by the seminaive
    /// propagation and DRed deletion loops. Mid-loop cancellation cannot
    /// unwind — the in-place grounding would be left half-updated — so a
    /// trip instead marks the state *poisoned*; callers observe that via
    /// [`GroundingState::is_poisoned`] and rebuild from scratch.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Did a cancellation trip mid-propagation? A poisoned state's ground
    /// program is partial: discard the state (and any cache entry holding
    /// it) instead of reusing it.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Add ground facts, regrounding incrementally: only rules whose body
    /// mentions a predicate reachable from the delta are touched. On
    /// error nothing is applied — the whole batch is validated before any
    /// state is touched, so the `gp == ground(program)` invariant of the
    /// module docs survives a failed call.
    pub fn add_facts(
        &mut self,
        facts: impl IntoIterator<Item = (PredId, Vec<Value>)>,
    ) -> Result<(), AspError> {
        let facts: Vec<(PredId, Vec<Value>)> = facts.into_iter().collect();
        for (pred, args) in &facts {
            if pred.index() >= self.program.pred_count() {
                return Err(AspError::UnknownPredicate {
                    predicate: format!("#{}", pred.0),
                });
            }
            let declared = self.program.pred_arity(*pred);
            if declared != args.len() {
                return Err(AspError::ArityConflict {
                    predicate: self.program.pred_name(*pred).to_string(),
                    declared,
                    used: args.len(),
                });
            }
        }
        let mut work: VecDeque<(PredId, Vec<Value>)> = VecDeque::new();
        for (pred, args) in facts {
            let name = self.program.pred_name(pred).to_string();
            self.program
                .fact(name, args.clone())
                .expect("batch validated above");
            self.admit_fact(pred, args, &mut work);
        }
        self.propagate(&mut work);
        Ok(())
    }

    /// Named convenience for [`GroundingState::add_facts`]. The predicate
    /// must already be declared.
    pub fn add_fact_named(
        &mut self,
        pred: &str,
        args: impl IntoIterator<Item = Value>,
    ) -> Result<(), AspError> {
        let id = self
            .program
            .pred_id(pred)
            .ok_or_else(|| AspError::UnknownPredicate {
                predicate: pred.to_string(),
            })?;
        self.add_facts([(id, args.into_iter().collect())])
    }

    /// Remove facts (first occurrence each, multiset semantics),
    /// regrounding incrementally by delete–rederive: over-delete the
    /// removed atoms' derivation cones through the positive occurrence
    /// indexes, then re-admit every torn-down atom that still has a
    /// surviving derivation (see module docs, "Deletion architecture
    /// (DRed)"). Facts not present in the program are ignored. Cost is
    /// bounded by the delta's derivation cone, not the instance.
    pub fn remove_facts(&mut self, facts: impl IntoIterator<Item = (PredId, Vec<Value>)>) {
        // Remove the whole batch from the program first: pass 1's
        // fact-support checks must see the post-removal multiset.
        let mut dq: VecDeque<(PredId, Vec<Value>)> = VecDeque::new();
        for (pred, args) in facts {
            if !self.program.remove_fact(pred, &args) {
                continue; // absent fact: nothing to retract
            }
            let id = self.gp.intern(GroundAtom {
                pred,
                args: args.clone(),
            });
            self.retract(&GroundRule {
                head: vec![id],
                pos: vec![],
                neg: vec![],
            });
            unbump(&mut self.fact_rc[pred.index()], &args);
            unbump(&mut self.support[pred.index()], &args);
            dq.push_back((pred, args));
        }
        // Pass 1: over-delete. Every queued atom falls unless a fact
        // occurrence survives; bindings using it positively are dropped
        // and their heads join the queue.
        let mut deleted: BTreeSet<(PredId, Vec<Value>)> = BTreeSet::new();
        while let Some((pred, args)) = dq.pop_front() {
            if self.cancel.is_cancelled() {
                self.poisoned = true;
                return;
            }
            if !self.pt[pred.index()].contains(&args)
                || self.fact_rc[pred.index()].contains_key(&args)
            {
                continue; // already deleted, or fact-supported (ground)
            }
            // Stratification cut-off: a predicate off every positive
            // cycle has well-founded support, so a surviving derivation
            // cannot be circular — keep the atom instead of tearing down
            // a cone pass 2 would immediately rederive. Sound because
            // this only *defers*: `drop_binding` re-queues head atoms on
            // every support decrement, so the atom is re-examined each
            // time a supporting binding falls and is deleted the moment
            // its support reaches zero.
            if !self.recursive[pred.index()] && self.support[pred.index()].contains_key(&args) {
                continue;
            }
            self.delete_atom(pred, args, &mut dq, &mut deleted);
        }
        // Pass 2: rederive. Supports are exact after pass 1 (every
        // binding in the deleted cone was dropped), so a positive count
        // is a surviving derivation: re-admit and propagate seminaively.
        let mut work: VecDeque<(PredId, Vec<Value>)> = VecDeque::new();
        for (pred, args) in &deleted {
            if self.support[pred.index()].contains_key(args) {
                self.admit_atom(*pred, args.clone(), &mut work);
            }
        }
        self.propagate(&mut work);
    }

    /// Over-delete one atom (DRed pass 1): un-patch the surviving
    /// bindings whose negative literals ground to it, remove it from
    /// `PT`, and drop every binding that used it positively — each
    /// dropped binding retracts its resolved rule and sends its head
    /// atoms to the deletion queue.
    fn delete_atom(
        &mut self,
        pred: PredId,
        args: Vec<Value>,
        dq: &mut VecDeque<(PredId, Vec<Value>)>,
        deleted: &mut BTreeSet<(PredId, Vec<Value>)>,
    ) {
        // Both the un-patch and the affected-binding enumeration join
        // against `PT` *with the atom still present*: a binding that uses
        // the atom in several positions (or both polarities) is only
        // reachable while it is.
        self.repatch_negatives(pred, &args, false);
        let occs = self.pos_occ[pred.index()].clone();
        let mut affected: BTreeSet<(usize, Vec<Value>)> = BTreeSet::new();
        for (ri, pi) in occs {
            let mut found: Vec<Vec<Value>> = Vec::new();
            collect_bindings(
                &self.program.rules()[ri],
                &self.info[ri],
                &self.pt,
                Pin::Pos(pi, &args),
                &mut found,
            );
            for binding in found {
                if self.instances[ri].contains(&binding) {
                    affected.insert((ri, binding));
                }
            }
        }
        self.pt[pred.index()].remove(&args);
        self.dred_teardowns += 1;
        deleted.insert((pred, args));
        for (ri, binding) in affected {
            self.drop_binding(ri, binding, dq);
        }
    }

    /// Drop one live binding: retract its resolved rule (refcount-exact —
    /// computed under the current `PT`, which the un-patch discipline
    /// keeps in sync with what was emitted) and decrement each distinct
    /// head atom's support, queueing the heads for over-deletion.
    fn drop_binding(
        &mut self,
        ri: usize,
        binding: Vec<Value>,
        dq: &mut VecDeque<(PredId, Vec<Value>)>,
    ) {
        if !self.instances[ri].remove(&binding) {
            return;
        }
        if let Some(rule) = resolve_instance(
            &self.program.rules()[ri],
            &self.pt,
            &mut self.gp,
            &binding,
            None,
        ) {
            self.retract(&rule);
        }
        let opt: Vec<Option<Value>> = binding.into_iter().map(Some).collect();
        let heads: BTreeSet<(PredId, Vec<Value>)> = self.program.rules()[ri]
            .head
            .iter()
            .map(|h| (h.pred, ground_args(&h.terms, &opt)))
            .collect();
        for (pred, args) in heads {
            unbump(&mut self.support[pred.index()], &args);
            dq.push_back((pred, args));
        }
    }

    /// Append a rule to the live grounding: the rule is instantiated
    /// against the current possibly-true set and anything its heads add
    /// propagates seminaively. This is how the CQA layer extends a cached
    /// Π(D, IC) grounding with per-query rules.
    pub fn add_rule(
        &mut self,
        head: impl IntoIterator<Item = AtomSpec>,
        body: impl IntoIterator<Item = BodyLit>,
    ) -> Result<(), AspError> {
        let result = self.program.rule(head, body);
        // `Program::rule` declares the rule's predicates before its
        // safety check, so even a rejected rule can grow the predicate
        // table: size the per-predicate indexes to the program *before*
        // propagating the error, or a later delta on one of those
        // predicates would index out of bounds.
        while self.pt.len() < self.program.pred_count() {
            self.pos_occ.push(Vec::new());
            self.neg_occ.push(Vec::new());
            self.pt.push(BTreeSet::new());
            self.support.push(BTreeMap::new());
            self.fact_rc.push(BTreeMap::new());
            // A predicate declared by a rejected rule heads no rule, so
            // it is trivially non-recursive until a later `add_rule`
            // recomputes the flags.
            self.recursive.push(false);
        }
        result?;
        let ri = self.program.rules().len() - 1;
        self.instances.push(BTreeSet::new());
        self.register_rule(ri);
        self.compute_recursion();
        let mut found: Vec<Vec<Value>> = Vec::new();
        collect_bindings(
            &self.program.rules()[ri],
            &self.info[ri],
            &self.pt,
            Pin::All,
            &mut found,
        );
        let mut work: VecDeque<(PredId, Vec<Value>)> = VecDeque::new();
        for binding in found {
            self.admit_binding(ri, binding, &mut work);
        }
        self.propagate(&mut work);
        Ok(())
    }

    /// Record `ri`'s literal split and occurrence-index entries.
    fn register_rule(&mut self, ri: usize) {
        let rule = &self.program.rules()[ri];
        let mut info = RuleInfo {
            positives: Vec::new(),
            negatives: Vec::new(),
        };
        for (bi, lit) in rule.body.iter().enumerate() {
            match lit {
                Literal::Pos(a) => {
                    self.pos_occ[a.pred.index()].push((ri, info.positives.len()));
                    info.positives.push(bi);
                }
                Literal::Neg(a) => {
                    self.neg_occ[a.pred.index()].push((ri, info.negatives.len()));
                    info.negatives.push(bi);
                }
                Literal::Cmp(..) => {}
            }
        }
        debug_assert_eq!(self.info.len(), ri);
        self.info.push(info);
    }

    /// Recompute the per-predicate positive-recursion flags: a predicate
    /// is *recursive* iff it lies on a cycle of the positive predicate
    /// dependency graph (edges: positive body predicate → head predicate).
    /// Support flows only through positive literals (bindings are
    /// justified by their positive body; negation never binds), so an
    /// atom-level support cycle implies a positive predicate-level cycle —
    /// predicates off every such cycle have well-founded ground support.
    /// O(preds · edges): the graph is schema-sized, not data-sized.
    fn compute_recursion(&mut self) {
        let preds = self.program.pred_count();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); preds];
        for rule in self.program.rules() {
            for lit in &rule.body {
                if let Literal::Pos(a) = lit {
                    for h in &rule.head {
                        succ[a.pred.index()].push(h.pred.index());
                    }
                }
            }
        }
        for s in &mut succ {
            s.sort_unstable();
            s.dedup();
        }
        self.recursive = vec![false; preds];
        let mut seen = vec![false; preds];
        let mut stack: Vec<usize> = Vec::new();
        for p in 0..preds {
            // Reachability from p's successors back to p.
            seen.iter_mut().for_each(|s| *s = false);
            stack.extend(succ[p].iter().copied());
            while let Some(q) = stack.pop() {
                if q == p {
                    self.recursive[p] = true;
                    stack.clear();
                    break;
                }
                if !seen[q] {
                    seen[q] = true;
                    stack.extend(succ[q].iter().copied());
                }
            }
        }
    }

    /// A new fact: emit its unit rule, count its derivation and admit its
    /// atom into `PT`. Every occurrence of a duplicated fact counts — the
    /// refcounts are multiset-exact so removal retracts precisely one.
    fn admit_fact(
        &mut self,
        pred: PredId,
        args: Vec<Value>,
        work: &mut VecDeque<(PredId, Vec<Value>)>,
    ) {
        let id = self.gp.intern(GroundAtom {
            pred,
            args: args.clone(),
        });
        self.emit(GroundRule {
            head: vec![id],
            pos: vec![],
            neg: vec![],
        });
        bump(&mut self.fact_rc[pred.index()], &args);
        bump(&mut self.support[pred.index()], &args);
        self.admit_atom(pred, args, work);
    }

    /// An atom newly possibly-true: insert into `PT`, patch the negative
    /// occurrences that assumed it definitely false, and queue it for the
    /// positive-occurrence joins.
    fn admit_atom(
        &mut self,
        pred: PredId,
        args: Vec<Value>,
        work: &mut VecDeque<(PredId, Vec<Value>)>,
    ) {
        if !self.pt[pred.index()].insert(args.clone()) {
            return;
        }
        self.repatch_negatives(pred, &args, true);
        work.push_back((pred, args));
    }

    /// Drain the seminaive worklist: each popped atom is pinned into every
    /// positive occurrence of its predicate and the remaining body joined
    /// against the full `PT` set.
    fn propagate(&mut self, work: &mut VecDeque<(PredId, Vec<Value>)>) {
        while let Some((pred, args)) = work.pop_front() {
            if self.cancel.is_cancelled() {
                self.poisoned = true;
                return;
            }
            let occs = self.pos_occ[pred.index()].clone();
            for (ri, pi) in occs {
                let mut found: Vec<Vec<Value>> = Vec::new();
                collect_bindings(
                    &self.program.rules()[ri],
                    &self.info[ri],
                    &self.pt,
                    Pin::Pos(pi, &args),
                    &mut found,
                );
                for binding in found {
                    self.admit_binding(ri, binding, work);
                }
            }
        }
    }

    /// A satisfying binding of rule `ri`'s positive body + builtins: emit
    /// its resolution and admit its head atoms.
    fn admit_binding(
        &mut self,
        ri: usize,
        binding: Vec<Value>,
        work: &mut VecDeque<(PredId, Vec<Value>)>,
    ) {
        if !self.instances[ri].insert(binding.clone()) {
            return;
        }
        if let Some(rule) = resolve_instance(
            &self.program.rules()[ri],
            &self.pt,
            &mut self.gp,
            &binding,
            None,
        ) {
            self.emit(rule);
        }
        let opt: Vec<Option<Value>> = binding.into_iter().map(Some).collect();
        let heads: Vec<(PredId, Vec<Value>)> = self.program.rules()[ri]
            .head
            .iter()
            .map(|h| (h.pred, ground_args(&h.terms, &opt)))
            .collect();
        // One support per *distinct* ground head atom per binding — the
        // exact amount `drop_binding` retracts.
        let mut seen: BTreeSet<(PredId, Vec<Value>)> = BTreeSet::new();
        for (pred, args) in heads {
            if seen.insert((pred, args.clone())) {
                bump(&mut self.support[pred.index()], &args);
            }
            self.admit_atom(pred, args, work);
        }
    }

    /// `atom` is crossing the `PT` boundary: every live binding whose
    /// *negative* literal grounds to it carries a resolution that is
    /// about to go stale. `entering = true` (the atom was just inserted):
    /// literals previously dropped as definitely false become live —
    /// retract the pre-delta resolution, emit the patched one.
    /// `entering = false` (the atom is about to be removed): the exact
    /// inverse — the literal flips back to "definitely false → dropped".
    /// Both directions re-enumerate the affected bindings through the
    /// negative occurrence index *while the atom is in `PT`*, and both
    /// rely on the refcount store for exactness: a stale rule shared with
    /// an unaffected binding merely loses one reference.
    fn repatch_negatives(&mut self, pred: PredId, args: &[Value], entering: bool) {
        if self.neg_occ[pred.index()].is_empty() {
            return;
        }
        let occs = self.neg_occ[pred.index()].clone();
        // De-duplicated: a binding whose rule mentions the atom in several
        // negative literals must be patched once, not once per literal.
        let mut affected: BTreeSet<(usize, Vec<Value>)> = BTreeSet::new();
        for (ri, ni) in occs {
            let mut found: Vec<Vec<Value>> = Vec::new();
            collect_bindings(
                &self.program.rules()[ri],
                &self.info[ri],
                &self.pt,
                Pin::Neg(ni, args),
                &mut found,
            );
            for binding in found {
                if self.instances[ri].contains(&binding) {
                    affected.insert((ri, binding));
                }
            }
        }
        let ga = GroundAtom {
            pred,
            args: args.to_vec(),
        };
        for (ri, binding) in affected {
            let without = resolve_instance(
                &self.program.rules()[ri],
                &self.pt,
                &mut self.gp,
                &binding,
                Some(&ga),
            );
            let with = resolve_instance(
                &self.program.rules()[ri],
                &self.pt,
                &mut self.gp,
                &binding,
                None,
            );
            let (stale, fresh) = if entering {
                (without, with)
            } else {
                (with, without)
            };
            if stale == fresh {
                continue;
            }
            if let Some(rule) = stale {
                self.retract(&rule);
            }
            if let Some(rule) = fresh {
                self.emit(rule);
            }
        }
    }

    /// Reference-counted rule emission into the in-place ground program.
    fn emit(&mut self, rule: GroundRule) {
        match self.emitted.get_mut(&rule) {
            Some((_, rc)) => *rc += 1,
            None => {
                let idx = self.gp.rules.len();
                self.gp.push_rule(rule.clone());
                self.emitted.insert(rule, (idx, 1));
            }
        }
    }

    /// Drop one reference; the last reference removes the rule from the
    /// ground program (swap-remove, fixing the moved rule's index).
    fn retract(&mut self, rule: &GroundRule) {
        let Some((idx, rc)) = self.emitted.get_mut(rule) else {
            debug_assert!(false, "retract of a rule that was never emitted");
            return;
        };
        if *rc > 1 {
            *rc -= 1;
            return;
        }
        let idx = *idx;
        self.emitted.remove(rule);
        self.gp.rules.swap_remove(idx);
        if idx < self.gp.rules.len() {
            let moved = self.gp.rules[idx].clone();
            if let Some((mi, _)) = self.emitted.get_mut(&moved) {
                *mi = idx;
            }
        }
        self.retract_seq += 1;
        self.retract_log.push_back((self.retract_seq, rule.clone()));
        if self.retract_log.len() > RETRACT_LOG_CAP {
            self.retract_log.pop_front();
        }
    }

    /// The current retraction sequence number: increments once per rule
    /// that actually leaves the ground program (last reference
    /// retracted). Snapshot it, apply deltas, then feed the interval to
    /// [`GroundingState::retractions_since`].
    pub fn retraction_seq(&self) -> u64 {
        self.retract_seq
    }

    /// The rules retracted from the ground program since sequence number
    /// `since` (exclusive), oldest first, or `None` when the capped log
    /// no longer covers that interval — the consumer must then resync
    /// from scratch. A rule can be retracted and later re-emitted;
    /// consumers invalidating derived artifacts by retracted rule are
    /// conservative under that (they drop something still valid, never
    /// keep something stale).
    pub fn retractions_since(&self, since: u64) -> Option<Vec<GroundRule>> {
        if since > self.retract_seq {
            return None; // not our past: the caller tracked another state
        }
        if since == self.retract_seq {
            return Some(Vec::new());
        }
        match self.retract_log.front() {
            Some(&(front_seq, _)) if front_seq <= since + 1 => Some(
                self.retract_log
                    .iter()
                    .filter(|(seq, _)| *seq > since)
                    .map(|(_, rule)| rule.clone())
                    .collect(),
            ),
            _ => None, // trimmed (or empty while retractions happened)
        }
    }

    /// Cumulative atoms torn down by DRed pass 1 over this state's
    /// lifetime. Observability for the stratification cut-off: a
    /// non-recursive atom with a surviving derivation must not bump this.
    pub fn dred_teardowns(&self) -> u64 {
        self.dred_teardowns
    }
}

/// Resolve one satisfying binding of `rule` into a ground rule over `gp`'s
/// atom ids: heads and positives interned, negative literals kept only
/// when possibly true (`∈ pt`, with `except` treated as absent — that is
/// how a patch reconstructs the pre-delta resolution), tautologies
/// (`head ∩ pos ≠ ∅`) dropped. Mirrors [`ground`]'s phase 2 exactly.
fn resolve_instance(
    rule: &Rule,
    pt: &[BTreeSet<Vec<Value>>],
    gp: &mut GroundProgram,
    binding: &[Value],
    except: Option<&GroundAtom>,
) -> Option<GroundRule> {
    let opt: Vec<Option<Value>> = binding.iter().cloned().map(Some).collect();
    let mut head = Vec::with_capacity(rule.head.len());
    for h in &rule.head {
        let args = ground_args(&h.terms, &opt);
        head.push(gp.intern(GroundAtom { pred: h.pred, args }));
    }
    let mut pos_ids = Vec::new();
    let mut neg_ids = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) => {
                let args = ground_args(&a.terms, &opt);
                pos_ids.push(gp.intern(GroundAtom { pred: a.pred, args }));
            }
            Literal::Neg(a) => {
                let args = ground_args(&a.terms, &opt);
                let masked = except.is_some_and(|e| e.pred == a.pred && e.args == args);
                if !masked && pt[a.pred.index()].contains(&args) {
                    neg_ids.push(gp.intern(GroundAtom { pred: a.pred, args }));
                }
            }
            Literal::Cmp(..) => {}
        }
    }
    for h in &head {
        if pos_ids.contains(h) {
            return None;
        }
    }
    head.sort_unstable();
    head.dedup();
    pos_ids.sort_unstable();
    pos_ids.dedup();
    neg_ids.sort_unstable();
    neg_ids.dedup();
    Some(GroundRule {
        head,
        pos: pos_ids,
        neg: neg_ids,
    })
}

/// Enumerate the full bindings of `rule` satisfying its positive body and
/// builtins over `pt`, with `pin` optionally fixing one body literal to a
/// concrete row, collecting the bound value vectors.
fn collect_bindings(
    rule: &Rule,
    info: &RuleInfo,
    pt: &[BTreeSet<Vec<Value>>],
    pin: Pin<'_>,
    out: &mut Vec<Vec<Value>>,
) {
    let mut bindings: Vec<Option<Value>> = vec![None; rule.var_names.len()];
    let skip = match pin {
        Pin::All => usize::MAX,
        Pin::Pos(pi, row) => {
            let Literal::Pos(atom) = &rule.body[info.positives[pi]] else {
                unreachable!("positives index a positive literal");
            };
            if match_row(atom, row, &mut bindings).is_none() {
                return;
            }
            pi
        }
        Pin::Neg(ni, row) => {
            let Literal::Neg(atom) = &rule.body[info.negatives[ni]] else {
                unreachable!("negatives index a negative literal");
            };
            if match_row(atom, row, &mut bindings).is_none() {
                return;
            }
            usize::MAX
        }
    };
    join(rule, info, pt, 0, skip, &mut bindings, out);

    fn join(
        rule: &Rule,
        info: &RuleInfo,
        pt: &[BTreeSet<Vec<Value>>],
        depth: usize,
        skip: usize,
        bindings: &mut Vec<Option<Value>>,
        out: &mut Vec<Vec<Value>>,
    ) {
        if depth == info.positives.len() {
            for lit in &rule.body {
                if let Literal::Cmp(op, l, r) = lit {
                    let lv = match l {
                        Term::Const(c) => c,
                        Term::Var(v) => bindings[*v as usize].as_ref().expect("bound by safety"),
                    };
                    let rv = match r {
                        Term::Const(c) => c,
                        Term::Var(v) => bindings[*v as usize].as_ref().expect("bound by safety"),
                    };
                    if !op.eval(lv, rv) {
                        return;
                    }
                }
            }
            out.push(
                bindings
                    .iter()
                    .map(|b| (*b).expect("safe rule binds all variables"))
                    .collect(),
            );
            return;
        }
        if depth == skip {
            join(rule, info, pt, depth + 1, skip, bindings, out);
            return;
        }
        let Literal::Pos(atom) = &rule.body[info.positives[depth]] else {
            unreachable!("positives index a positive literal");
        };
        let rows: &BTreeSet<Vec<Value>> = &pt[atom.pred.index()];
        for row in rows {
            if let Some(newly) = match_row(atom, row, bindings) {
                join(rule, info, pt, depth + 1, skip, bindings, out);
                for v in newly {
                    bindings[v as usize] = None;
                }
            }
        }
    }
}

/// Match `atom`'s terms against a concrete row, extending `bindings`.
/// Returns the newly bound variables, or `None` with bindings restored.
fn match_row(atom: &RuleAtom, row: &[Value], bindings: &mut [Option<Value>]) -> Option<Vec<u32>> {
    let mut newly: Vec<u32> = Vec::new();
    for (val, term) in row.iter().zip(&atom.terms) {
        let ok = match term {
            Term::Const(c) => val == c,
            Term::Var(v) => match &bindings[*v as usize] {
                Some(b) => b == val,
                None => {
                    bindings[*v as usize] = Some(*val);
                    newly.push(*v);
                    true
                }
            },
        };
        if !ok {
            for v in &newly {
                bindings[*v as usize] = None;
            }
            return None;
        }
    }
    Some(newly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{atom, cmp, neg, pos, tc, tv, BuiltinOp, Program};
    use cqa_relational::{i, s};

    #[test]
    fn facts_become_unit_rules() {
        let mut p = Program::new();
        p.fact("r", [s("a")]).unwrap();
        p.fact("r", [s("b")]).unwrap();
        let gp = ground(&p);
        assert_eq!(gp.atom_count(), 2);
        assert_eq!(gp.rules.len(), 2);
        assert!(gp
            .rules
            .iter()
            .all(|r| r.pos.is_empty() && r.head.len() == 1));
    }

    #[test]
    fn transitive_closure_fixpoint() {
        // path(x,y) ← edge(x,y); path(x,z) ← edge(x,y), path(y,z).
        let mut p = Program::new();
        p.fact("edge", [i(1), i(2)]).unwrap();
        p.fact("edge", [i(2), i(3)]).unwrap();
        p.rule(
            [atom("path", [tv("x"), tv("y")])],
            [pos(atom("edge", [tv("x"), tv("y")]))],
        )
        .unwrap();
        p.rule(
            [atom("path", [tv("x"), tv("z")])],
            [
                pos(atom("edge", [tv("x"), tv("y")])),
                pos(atom("path", [tv("y"), tv("z")])),
            ],
        )
        .unwrap();
        let gp = ground(&p);
        let path = p.pred_id("path").unwrap();
        let derived: Vec<&GroundAtom> = gp
            .atoms()
            .map(|(_, a)| a)
            .filter(|a| a.pred == path)
            .collect();
        // path(1,2), path(2,3), path(1,3)
        assert_eq!(derived.len(), 3);
    }

    #[test]
    fn builtins_filter_instances() {
        let mut p = Program::new();
        p.fact("n", [i(1)]).unwrap();
        p.fact("n", [i(5)]).unwrap();
        p.rule(
            [atom("big", [tv("x")])],
            [
                pos(atom("n", [tv("x")])),
                cmp(tv("x"), BuiltinOp::Gt, tc(i(3))),
            ],
        )
        .unwrap();
        let gp = ground(&p);
        let big = p.pred_id("big").unwrap();
        let derived: Vec<&GroundAtom> = gp
            .atoms()
            .map(|(_, a)| a)
            .filter(|a| a.pred == big)
            .collect();
        assert_eq!(derived.len(), 1);
        assert_eq!(derived[0].args, vec![i(5)]);
    }

    #[test]
    fn definitely_false_negatives_are_dropped() {
        // q(x) ← n(x), not m(x): m is never derivable → literal vanishes.
        let mut p = Program::new();
        p.fact("n", [i(1)]).unwrap();
        p.pred("m", 1).unwrap();
        p.rule(
            [atom("q", [tv("x")])],
            [pos(atom("n", [tv("x")])), neg(atom("m", [tv("x")]))],
        )
        .unwrap();
        let gp = ground(&p);
        let q_rule = gp
            .rules
            .iter()
            .find(|r| !r.head.is_empty() && r.head.len() == 1 && !r.pos.is_empty())
            .unwrap();
        assert!(q_rule.neg.is_empty());
    }

    #[test]
    fn possibly_true_negatives_are_kept() {
        // m(1) is a fact, so `not m(x)` stays in the ground rule.
        let mut p = Program::new();
        p.fact("n", [i(1)]).unwrap();
        p.fact("m", [i(1)]).unwrap();
        p.rule(
            [atom("q", [tv("x")])],
            [pos(atom("n", [tv("x")])), neg(atom("m", [tv("x")]))],
        )
        .unwrap();
        let gp = ground(&p);
        let q_rule = gp.rules.iter().find(|r| !r.pos.is_empty()).unwrap();
        assert_eq!(q_rule.neg.len(), 1);
    }

    #[test]
    fn tautologies_dropped_and_rules_deduped() {
        let mut p = Program::new();
        p.fact("r", [i(1)]).unwrap();
        // r(x) ← r(x): tautology.
        p.rule([atom("r", [tv("x")])], [pos(atom("r", [tv("x")]))])
            .unwrap();
        let gp = ground(&p);
        assert_eq!(gp.rules.len(), 1); // just the fact
    }

    #[test]
    fn disjunctive_heads_expand_pt() {
        // a(x) ∨ b(x) ← r(x): both a(1) and b(1) possibly true.
        let mut p = Program::new();
        p.fact("r", [i(1)]).unwrap();
        p.rule(
            [atom("a", [tv("x")]), atom("b", [tv("x")])],
            [pos(atom("r", [tv("x")]))],
        )
        .unwrap();
        p.rule([atom("c", [tv("x")])], [pos(atom("b", [tv("x")]))])
            .unwrap();
        let gp = ground(&p);
        let c = p.pred_id("c").unwrap();
        assert!(gp.atoms().any(|(_, a)| a.pred == c));
    }

    #[test]
    fn denial_rules_ground() {
        let mut p = Program::new();
        p.fact("r", [i(1)]).unwrap();
        p.fact("q", [i(1)]).unwrap();
        p.rule([], [pos(atom("r", [tv("x")])), pos(atom("q", [tv("x")]))])
            .unwrap();
        let gp = ground(&p);
        assert!(gp
            .rules
            .iter()
            .any(|r| r.head.is_empty() && r.pos.len() == 2));
    }

    /// The programs the from-scratch tests above exercise, as builders.
    fn sample_programs() -> Vec<Program> {
        let mut out = Vec::new();
        {
            // Transitive closure.
            let mut p = Program::new();
            p.fact("edge", [i(1), i(2)]).unwrap();
            p.fact("edge", [i(2), i(3)]).unwrap();
            p.rule(
                [atom("path", [tv("x"), tv("y")])],
                [pos(atom("edge", [tv("x"), tv("y")]))],
            )
            .unwrap();
            p.rule(
                [atom("path", [tv("x"), tv("z")])],
                [
                    pos(atom("edge", [tv("x"), tv("y")])),
                    pos(atom("path", [tv("y"), tv("z")])),
                ],
            )
            .unwrap();
            out.push(p);
        }
        {
            // Negation whose atom is derivable — the patch path.
            let mut p = Program::new();
            p.fact("n", [i(1)]).unwrap();
            p.fact("m", [i(1)]).unwrap();
            p.rule(
                [atom("q", [tv("x")])],
                [pos(atom("n", [tv("x")])), neg(atom("m", [tv("x")]))],
            )
            .unwrap();
            out.push(p);
        }
        {
            // Disjunctive heads + chained derivation + builtin.
            let mut p = Program::new();
            p.fact("r", [i(1)]).unwrap();
            p.fact("r", [i(5)]).unwrap();
            p.rule(
                [atom("a", [tv("x")]), atom("b", [tv("x")])],
                [
                    pos(atom("r", [tv("x")])),
                    cmp(tv("x"), BuiltinOp::Gt, tc(i(2))),
                ],
            )
            .unwrap();
            p.rule([atom("c", [tv("x")])], [pos(atom("b", [tv("x")]))])
                .unwrap();
            out.push(p);
        }
        {
            // Bodyless disjunction + denial + tautology candidate.
            let mut p = Program::new();
            p.pred("a", 0).unwrap();
            p.pred("b", 0).unwrap();
            p.rule([atom("a", []), atom("b", [])], []).unwrap();
            p.rule([], [pos(atom("a", [])), pos(atom("b", []))])
                .unwrap();
            p.fact("r", [i(1)]).unwrap();
            p.rule([atom("r", [tv("x")])], [pos(atom("r", [tv("x")]))])
                .unwrap();
            out.push(p);
        }
        out
    }

    #[test]
    fn state_matches_scratch_grounder() {
        for p in sample_programs() {
            let scratch = ground(&p);
            let state = GroundingState::new(&p);
            assert_eq!(
                state.ground_program().resolved_rules(),
                scratch.resolved_rules(),
                "program: {p}"
            );
        }
    }

    #[test]
    fn incremental_fact_delta_matches_scratch() {
        // Add facts one at a time to a live state; after every delta the
        // state must equal a from-scratch grounding of the grown program.
        let mut base = Program::new();
        base.pred("edge", 2).unwrap();
        base.pred("bad", 1).unwrap();
        base.rule(
            [atom("path", [tv("x"), tv("y")])],
            [pos(atom("edge", [tv("x"), tv("y")]))],
        )
        .unwrap();
        base.rule(
            [atom("path", [tv("x"), tv("z")])],
            [
                pos(atom("edge", [tv("x"), tv("y")])),
                pos(atom("path", [tv("y"), tv("z")])),
            ],
        )
        .unwrap();
        base.rule(
            [atom("good", [tv("x"), tv("y")])],
            [
                pos(atom("path", [tv("x"), tv("y")])),
                neg(atom("bad", [tv("x")])),
            ],
        )
        .unwrap();
        let mut state = GroundingState::new(&base);
        let deltas: Vec<(&str, Vec<Value>)> = vec![
            ("edge", vec![i(1), i(2)]),
            ("edge", vec![i(2), i(3)]),
            // `bad(1)` flips `not bad(1)` from dropped to kept in every
            // good(1, _) instance — the negative patch path.
            ("bad", vec![i(1)]),
            ("edge", vec![i(3), i(1)]),
        ];
        for (pred, args) in deltas {
            state.add_fact_named(pred, args.clone()).unwrap();
            let scratch = ground(state.program());
            assert_eq!(
                state.ground_program().resolved_rules(),
                scratch.resolved_rules(),
                "after adding {pred}({args:?})"
            );
        }
    }

    #[test]
    fn fact_removal_unpatches_negatives() {
        // The DRed un-patch path: `m(1)` leaving PT must flip `not m(1)`
        // back to "definitely false → dropped" in the surviving q-rule
        // instance (the ground rule loses its negative literal).
        let mut p = Program::new();
        p.fact("n", [i(1)]).unwrap();
        p.fact("n", [i(2)]).unwrap();
        p.fact("m", [i(1)]).unwrap();
        p.rule(
            [atom("q", [tv("x")])],
            [pos(atom("n", [tv("x")])), neg(atom("m", [tv("x")]))],
        )
        .unwrap();
        let mut state = GroundingState::new(&p);
        let m = p.pred_id("m").unwrap();
        state.remove_facts([(m, vec![i(1)])]);
        let scratch = ground(state.program());
        assert_eq!(
            state.ground_program().resolved_rules(),
            scratch.resolved_rules()
        );
        // And the removed fact really is gone.
        assert!(!state
            .program()
            .facts()
            .iter()
            .any(|(pid, args)| *pid == m && args == &vec![i(1)]));
        // Every q-rule instance now resolves without a negative literal.
        let q = p.pred_id("q").unwrap();
        for (head, _, neg) in state.ground_program().resolved_rules() {
            if head.iter().any(|a| a.pred == q) {
                assert!(neg.is_empty(), "not m(x) must be dropped after removal");
            }
        }
    }

    #[test]
    fn atom_with_two_derivations_survives_over_delete() {
        // p(x) is derived from both e(x) and f(x): removing e(1) tears
        // p(1) down in pass 1 but pass 2 rederives it from the surviving
        // f-binding — and its consumers come back with it.
        let mut p = Program::new();
        p.fact("e", [i(1)]).unwrap();
        p.fact("f", [i(1)]).unwrap();
        p.rule([atom("p", [tv("x")])], [pos(atom("e", [tv("x")]))])
            .unwrap();
        p.rule([atom("p", [tv("x")])], [pos(atom("f", [tv("x")]))])
            .unwrap();
        p.rule([atom("q", [tv("x")])], [pos(atom("p", [tv("x")]))])
            .unwrap();
        let mut state = GroundingState::new(&p);
        let e = p.pred_id("e").unwrap();
        state.remove_facts([(e, vec![i(1)])]);
        assert_eq!(
            state.ground_program().resolved_rules(),
            ground(state.program()).resolved_rules()
        );
        let q = p.pred_id("q").unwrap();
        assert!(
            state
                .ground_program()
                .resolved_rules()
                .iter()
                .any(|(head, _, _)| head.iter().any(|a| a.pred == q)),
            "q(1) must survive: p(1) still derivable via f(1)"
        );
    }

    #[test]
    fn cyclic_support_is_torn_down() {
        // p ← q and q ← p support each other; only e grounds them. A pure
        // refcount cut-off would keep the dead loop alive after e is
        // removed — the over-delete pass must not.
        let mut p = Program::new();
        p.fact("e", [i(1)]).unwrap();
        p.rule([atom("p", [tv("x")])], [pos(atom("e", [tv("x")]))])
            .unwrap();
        p.rule([atom("p", [tv("x")])], [pos(atom("q", [tv("x")]))])
            .unwrap();
        p.rule([atom("q", [tv("x")])], [pos(atom("p", [tv("x")]))])
            .unwrap();
        let mut state = GroundingState::new(&p);
        let e = p.pred_id("e").unwrap();
        state.remove_facts([(e, vec![i(1)])]);
        let scratch = ground(state.program());
        assert_eq!(
            state.ground_program().resolved_rules(),
            scratch.resolved_rules()
        );
        assert!(
            state.ground_program().resolved_rules().is_empty(),
            "the p/q loop has no non-circular derivation left"
        );
    }

    #[test]
    fn duplicate_fact_removal_is_multiset_exact() {
        let mut p = Program::new();
        p.fact("r", [i(1)]).unwrap();
        p.fact("r", [i(1)]).unwrap();
        p.rule([atom("q", [tv("x")])], [pos(atom("r", [tv("x")]))])
            .unwrap();
        let mut state = GroundingState::new(&p);
        let r = p.pred_id("r").unwrap();
        // First removal: one occurrence remains, the atom (and q(1)) stay.
        state.remove_facts([(r, vec![i(1)])]);
        assert_eq!(
            state.ground_program().resolved_rules(),
            ground(state.program()).resolved_rules()
        );
        assert_eq!(state.program().facts().len(), 1);
        assert!(!state.ground_program().resolved_rules().is_empty());
        // Second removal: now the cone falls.
        state.remove_facts([(r, vec![i(1)])]);
        assert_eq!(
            state.ground_program().resolved_rules(),
            ground(state.program()).resolved_rules()
        );
        assert!(state.ground_program().resolved_rules().is_empty());
    }

    #[test]
    fn transitive_cone_deletes_and_rederives() {
        // Diamond: path(1,3) via the direct edge and via 2. Removing
        // edge(1,3) keeps path(1,3) (rederived through the chain);
        // removing edge(1,2) afterwards kills it.
        let mut p = Program::new();
        p.fact("edge", [i(1), i(2)]).unwrap();
        p.fact("edge", [i(2), i(3)]).unwrap();
        p.fact("edge", [i(1), i(3)]).unwrap();
        p.rule(
            [atom("path", [tv("x"), tv("y")])],
            [pos(atom("edge", [tv("x"), tv("y")]))],
        )
        .unwrap();
        p.rule(
            [atom("path", [tv("x"), tv("z")])],
            [
                pos(atom("edge", [tv("x"), tv("y")])),
                pos(atom("path", [tv("y"), tv("z")])),
            ],
        )
        .unwrap();
        let mut state = GroundingState::new(&p);
        let edge = p.pred_id("edge").unwrap();
        let path = p.pred_id("path").unwrap();
        let has_path13 = |state: &GroundingState| {
            state
                .ground_program()
                .resolved_rules()
                .iter()
                .any(|(head, _, _)| {
                    head.iter()
                        .any(|a| a.pred == path && a.args == vec![i(1), i(3)])
                })
        };
        state.remove_facts([(edge, vec![i(1), i(3)])]);
        assert_eq!(
            state.ground_program().resolved_rules(),
            ground(state.program()).resolved_rules()
        );
        assert!(has_path13(&state), "path(1,3) survives via 1→2→3");
        state.remove_facts([(edge, vec![i(1), i(2)])]);
        assert_eq!(
            state.ground_program().resolved_rules(),
            ground(state.program()).resolved_rules()
        );
        assert!(!has_path13(&state), "no derivation of path(1,3) remains");
    }

    #[test]
    fn removal_batch_interleaves_with_additions_and_rules() {
        // DRed must compose with the insertion path and add_rule on one
        // live state — the cache's mixed-churn usage pattern.
        let mut p = Program::new();
        p.fact("n", [i(1)]).unwrap();
        p.fact("m", [i(1)]).unwrap();
        p.rule(
            [atom("q", [tv("x")])],
            [pos(atom("n", [tv("x")])), neg(atom("m", [tv("x")]))],
        )
        .unwrap();
        let mut state = GroundingState::new(&p);
        let n = state.program().pred_id("n").unwrap();
        let m = state.program().pred_id("m").unwrap();
        state.add_fact_named("n", [i(2)]).unwrap();
        state.remove_facts([(m, vec![i(1)]), (n, vec![i(1)])]);
        state
            .add_rule([atom("s", [tv("x")])], [pos(atom("q", [tv("x")]))])
            .unwrap();
        state.add_fact_named("m", [i(2)]).unwrap();
        state.remove_facts([(n, vec![i(2)])]);
        assert_eq!(
            state.ground_program().resolved_rules(),
            ground(state.program()).resolved_rules()
        );
    }

    #[test]
    fn add_rule_extends_live_grounding() {
        let mut p = Program::new();
        p.fact("r", [i(1)]).unwrap();
        p.fact("r", [i(2)]).unwrap();
        let mut state = GroundingState::new(&p);
        state
            .add_rule(
                [atom("q", [tv("x")])],
                [
                    pos(atom("r", [tv("x")])),
                    cmp(tv("x"), BuiltinOp::Gt, tc(i(1))),
                ],
            )
            .unwrap();
        state
            .add_rule([atom("s", [tv("x")])], [pos(atom("q", [tv("x")]))])
            .unwrap();
        let scratch = ground(state.program());
        assert_eq!(
            state.ground_program().resolved_rules(),
            scratch.resolved_rules()
        );
        let s_pred = state.program().pred_id("s").unwrap();
        assert!(state
            .ground_program()
            .atoms()
            .any(|(_, a)| a.pred == s_pred && a.args == vec![i(2)]));
    }

    #[test]
    fn failed_add_rule_keeps_state_usable() {
        // `Program::rule` declares predicates before rejecting an unsafe
        // rule; the state's per-predicate tables must track them so later
        // deltas on those predicates error or succeed — never panic.
        let mut p = Program::new();
        p.fact("e", [i(1)]).unwrap();
        let mut state = GroundingState::new(&p);
        let err = state.add_rule([atom("q", [tv("y")])], [pos(atom("e", [tv("x")]))]);
        assert!(matches!(err, Err(AspError::UnsafeRule { .. })));
        state.add_fact_named("q", [i(7)]).unwrap();
        assert_eq!(
            state.ground_program().resolved_rules(),
            ground(state.program()).resolved_rules()
        );
    }

    #[test]
    fn failed_fact_batch_leaves_state_untouched() {
        // A batch with a bad arity mid-way must apply nothing: the state
        // stays equal to a from-scratch grounding of its (unchanged)
        // program.
        let mut p = Program::new();
        p.fact("e", [i(1)]).unwrap();
        p.rule([atom("q", [tv("x")])], [pos(atom("e", [tv("x")]))])
            .unwrap();
        let mut state = GroundingState::new(&p);
        let e = p.pred_id("e").unwrap();
        let err = state.add_facts([(e, vec![i(2)]), (e, vec![i(2), i(3)])]);
        assert!(matches!(err, Err(AspError::ArityConflict { .. })));
        assert_eq!(state.program().facts().len(), 1, "nothing applied");
        assert_eq!(
            state.ground_program().resolved_rules(),
            ground(state.program()).resolved_rules()
        );
        // And the state is still usable: the valid fact goes in cleanly.
        state.add_facts([(e, vec![i(2)])]).unwrap();
        assert_eq!(
            state.ground_program().resolved_rules(),
            ground(state.program()).resolved_rules()
        );
    }

    #[test]
    fn patch_keeps_shared_rule_alive() {
        // Two bindings of a denial resolve to the same ground rule while
        // their negative atoms are definitely false; when one of the two
        // negative atoms becomes possibly true, the shared resolution must
        // survive for the unaffected binding (the refcount-exactness the
        // incremental patch relies on).
        let mut p = Program::new();
        p.fact("n", [i(1)]).unwrap();
        p.fact("n", [i(2)]).unwrap();
        p.pred("m", 1).unwrap();
        p.rule(
            [],
            [
                pos(atom("n", [tv("x")])),
                pos(atom("n", [tv("y")])),
                neg(atom("m", [tv("y")])),
            ],
        )
        .unwrap();
        let mut state = GroundingState::new(&p);
        state.add_fact_named("m", [i(2)]).unwrap();
        let scratch = ground(state.program());
        assert_eq!(
            state.ground_program().resolved_rules(),
            scratch.resolved_rules()
        );
    }

    #[test]
    fn acyclic_survivor_skips_teardown() {
        // q(1) is derived twice — via e(1) and via f(1) — and q is not on
        // any positive cycle. Removing e(1) must not tear q(1) (or its
        // cone through c) down only to rederive it: the stratification
        // cut-off keeps teardown confined to atoms that actually fall.
        let mut p = Program::new();
        p.fact("e", [i(1)]).unwrap();
        p.fact("f", [i(1)]).unwrap();
        p.rule([atom("q", [tv("x")])], [pos(atom("e", [tv("x")]))])
            .unwrap();
        p.rule([atom("q", [tv("x")])], [pos(atom("f", [tv("x")]))])
            .unwrap();
        p.rule([atom("c", [tv("x")])], [pos(atom("q", [tv("x")]))])
            .unwrap();
        let mut state = GroundingState::new(&p);
        let e = p.pred_id("e").unwrap();
        state.remove_facts([(e, vec![i(1)])]);
        assert_eq!(
            state.ground_program().resolved_rules(),
            ground(state.program()).resolved_rules()
        );
        assert_eq!(
            state.dred_teardowns(),
            1,
            "only e(1) itself falls; q(1) and c(1) keep their surviving support"
        );
    }

    #[test]
    fn recursive_survivor_still_rederives_through_teardown() {
        // Same diamond shape but with q on a positive cycle (q ← r, r ← q):
        // the cut-off must not apply, and the classic over-delete +
        // rederive equality must still hold.
        let mut p = Program::new();
        p.fact("e", [i(1)]).unwrap();
        p.fact("f", [i(1)]).unwrap();
        p.rule([atom("q", [tv("x")])], [pos(atom("e", [tv("x")]))])
            .unwrap();
        p.rule([atom("q", [tv("x")])], [pos(atom("f", [tv("x")]))])
            .unwrap();
        p.rule([atom("q", [tv("x")])], [pos(atom("r", [tv("x")]))])
            .unwrap();
        p.rule([atom("r", [tv("x")])], [pos(atom("q", [tv("x")]))])
            .unwrap();
        let mut state = GroundingState::new(&p);
        let e = p.pred_id("e").unwrap();
        let before = state.dred_teardowns();
        state.remove_facts([(e, vec![i(1)])]);
        assert_eq!(
            state.ground_program().resolved_rules(),
            ground(state.program()).resolved_rules()
        );
        assert!(
            state.dred_teardowns() > before + 1,
            "recursive q must go through the full over-delete pass"
        );
    }

    #[test]
    fn retraction_log_reports_the_interval() {
        let mut p = Program::new();
        p.fact("e", [i(1)]).unwrap();
        p.rule([atom("q", [tv("x")])], [pos(atom("e", [tv("x")]))])
            .unwrap();
        let mut state = GroundingState::new(&p);
        let e = p.pred_id("e").unwrap();
        let seq0 = state.retraction_seq();
        assert_eq!(state.retractions_since(seq0), Some(Vec::new()));
        state.remove_facts([(e, vec![i(1)])]);
        let since = state.retractions_since(seq0).expect("log covers this");
        // e(1)'s unit rule and the q(1) ← e(1) instance both left.
        assert_eq!(since.len() as u64, state.retraction_seq() - seq0);
        assert_eq!(since.len(), 2);
        // A future sequence number is not this state's past.
        assert_eq!(state.retractions_since(state.retraction_seq() + 1), None);
    }
}
