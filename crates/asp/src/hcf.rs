//! Head-cycle-freeness and the shift transformation (Section 6 of the
//! paper; Ben-Eliyahu & Dechter 1994).
//!
//! The dependency graph of a ground program has its atoms as vertices and
//! an edge `A → B` whenever some rule has `A` in its positive body and `B`
//! in its head. A program is **head-cycle-free (HCF)** iff no directed
//! cycle passes through two atoms in the head of one rule — equivalently,
//! no rule has two head atoms in the same strongly connected component.
//!
//! An HCF disjunctive rule `h₁ ∨ … ∨ hₙ ← body` can be *shifted* into the
//! n normal rules `hᵢ ← body, not h₁, …, not hᵢ₋₁, not hᵢ₊₁, …, not hₙ`
//! preserving the stable models; query answering drops from Π₂ᵖ to coNP
//! (Corollary 1 of the paper).

use crate::error::AspError;
use crate::ground::{AtomId, GroundProgram, GroundRule};

/// Tarjan SCC over the positive dependency graph; returns the component
/// id of every atom.
pub fn scc_components(gp: &GroundProgram) -> Vec<u32> {
    let n = gp.atom_count();
    // adjacency: pos-body atom -> every head atom.
    let mut adj: Vec<Vec<AtomId>> = vec![Vec::new(); n];
    for rule in &gp.rules {
        for &p in &rule.pos {
            for &h in &rule.head {
                adj[p as usize].push(h);
            }
        }
    }
    // Iterative Tarjan.
    #[derive(Clone, Copy)]
    struct Frame {
        node: u32,
        edge: usize,
    }
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp = vec![u32::MAX; n];
    let mut next_index = 0u32;
    let mut next_comp = 0u32;
    for start in 0..n as u32 {
        if index[start as usize] != u32::MAX {
            continue;
        }
        let mut frames = vec![Frame {
            node: start,
            edge: 0,
        }];
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;
        while let Some(frame) = frames.last_mut() {
            let v = frame.node as usize;
            if frame.edge < adj[v].len() {
                let w = adj[v][frame.edge];
                frame.edge += 1;
                let wi = w as usize;
                if index[wi] == u32::MAX {
                    index[wi] = next_index;
                    low[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    frames.push(Frame { node: w, edge: 0 });
                } else if on_stack[wi] {
                    low[v] = low[v].min(index[wi]);
                }
            } else {
                if low[v] == index[v] {
                    // v is an SCC root.
                    loop {
                        let w = stack.pop().expect("scc stack");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w as usize == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                let done = frames.pop().expect("frame");
                if let Some(parent) = frames.last() {
                    let p = parent.node as usize;
                    low[p] = low[p].min(low[done.node as usize]);
                }
            }
        }
    }
    comp
}

/// Is the ground program head-cycle-free?
pub fn is_hcf(gp: &GroundProgram) -> bool {
    let comp = scc_components(gp);
    for rule in &gp.rules {
        for (i, &a) in rule.head.iter().enumerate() {
            for &b in &rule.head[i + 1..] {
                if comp[a as usize] == comp[b as usize] {
                    return false;
                }
            }
        }
    }
    true
}

/// Shift a head-cycle-free program into an equivalent normal program
/// (same atoms, same stable models). Errors with [`AspError::NotHcf`] on
/// non-HCF inputs, where the transformation is unsound.
pub fn shift(gp: &GroundProgram) -> Result<GroundProgram, AspError> {
    if !is_hcf(gp) {
        return Err(AspError::NotHcf);
    }
    let mut out = gp.clone();
    out.rules = Vec::with_capacity(gp.rules.len());
    for rule in &gp.rules {
        if rule.head.len() <= 1 {
            out.rules.push(rule.clone());
            continue;
        }
        for (i, &h) in rule.head.iter().enumerate() {
            let mut neg = rule.neg.clone();
            for (j, &other) in rule.head.iter().enumerate() {
                if j != i {
                    neg.push(other);
                }
            }
            neg.sort_unstable();
            neg.dedup();
            out.rules.push(GroundRule {
                head: vec![h],
                pos: rule.pos.clone(),
                neg,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::ground;
    use crate::stable::stable_models;
    use crate::syntax::{atom, pos, Program};

    fn prog(rules: &[(&[&str], &[&str])]) -> Program {
        let mut p = Program::new();
        for (head, body) in rules {
            for a in head.iter().chain(body.iter()) {
                p.pred(a, 0).unwrap();
            }
            p.rule(
                head.iter().map(|h| atom(*h, [])).collect::<Vec<_>>(),
                body.iter().map(|b| pos(atom(*b, []))).collect::<Vec<_>>(),
            )
            .unwrap();
        }
        p
    }

    #[test]
    fn disjunction_without_cycle_is_hcf() {
        let p = prog(&[(&["a", "b"], &[])]);
        let gp = ground(&p);
        assert!(is_hcf(&gp));
    }

    #[test]
    fn head_cycle_detected() {
        // a ∨ b. a ← b. b ← a.  — a and b in one SCC and one head.
        let p = prog(&[(&["a", "b"], &[]), (&["a"], &["b"]), (&["b"], &["a"])]);
        let gp = ground(&p);
        assert!(!is_hcf(&gp));
        assert!(matches!(shift(&gp), Err(AspError::NotHcf)));
    }

    #[test]
    fn cycle_not_through_one_head_is_fine() {
        // a ← b. b ← a. c ∨ d. — the cycle avoids the disjunctive head.
        let p = prog(&[(&["a"], &["b"]), (&["b"], &["a"]), (&["c", "d"], &[])]);
        let gp = ground(&p);
        assert!(is_hcf(&gp));
    }

    #[test]
    fn shift_preserves_stable_models_on_hcf() {
        // a ∨ b. c ← a. c ← b.
        let p = prog(&[(&["a", "b"], &[]), (&["c"], &["a"]), (&["c"], &["b"])]);
        let gp = ground(&p);
        let shifted = shift(&gp).unwrap();
        assert!(shifted.is_normal());
        assert_eq!(stable_models(&gp), stable_models(&shifted));
    }

    #[test]
    fn shift_keeps_normal_rules_untouched() {
        let p = prog(&[(&["a"], &["b"]), (&["b"], &[])]);
        let gp = ground(&p);
        let shifted = shift(&gp).unwrap();
        assert_eq!(gp.rules, shifted.rules);
    }

    #[test]
    fn shifting_non_hcf_would_lose_models() {
        // Documented unsoundness: the non-HCF program has stable model
        // {a, b}; its naive shift has none. shift() refuses, so emulate it.
        let p = prog(&[(&["a", "b"], &[]), (&["a"], &["b"]), (&["b"], &["a"])]);
        let gp = ground(&p);
        assert_eq!(stable_models(&gp).len(), 1);
        // Hand-build the (unsound) shifted version:
        let mut bad = gp.clone();
        bad.rules = Vec::new();
        for rule in &gp.rules {
            if rule.head.len() <= 1 {
                bad.rules.push(rule.clone());
            } else {
                for (i, &h) in rule.head.iter().enumerate() {
                    let neg: Vec<_> = rule
                        .head
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, &o)| o)
                        .collect();
                    bad.rules.push(GroundRule {
                        head: vec![h],
                        pos: rule.pos.clone(),
                        neg,
                    });
                }
            }
        }
        assert!(stable_models(&bad).is_empty());
    }

    #[test]
    fn scc_groups_mutually_reachable_atoms() {
        // Hand-built ground program: a ← b; b ← a; c ← a.
        use crate::ground::{GroundAtom, GroundProgram, GroundRule};
        use crate::syntax::PredId;
        let mut gp = GroundProgram::default();
        let mk = |i: u32| GroundAtom {
            pred: PredId(i),
            args: vec![],
        };
        let a = gp.intern(mk(0));
        let b = gp.intern(mk(1));
        let c = gp.intern(mk(2));
        gp.push_rule(GroundRule {
            head: vec![a],
            pos: vec![b],
            neg: vec![],
        });
        gp.push_rule(GroundRule {
            head: vec![b],
            pos: vec![a],
            neg: vec![],
        });
        gp.push_rule(GroundRule {
            head: vec![c],
            pos: vec![a],
            neg: vec![],
        });
        let comp = scc_components(&gp);
        assert_eq!(comp[a as usize], comp[b as usize]);
        assert_ne!(comp[a as usize], comp[c as usize]);
    }
}
