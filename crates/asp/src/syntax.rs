//! Non-ground program syntax: predicates, rules, literals, builders.

use crate::error::AspError;
use cqa_relational::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Predicate identifier, dense within one [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

impl PredId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term of a rule: rule-local variable or constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// Rule-local variable index.
    Var(u32),
    /// Constant.
    Const(Value),
}

/// Builtin comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BuiltinOp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `<`
    Lt,
    /// `≤`
    Leq,
    /// `>`
    Gt,
    /// `≥`
    Geq,
}

impl BuiltinOp {
    /// Evaluate over the total order on [`Value`] (null as ordinary
    /// constant — exactly what the repair programs need for `x ≠ null`).
    pub fn eval(self, l: &Value, r: &Value) -> bool {
        match self {
            BuiltinOp::Eq => l == r,
            BuiltinOp::Neq => l != r,
            BuiltinOp::Lt => l < r,
            BuiltinOp::Leq => l <= r,
            BuiltinOp::Gt => l > r,
            BuiltinOp::Geq => l >= r,
        }
    }

    /// Printable symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            BuiltinOp::Eq => "=",
            BuiltinOp::Neq => "!=",
            BuiltinOp::Lt => "<",
            BuiltinOp::Leq => "<=",
            BuiltinOp::Gt => ">",
            BuiltinOp::Geq => ">=",
        }
    }
}

/// A resolved predicate atom inside a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleAtom {
    /// The predicate.
    pub pred: PredId,
    /// Terms, one per argument.
    pub terms: Vec<Term>,
}

/// A body literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Literal {
    /// Positive atom.
    Pos(RuleAtom),
    /// Default-negated atom (`not A`).
    Neg(RuleAtom),
    /// Builtin comparison.
    Cmp(BuiltinOp, Term, Term),
}

/// A resolved rule: `h₁ ∨ … ∨ hₙ ← body`. An empty head is a program
/// denial (integrity rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Disjunctive head atoms.
    pub head: Vec<RuleAtom>,
    /// Body literals (positives first is conventional but not required).
    pub body: Vec<Literal>,
    /// Variable names, indexed by `Term::Var`.
    pub var_names: Vec<String>,
}

/// Pre-resolution term spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermSpec {
    /// Named variable.
    Var(String),
    /// Constant.
    Const(Value),
}

/// Shorthand: a named variable.
pub fn tv(name: impl Into<String>) -> TermSpec {
    TermSpec::Var(name.into())
}

/// Shorthand: a constant.
pub fn tc(value: impl Into<Value>) -> TermSpec {
    TermSpec::Const(value.into())
}

/// Pre-resolution atom spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomSpec {
    /// Predicate name.
    pub pred: String,
    /// Arguments.
    pub args: Vec<TermSpec>,
}

/// Build an atom spec.
pub fn atom(pred: impl Into<String>, args: impl IntoIterator<Item = TermSpec>) -> AtomSpec {
    AtomSpec {
        pred: pred.into(),
        args: args.into_iter().collect(),
    }
}

/// Pre-resolution body literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BodyLit {
    /// Positive atom.
    Pos(AtomSpec),
    /// Negated atom.
    Neg(AtomSpec),
    /// Builtin comparison.
    Cmp(TermSpec, BuiltinOp, TermSpec),
}

/// Positive body literal.
pub fn pos(a: AtomSpec) -> BodyLit {
    BodyLit::Pos(a)
}

/// Negated body literal.
pub fn neg(a: AtomSpec) -> BodyLit {
    BodyLit::Neg(a)
}

/// Builtin body literal.
pub fn cmp(lhs: TermSpec, op: BuiltinOp, rhs: TermSpec) -> BodyLit {
    BodyLit::Cmp(lhs, op, rhs)
}

/// A non-ground disjunctive logic program: declared predicates, facts and
/// rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    pred_names: Vec<String>,
    pred_arity: Vec<usize>,
    by_name: BTreeMap<String, PredId>,
    facts: Vec<(PredId, Vec<Value>)>,
    rules: Vec<Rule>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Declare (or look up) a predicate, checking arity consistency.
    pub fn pred(&mut self, name: &str, arity: usize) -> Result<PredId, AspError> {
        if let Some(&id) = self.by_name.get(name) {
            let declared = self.pred_arity[id.index()];
            if declared != arity {
                return Err(AspError::ArityConflict {
                    predicate: name.to_string(),
                    declared,
                    used: arity,
                });
            }
            return Ok(id);
        }
        let id = PredId(self.pred_names.len() as u32);
        self.pred_names.push(name.to_string());
        self.pred_arity.push(arity);
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Look up a predicate without declaring it.
    pub fn pred_id(&self, name: &str) -> Option<PredId> {
        self.by_name.get(name).copied()
    }

    /// Predicate name.
    pub fn pred_name(&self, id: PredId) -> &str {
        &self.pred_names[id.index()]
    }

    /// Predicate arity.
    pub fn pred_arity(&self, id: PredId) -> usize {
        self.pred_arity[id.index()]
    }

    /// Number of predicates.
    pub fn pred_count(&self) -> usize {
        self.pred_names.len()
    }

    /// Add a ground fact.
    pub fn fact(
        &mut self,
        pred: impl Into<String>,
        args: impl IntoIterator<Item = Value>,
    ) -> Result<(), AspError> {
        let args: Vec<Value> = args.into_iter().collect();
        let name = pred.into();
        let id = self.pred(&name, args.len())?;
        self.facts.push((id, args));
        Ok(())
    }

    /// The facts.
    pub fn facts(&self) -> &[(PredId, Vec<Value>)] {
        &self.facts
    }

    /// Remove the first fact equal to `(pred, args)` (multiset removal).
    /// Returns whether a fact was removed. The predicate declaration is
    /// retained.
    pub fn remove_fact(&mut self, pred: PredId, args: &[Value]) -> bool {
        match self
            .facts
            .iter()
            .position(|(p, a)| *p == pred && a.as_slice() == args)
        {
            Some(at) => {
                self.facts.remove(at);
                true
            }
            None => false,
        }
    }

    /// The rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Add a rule `head ← body`, resolving names and checking safety:
    /// every variable occurring in the head, in a negated literal or in a
    /// builtin must also occur in a positive body atom.
    pub fn rule(
        &mut self,
        head: impl IntoIterator<Item = AtomSpec>,
        body: impl IntoIterator<Item = BodyLit>,
    ) -> Result<(), AspError> {
        let mut vars: BTreeMap<String, u32> = BTreeMap::new();
        let mut var_names: Vec<String> = Vec::new();
        let mut resolve_term = |spec: &TermSpec| -> Term {
            match spec {
                TermSpec::Var(n) => {
                    let next = var_names.len() as u32;
                    let id = *vars.entry(n.clone()).or_insert_with(|| {
                        var_names.push(n.clone());
                        next
                    });
                    Term::Var(id)
                }
                TermSpec::Const(v) => Term::Const(*v),
            }
        };
        let head_specs: Vec<AtomSpec> = head.into_iter().collect();
        let body_specs: Vec<BodyLit> = body.into_iter().collect();
        let mut head_atoms = Vec::with_capacity(head_specs.len());
        let mut body_lits = Vec::with_capacity(body_specs.len());
        for spec in &head_specs {
            let terms: Vec<Term> = spec.args.iter().map(&mut resolve_term).collect();
            let pred = self.pred(&spec.pred, terms.len())?;
            head_atoms.push(RuleAtom { pred, terms });
        }
        for lit in &body_specs {
            let resolved = match lit {
                BodyLit::Pos(a) => {
                    let terms: Vec<Term> = a.args.iter().map(&mut resolve_term).collect();
                    Literal::Pos(RuleAtom {
                        pred: self.pred(&a.pred, terms.len())?,
                        terms,
                    })
                }
                BodyLit::Neg(a) => {
                    let terms: Vec<Term> = a.args.iter().map(&mut resolve_term).collect();
                    Literal::Neg(RuleAtom {
                        pred: self.pred(&a.pred, terms.len())?,
                        terms,
                    })
                }
                BodyLit::Cmp(l, op, r) => Literal::Cmp(*op, resolve_term(l), resolve_term(r)),
            };
            body_lits.push(resolved);
        }
        let rule = Rule {
            head: head_atoms,
            body: body_lits,
            var_names,
        };
        self.check_safety(&rule)?;
        self.rules.push(rule);
        Ok(())
    }

    fn check_safety(&self, rule: &Rule) -> Result<(), AspError> {
        let mut safe = vec![false; rule.var_names.len()];
        for lit in &rule.body {
            if let Literal::Pos(a) = lit {
                for t in &a.terms {
                    if let Term::Var(v) = t {
                        safe[*v as usize] = true;
                    }
                }
            }
        }
        let check = |t: &Term| -> Result<(), AspError> {
            if let Term::Var(v) = t {
                if !safe[*v as usize] {
                    return Err(AspError::UnsafeRule {
                        rule: crate::display::rule_to_string(self, rule),
                        var: rule.var_names[*v as usize].clone(),
                    });
                }
            }
            Ok(())
        };
        for a in &rule.head {
            for t in &a.terms {
                check(t)?;
            }
        }
        for lit in &rule.body {
            match lit {
                Literal::Pos(_) => {}
                Literal::Neg(a) => {
                    for t in &a.terms {
                        check(t)?;
                    }
                }
                Literal::Cmp(_, l, r) => {
                    check(l)?;
                    check(r)?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::display::program_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relational::{i, s};

    #[test]
    fn facts_declare_predicates() {
        let mut p = Program::new();
        p.fact("r", [s("a"), i(1)]).unwrap();
        let id = p.pred_id("r").unwrap();
        assert_eq!(p.pred_arity(id), 2);
        assert_eq!(p.pred_name(id), "r");
        assert_eq!(p.facts().len(), 1);
    }

    #[test]
    fn arity_conflicts_rejected() {
        let mut p = Program::new();
        p.fact("r", [s("a")]).unwrap();
        assert!(matches!(
            p.fact("r", [s("a"), s("b")]),
            Err(AspError::ArityConflict { .. })
        ));
    }

    #[test]
    fn rule_resolution_shares_variables() {
        let mut p = Program::new();
        p.rule([atom("q", [tv("x")])], [pos(atom("r", [tv("x"), tv("y")]))])
            .unwrap();
        let rule = &p.rules()[0];
        assert_eq!(rule.var_names, vec!["x".to_string(), "y".into()]);
        assert_eq!(rule.head.len(), 1);
    }

    #[test]
    fn unsafe_head_var_rejected() {
        let mut p = Program::new();
        let err = p.rule([atom("q", [tv("z")])], [pos(atom("r", [tv("x")]))]);
        assert!(matches!(err, Err(AspError::UnsafeRule { .. })));
    }

    #[test]
    fn unsafe_negated_var_rejected() {
        let mut p = Program::new();
        let err = p.rule(
            [atom("q", [tv("x")])],
            [pos(atom("r", [tv("x")])), neg(atom("t", [tv("w")]))],
        );
        assert!(matches!(err, Err(AspError::UnsafeRule { .. })));
    }

    #[test]
    fn unsafe_builtin_var_rejected() {
        let mut p = Program::new();
        let err = p.rule(
            [],
            [
                pos(atom("r", [tv("x")])),
                cmp(tv("x"), BuiltinOp::Lt, tv("bound")),
            ],
        );
        assert!(matches!(err, Err(AspError::UnsafeRule { .. })));
    }

    #[test]
    fn denials_and_constants_are_safe() {
        let mut p = Program::new();
        p.rule(
            [],
            [
                pos(atom("r", [tv("x"), tc(i(3))])),
                cmp(tv("x"), BuiltinOp::Neq, tc(s("a"))),
            ],
        )
        .unwrap();
        assert_eq!(p.rules().len(), 1);
    }

    #[test]
    fn builtin_eval_total_order() {
        use cqa_relational::null;
        assert!(BuiltinOp::Eq.eval(&null(), &null()));
        assert!(BuiltinOp::Neq.eval(&null(), &i(0)));
        assert!(BuiltinOp::Lt.eval(&i(1), &i(2)));
        assert!(BuiltinOp::Geq.eval(&s("b"), &s("a")));
    }
}
