//! Error type for program construction and grounding.

use std::fmt;

/// Errors raised while building or grounding logic programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AspError {
    /// A predicate was used with two different arities.
    ArityConflict {
        /// Predicate name.
        predicate: String,
        /// Arity recorded first.
        declared: usize,
        /// Arity of the offending use.
        used: usize,
    },
    /// A rule is unsafe: the variable occurs in the head, a negative
    /// literal or a builtin, but in no positive body atom.
    UnsafeRule {
        /// Rendered rule (for diagnostics).
        rule: String,
        /// The unsafe variable.
        var: String,
    },
    /// A fact delta referenced a predicate the program never declared.
    UnknownPredicate {
        /// Predicate name.
        predicate: String,
    },
    /// The operation requires a non-disjunctive (normal) program.
    NotNormal,
    /// The shift transformation requires a head-cycle-free program.
    NotHcf,
    /// A cancellation token (deadline or manual cancel) tripped while the
    /// operation was running. `partial` counts the sound intermediate
    /// results produced before the interrupt — e.g. stable models fully
    /// enumerated and checked; each one is a genuine stable model even
    /// though the enumeration is incomplete.
    Interrupted {
        /// Which engine loop observed the cancellation.
        phase: &'static str,
        /// Sound intermediate results completed before the interrupt.
        partial: usize,
    },
}

impl fmt::Display for AspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AspError::ArityConflict {
                predicate,
                declared,
                used,
            } => write!(
                f,
                "predicate `{predicate}` used with arity {used} but declared with {declared}"
            ),
            AspError::UnsafeRule { rule, var } => {
                write!(
                    f,
                    "unsafe rule (variable `{var}` unbound by positive body): {rule}"
                )
            }
            AspError::UnknownPredicate { predicate } => {
                write!(f, "unknown predicate `{predicate}` in fact delta")
            }
            AspError::NotNormal => write!(f, "operation requires a non-disjunctive program"),
            AspError::NotHcf => write!(f, "shift requires a head-cycle-free program"),
            AspError::Interrupted { phase, partial } => {
                write!(f, "interrupted during {phase} ({partial} partial results)")
            }
        }
    }
}

impl std::error::Error for AspError {}
