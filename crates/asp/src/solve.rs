//! A small CNF engine used to enumerate candidate models of ground
//! programs and to decide the minimality sub-problem of the stability
//! test.
//!
//! The encoding of a ground program is built in [`crate::stable`]:
//! rule clauses plus Clark-style support clauses with auxiliary support
//! variables, so every enumerated assignment is a *supported* classical
//! model — a superset of the stable models that avoids the exponential
//! blow-up of unsupported guesses.
//!
//! ## Engine
//!
//! Propagation uses **two watched literals**: each clause of length ≥ 2
//! watches two non-false literals, and only the watch lists of the literal
//! falsified by an assignment are visited.
//!
//! The search is **conflict-driven**: every conflict is analysed to the
//! **first unique implication point** (1UIP), the learned clause is added
//! to a clause store, and the solver backjumps non-chronologically to the
//! assertion level. Learned clauses carry integer activities (bumped when
//! they participate in an analysis, halved every [`DECAY_INTERVAL`]
//! conflicts) and the store is periodically reduced by **forgetting** the
//! low-activity half — locked clauses (reasons of trail literals) and
//! permanent clauses are kept.
//!
//! Model **enumeration** adds a *blocking clause* per found model (the
//! negation of its decide-variable assignment, level-0 literals omitted)
//! and treats it as a conflict: the search continues in place, with all
//! accumulated learned clauses, instead of restarting per model. Learned
//! clauses are implied by the formula plus the blocking clauses of the
//! already-reported models, so no unreported model is ever pruned (the
//! solver-learning suite checks this by refutation against the basic
//! engine).
//!
//! ## Enumeration order is pinned
//!
//! [`Cnf::for_each_model`] decides variables in **index order, `false`
//! first**, which makes the enumeration order *lexicographic* over the
//! decide range — a canonical order independent of the learning machinery
//! (learned and blocking clauses are implied, so they only skip modelless
//! regions; the next model found is always the lexicographically next
//! one). [`Cnf::for_each_model_basic`] retains the previous chronological
//! engine in its pure index-order form as the oracle this is tested
//! against, sequence-for-sequence.
//!
//! Pure SAT checks ([`Cnf::satisfiable`]) have no order contract, so they
//! branch by **VSIDS** conflict activity instead (bump on analysis, halve
//! at decay, order rebuilt at each decay — highest activity first, index
//! as tie-break), which is where the activity heuristic earns its keep:
//! the coNP minimality sub-checks of the stability test are satisfiability
//! calls.
//!
//! On top of VSIDS the activity policy runs **Luby restarts** with
//! **phase saving**: after `luby(k) ·` [`RESTART_UNIT`] conflicts the
//! solver cancels to level 0 and re-descends (learned clauses and
//! activities survive, so the restart re-enters the search where the
//! conflict analysis points rather than where the last descent happened
//! to wander), and every cancelled assignment saves its polarity so the
//! next decision on that variable retries it. Both are gated on the
//! activity policy: the enumeration path keeps its pinned lexicographic
//! order and never restarts (a restart would replay blocked models'
//! prefixes; the order contract is the whole point of `Policy::Lex`).
//!
//! ## Incremental solving architecture
//!
//! The pieces below let [`crate::resolve`] keep a **persistent
//! [`crate::resolve::SolverState`]** alive across reground deltas instead
//! of solving every call from scratch:
//!
//! * **Premise-tagged clauses.** [`Cnf::add_clause_premised`] attaches an
//!   opaque tag set (the encoder uses ground-rule slots and per-atom
//!   completion markers) to a clause. Conflict analysis **unions the
//!   premises of every clause it resolves through** — including, for
//!   literals omitted from the learned clause because they are forced at
//!   level 0, the recorded premise of that level-0 assignment — so a
//!   learned clause's premise set names a sub-formula that *implies* it.
//!   Any clause without a tag (blocking clauses of already-enumerated
//!   models, above all) poisons the union to `None`: a clause derived
//!   from a blocking clause is **not** implied by the program and must
//!   never outlive the enumeration that produced it. Premise sets are
//!   capped ([`PREMISE_CAP`]); overflow also poisons to `None` —
//!   untracked is always sound, it merely forfeits reuse.
//! * **Tombstone / watermark rule.** A learned clause exported through
//!   [`Cnf::for_each_model_tracked`] may be re-injected into a *later*
//!   solve iff its premises still hold there — for rule tags, the rule is
//!   still in the (sub)program; for completion markers, the atom's
//!   rule-head set is *unchanged* (a completion clause is definitional
//!   for "exactly these rules can support the atom", so a new or
//!   retracted head rule invalidates it). Rules DRed retracts arrive via
//!   `GroundingState::retractions_since` and tombstone every stored
//!   clause premised on them. Injected clauses are *implied*, so the
//!   lexicographic enumeration contract is untouched: they only skip
//!   modelless regions, exactly like natively learned clauses.
//! * **Warm heuristics.** [`Cnf::satisfiable_warm`] seeds saved phases
//!   and VSIDS activities from a previous run and hands the final values
//!   back; heuristics never affect verdicts, only time-to-verdict.
//! * **Portfolio SAT.** [`Cnf::satisfiable_portfolio`] races diversified
//!   activity-policy solvers (phase / order variants) over the same
//!   formula, first answer wins, the rest are cooperatively cancelled.
//!   Used for the coNP minimality sub-checks of the stability test; the
//!   enumeration path stays sequential and order-pinned.

use std::ops::ControlFlow;
use std::sync::Mutex;

use cqa_relational::{CancelToken, Cancelled};

/// A literal: variable index with polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// Variable index.
    pub var: u32,
    /// `true` for the positive literal.
    pub positive: bool,
}

impl Lit {
    /// Positive literal.
    pub fn pos(var: u32) -> Self {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal.
    pub fn neg(var: u32) -> Self {
        Lit {
            var,
            positive: false,
        }
    }
}

/// Premise sets larger than this poison to untracked (`None`): a learned
/// clause depending on that many distinct premises is unlikely to survive
/// a delta anyway, and the cap bounds the per-conflict union cost.
pub const PREMISE_CAP: usize = 24;

/// A CNF formula.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    pub(crate) clauses: Vec<Vec<Lit>>,
    /// Per-clause premise tags, parallel to `clauses`: `Some(tags)` marks
    /// the clause as implied by the sub-formula the (caller-defined) tags
    /// name; `None` is untracked. See the module docs, "Incremental
    /// solving architecture".
    pub(crate) premises: Vec<Option<Vec<u32>>>,
}

impl Cnf {
    /// Formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
            premises: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Add a clause (empty clause makes the formula unsatisfiable).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.push_normalised(lits, None);
    }

    /// [`Cnf::add_clause`] with a premise tag set attached: conflict
    /// analysis propagates the tags into learned clauses (see module
    /// docs). Tags are opaque to the solver; the encoder defines them.
    pub fn add_clause_premised(
        &mut self,
        lits: impl IntoIterator<Item = Lit>,
        premise: impl IntoIterator<Item = u32>,
    ) {
        let mut p: Vec<u32> = premise.into_iter().collect();
        p.sort_unstable();
        p.dedup();
        let premise = if p.len() > PREMISE_CAP { None } else { Some(p) };
        self.push_normalised(lits, premise);
    }

    fn push_normalised(&mut self, lits: impl IntoIterator<Item = Lit>, premise: Option<Vec<u32>>) {
        let mut c: Vec<Lit> = lits.into_iter().collect();
        c.sort_unstable_by_key(|l| (l.var, l.positive));
        c.dedup();
        // A clause with both polarities of a variable is a tautology.
        for w in c.windows(2) {
            if w[0].var == w[1].var {
                return;
            }
        }
        self.clauses.push(c);
        self.premises.push(premise);
    }

    /// Enumerate all satisfying assignments over the first `decide_vars`
    /// variables (remaining variables must be forced by propagation; if an
    /// assignment leaves one free, both completions are models and the
    /// callback sees the propagated-only projection — the encodings in
    /// this crate guarantee full determination). The callback receives the
    /// full assignment; `Break` stops the enumeration. Models arrive in
    /// lexicographic order of the decide range (`false` < `true`).
    pub fn for_each_model<B>(
        &self,
        decide_vars: usize,
        f: impl FnMut(&[bool]) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        self.for_each_model_instrumented(decide_vars, f, |_| {})
    }

    /// [`Cnf::for_each_model`] under a cancellation token: the CDCL outer
    /// loop polls `cancel` once per iteration (every propagation round,
    /// conflict, decision, or model), so `Err(Cancelled)` surfaces within
    /// one propagate/analyze step of the token tripping. Models delivered
    /// before the interrupt are exactly the lexicographic prefix the
    /// uncancelled enumeration would produce.
    pub fn for_each_model_cancellable<B>(
        &self,
        decide_vars: usize,
        cancel: &CancelToken,
        mut f: impl FnMut(&[bool]) -> ControlFlow<B>,
    ) -> Result<ControlFlow<B>, Cancelled> {
        let mut solver = Solver::new(self, decide_vars.min(self.num_vars), Policy::Lex);
        if !solver.init() {
            return Ok(ControlFlow::Continue(()));
        }
        solver.search(cancel, &mut f, &mut |_, _| {})
    }

    /// [`Cnf::for_each_model`] with a tap on the clause-learning stream:
    /// `on_learnt` sees every 1UIP clause the solver learns, in order.
    /// Test instrumentation (the solver-learning suite checks each one is
    /// implied); the enumeration itself is byte-identical.
    pub fn for_each_model_instrumented<B>(
        &self,
        decide_vars: usize,
        mut f: impl FnMut(&[bool]) -> ControlFlow<B>,
        mut on_learnt: impl FnMut(&[Lit]),
    ) -> ControlFlow<B> {
        let mut solver = Solver::new(self, decide_vars.min(self.num_vars), Policy::Lex);
        if !solver.init() {
            return ControlFlow::Continue(());
        }
        solver
            .search(
                &CancelToken::never(),
                &mut f,
                &mut |lits: &[Lit], _premise| on_learnt(lits),
            )
            .expect("never-token search cannot be cancelled")
    }

    /// The previous chronological engine (explicit decision stack, both
    /// phases explored, pure index order, `false` first) — retained as the
    /// enumeration oracle. Sequence-identical to [`Cnf::for_each_model`].
    pub fn for_each_model_basic<B>(
        &self,
        decide_vars: usize,
        mut f: impl FnMut(&[bool]) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        let mut solver = BasicSolver::new(self);
        if !solver.init() {
            return ControlFlow::Continue(());
        }
        solver.search(decide_vars.min(self.num_vars), &mut f)
    }

    /// Find one satisfying assignment (the lexicographically smallest over
    /// the full variable range).
    pub fn find_model(&self) -> Option<Vec<bool>> {
        let mut found = None;
        let _ = self.for_each_model(self.num_vars, |m| {
            found = Some(m.to_vec());
            ControlFlow::Break(())
        });
        found
    }

    /// Is the formula satisfiable? Branches by conflict activity (no order
    /// contract — this is the fast path for the stability sub-checks).
    pub fn satisfiable(&self) -> bool {
        self.satisfiable_cancellable(&CancelToken::never())
            .expect("never-token search cannot be cancelled")
    }

    /// [`Cnf::satisfiable`] under a cancellation token, polled once per
    /// CDCL outer-loop iteration.
    pub fn satisfiable_cancellable(&self, cancel: &CancelToken) -> Result<bool, Cancelled> {
        let mut solver = Solver::new(self, self.num_vars, Policy::Activity);
        if !solver.init() {
            return Ok(false);
        }
        let mut sat = false;
        let _flow = solver.search(
            cancel,
            &mut |_m: &[bool]| {
                sat = true;
                ControlFlow::Break(())
            },
            &mut |_, _| {},
        )?;
        Ok(sat)
    }

    /// [`Cnf::for_each_model_cancellable`] with a premise-aware tap on the
    /// clause-learning stream: `on_learnt` sees every 1UIP clause together
    /// with its premise union — `Some(tags)` when every resolved clause
    /// (and every omitted level-0 assignment) was tracked, `None`
    /// otherwise. This is the export surface of the incremental solver:
    /// only `Some`-premised clauses are sound outside this enumeration.
    pub fn for_each_model_tracked<B>(
        &self,
        decide_vars: usize,
        cancel: &CancelToken,
        mut f: impl FnMut(&[bool]) -> ControlFlow<B>,
        mut on_learnt: impl FnMut(&[Lit], Option<&[u32]>),
    ) -> Result<ControlFlow<B>, Cancelled> {
        let mut solver = Solver::new(self, decide_vars.min(self.num_vars), Policy::Lex);
        if !solver.init() {
            return Ok(ControlFlow::Continue(()));
        }
        solver.search(cancel, &mut f, &mut on_learnt)
    }

    /// [`Cnf::satisfiable_cancellable`] warm-started from saved phases and
    /// VSIDS activities (shorter slices seed a prefix), returning the
    /// verdict together with the final phases and activities for the next
    /// warm start. Heuristic state never changes the verdict — only how
    /// fast the search converges on it.
    pub fn satisfiable_warm(
        &self,
        cancel: &CancelToken,
        phases: &[bool],
        activities: &[u64],
    ) -> Result<(bool, Vec<bool>, Vec<u64>), Cancelled> {
        let mut solver = Solver::new(self, self.num_vars, Policy::Activity);
        for (p, &w) in solver.phase.iter_mut().zip(phases) {
            *p = w;
        }
        for (a, &w) in solver.var_act.iter_mut().zip(activities) {
            *a = w;
        }
        let act = &solver.var_act;
        solver
            .order
            .sort_by_key(|&v| (std::cmp::Reverse(act[v as usize]), v));
        if !solver.init() {
            return Ok((false, solver.phase, solver.var_act));
        }
        let mut sat = false;
        let _flow = solver.search(
            cancel,
            &mut |_m: &[bool]| {
                sat = true;
                ControlFlow::Break(())
            },
            &mut |_, _| {},
        )?;
        // Saved phase of an assigned variable is its current value; the
        // cancel-time save in `cancel_until` only covers undone ones.
        let phases_out: Vec<bool> = (0..self.num_vars)
            .map(|v| solver.assign[v].unwrap_or(solver.phase[v]))
            .collect();
        Ok((sat, phases_out, solver.var_act))
    }

    /// [`Cnf::satisfiable_cancellable`] as a first-answer-wins race of up
    /// to `threads` diversified activity-policy solvers (differing initial
    /// phases and decision orders). The winner cancels the rest
    /// cooperatively; `cancel` still aborts the whole race. Small formulas
    /// (and `threads <= 1`) stay sequential — spawn cost would dominate.
    pub fn satisfiable_portfolio(
        &self,
        threads: usize,
        cancel: &CancelToken,
    ) -> Result<bool, Cancelled> {
        if threads <= 1 || self.num_vars < PORTFOLIO_MIN_VARS {
            return self.satisfiable_cancellable(cancel);
        }
        let workers = threads.min(4);
        let done = CancelToken::new();
        let result: Mutex<Option<bool>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for k in 0..workers {
                let (done, result) = (&done, &result);
                scope.spawn(move || {
                    let mut solver = Solver::new(self, self.num_vars, Policy::Activity);
                    solver.diversify(k);
                    let verdict = if !solver.init() {
                        Ok(false)
                    } else {
                        let mut sat = false;
                        solver
                            .search(
                                &PairToken(cancel, done),
                                &mut |_m: &[bool]| {
                                    sat = true;
                                    ControlFlow::Break(())
                                },
                                &mut |_, _| {},
                            )
                            .map(|_| sat)
                    };
                    if let Ok(sat) = verdict {
                        let mut slot = result.lock().unwrap_or_else(|e| e.into_inner());
                        if slot.is_none() {
                            *slot = Some(sat);
                        }
                        done.cancel(); // first answer wins; losers stand down
                    }
                });
            }
        });
        cancel.check()?;
        let verdict = result.into_inner().unwrap_or_else(|e| e.into_inner());
        Ok(verdict.expect("uncancelled portfolio has a finisher"))
    }
}

/// Portfolio floor: below this many variables a sub-check resolves faster
/// than a thread spawns, so the race would only add overhead.
const PORTFOLIO_MIN_VARS: usize = 48;

/// Polling the union of two cancellation sources (the caller's governor
/// and the portfolio's first-answer-wins flag) without allocating a
/// combined token. Monomorphised into `search`, so the sequential paths
/// pay nothing for its existence.
trait PollCancel {
    fn check(&self) -> Result<(), Cancelled>;
}

impl PollCancel for CancelToken {
    fn check(&self) -> Result<(), Cancelled> {
        CancelToken::check(self)
    }
}

/// Either token tripping cancels the search.
struct PairToken<'a>(&'a CancelToken, &'a CancelToken);

impl PollCancel for PairToken<'_> {
    fn check(&self) -> Result<(), Cancelled> {
        self.0.check()?;
        self.1.check()
    }
}

/// Encoding of a literal as a watch-list slot: `2·var + polarity`.
fn code(lit: Lit) -> usize {
    ((lit.var as usize) << 1) | (lit.positive as usize)
}

/// Conflicts between activity decays (halvings; the activity policy also
/// rebuilds its decision order here).
const DECAY_INTERVAL: u32 = 128;

/// Base restart interval (conflicts) scaled by the Luby sequence — the
/// activity policy restarts after `luby(k) · RESTART_UNIT` conflicts.
const RESTART_UNIT: u64 = 64;

/// The Luby sequence `1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …` (0-indexed): the
/// restart-interval schedule with the optimal universal-strategy bound
/// (Luby–Sinclair–Zuckerman). `x` sits inside some complete balanced
/// subtree of the recursive unfolding; descend to the subtree whose last
/// position it is and return that subtree's power of two.
fn luby(mut x: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Decision-variable picking policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    /// Index order, pinned — enumeration is lexicographic.
    Lex,
    /// VSIDS conflict activity, rebuilt at every decay — SAT checks only.
    Activity,
}

/// One stored clause: original, blocking (permanent) or learned
/// (forgettable).
struct Clause {
    lits: Vec<Lit>,
    /// Subject to forgetting (1UIP clauses; blocking clauses are not).
    learnt: bool,
    /// Tombstoned by a database reduction; dropped lazily from watch
    /// lists.
    deleted: bool,
    /// Analysis-participation activity (halved at decay).
    activity: u64,
    /// Premise tags (see [`Cnf::add_clause_premised`]); `None` =
    /// untracked, which poisons any analysis that resolves through it.
    premise: Option<Vec<u32>>,
}

/// Union of two premise sets under the poisoning discipline: `None`
/// absorbs, and a union past [`PREMISE_CAP`] poisons to `None`.
fn union_premise(a: Option<&[u32]>, b: Option<&[u32]>) -> Option<Vec<u32>> {
    let (a, b) = (a?, b?);
    let mut out: Vec<u32> = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out.sort_unstable();
    out.dedup();
    (out.len() <= PREMISE_CAP).then_some(out)
}

/// In-place variant of [`union_premise`] for the analysis accumulator.
fn absorb_premise(acc: &mut Option<Vec<u32>>, extra: Option<&[u32]>) {
    if let Some(have) = acc.take() {
        *acc = union_premise(Some(&have), extra);
    }
}

struct Solver<'a> {
    cnf: &'a Cnf,
    decide_vars: usize,
    policy: Policy,
    clauses: Vec<Clause>,
    /// Assignment: None = unassigned.
    assign: Vec<Option<bool>>,
    /// Decision level of each assigned variable.
    level: Vec<u32>,
    /// Propagating clause of each non-decision assignment.
    reason: Vec<Option<u32>>,
    /// Assigned variables in order.
    trail: Vec<u32>,
    /// Trail length at each decision.
    trail_lim: Vec<usize>,
    qhead: usize,
    /// Per-clause positions of the two watched literals (len ≥ 2 clauses).
    watch_pos: Vec<[usize; 2]>,
    /// Watch lists: literal code → clauses currently watching it.
    watchers: Vec<Vec<u32>>,
    /// VSIDS: per-variable analysis activity.
    var_act: Vec<u64>,
    /// Decision order (index order under `Policy::Lex`, rebuilt at decay
    /// under `Policy::Activity`).
    order: Vec<u32>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    conflicts_since_decay: u32,
    /// Active (non-deleted) learned-clause count and its reduction bound.
    num_learnts: usize,
    max_learnts: usize,
    /// Saved polarities (phase saving): the last value each variable held
    /// before being cancelled. Activity-policy decisions retry it.
    phase: Vec<bool>,
    /// Premise justifying each *level-0* assignment (why the variable is
    /// globally forced). Level-0 literals are omitted from learned
    /// clauses, so their justification must flow into the learned
    /// clause's premise; `None` poisons. Never read for level > 0.
    var_premise: Vec<Option<Vec<u32>>>,
    /// Restarts taken so far (indexes the Luby sequence).
    restarts: u64,
    /// Conflicts since the last restart, against `restart_limit`.
    conflicts_since_restart: u64,
    /// Current restart interval: `luby(restarts) · RESTART_UNIT`.
    restart_limit: u64,
}

impl<'a> Solver<'a> {
    fn new(cnf: &'a Cnf, decide_vars: usize, policy: Policy) -> Self {
        Solver {
            cnf,
            decide_vars,
            policy,
            clauses: Vec::with_capacity(cnf.clauses.len()),
            assign: vec![None; cnf.num_vars],
            level: vec![0; cnf.num_vars],
            reason: vec![None; cnf.num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            watch_pos: Vec::with_capacity(cnf.clauses.len()),
            watchers: vec![Vec::new(); cnf.num_vars * 2],
            var_act: vec![0; cnf.num_vars],
            order: (0..decide_vars as u32).collect(),
            seen: vec![false; cnf.num_vars],
            conflicts_since_decay: 0,
            num_learnts: 0,
            max_learnts: cnf.clauses.len() / 3 + 100,
            phase: vec![false; cnf.num_vars],
            var_premise: vec![None; cnf.num_vars],
            restarts: 0,
            conflicts_since_restart: 0,
            restart_limit: RESTART_UNIT, // luby(0) = 1
        }
    }

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn value(&self, lit: Lit) -> Option<bool> {
        self.assign[lit.var as usize].map(|v| v == lit.positive)
    }

    /// Make a literal true with the given reason; `false` on conflict with
    /// the current value.
    fn enqueue(&mut self, lit: Lit, reason: Option<u32>) -> bool {
        match self.value(lit) {
            Some(v) => v,
            None => {
                let v = lit.var as usize;
                self.assign[v] = Some(lit.positive);
                self.level[v] = self.current_level();
                self.reason[v] = reason;
                self.trail.push(lit.var);
                if self.trail_lim.is_empty() {
                    // Permanently forced: record why, so analyses that
                    // omit this literal keep a sound premise. A `None`
                    // reason here (decisionless unit, blocking-clause
                    // flip) has no tracked justification.
                    self.var_premise[v] = reason.and_then(|ci| self.level0_premise(ci, lit.var));
                }
                true
            }
        }
    }

    /// Premise of a level-0 propagation out of clause `ci` asserting
    /// `var`: the clause's own premise unioned with the justifications of
    /// the (level-0 false) literals it resolves away.
    fn level0_premise(&self, ci: u32, var: u32) -> Option<Vec<u32>> {
        let clause = &self.clauses[ci as usize];
        let mut acc = clause.premise.clone();
        for l in &clause.lits {
            if l.var == var {
                continue;
            }
            absorb_premise(&mut acc, self.var_premise[l.var as usize].as_deref());
            if acc.is_none() {
                break;
            }
        }
        acc
    }

    /// Load the original clauses: propagate units, watch the first two
    /// literals of longer clauses. `false` if trivially unsatisfiable.
    fn init(&mut self) -> bool {
        for (i, clause) in self.cnf.clauses.iter().enumerate() {
            let premise = self.cnf.premises.get(i).cloned().flatten();
            match clause.len() {
                0 => return false,
                1 => {
                    let lit = clause[0];
                    if !self.enqueue(lit, None) {
                        return false;
                    }
                    // The unit's justification is the clause itself.
                    self.var_premise[lit.var as usize] = premise.clone();
                    self.push_clause(clause.clone(), false, premise);
                }
                _ => {
                    let (c0, c1) = (clause[0], clause[1]);
                    let ci = self.push_clause(clause.clone(), false, premise);
                    self.watch_pos[ci as usize] = [0, 1];
                    self.watchers[code(c0)].push(ci);
                    self.watchers[code(c1)].push(ci);
                }
            }
        }
        self.propagate().is_none()
    }

    fn push_clause(&mut self, lits: Vec<Lit>, learnt: bool, premise: Option<Vec<u32>>) -> u32 {
        let ci = self.clauses.len() as u32;
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0,
            premise,
        });
        self.watch_pos.push([0, 1]);
        if learnt {
            self.num_learnts += 1;
        }
        ci
    }

    /// Attach a clause under the current (partial) assignment, watching
    /// the two best literals: unassigned before false, higher assignment
    /// level before lower — so backtracking past their levels restores the
    /// watch invariant before either can be missed.
    fn attach_under_assignment(
        &mut self,
        lits: Vec<Lit>,
        learnt: bool,
        premise: Option<Vec<u32>>,
    ) -> u32 {
        debug_assert!(lits.len() >= 2);
        let rank = |s: &Self, l: Lit| -> (u8, u32) {
            match s.value(l) {
                None => (0, 0),
                Some(_) => (1, u32::MAX - s.level[l.var as usize]),
            }
        };
        let mut best = [0usize, 1usize];
        if rank(self, lits[best[1]]) < rank(self, lits[best[0]]) {
            best.swap(0, 1);
        }
        for (i, &l) in lits.iter().enumerate().skip(2) {
            let r = rank(self, l);
            if r < rank(self, lits[best[0]]) {
                best[1] = best[0];
                best[0] = i;
            } else if r < rank(self, lits[best[1]]) {
                best[1] = i;
            }
        }
        let (w0, w1) = (lits[best[0]], lits[best[1]]);
        let ci = self.push_clause(lits, learnt, premise);
        self.watch_pos[ci as usize] = [best[0], best[1]];
        self.watchers[code(w0)].push(ci);
        self.watchers[code(w1)].push(ci);
        ci
    }

    /// Two-watched-literal unit propagation to fixpoint; returns the
    /// conflicting clause, if any. Deleted clauses are dropped from watch
    /// lists as they are encountered.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let var = self.trail[self.qhead];
            self.qhead += 1;
            let value = self.assign[var as usize].expect("trail entries are assigned");
            // The literal of `var` that just became false.
            let false_code = ((var as usize) << 1) | (!value as usize);
            let mut i = 0;
            'clauses: while i < self.watchers[false_code].len() {
                let ci = self.watchers[false_code][i] as usize;
                if self.clauses[ci].deleted {
                    self.watchers[false_code].swap_remove(i);
                    continue;
                }
                let [p0, p1] = self.watch_pos[ci];
                let clause = &self.clauses[ci].lits;
                let slot = usize::from(code(clause[p0]) != false_code);
                debug_assert_eq!(code(clause[self.watch_pos[ci][slot]]), false_code);
                let other = clause[if slot == 0 { p1 } else { p0 }];
                if self.value(other) == Some(true) {
                    i += 1;
                    continue; // clause already satisfied by the other watch
                }
                // Look for a replacement watch among the unwatched literals.
                let replacement = clause
                    .iter()
                    .enumerate()
                    .find(|&(j, &l)| j != p0 && j != p1 && self.value(l) != Some(false));
                if let Some((j, &l)) = replacement {
                    self.watch_pos[ci][slot] = j;
                    self.watchers[false_code].swap_remove(i);
                    self.watchers[code(l)].push(ci as u32);
                    continue 'clauses;
                }
                // No replacement: the clause is unit on `other`, or conflicting.
                if !self.enqueue(other, Some(ci as u32)) {
                    return Some(ci as u32);
                }
                i += 1;
            }
        }
        None
    }

    /// Undo the trail above decision level `target`.
    fn cancel_until(&mut self, target: u32) {
        if self.current_level() <= target {
            return;
        }
        let mark = self.trail_lim[target as usize];
        while self.trail.len() > mark {
            let var = self.trail.pop().expect("trail non-empty") as usize;
            self.phase[var] = self.assign[var].expect("trail entries are assigned");
            self.assign[var] = None;
            self.reason[var] = None;
        }
        self.trail_lim.truncate(target as usize);
        self.qhead = mark;
    }

    /// 1UIP conflict analysis: resolve the conflicting clause backwards
    /// along the trail until exactly one current-level literal remains.
    /// Returns the learned clause (asserting literal first, a
    /// highest-remaining-level literal second), the backjump level, and
    /// the premise union over every clause resolved through — including
    /// the justifications of omitted level-0 literals — under the
    /// poisoning discipline of [`union_premise`]. Bumps the activity of
    /// every variable and clause involved.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32, Option<Vec<u32>>) {
        let current = self.current_level();
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // slot 0 = asserting literal
        let mut premise = self.clauses[confl as usize].premise.clone();
        let mut counter: usize = 0;
        let mut resolved_var: Option<u32> = None;
        let mut idx = self.trail.len();
        loop {
            self.clauses[confl as usize].activity += 1;
            if resolved_var.is_some() {
                // Resolving with a reason clause: its premise joins.
                let reason_premise = self.clauses[confl as usize].premise.clone();
                absorb_premise(&mut premise, reason_premise.as_deref());
            }
            // Indexed walk: `seen`/`var_act` updates alias `self`, so a
            // literal borrow cannot be held across them — but this is the
            // conflict hot loop, so no per-clause allocation either.
            for k in 0..self.clauses[confl as usize].lits.len() {
                let q = self.clauses[confl as usize].lits[k];
                if resolved_var == Some(q.var) {
                    continue; // the literal this clause propagated
                }
                let v = q.var as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.var_act[v] += 1;
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                } else if self.level[v] == 0 && premise.is_some() {
                    // Omitted from the learned clause: its level-0
                    // justification must join the premise instead.
                    let vp = self.var_premise[v].clone();
                    absorb_premise(&mut premise, vp.as_deref());
                }
            }
            // Walk back to the most recent trail variable involved.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx] as usize] {
                    break;
                }
            }
            let v = self.trail[idx];
            self.seen[v as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = Lit {
                    var: v,
                    positive: !self.assign[v as usize].expect("assigned"),
                };
                break;
            }
            resolved_var = Some(v);
            confl = self.reason[v as usize].expect("non-UIP literals have reasons");
        }
        for l in &learnt[1..] {
            self.seen[l.var as usize] = false;
        }
        // Backjump level: the highest level among the non-asserting
        // literals; move one such literal to slot 1 (the second watch).
        let mut back = 0u32;
        let mut at = 1usize;
        for (i, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var as usize];
            if lv > back {
                back = lv;
                at = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, at);
        }
        (learnt, back, premise)
    }

    /// Count a conflict: decay activities (and rebuild the activity
    /// policy's order) every [`DECAY_INTERVAL`] conflicts.
    fn note_conflict(&mut self) {
        self.conflicts_since_restart += 1;
        self.conflicts_since_decay += 1;
        if self.conflicts_since_decay >= DECAY_INTERVAL {
            self.conflicts_since_decay = 0;
            for a in &mut self.var_act {
                *a >>= 1;
            }
            for c in &mut self.clauses {
                c.activity >>= 1;
            }
            if self.policy == Policy::Activity {
                // Highest activity first; index order breaks ties.
                let act = &self.var_act;
                self.order
                    .sort_by_key(|&v| (std::cmp::Reverse(act[v as usize]), v));
            }
        }
    }

    /// Forget the low-activity half of the learned clauses when the store
    /// outgrows its bound. Locked clauses (reasons of current trail
    /// literals) and permanent clauses (originals, blocking) are kept.
    fn reduce_db(&mut self) {
        if self.num_learnts <= self.max_learnts {
            return;
        }
        let mut locked = vec![false; self.clauses.len()];
        for &v in &self.trail {
            if let Some(ci) = self.reason[v as usize] {
                locked[ci as usize] = true;
            }
        }
        let mut candidates: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&ci| {
                let c = &self.clauses[ci as usize];
                c.learnt && !c.deleted && !locked[ci as usize]
            })
            .collect();
        candidates.sort_by_key(|&ci| (self.clauses[ci as usize].activity, std::cmp::Reverse(ci)));
        let drop = candidates.len() / 2;
        for &ci in &candidates[..drop] {
            let clause = &mut self.clauses[ci as usize];
            clause.deleted = true;
            // Tombstoned clauses are never read again (propagation skips
            // them, and reasons are locked): reclaim the literal storage
            // so long enumerations don't accumulate every clause ever
            // learned.
            clause.lits = Vec::new();
            clause.premise = None;
            self.num_learnts -= 1;
        }
        self.max_learnts += self.max_learnts / 10 + 1;
    }

    /// Portfolio diversification: worker `k` varies its initial saved
    /// phases (bit 0) and reverses its initial decision order (bit 1).
    /// Pure heuristics — the verdict is unaffected, only the route to it.
    fn diversify(&mut self, k: usize) {
        if k & 1 == 1 {
            self.phase.iter_mut().for_each(|p| *p = true);
        }
        if k & 2 == 2 {
            self.order.reverse();
        }
    }

    /// First unassigned decision variable in the current order.
    fn pick_unassigned(&self) -> Option<u32> {
        self.order
            .iter()
            .copied()
            .find(|&v| self.assign[v as usize].is_none())
    }

    /// Learn a clause (recording it via `on_learnt`), backjump, assert.
    /// `false` when the clause is empty-equivalent (conflict at level 0).
    fn learn_and_backjump(
        &mut self,
        learnt: Vec<Lit>,
        back: u32,
        premise: Option<Vec<u32>>,
        on_learnt: &mut impl FnMut(&[Lit], Option<&[u32]>),
    ) {
        on_learnt(&learnt, premise.as_deref());
        self.cancel_until(back);
        if learnt.len() == 1 {
            let lit = learnt[0];
            let ok = self.enqueue(lit, None);
            debug_assert!(ok, "asserting literal is unassigned after backjump");
            // The learned unit justifies its own level-0 assignment.
            self.var_premise[lit.var as usize] = premise.clone();
            let _ = self.push_clause(learnt, true, premise);
            // Unit clauses never need watches: their literal is on the
            // level-0 trail permanently.
        } else {
            let lit = learnt[0];
            let ci = self.attach_under_assignment(learnt, true, premise);
            let ok = self.enqueue(lit, Some(ci));
            debug_assert!(ok, "asserting literal is unassigned after backjump");
        }
    }

    /// Conflict-driven enumeration: models in lexicographic order of the
    /// decide range under `Policy::Lex` (see module docs); conflicts learn
    /// 1UIP clauses; each model is blocked by a permanent clause and the
    /// search continues in place.
    ///
    /// `cancel` is polled at the head of every outer-loop iteration (one
    /// propagation round / conflict / decision / model), the natural
    /// quantum of solver work; a tripped token returns `Err(Cancelled)`
    /// with the solver state simply abandoned.
    fn search<B>(
        &mut self,
        cancel: &impl PollCancel,
        f: &mut impl FnMut(&[bool]) -> ControlFlow<B>,
        on_learnt: &mut impl FnMut(&[Lit], Option<&[u32]>),
    ) -> Result<ControlFlow<B>, Cancelled> {
        loop {
            cancel.check()?;
            if let Some(confl) = self.propagate() {
                self.note_conflict();
                if self.current_level() == 0 {
                    return Ok(ControlFlow::Continue(()));
                }
                let (learnt, back, premise) = self.analyze(confl);
                self.learn_and_backjump(learnt, back, premise, on_learnt);
                self.reduce_db();
                continue;
            }
            // Luby restart (activity policy only — Policy::Lex has an
            // enumeration-order contract): cancel to level 0, keeping the
            // learned clauses and activities, and re-descend.
            if self.policy == Policy::Activity
                && self.conflicts_since_restart >= self.restart_limit
                && self.current_level() > 0
            {
                self.conflicts_since_restart = 0;
                self.restarts += 1;
                self.restart_limit = luby(self.restarts) * RESTART_UNIT;
                self.cancel_until(0);
                continue;
            }
            match self.pick_unassigned() {
                Some(var) => {
                    self.trail_lim.push(self.trail.len());
                    // Lex decides false first (the pinned order); the
                    // activity policy retries the saved phase.
                    let positive = match self.policy {
                        Policy::Lex => false,
                        Policy::Activity => self.phase[var as usize],
                    };
                    let ok = self.enqueue(Lit { var, positive }, None);
                    debug_assert!(ok, "decision variables are unassigned");
                }
                None => {
                    // All decision variables assigned: a model. Stragglers
                    // outside the decide range default to false (they are
                    // unconstrained either way).
                    let model: Vec<bool> = self.assign.iter().map(|a| a.unwrap_or(false)).collect();
                    if let ControlFlow::Break(b) = f(&model) {
                        return Ok(ControlFlow::Break(b));
                    }
                    if self.current_level() == 0 {
                        return Ok(ControlFlow::Continue(())); // unique model
                    }
                    // Block the model: the negation of its decide-range
                    // assignment, omitting level-0 (permanently forced)
                    // variables. Permanent — never forgotten.
                    let block: Vec<Lit> = (0..self.decide_vars as u32)
                        .filter(|&v| self.level[v as usize] > 0)
                        .map(|v| Lit {
                            var: v,
                            positive: !self.assign[v as usize].expect("assigned"),
                        })
                        .collect();
                    if block.is_empty() {
                        return Ok(ControlFlow::Continue(()));
                    }
                    if block.len() == 1 {
                        // One free decide variable: flipping it is forced.
                        let lit = block[0];
                        self.push_clause(block, false, None);
                        self.cancel_until(0);
                        if !self.enqueue(lit, None) {
                            return Ok(ControlFlow::Continue(()));
                        }
                        continue;
                    }
                    // Blocking clauses are untracked (`None`): they are
                    // not implied by the formula, so anything learned
                    // from them must stay poisoned.
                    let ci = self.attach_under_assignment(block, false, None);
                    self.note_conflict();
                    let (learnt, back, premise) = self.analyze(ci);
                    self.learn_and_backjump(learnt, back, premise, on_learnt);
                    self.reduce_db();
                }
            }
        }
    }
}

/// One open decision of the basic engine's explicit search stack.
struct Frame {
    /// The decision variable.
    var: u32,
    /// Trail length before this decision was made.
    mark: usize,
    /// `true` once the second phase (`true`) has been entered.
    flipped: bool,
}

/// The previous chronological engine, in pure index order: two watched
/// literals, explicit decision stack, both phases of every decision
/// explored, `false` first. Kept as the enumeration oracle — its model
/// sequence is the contract [`Cnf::for_each_model`] is held to — and as
/// the refutation backend of the solver-learning suite.
struct BasicSolver<'a> {
    cnf: &'a Cnf,
    assign: Vec<Option<bool>>,
    trail: Vec<u32>,
    qhead: usize,
    watch_pos: Vec<[usize; 2]>,
    watchers: Vec<Vec<u32>>,
}

impl<'a> BasicSolver<'a> {
    fn new(cnf: &'a Cnf) -> Self {
        BasicSolver {
            cnf,
            assign: vec![None; cnf.num_vars],
            trail: Vec::new(),
            qhead: 0,
            watch_pos: vec![[0, 1]; cnf.clauses.len()],
            watchers: vec![Vec::new(); cnf.num_vars * 2],
        }
    }

    fn value(&self, lit: Lit) -> Option<bool> {
        self.assign[lit.var as usize].map(|v| v == lit.positive)
    }

    fn enqueue(&mut self, lit: Lit) -> bool {
        match self.value(lit) {
            Some(v) => v,
            None => {
                self.assign[lit.var as usize] = Some(lit.positive);
                self.trail.push(lit.var);
                true
            }
        }
    }

    fn init(&mut self) -> bool {
        for (ci, clause) in self.cnf.clauses.iter().enumerate() {
            match clause.len() {
                0 => return false,
                1 => {
                    if !self.enqueue(clause[0]) {
                        return false;
                    }
                }
                _ => {
                    self.watchers[code(clause[0])].push(ci as u32);
                    self.watchers[code(clause[1])].push(ci as u32);
                }
            }
        }
        self.propagate()
    }

    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let var = self.trail[self.qhead];
            self.qhead += 1;
            let value = self.assign[var as usize].expect("trail entries are assigned");
            let false_code = ((var as usize) << 1) | (!value as usize);
            let mut i = 0;
            'clauses: while i < self.watchers[false_code].len() {
                let ci = self.watchers[false_code][i] as usize;
                let clause = &self.cnf.clauses[ci];
                let [p0, p1] = self.watch_pos[ci];
                let slot = usize::from(code(clause[p0]) != false_code);
                let other = clause[if slot == 0 { p1 } else { p0 }];
                if self.value(other) == Some(true) {
                    i += 1;
                    continue;
                }
                for (j, &l) in clause.iter().enumerate() {
                    if j != p0 && j != p1 && self.value(l) != Some(false) {
                        self.watch_pos[ci][slot] = j;
                        self.watchers[false_code].swap_remove(i);
                        self.watchers[code(l)].push(ci as u32);
                        continue 'clauses;
                    }
                }
                if !self.enqueue(other) {
                    return false;
                }
                i += 1;
            }
        }
        true
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let var = self.trail.pop().expect("trail non-empty");
            self.assign[var as usize] = None;
        }
        self.qhead = mark;
    }

    fn decide(&mut self, var: u32, value: bool) -> bool {
        let ok = self.enqueue(Lit {
            var,
            positive: value,
        });
        debug_assert!(ok, "decision variables are unassigned");
        self.propagate()
    }

    fn advance(&mut self, frames: &mut Vec<Frame>) -> bool {
        while let Some(top) = frames.last_mut() {
            if top.flipped {
                let mark = top.mark;
                self.undo_to(mark);
                frames.pop();
                continue;
            }
            top.flipped = true;
            let (var, mark) = (top.var, top.mark);
            self.undo_to(mark);
            if self.decide(var, true) {
                return true;
            }
        }
        false
    }

    fn search<B>(
        &mut self,
        decide_vars: usize,
        f: &mut impl FnMut(&[bool]) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        let mut frames: Vec<Frame> = Vec::new();
        loop {
            let next = (0..decide_vars as u32).find(|&v| self.assign[v as usize].is_none());
            match next {
                None => {
                    let model: Vec<bool> = self.assign.iter().map(|a| a.unwrap_or(false)).collect();
                    f(&model)?;
                    if !self.advance(&mut frames) {
                        return ControlFlow::Continue(());
                    }
                }
                Some(var) => {
                    let mark = self.trail.len();
                    frames.push(Frame {
                        var,
                        mark,
                        flipped: false,
                    });
                    if !self.decide(var, false) && !self.advance(&mut frames) {
                        return ControlFlow::Continue(());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relational::testing::XorShift;

    fn all_models(cnf: &Cnf) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        let _ = cnf.for_each_model(cnf.num_vars(), |m| {
            out.push(m.to_vec());
            ControlFlow::<()>::Continue(())
        });
        out
    }

    fn all_models_basic(cnf: &Cnf) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        let _ = cnf.for_each_model_basic(cnf.num_vars(), |m| {
            out.push(m.to_vec());
            ControlFlow::<()>::Continue(())
        });
        out
    }

    #[test]
    fn single_clause_three_models() {
        // x ∨ y has models {01, 10, 11}.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([Lit::pos(0), Lit::pos(1)]);
        let models = all_models(&cnf);
        assert_eq!(models.len(), 3);
        assert!(!models.contains(&vec![false, false]));
    }

    #[test]
    fn unit_propagation_chains() {
        // x; ¬x ∨ y; ¬y ∨ z → unique model 111.
        let mut cnf = Cnf::new(3);
        cnf.add_clause([Lit::pos(0)]);
        cnf.add_clause([Lit::neg(0), Lit::pos(1)]);
        cnf.add_clause([Lit::neg(1), Lit::pos(2)]);
        assert_eq!(all_models(&cnf), vec![vec![true, true, true]]);
    }

    #[test]
    fn unsat_detected() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([Lit::pos(0)]);
        cnf.add_clause([Lit::neg(0)]);
        assert!(!cnf.satisfiable());
        assert!(all_models(&cnf).is_empty());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([]);
        assert!(!cnf.satisfiable());
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([Lit::pos(0), Lit::neg(0)]);
        assert_eq!(cnf.num_clauses(), 0);
        assert_eq!(all_models(&cnf).len(), 2);
    }

    #[test]
    fn models_enumerated_false_first() {
        // Free variable: false branch explored first.
        let cnf = Cnf::new(1);
        let models = all_models(&cnf);
        assert_eq!(models, vec![vec![false], vec![true]]);
    }

    #[test]
    fn break_stops_enumeration() {
        let cnf = Cnf::new(3);
        let mut count = 0;
        let _ = cnf.for_each_model(3, |_| {
            count += 1;
            if count == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn duplicate_literals_collapse() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([Lit::pos(0), Lit::pos(0)]);
        assert_eq!(all_models(&cnf), vec![vec![true]]);
    }

    #[test]
    fn find_model_returns_satisfying_assignment() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause([Lit::neg(1)]);
        let m = cnf.find_model().unwrap();
        assert!(m[0]);
        assert!(!m[1]);
    }

    /// Deterministic pseudo-random CNF over the workspace's [`XorShift`]
    /// — the same generator every property suite uses.
    fn random_cnf(rng: &mut XorShift, vars: usize, clauses: usize) -> Cnf {
        let mut cnf = Cnf::new(vars);
        for _ in 0..clauses {
            let len = 1 + rng.below(3);
            let lits: Vec<Lit> = (0..len)
                .map(|_| {
                    let v = rng.below(vars) as u32;
                    if rng.chance(1, 2) {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect();
            cnf.add_clause(lits);
        }
        cnf
    }

    #[test]
    fn cdcl_enumeration_matches_basic_engine() {
        // The learning engine must reproduce the chronological engine's
        // model *sequence* — same models, same order — on random formulas.
        let mut seed = XorShift::new(611);
        for round in 0..300 {
            let vars = 2 + (round % 7);
            let cnf = random_cnf(&mut seed, vars, 2 + (round % 11));
            assert_eq!(
                all_models(&cnf),
                all_models_basic(&cnf),
                "round {round}: {:?}",
                cnf
            );
        }
    }

    #[test]
    fn cdcl_partial_decide_range_matches_basic_engine() {
        let mut seed = XorShift::new(612);
        for round in 0..100 {
            let vars = 3 + (round % 5);
            let cnf = random_cnf(&mut seed, vars, 3 + (round % 7));
            for decide in 1..=vars {
                let mut a = Vec::new();
                let _ = cnf.for_each_model(decide, |m| {
                    a.push(m.to_vec());
                    ControlFlow::<()>::Continue(())
                });
                let mut b = Vec::new();
                let _ = cnf.for_each_model_basic(decide, |m| {
                    b.push(m.to_vec());
                    ControlFlow::<()>::Continue(())
                });
                assert_eq!(a, b, "round {round} decide {decide}: {cnf:?}");
            }
        }
    }

    #[test]
    fn satisfiable_agrees_with_enumeration() {
        let mut seed = XorShift::new(613);
        for round in 0..200 {
            let vars = 2 + (round % 6);
            let cnf = random_cnf(&mut seed, vars, 2 + (round % 9));
            assert_eq!(
                cnf.satisfiable(),
                !all_models_basic(&cnf).is_empty(),
                "round {round}: {cnf:?}"
            );
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    /// A pigeonhole instance PHP(n+1, n): n+1 pigeons into n holes —
    /// unsatisfiable, and hard enough to force many conflicts, which is
    /// what drives `satisfiable()` through its restart schedule.
    fn pigeonhole(holes: usize) -> Cnf {
        let pigeons = holes + 1;
        let var = |p: usize, h: usize| (p * holes + h) as u32;
        let mut cnf = Cnf::new(pigeons * holes);
        for p in 0..pigeons {
            cnf.add_clause((0..holes).map(|h| Lit::pos(var(p, h))));
        }
        for h in 0..holes {
            for p in 0..pigeons {
                for q in (p + 1)..pigeons {
                    cnf.add_clause([Lit::neg(var(p, h)), Lit::neg(var(q, h))]);
                }
            }
        }
        cnf
    }

    #[test]
    fn restarts_preserve_unsat_on_pigeonhole() {
        // PHP(7,6) needs well over RESTART_UNIT conflicts: several Luby
        // restarts fire and the verdict must still be UNSAT (learned
        // clauses survive restarts, so the refutation completes).
        assert!(!pigeonhole(6).satisfiable());
        // And a satisfiable variant (drop one pigeon's at-most-one pairs
        // by using n pigeons) stays SAT through restarts.
        let mut sat = pigeonhole(6);
        sat.clauses.truncate(sat.clauses.len() - 7); // drop some exclusions
        let _ = sat.satisfiable(); // no contract beyond termination here
    }

    #[test]
    fn satisfiable_with_restarts_agrees_with_enumeration_on_larger_formulas() {
        // Wider/denser random formulas than the base suite, sized to
        // cross the first restart thresholds on the unsat instances.
        let mut seed = XorShift::new(614);
        for round in 0..60 {
            let vars = 6 + (round % 8);
            let cnf = random_cnf(&mut seed, vars, 14 + 2 * (round % 13));
            assert_eq!(
                cnf.satisfiable(),
                !all_models_basic(&cnf).is_empty(),
                "round {round}: {cnf:?}"
            );
        }
    }

    #[test]
    fn enumeration_order_unaffected_by_restart_machinery() {
        // The Lex policy must never restart: its model sequence on a
        // conflict-heavy formula stays identical to the basic engine even
        // when the conflict count crosses the restart thresholds.
        let mut seed = XorShift::new(615);
        for round in 0..40 {
            let vars = 4 + (round % 6);
            let cnf = random_cnf(&mut seed, vars, 10 + (round % 9));
            assert_eq!(all_models(&cnf), all_models_basic(&cnf), "round {round}");
        }
    }

    /// Brute-force implication check: no assignment satisfies every
    /// clause in `subset` while falsifying `clause`.
    fn implied_by(cnf: &Cnf, subset: &[u32], clause: &[Lit], vars: usize) -> bool {
        for bits in 0..(1u32 << vars) {
            let val = |l: Lit| ((bits >> l.var) & 1 == 1) == l.positive;
            let sub_ok = subset
                .iter()
                .all(|&ci| cnf.clauses[ci as usize].iter().any(|&l| val(l)));
            if sub_ok && !clause.iter().any(|&l| val(l)) {
                return false;
            }
        }
        true
    }

    #[test]
    fn tracked_premises_imply_their_learned_clauses() {
        // Tag every clause with its own index; then each learned clause
        // carrying `Some(premise)` must be implied by *those clauses
        // alone* — the soundness contract reuse across deltas rests on.
        let mut seed = XorShift::new(711);
        let mut tracked = 0usize;
        for round in 0..150 {
            let vars = 3 + (round % 6);
            let plain = random_cnf(&mut seed, vars, 4 + (round % 9));
            let mut cnf = Cnf::new(vars);
            for (i, c) in plain.clauses.iter().enumerate() {
                cnf.add_clause_premised(c.iter().copied(), [i as u32]);
            }
            let mut learned: Vec<(Vec<Lit>, Option<Vec<u32>>)> = Vec::new();
            let _ = cnf
                .for_each_model_tracked(
                    vars,
                    &CancelToken::never(),
                    |_m| ControlFlow::<()>::Continue(()),
                    |lits, premise| learned.push((lits.to_vec(), premise.map(<[u32]>::to_vec))),
                )
                .unwrap();
            for (lits, premise) in &learned {
                if let Some(premise) = premise {
                    tracked += 1;
                    assert!(
                        implied_by(&cnf, premise, lits, vars),
                        "round {round}: learned {lits:?} not implied by premises {premise:?} of {cnf:?}"
                    );
                }
            }
        }
        assert!(tracked > 0, "the sweep must exercise tracked learning");
    }

    #[test]
    fn portfolio_agrees_with_sequential_satisfiable() {
        // Under the variable floor the portfolio is the sequential path;
        // over it the diversified race must return the same verdict.
        const {
            assert!(
                PORTFOLIO_MIN_VARS <= 56,
                "pigeonhole(7) must cross the floor"
            );
        }
        let unsat = pigeonhole(7); // 56 vars, UNSAT
        assert!(!unsat
            .satisfiable_portfolio(4, &CancelToken::never())
            .unwrap());
        let mut sat = Cnf::new(60); // wide satisfiable chain
        for v in 0..59u32 {
            sat.add_clause([Lit::neg(v), Lit::pos(v + 1)]);
        }
        sat.add_clause([Lit::pos(0)]);
        assert!(sat.satisfiable_portfolio(4, &CancelToken::never()).unwrap());
        // Small formulas take the sequential route and still agree.
        let mut seed = XorShift::new(712);
        for round in 0..60 {
            let cnf = random_cnf(&mut seed, 4 + (round % 5), 6 + (round % 7));
            assert_eq!(
                cnf.satisfiable_portfolio(4, &CancelToken::never()).unwrap(),
                cnf.satisfiable(),
                "round {round}: {cnf:?}"
            );
        }
    }

    #[test]
    fn warm_start_never_changes_the_verdict() {
        let mut seed = XorShift::new(713);
        let mut phases: Vec<bool> = Vec::new();
        let mut acts: Vec<u64> = Vec::new();
        for round in 0..80 {
            let vars = 4 + (round % 6);
            let cnf = random_cnf(&mut seed, vars, 6 + (round % 9));
            let (sat, p, a) = cnf
                .satisfiable_warm(&CancelToken::never(), &phases, &acts)
                .unwrap();
            assert_eq!(sat, cnf.satisfiable(), "round {round}: {cnf:?}");
            // Feed each round's heuristics into the next (sizes differ on
            // purpose: seeding is prefix-tolerant).
            (phases, acts) = (p, a);
        }
    }

    #[test]
    fn learned_clauses_are_reported() {
        // A formula that forces at least one conflict under lex order:
        // deciding 0=false propagates nothing, deciding 1=false conflicts
        // with (0 ∨ 1) after ¬0 ∨ ¬1 forces... construct a pigeonhole-ish
        // instance instead and just require the tap to fire.
        let mut cnf = Cnf::new(4);
        cnf.add_clause([Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause([Lit::pos(0), Lit::neg(1)]);
        cnf.add_clause([Lit::neg(0), Lit::pos(2)]);
        cnf.add_clause([Lit::neg(0), Lit::neg(2), Lit::pos(3)]);
        let mut learnt: Vec<Vec<Lit>> = Vec::new();
        let _ = cnf.for_each_model_instrumented(
            4,
            |_m| ControlFlow::<()>::Continue(()),
            |c| learnt.push(c.to_vec()),
        );
        assert!(
            !learnt.is_empty(),
            "lex enumeration of this formula conflicts"
        );
    }
}
