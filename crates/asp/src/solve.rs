//! A small CNF engine (DPLL with counter-based propagation) used to
//! enumerate candidate models of ground programs and to decide the
//! minimality sub-problem of the stability test.
//!
//! The encoding of a ground program is built in [`crate::stable`]:
//! rule clauses plus Clark-style support clauses with auxiliary support
//! variables, so every enumerated assignment is a *supported* classical
//! model — a superset of the stable models that avoids the exponential
//! blow-up of unsupported guesses.

use std::ops::ControlFlow;

/// A literal: variable index with polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// Variable index.
    pub var: u32,
    /// `true` for the positive literal.
    pub positive: bool,
}

impl Lit {
    /// Positive literal.
    pub fn pos(var: u32) -> Self {
        Lit { var, positive: true }
    }

    /// Negative literal.
    pub fn neg(var: u32) -> Self {
        Lit {
            var,
            positive: false,
        }
    }
}

/// A CNF formula.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Add a clause (empty clause makes the formula unsatisfiable).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let mut c: Vec<Lit> = lits.into_iter().collect();
        c.sort_unstable_by_key(|l| (l.var, l.positive));
        c.dedup();
        // A clause with both polarities of a variable is a tautology.
        for w in c.windows(2) {
            if w[0].var == w[1].var {
                return;
            }
        }
        self.clauses.push(c);
    }

    /// Enumerate all satisfying assignments over the first `decide_vars`
    /// variables (remaining variables must be forced by propagation; if an
    /// assignment leaves one free, both completions are models and the
    /// callback sees the propagated-only projection — the encodings in
    /// this crate guarantee full determination). The callback receives the
    /// full assignment; `Break` stops the enumeration.
    pub fn for_each_model<B>(
        &self,
        decide_vars: usize,
        mut f: impl FnMut(&[bool]) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        let mut solver = Solver::new(self);
        if !solver.propagate_initial() {
            return ControlFlow::Continue(());
        }
        solver.search(decide_vars.min(self.num_vars), &mut f)
    }

    /// Find one satisfying assignment.
    pub fn find_model(&self) -> Option<Vec<bool>> {
        let mut found = None;
        let _ = self.for_each_model(self.num_vars, |m| {
            found = Some(m.to_vec());
            ControlFlow::Break(())
        });
        found
    }

    /// Is the formula satisfiable?
    pub fn satisfiable(&self) -> bool {
        self.find_model().is_some()
    }
}

struct Solver<'a> {
    cnf: &'a Cnf,
    /// Assignment: None = unassigned.
    assign: Vec<Option<bool>>,
    /// Assigned variables in order (for undo).
    trail: Vec<u32>,
    /// Per-clause: number of satisfied literals.
    n_sat: Vec<u32>,
    /// Per-clause: number of unassigned literals.
    n_undef: Vec<u32>,
    /// Per-variable occurrence lists: (clause index, polarity).
    occ: Vec<Vec<(u32, bool)>>,
    /// Clauses that lost a literal and may have become unit/conflicting.
    pending: Vec<u32>,
}

impl<'a> Solver<'a> {
    fn new(cnf: &'a Cnf) -> Self {
        let mut occ = vec![Vec::new(); cnf.num_vars];
        for (ci, clause) in cnf.clauses.iter().enumerate() {
            for lit in clause {
                occ[lit.var as usize].push((ci as u32, lit.positive));
            }
        }
        Solver {
            cnf,
            assign: vec![None; cnf.num_vars],
            trail: Vec::new(),
            n_sat: vec![0; cnf.clauses.len()],
            n_undef: cnf.clauses.iter().map(|c| c.len() as u32).collect(),
            occ,
            pending: Vec::new(),
        }
    }

    /// Assign a variable and update clause counters; returns `false` on an
    /// immediate conflict (some clause fully falsified). Clauses that lost
    /// a literal are queued for unit propagation.
    fn assign(&mut self, var: u32, value: bool) -> bool {
        debug_assert!(self.assign[var as usize].is_none());
        self.assign[var as usize] = Some(value);
        self.trail.push(var);
        let mut ok = true;
        for i in 0..self.occ[var as usize].len() {
            let (ci, polarity) = self.occ[var as usize][i];
            let c = ci as usize;
            self.n_undef[c] -= 1;
            if polarity == value {
                self.n_sat[c] += 1;
            } else if self.n_sat[c] == 0 {
                if self.n_undef[c] == 0 {
                    ok = false; // falsified clause
                } else {
                    self.pending.push(ci);
                }
            }
        }
        ok
    }

    fn unassign(&mut self, var: u32) {
        let value = self.assign[var as usize].take().expect("assigned");
        for &(ci, polarity) in &self.occ[var as usize] {
            let ci = ci as usize;
            self.n_undef[ci] += 1;
            if polarity == value {
                self.n_sat[ci] -= 1;
            }
        }
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let var = self.trail.pop().expect("trail non-empty");
            self.unassign(var);
        }
    }

    /// Propagate queued unit clauses to fixpoint; `false` on conflict (the
    /// pending queue is drained either way).
    fn propagate(&mut self) -> bool {
        while let Some(ci) = self.pending.pop() {
            let c = ci as usize;
            if self.n_sat[c] > 0 {
                continue;
            }
            match self.n_undef[c] {
                0 => {
                    self.pending.clear();
                    return false;
                }
                1 => {
                    let lit = *self.cnf.clauses[c]
                        .iter()
                        .find(|l| self.assign[l.var as usize].is_none())
                        .expect("one unassigned literal");
                    if !self.assign(lit.var, lit.positive) {
                        self.pending.clear();
                        return false;
                    }
                }
                _ => {}
            }
        }
        true
    }

    fn propagate_initial(&mut self) -> bool {
        // Empty clauses make the formula unsatisfiable outright.
        if self.cnf.clauses.iter().any(|c| c.is_empty()) {
            return false;
        }
        // Seed the queue with every clause (catches initial units).
        self.pending = (0..self.cnf.clauses.len() as u32).collect();
        self.propagate()
    }

    fn pick_unassigned(&self, decide_vars: usize) -> Option<u32> {
        (0..decide_vars as u32).find(|&v| self.assign[v as usize].is_none())
    }

    fn search<B>(
        &mut self,
        decide_vars: usize,
        f: &mut impl FnMut(&[bool]) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        match self.pick_unassigned(decide_vars) {
            None => {
                // All decision variables assigned; remaining variables are
                // forced by propagation in our encodings. Any stragglers
                // default to false (they are unconstrained either way).
                let model: Vec<bool> =
                    self.assign.iter().map(|a| a.unwrap_or(false)).collect();
                f(&model)
            }
            Some(var) => {
                for value in [false, true] {
                    let mark = self.trail.len();
                    if self.assign(var, value) && self.propagate() {
                        self.search(decide_vars, f)?;
                    }
                    // Drop any queue left by a failed assign before undoing.
                    self.pending.clear();
                    self.undo_to(mark);
                }
                ControlFlow::Continue(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_models(cnf: &Cnf) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        let _ = cnf.for_each_model(cnf.num_vars(), |m| {
            out.push(m.to_vec());
            ControlFlow::<()>::Continue(())
        });
        out
    }

    #[test]
    fn single_clause_three_models() {
        // x ∨ y has models {01, 10, 11}.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([Lit::pos(0), Lit::pos(1)]);
        let models = all_models(&cnf);
        assert_eq!(models.len(), 3);
        assert!(!models.contains(&vec![false, false]));
    }

    #[test]
    fn unit_propagation_chains() {
        // x; ¬x ∨ y; ¬y ∨ z → unique model 111.
        let mut cnf = Cnf::new(3);
        cnf.add_clause([Lit::pos(0)]);
        cnf.add_clause([Lit::neg(0), Lit::pos(1)]);
        cnf.add_clause([Lit::neg(1), Lit::pos(2)]);
        assert_eq!(all_models(&cnf), vec![vec![true, true, true]]);
    }

    #[test]
    fn unsat_detected() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([Lit::pos(0)]);
        cnf.add_clause([Lit::neg(0)]);
        assert!(!cnf.satisfiable());
        assert!(all_models(&cnf).is_empty());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([]);
        assert!(!cnf.satisfiable());
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([Lit::pos(0), Lit::neg(0)]);
        assert_eq!(cnf.num_clauses(), 0);
        assert_eq!(all_models(&cnf).len(), 2);
    }

    #[test]
    fn models_enumerated_false_first() {
        // Free variable: false branch explored first.
        let cnf = Cnf::new(1);
        let models = all_models(&cnf);
        assert_eq!(models, vec![vec![false], vec![true]]);
    }

    #[test]
    fn break_stops_enumeration() {
        let cnf = Cnf::new(3);
        let mut count = 0;
        let _ = cnf.for_each_model(3, |_| {
            count += 1;
            if count == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn duplicate_literals_collapse() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([Lit::pos(0), Lit::pos(0)]);
        assert_eq!(all_models(&cnf), vec![vec![true]]);
    }

    #[test]
    fn find_model_returns_satisfying_assignment() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause([Lit::neg(1)]);
        let m = cnf.find_model().unwrap();
        assert!(m[0]);
        assert!(!m[1]);
    }
}
