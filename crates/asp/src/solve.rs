//! A small CNF engine used to enumerate candidate models of ground
//! programs and to decide the minimality sub-problem of the stability
//! test.
//!
//! The encoding of a ground program is built in [`crate::stable`]:
//! rule clauses plus Clark-style support clauses with auxiliary support
//! variables, so every enumerated assignment is a *supported* classical
//! model — a superset of the stable models that avoids the exponential
//! blow-up of unsupported guesses.
//!
//! ## Engine
//!
//! Propagation uses **two watched literals**: each clause of length ≥ 2
//! watches two non-false literals, and only the watch lists of the literal
//! falsified by an assignment are visited — no per-clause counters, no
//! O(clauses) rescan, and backtracking needs no per-clause undo work at
//! all (watch invariants survive unassignment).
//!
//! The search loop is an **explicit trail-based loop** (no recursion, so
//! large ground programs cannot overflow the stack) with chronological
//! backtracking, deciding `false` before `true`.
//!
//! Decision *picking* is **activity-guided** (VSIDS-lite): every variable
//! carries a counter bumped when a clause it occurs in becomes
//! conflicting, and all counters decay by halving every
//! [`DECAY_INTERVAL`] conflicts. At each decay the decision order is
//! rebuilt — highest activity first, index order as the tie-break — so
//! the search keeps branching on the variables that are actually causing
//! conflicts, a stepping stone toward full CDCL. Until the first decay
//! the order is plain index order, i.e. exactly the old engine's
//! lowest-index-first behaviour.
//!
//! Picking stays amortised O(1) per node: each decision frame remembers
//! its position in the order (stamped with the order's epoch), and the
//! next pick resumes scanning right after it — every earlier position is
//! already assigned. A decay invalidates the stamps and the next pick
//! rescans once from the front.
//!
//! The enumeration is complete and duplicate-free for *any* decision
//! order (both phases of every decision are explored), and stays fully
//! deterministic: activities depend only on the formula and the search
//! path. Callers that need a canonical model order sort afterwards, as
//! `stable_models` does.

use std::ops::ControlFlow;

/// A literal: variable index with polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// Variable index.
    pub var: u32,
    /// `true` for the positive literal.
    pub positive: bool,
}

impl Lit {
    /// Positive literal.
    pub fn pos(var: u32) -> Self {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal.
    pub fn neg(var: u32) -> Self {
        Lit {
            var,
            positive: false,
        }
    }
}

/// A CNF formula.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Add a clause (empty clause makes the formula unsatisfiable).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let mut c: Vec<Lit> = lits.into_iter().collect();
        c.sort_unstable_by_key(|l| (l.var, l.positive));
        c.dedup();
        // A clause with both polarities of a variable is a tautology.
        for w in c.windows(2) {
            if w[0].var == w[1].var {
                return;
            }
        }
        self.clauses.push(c);
    }

    /// Enumerate all satisfying assignments over the first `decide_vars`
    /// variables (remaining variables must be forced by propagation; if an
    /// assignment leaves one free, both completions are models and the
    /// callback sees the propagated-only projection — the encodings in
    /// this crate guarantee full determination). The callback receives the
    /// full assignment; `Break` stops the enumeration.
    pub fn for_each_model<B>(
        &self,
        decide_vars: usize,
        mut f: impl FnMut(&[bool]) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        let mut solver = Solver::new(self);
        if !solver.init() {
            return ControlFlow::Continue(());
        }
        solver.search(decide_vars.min(self.num_vars), &mut f)
    }

    /// Find one satisfying assignment.
    pub fn find_model(&self) -> Option<Vec<bool>> {
        let mut found = None;
        let _ = self.for_each_model(self.num_vars, |m| {
            found = Some(m.to_vec());
            ControlFlow::Break(())
        });
        found
    }

    /// Is the formula satisfiable?
    pub fn satisfiable(&self) -> bool {
        self.find_model().is_some()
    }
}

/// Encoding of a literal as a watch-list slot: `2·var + polarity`.
fn code(lit: Lit) -> usize {
    ((lit.var as usize) << 1) | (lit.positive as usize)
}

/// Conflicts between activity decays (halvings + decision-order rebuild).
const DECAY_INTERVAL: u32 = 128;

/// One open decision of the explicit search stack.
struct Frame {
    /// The decision variable.
    var: u32,
    /// Trail length before this decision was made.
    mark: usize,
    /// `true` once the second phase (`true`) has been entered.
    flipped: bool,
    /// Position of `var` in the decision order, stamped with the order
    /// epoch it was valid for — the next pick resumes after it.
    order_pos: usize,
    /// Epoch of `order_pos` (stale after a decay rebuilds the order).
    order_epoch: u32,
}

struct Solver<'a> {
    cnf: &'a Cnf,
    /// Assignment: None = unassigned.
    assign: Vec<Option<bool>>,
    /// Assigned variables in order (for undo).
    trail: Vec<u32>,
    /// Propagation head: trail entries below it have been propagated.
    qhead: usize,
    /// Per-clause positions of the two watched literals (len ≥ 2 clauses).
    watch_pos: Vec<[usize; 2]>,
    /// Watch lists: literal code → clauses currently watching it.
    watchers: Vec<Vec<u32>>,
    /// VSIDS-lite: per-variable conflict activity (bumped when a clause
    /// containing the variable conflicts; halved every
    /// [`DECAY_INTERVAL`] conflicts).
    activity: Vec<u64>,
    /// Conflicts since the last decay.
    conflicts_since_decay: u32,
    /// Pending decay: set by `propagate`, applied by `search` before the
    /// next pick (propagation doesn't know the decide range).
    decay_due: bool,
}

impl<'a> Solver<'a> {
    fn new(cnf: &'a Cnf) -> Self {
        Solver {
            cnf,
            assign: vec![None; cnf.num_vars],
            trail: Vec::new(),
            qhead: 0,
            watch_pos: vec![[0, 1]; cnf.clauses.len()],
            watchers: vec![Vec::new(); cnf.num_vars * 2],
            activity: vec![0; cnf.num_vars],
            conflicts_since_decay: 0,
            decay_due: false,
        }
    }

    /// Record a conflict on clause `ci`: bump the activity of every
    /// variable in it and schedule a decay each [`DECAY_INTERVAL`]
    /// conflicts.
    fn note_conflict(&mut self, ci: usize) {
        for lit in &self.cnf.clauses[ci] {
            self.activity[lit.var as usize] += 1;
        }
        self.conflicts_since_decay += 1;
        if self.conflicts_since_decay >= DECAY_INTERVAL {
            self.conflicts_since_decay = 0;
            self.decay_due = true;
        }
    }

    fn value(&self, lit: Lit) -> Option<bool> {
        self.assign[lit.var as usize].map(|v| v == lit.positive)
    }

    /// Make a literal true. `false` on conflict with the current value.
    fn enqueue(&mut self, lit: Lit) -> bool {
        match self.value(lit) {
            Some(v) => v,
            None => {
                self.assign[lit.var as usize] = Some(lit.positive);
                self.trail.push(lit.var);
                true
            }
        }
    }

    /// Watch the first two literals of every long clause and propagate
    /// initial units; `false` if the formula is trivially unsatisfiable.
    fn init(&mut self) -> bool {
        for (ci, clause) in self.cnf.clauses.iter().enumerate() {
            match clause.len() {
                0 => return false,
                1 => {
                    if !self.enqueue(clause[0]) {
                        return false;
                    }
                }
                _ => {
                    self.watchers[code(clause[0])].push(ci as u32);
                    self.watchers[code(clause[1])].push(ci as u32);
                }
            }
        }
        self.propagate()
    }

    /// Two-watched-literal unit propagation to fixpoint; `false` on
    /// conflict. Only clauses watching a falsified literal are visited.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let var = self.trail[self.qhead];
            self.qhead += 1;
            let value = self.assign[var as usize].expect("trail entries are assigned");
            // The literal of `var` that just became false.
            let false_code = ((var as usize) << 1) | (!value as usize);
            let mut i = 0;
            'clauses: while i < self.watchers[false_code].len() {
                let ci = self.watchers[false_code][i] as usize;
                let clause = &self.cnf.clauses[ci];
                let [p0, p1] = self.watch_pos[ci];
                let slot = usize::from(code(clause[p0]) != false_code);
                debug_assert_eq!(code(clause[self.watch_pos[ci][slot]]), false_code);
                let other = clause[if slot == 0 { p1 } else { p0 }];
                if self.value(other) == Some(true) {
                    i += 1;
                    continue; // clause already satisfied by the other watch
                }
                // Look for a replacement watch among the unwatched literals.
                for (j, &l) in clause.iter().enumerate() {
                    if j != p0 && j != p1 && self.value(l) != Some(false) {
                        self.watch_pos[ci][slot] = j;
                        self.watchers[false_code].swap_remove(i);
                        self.watchers[code(l)].push(ci as u32);
                        continue 'clauses;
                    }
                }
                // No replacement: the clause is unit on `other`, or conflicting.
                if !self.enqueue(other) {
                    self.note_conflict(ci);
                    return false;
                }
                i += 1;
            }
        }
        true
    }

    /// Undo the trail to `mark`. Watch invariants need no repair: a watch
    /// may only point at a non-false or *currently-false* literal, and
    /// unassignment only turns false literals into unassigned ones.
    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let var = self.trail.pop().expect("trail non-empty");
            self.assign[var as usize] = None;
        }
        self.qhead = mark;
    }

    /// Next decision: the first unassigned variable of `order`, scanning
    /// from `from` — every order position before the most recent decision
    /// is assigned (within one epoch), so the caller passes that
    /// decision's position + 1 instead of rescanning from the front.
    fn pick_unassigned(&self, order: &[u32], from: usize) -> Option<(usize, u32)> {
        (from..order.len())
            .map(|pos| (pos, order[pos]))
            .find(|&(_, v)| self.assign[v as usize].is_none())
    }

    /// Decide `var = value` and propagate; `false` on conflict.
    fn decide(&mut self, var: u32, value: bool) -> bool {
        let ok = self.enqueue(Lit {
            var,
            positive: value,
        });
        debug_assert!(ok, "decision variables are unassigned");
        self.propagate()
    }

    /// Chronological backtracking: flip the deepest unflipped decision to
    /// `true` (propagating; conflicts keep backtracking), popping finished
    /// frames. Returns `false` when the stack is exhausted.
    fn advance(&mut self, frames: &mut Vec<Frame>) -> bool {
        while let Some(top) = frames.last_mut() {
            if top.flipped {
                let mark = top.mark;
                self.undo_to(mark);
                frames.pop();
                continue;
            }
            top.flipped = true;
            let (var, mark) = (top.var, top.mark);
            self.undo_to(mark);
            if self.decide(var, true) {
                return true;
            }
        }
        false
    }

    /// Iterative model enumeration, `false` phase first, decision order
    /// by conflict activity (index order until the first decay).
    fn search<B>(
        &mut self,
        decide_vars: usize,
        f: &mut impl FnMut(&[bool]) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        let mut frames: Vec<Frame> = Vec::new();
        // Decision order over the decide range; rebuilt at every decay.
        let mut order: Vec<u32> = (0..decide_vars as u32).collect();
        let mut epoch: u32 = 0;
        loop {
            if self.decay_due {
                self.decay_due = false;
                for a in &mut self.activity {
                    *a >>= 1;
                }
                // Highest activity first; index order breaks ties, so a
                // conflict-free stretch keeps the old lowest-index order.
                order.sort_by_key(|&v| (std::cmp::Reverse(self.activity[v as usize]), v));
                epoch += 1; // frame hints from older epochs are stale
            }
            let hint = frames.last().map_or(0, |fr| {
                if fr.order_epoch == epoch {
                    fr.order_pos + 1
                } else {
                    0
                }
            });
            match self.pick_unassigned(&order, hint) {
                None => {
                    // All decision variables assigned; remaining variables
                    // are forced by propagation in our encodings. Any
                    // stragglers default to false (they are unconstrained
                    // either way).
                    let model: Vec<bool> = self.assign.iter().map(|a| a.unwrap_or(false)).collect();
                    f(&model)?;
                    if !self.advance(&mut frames) {
                        return ControlFlow::Continue(());
                    }
                }
                Some((pos, var)) => {
                    let mark = self.trail.len();
                    frames.push(Frame {
                        var,
                        mark,
                        flipped: false,
                        order_pos: pos,
                        order_epoch: epoch,
                    });
                    if !self.decide(var, false) && !self.advance(&mut frames) {
                        return ControlFlow::Continue(());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_models(cnf: &Cnf) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        let _ = cnf.for_each_model(cnf.num_vars(), |m| {
            out.push(m.to_vec());
            ControlFlow::<()>::Continue(())
        });
        out
    }

    #[test]
    fn single_clause_three_models() {
        // x ∨ y has models {01, 10, 11}.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([Lit::pos(0), Lit::pos(1)]);
        let models = all_models(&cnf);
        assert_eq!(models.len(), 3);
        assert!(!models.contains(&vec![false, false]));
    }

    #[test]
    fn unit_propagation_chains() {
        // x; ¬x ∨ y; ¬y ∨ z → unique model 111.
        let mut cnf = Cnf::new(3);
        cnf.add_clause([Lit::pos(0)]);
        cnf.add_clause([Lit::neg(0), Lit::pos(1)]);
        cnf.add_clause([Lit::neg(1), Lit::pos(2)]);
        assert_eq!(all_models(&cnf), vec![vec![true, true, true]]);
    }

    #[test]
    fn unsat_detected() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([Lit::pos(0)]);
        cnf.add_clause([Lit::neg(0)]);
        assert!(!cnf.satisfiable());
        assert!(all_models(&cnf).is_empty());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([]);
        assert!(!cnf.satisfiable());
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([Lit::pos(0), Lit::neg(0)]);
        assert_eq!(cnf.num_clauses(), 0);
        assert_eq!(all_models(&cnf).len(), 2);
    }

    #[test]
    fn models_enumerated_false_first() {
        // Free variable: false branch explored first.
        let cnf = Cnf::new(1);
        let models = all_models(&cnf);
        assert_eq!(models, vec![vec![false], vec![true]]);
    }

    #[test]
    fn break_stops_enumeration() {
        let cnf = Cnf::new(3);
        let mut count = 0;
        let _ = cnf.for_each_model(3, |_| {
            count += 1;
            if count == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn duplicate_literals_collapse() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([Lit::pos(0), Lit::pos(0)]);
        assert_eq!(all_models(&cnf), vec![vec![true]]);
    }

    #[test]
    fn find_model_returns_satisfying_assignment() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause([Lit::neg(1)]);
        let m = cnf.find_model().unwrap();
        assert!(m[0]);
        assert!(!m[1]);
    }
}
