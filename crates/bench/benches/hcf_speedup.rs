//! Bench: Corollary 1 made measurable — for denial-only constraint sets
//! the repair program is head-cycle-free; solving the shifted normal
//! program uses the polynomial least-model stability test instead of the
//! coNP minimal-model search.

use cqa_bench::harness::Harness;
use cqa_core::ProgramStyle;
use std::hint::black_box;

fn disjunctive_vs_shifted() {
    let mut group = Harness::new("hcf_corollary1");
    for overlap in [4usize, 8, 10] {
        let w = cqa_bench::denial_workload(30, overlap, 47);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        let gp = cqa_asp::ground(&program);
        assert!(cqa_asp::is_hcf(&gp));
        let shifted = cqa_asp::shift(&gp).unwrap();
        group.bench(format!("disjunctive/{overlap}"), || {
            black_box(cqa_asp::stable_models(&gp))
        });
        group.bench(format!("shifted_normal/{overlap}"), || {
            black_box(cqa_asp::stable_models(&shifted))
        });
    }
    group.finish();
}

fn hcf_detection_cost() {
    let mut group = Harness::new("hcf_detection");
    for n in [200usize, 800] {
        let w = cqa_bench::example19_scaled(n, 2, 2, 53);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        let gp = cqa_asp::ground(&program);
        group.bench(format!("{n}"), || black_box(cqa_asp::is_hcf(&gp)));
    }
    group.finish();
}

fn main() {
    disjunctive_vs_shifted();
    hcf_detection_cost();
}
