//! Bench: Corollary 1 made measurable — for denial-only constraint sets
//! the repair program is head-cycle-free; solving the shifted normal
//! program uses the polynomial least-model stability test instead of the
//! coNP minimal-model search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqa_core::ProgramStyle;
use std::hint::black_box;

fn disjunctive_vs_shifted(c: &mut Criterion) {
    let mut group = c.benchmark_group("hcf_corollary1");
    group.sample_size(10);
    for overlap in [4usize, 8, 10] {
        let w = cqa_bench::denial_workload(30, overlap, 47);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        let gp = cqa_asp::ground(&program);
        assert!(cqa_asp::is_hcf(&gp));
        let shifted = cqa_asp::shift(&gp).unwrap();
        group.bench_with_input(BenchmarkId::new("disjunctive", overlap), &gp, |b, gp| {
            b.iter(|| black_box(cqa_asp::stable_models(gp)))
        });
        group.bench_with_input(
            BenchmarkId::new("shifted_normal", overlap),
            &shifted,
            |b, gp| b.iter(|| black_box(cqa_asp::stable_models(gp))),
        );
    }
    group.finish();
}

fn hcf_detection_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("hcf_detection");
    group.sample_size(20);
    for n in [200usize, 800] {
        let w = cqa_bench::example19_scaled(n, 2, 2, 53);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        let gp = cqa_asp::ground(&program);
        group.bench_with_input(BenchmarkId::from_parameter(n), &gp, |b, gp| {
            b.iter(|| black_box(cqa_asp::is_hcf(gp)))
        });
    }
    group.finish();
}

criterion_group!(benches, disjunctive_vs_shifted, hcf_detection_cost);
criterion_main!(benches);
