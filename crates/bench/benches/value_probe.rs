//! Micro-bench: index-probe and value-comparison cost versus string
//! length.
//!
//! With globally interned values, an index probe hashes and compares a
//! `u32` symbol id — the timings across the `strlen_*` series must be
//! flat (the headline claim of the interning PR; `BENCH_2.json` records
//! the series). Before interning, probe cost grew with the length of the
//! string constants because every hash and equality walked the bytes.

use cqa_bench::harness::Harness;
use cqa_relational::{ColsKey, Instance, RelId, Schema, Tuple, Value};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: usize = 1024;
const PROBES: usize = 256;
const LENGTHS: [usize; 4] = [8, 64, 512, 4096];

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("R", ["k", "g", "v"])
        .finish()
        .expect("static schema")
        .into_shared()
}

/// A key of exactly `len` bytes whose distinguishing suffix forces a full
/// walk for content-based comparison (shared long prefix).
fn key(len: usize, i: usize) -> String {
    format!("{:x>width$}-{i:06}", "", width = len.saturating_sub(7))
}

fn build(len: usize) -> Instance {
    let mut d = Instance::empty(schema());
    for i in 0..ROWS {
        d.insert_named(
            "R",
            [
                Value::str(key(len, i)),
                Value::str(key(len, i % 16)),
                Value::Int(i as i64),
            ],
        )
        .expect("arity");
    }
    d
}

/// Single-column probes: value → bucket, one hash of an interned id.
fn single_column_probes() {
    let mut group = Harness::new("value_probe");
    for len in LENGTHS {
        let d = build(len);
        let r = RelId(0);
        let ix = d.index_on(r, 0);
        let probes: Vec<Value> = (0..PROBES)
            .map(|i| Value::str(key(len, (i * 7) % (ROWS + 64)))) // ~6% misses
            .collect();
        group.bench(format!("probe/strlen_{len}"), || {
            let mut hits = 0usize;
            for v in &probes {
                hits += ix.probe(black_box(v)).len();
            }
            black_box(hits)
        });
    }
    group.finish();
}

/// Composite probes: packed two-column keys, still id-only work.
fn composite_probes() {
    let mut group = Harness::new("value_probe_composite");
    for len in LENGTHS {
        let d = build(len);
        let r = RelId(0);
        let ix = d.index_on_cols(r, &[0, 1]);
        let keys: Vec<ColsKey> = (0..PROBES)
            .map(|i| {
                let j = (i * 7) % (ROWS + 64);
                ColsKey::new(&[Value::str(key(len, j)), Value::str(key(len, j % 16))])
            })
            .collect();
        group.bench(format!("probe_cols/strlen_{len}"), || {
            let mut hits = 0usize;
            for k in &keys {
                hits += ix.probe(black_box(k)).len();
            }
            black_box(hits)
        });
    }
    group.finish();
}

/// Tuple equality sweeps: comparing interned tuples is id-only too.
fn tuple_equality() {
    let mut group = Harness::new("value_probe_eq");
    for len in LENGTHS {
        let a: Vec<Tuple> = (0..ROWS)
            .map(|i| Tuple::new(vec![Value::str(key(len, i)), Value::Int(i as i64)]))
            .collect();
        let b = a.clone();
        group.bench(format!("tuple_eq/strlen_{len}"), || {
            let mut eq = 0usize;
            for (x, y) in a.iter().zip(&b) {
                if black_box(x) == black_box(y) {
                    eq += 1;
                }
            }
            black_box(eq)
        });
    }
    group.finish();
}

/// `Ord` on symbols: the id fast path versus the lexicographic slow path.
///
/// Documents exactly when string content is still touched (ROADMAP
/// "Interner-aware ordering"): comparing a symbol with *itself* (equal
/// ids — the dominant case in `BTreeSet` probes of values that are
/// already present) short-circuits to `Equal` without resolving, so the
/// `ord_eq_ids/*` series must be flat across string lengths. Comparing
/// *distinct* symbols resolves both strings and walks their shared prefix
/// (enumeration order is pinned to lexicographic order workspace-wide),
/// so `ord_neq_ids/*` grows with the prefix length — the residual cost an
/// id-ordered B-tree would remove if enumeration order were ever relaxed.
fn symbol_ordering() {
    let mut group = Harness::new("symbol_ord");
    for len in LENGTHS {
        let values: Vec<Value> = (0..ROWS).map(|i| Value::str(key(len, i))).collect();
        let same = values.clone();
        group.bench(format!("ord_eq_ids/strlen_{len}"), || {
            let mut eq = 0usize;
            for (a, b) in values.iter().zip(&same) {
                if black_box(a).cmp(black_box(b)) == std::cmp::Ordering::Equal {
                    eq += 1;
                }
            }
            black_box(eq)
        });
        // Distinct ids with a shared `len`-byte prefix: every comparison
        // takes the slow path and walks the common prefix.
        let shifted: Vec<Value> = (0..ROWS).map(|i| Value::str(key(len, i + 1))).collect();
        group.bench(format!("ord_neq_ids/strlen_{len}"), || {
            let mut less = 0usize;
            for (a, b) in values.iter().zip(&shifted) {
                if black_box(a).cmp(black_box(b)) == std::cmp::Ordering::Less {
                    less += 1;
                }
            }
            black_box(less)
        });
    }
    group.finish();
}

fn main() {
    single_column_probes();
    composite_probes();
    tuple_equality();
    symbol_ordering();
}
