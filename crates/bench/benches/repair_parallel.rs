//! Bench: the work-stealing parallel repair search on the threads axis.
//!
//! Workload: the Example-19 shape at clean=800 with 8 key conflicts and
//! one dangling FK — 2⁹ = 512 repairs from a 9-deep binary decision tree
//! over a large, mostly clean instance. This is the regime the parallel
//! strategy targets: per-node search cost is conflict-bounded (PR 1), the
//! root scan is cached (this PR), so wall-clock is dominated by tree
//! exploration plus materialisation of the surviving repairs, both of
//! which fan out across workers.
//!
//! The printed speedup (threads=N vs threads=1, same parallel
//! implementation) is the headline number; it is hardware-bound — on a
//! single-core container every thread count collapses to ~1x and the
//! scheduler overhead itself is what is being measured. `threads/4` is
//! regression-gated against the committed `BENCH_3.json` by `bench_check`.

use cqa_bench::harness::Harness;
use cqa_core::{repairs_with_config, RepairConfig, SearchStrategy};
use std::hint::black_box;

fn repair_parallel() {
    let mut group = Harness::new("repair_parallel");
    let w = cqa_bench::example19_scaled(800, 8, 1, 31);
    let expected = 512;
    let mut at_one: u128 = 0;
    for threads in [1usize, 2, 4, 8] {
        let config = RepairConfig {
            strategy: SearchStrategy::Parallel { threads },
            ..RepairConfig::default()
        };
        let reps = repairs_with_config(&w.instance, &w.ics, config).unwrap();
        assert_eq!(reps.len(), expected, "workload shape drifted");
        let median = group
            .bench(format!("threads/{threads}"), || {
                black_box(repairs_with_config(&w.instance, &w.ics, config).unwrap())
            })
            .median_ns;
        if threads == 1 {
            at_one = median;
        } else {
            let speedup = at_one as f64 / median.max(1) as f64;
            println!("  -> speedup threads={threads} vs threads=1: {speedup:.2}x");
        }
    }
    group.finish();
}

fn main() {
    repair_parallel();
}
