//! Bench: the cqa-storage write path — group commit vs per-append
//! fsync, incremental vs full segment compaction, and constraint-frame
//! append latency.
//!
//! Three questions, each with a within-run gate or a recorded headline:
//!
//! * `append_group/8` vs `append_solo/8` — 8 concurrent writers each
//!   appending 16 one-atom deltas under `FsyncPolicy::Always`. The solo
//!   series disables group commit, so every append pays its own fsync
//!   (128 per burst); the group series lets the leader's single fsync
//!   cover every staged frame (`group_max_batch = 8`). `bench_check`
//!   enforces `append_group/8 ≤ 1/3 × append_solo/8` in the same run —
//!   the ISSUE-10 "grouped ≥ 3× per-append-fsync at batch width 8"
//!   acceptance gate. Host-independent: both series issue identical
//!   writes on the same filesystem; only the fsync schedule differs.
//! * `compact_incremental/20` vs `compact_full/20` — a 20-relation
//!   instance (200 rows each) with 2 relations dirty (10% churn).
//!   Incremental compaction rewrites the 2 dirty segments and the
//!   manifest, re-referencing the other 18; the full series rewrites
//!   every segment. `bench_check` enforces `incremental ≤ 0.3 × full`
//!   within the run — O(changed relations), not O(instance).
//! * `add_constraint/1` — latency of appending one constraint frame
//!   under `Always`. Before ISSUE 10 this forced a full snapshot
//!   rewrite; now it is a single WAL append + fsync, and the absence of
//!   compaction is pinned by `tests/persistence.rs`.

use cqa_bench::harness::Harness;
use cqa_constraints::{Constraint, IcSet, Nnc};
use cqa_relational::{s, DatabaseAtom, Instance, InstanceDelta, RelId, Schema, Tuple};
use cqa_storage::{DurableStore, FsyncPolicy, StoreOptions};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;

/// Concurrent appenders in the group-commit burst (= the gated batch
/// width: `group_max_batch` is set to this).
const WRITERS: usize = 8;

/// Appends per writer per burst — enough that thread-spawn overhead,
/// identical in both series, stays small against the fsync schedule
/// under comparison.
const APPENDS_PER_WRITER: usize = 16;

/// Relations in the compaction instance; 10% churn = 2 dirty.
const RELS: usize = 20;
const DIRTY_RELS: usize = 2;
const ROWS_PER_REL: usize = 200;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cqa-bench-storage-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One-relation store for the append burst; compaction disabled so the
/// WAL keeps every frame and the timed region is appends + fsyncs only.
fn append_store(tag: &str, group_commit: bool) -> (Arc<DurableStore>, RelId, PathBuf) {
    let schema = Schema::builder()
        .relation("r", ["x", "y"])
        .finish()
        .unwrap()
        .into_shared();
    let inst = Instance::empty(schema.clone());
    let options = StoreOptions {
        fsync: FsyncPolicy::Always,
        compact_min_wal_bytes: u64::MAX,
        group_commit,
        // The leader lingers up to 200µs for stragglers but leaves the
        // moment a full batch is staged (ignored by the solo series).
        group_window_us: 200,
        group_max_batch: WRITERS as u32,
        ..StoreOptions::default()
    };
    let dir = scratch(tag);
    let store = DurableStore::create(&dir, &inst, &IcSet::default(), options).unwrap();
    (Arc::new(store), schema.rel_id("r").unwrap(), dir)
}

/// The shared burst: `WRITERS` threads, each appending
/// `APPENDS_PER_WRITER` one-atom deltas through the same handle.
fn append_burst(store: &Arc<DurableStore>, rel: RelId) -> u64 {
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(store);
            std::thread::spawn(move || {
                let mut last = 0;
                for k in 0..APPENDS_PER_WRITER {
                    let mut delta = InstanceDelta::default();
                    delta.added.insert(DatabaseAtom::new(
                        rel,
                        [s(&format!("w{w}")), s(&format!("k{k}"))].into(),
                    ));
                    last = store.append_delta(&delta).unwrap();
                }
                last
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .max()
        .unwrap()
}

/// A 20-relation instance (200 rows each) and a store whose automatic
/// compaction is disabled — the bench calls `compact`/`compact_full`
/// explicitly after dirtying exactly `DIRTY_RELS` relations.
fn compaction_store(tag: &str) -> (Arc<DurableStore>, Instance, PathBuf) {
    let mut b = Schema::builder();
    for r in 0..RELS {
        b = b.relation_with_arity(format!("rel{r}"), 2);
    }
    let schema = b.finish().unwrap().into_shared();
    let mut inst = Instance::empty(schema.clone());
    for r in 0..RELS {
        for t in 0..ROWS_PER_REL {
            inst.insert(
                RelId(r as u32),
                Tuple::new([s(&format!("r{r}t{t}")), s("y")]),
            )
            .unwrap();
        }
    }
    let options = StoreOptions {
        // Dirty-marking appends are setup, not the subject; segment and
        // manifest writes sync unconditionally regardless of policy.
        fsync: FsyncPolicy::Never,
        compact_min_wal_bytes: u64::MAX,
        ..StoreOptions::default()
    };
    let dir = scratch(tag);
    let store = DurableStore::create(&dir, &inst, &IcSet::default(), options).unwrap();
    (Arc::new(store), inst, dir)
}

/// Mark `DIRTY_RELS` relations dirty via one appended delta — the 10%
/// churn every timed compaction folds in.
fn dirty(store: &DurableStore) {
    let mut delta = InstanceDelta::default();
    for r in 0..DIRTY_RELS {
        delta.added.insert(DatabaseAtom::new(
            RelId(r as u32),
            [s("hot"), s("row")].into(),
        ));
    }
    store.append_delta(&delta).unwrap();
}

fn storage_write() {
    let mut group = Harness::new("storage_write");

    // -- Group commit vs per-append fsync at batch width 8 --
    let (solo, rel, solo_dir) = append_store("solo", false);
    let solo_ns = group
        .bench("append_solo/8", || black_box(append_burst(&solo, rel)))
        .median_ns;
    let solo_stats = solo.stats();
    drop(solo);
    let _ = std::fs::remove_dir_all(&solo_dir);

    let (grouped, rel, group_dir) = append_store("group", true);
    let group_ns = group
        .bench("append_group/8", || black_box(append_burst(&grouped, rel)))
        .median_ns;
    let group_stats = grouped.stats();
    drop(grouped);
    let _ = std::fs::remove_dir_all(&group_dir);

    let ratio = group_ns as f64 / solo_ns.max(1) as f64;
    println!(
        "  -> group commit vs per-append fsync at width {WRITERS}: {:.1}x faster ({ratio:.3}x, target <= 0.33)",
        solo_ns as f64 / group_ns.max(1) as f64
    );
    println!(
        "  -> fsyncs per append: solo {:.2}, grouped {:.2} (mean batch {:.1} frames)",
        solo_stats.fsyncs as f64 / solo_stats.appends.max(1) as f64,
        group_stats.fsyncs as f64 / group_stats.appends.max(1) as f64,
        group_stats.mean_group_batch(),
    );

    // -- Incremental vs full compaction at 10% relations changed --
    let (store, inst, dir) = compaction_store("compact");
    let ics = IcSet::default();
    let full_ns = group
        .bench_with_setup(
            format!("compact_full/{RELS}"),
            || dirty(&store),
            |()| store.compact_full(&inst, &ics).unwrap(),
        )
        .median_ns;
    let incr_ns = group
        .bench_with_setup(
            format!("compact_incremental/{RELS}"),
            || dirty(&store),
            |()| store.compact(&inst, &ics).unwrap(),
        )
        .median_ns;
    let stats = store.stats();
    let ratio = incr_ns as f64 / full_ns.max(1) as f64;
    println!(
        "  -> incremental vs full compaction at {DIRTY_RELS}/{RELS} dirty: {:.1}x faster ({ratio:.3}x, target <= 0.3)",
        full_ns as f64 / incr_ns.max(1) as f64
    );
    println!(
        "  -> segments written {} vs reused {} across {} compactions",
        stats.segments_written, stats.segments_reused, stats.compactions
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    // -- Constraint-frame append latency --
    // Solo config: a lone appender would otherwise pay the straggler
    // window, and the headline here is the bare append + fsync cost.
    let (store, _, dir) = append_store("constraint", false);
    let schema = Schema::builder()
        .relation("r", ["x", "y"])
        .finish()
        .unwrap()
        .into_shared();
    let con: Constraint = Nnc::new(&schema, "nn_bench", "r", 0).unwrap().into();
    group.bench("add_constraint/1", || {
        black_box(store.append_constraint(&con).unwrap())
    });
    assert_eq!(
        store.stats().compactions,
        0,
        "a constraint append must never trigger compaction"
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}

fn main() {
    storage_write();
}
