//! Bench: the polynomial fast-path planner vs repair enumeration.
//!
//! `fast_path/{clean}` runs the plan-first CQA entry point on a key-FD
//! workload (the planner dispatches the FO-rewrite route), and
//! `chase/{clean}` runs the same workload plus a denial (forcing the
//! deletion-only chase route). Both scale to clean tuple counts that
//! repair enumeration cannot touch: with 8 conflicting key pairs the
//! violation hypergraph has 2⁸ = 256 repairs, so `enumeration/800`
//! materialises 256 instances of ~800 tuples each — already hundreds of
//! milliseconds — and is only recorded at the smallest size (8k/80k
//! would be pure waiting; the planner's point is that they never run).
//!
//! The headline numbers are `fast_path/80000` (guarded against
//! regression in `bench_check`) and the within-run ratio
//! `fast_path/800 ÷ enumeration/800` (gated host-independently at
//! ≤ 0.05x in `bench_check`).

use cqa_bench::harness::Harness;
use cqa_constraints::{v, Ic};
use cqa_core::query::{AnswerSemantics, QueryNullSemantics};
use cqa_core::{
    consistent_answers_enumerated, consistent_answers_full, plan_query, PlanRoute, RepairConfig,
};
use std::hint::black_box;

fn query_for(w: &cqa_bench::Workload) -> cqa_core::Query {
    cqa_core::ConjunctiveQuery::builder(w.instance.schema(), "q", ["k", "v"])
        .atom("R", [v("k"), v("v")])
        .finish()
        .unwrap()
        .into()
}

fn main() {
    let mut group = Harness::new("fast_path");
    let config = RepairConfig::default();
    let mut fast_800_ns: u128 = 0;
    for clean in [800usize, 8_000, 80_000] {
        let w = cqa_bench::fd_workload(clean, 8, 41);
        let q = query_for(&w);
        assert_eq!(
            plan_query(&w.ics, &q, &config).route,
            PlanRoute::FoRewrite,
            "key-FD workload must take the FO-rewrite route"
        );
        let fast = group
            .bench(format!("fast_path/{clean}"), || {
                black_box(
                    consistent_answers_full(
                        &w.instance,
                        &w.ics,
                        &q,
                        config,
                        AnswerSemantics::IncludeNullAnswers,
                        QueryNullSemantics::NullAsValue,
                    )
                    .unwrap(),
                )
            })
            .median_ns;
        if clean == 800 {
            fast_800_ns = fast;
        }
        // The same workload with a denial added is no longer key-FD-only,
        // so the planner falls to the deletion-only chase route.
        let mut chase_ics = w.ics.clone();
        chase_ics.push(
            Ic::builder(w.instance.schema(), "den")
                .body_atom("R", [v("x"), v("x")])
                .finish()
                .unwrap(),
        );
        assert_eq!(
            plan_query(&chase_ics, &q, &config).route,
            PlanRoute::Chase,
            "FD + denial must take the chase route"
        );
        group.bench(format!("chase/{clean}"), || {
            black_box(
                consistent_answers_full(
                    &w.instance,
                    &chase_ics,
                    &q,
                    config,
                    AnswerSemantics::IncludeNullAnswers,
                    QueryNullSemantics::NullAsValue,
                )
                .unwrap(),
            )
        });
    }
    // Enumeration baseline, smallest size only (see module docs).
    let w = cqa_bench::fd_workload(800, 8, 41);
    let q = query_for(&w);
    let enum_ns = group
        .bench("enumeration/800", || {
            black_box(
                consistent_answers_enumerated(
                    &w.instance,
                    &w.ics,
                    &q,
                    config,
                    AnswerSemantics::IncludeNullAnswers,
                    QueryNullSemantics::NullAsValue,
                )
                .unwrap(),
            )
        })
        .median_ns;
    println!(
        "  -> fast path vs enumeration at clean=800: {:.1}x faster ({:.4}x)",
        enum_ns as f64 / fast_800_ns.max(1) as f64,
        fast_800_ns as f64 / enum_ns.max(1) as f64,
    );
    group.finish();
}
