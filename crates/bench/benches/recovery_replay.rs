//! Bench: crash-recovery replay through the incremental grounding
//! engine vs a cold cache rebuild, on the WAL-length axis.
//!
//! The durability design (cqa-storage) recovers by grounding the
//! *snapshot* state once, applying every surviving WAL delta to the
//! instance, and warming the caches again on the final state — the
//! second warm finds the snapshot-state entry and *evolves* it
//! (seminaive for insertions, DRed for deletions), so replay cost scales
//! with the net drift, not with `WAL length × grounding cost`.
//!
//! Two series per WAL length N ∈ {10, 100, 1000} over a ~4000-atom
//! snapshot (Example-19 shape, conflicts fixed):
//!
//! * `replay/N` — what `Database::open` does: the store is opened and
//!   its deltas applied *in the timed region*, but the caches handed in
//!   were warmed at the snapshot state during untimed setup, so the
//!   final warm takes the incremental reground path.
//! * `cold_rebuild/N` — identical timed region, but the caches start
//!   empty: the final warm grounds the recovered state from scratch.
//!   What recovery would cost without the incremental engine.
//!
//! `bench_check` enforces `replay/1000 ≤ 0.5 × cold_rebuild/1000`
//! within the same run (host-independent): if recovery silently stops
//! riding the incremental path, the ratio collapses to ~1 and the gate
//! trips.

use cqa_bench::harness::Harness;
use cqa_core::{warm_caches_in, CqaCaches, ProgramStyle};
use cqa_relational::{s, DatabaseAtom, InstanceDelta};
use cqa_storage::{DurableStore, FsyncPolicy, StoreOptions, WalOp};
use std::hint::black_box;
use std::path::{Path, PathBuf};

/// Clean pairs in the snapshot: ~2·N + 3 atoms, large enough that a
/// 1000-delta drift stays well under the grounding cache's rebuild
/// escape hatch (1/2 of the instance) — and that the cold rebuild's
/// instance-proportional cost clearly dominates the drift-proportional
/// replay at the gated 1000-delta point.
const CLEAN: usize = 3000;

fn options() -> StoreOptions {
    StoreOptions {
        // Replay cost is the subject, not fsync latency; and compaction
        // must not fold the WAL away mid-recording.
        fsync: FsyncPolicy::Never,
        compact_min_wal_bytes: u64::MAX,
        ..StoreOptions::default()
    }
}

/// A store whose snapshot holds the base workload and whose WAL holds
/// `n` single-insert deltas (fresh R rows, never conflicting).
fn store_with_wal(n: usize, w: &cqa_bench::Workload) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cqa-bench-recovery-{n}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DurableStore::create(&dir, &w.instance, &w.ics, options()).unwrap();
    let rel = w.instance.schema().rel_id("R").unwrap();
    for k in 0..n {
        let mut delta = InstanceDelta::default();
        delta.added.insert(DatabaseAtom::new(
            rel,
            [s(&format!("w{k}")), s("wy")].into(),
        ));
        store.append_delta(&delta).unwrap();
    }
    store.sync().unwrap();
    dir
}

/// The timed region both series share — exactly `Database::open`'s
/// recovery tail: open the store, apply every recovered delta, warm the
/// caches on the final state.
fn recover(dir: &Path, caches: &CqaCaches) -> usize {
    let (_store, rec) = DurableStore::open(dir, options()).unwrap();
    let mut inst = rec.snapshot_instance;
    for (_, op) in &rec.ops {
        if let WalOp::Delta(delta) = op {
            inst.apply(delta.added.iter().cloned(), delta.removed.iter().cloned());
        }
    }
    warm_caches_in(&inst, &rec.ics, ProgramStyle::Corrected, caches).unwrap();
    inst.len()
}

fn recovery_replay() {
    let mut group = Harness::new("recovery_replay");
    let style = ProgramStyle::Corrected;
    let mut gate_ratio = f64::NAN;
    for &n in &[10usize, 100, 1000] {
        let w = cqa_bench::example19_scaled(CLEAN, 2, 1, 31);
        let dir = store_with_wal(n, &w);

        let replay = group
            .bench_with_setup(
                format!("replay/{n}"),
                || {
                    // Untimed: the warm trajectory a never-crashed
                    // process had — a grounding of the snapshot state.
                    let caches = CqaCaches::new();
                    warm_caches_in(&w.instance, &w.ics, style, &caches).unwrap();
                    caches
                },
                |caches| black_box(recover(&dir, &caches)),
            )
            .median_ns;

        let cold = group
            .bench_with_setup(format!("cold_rebuild/{n}"), CqaCaches::new, |caches| {
                black_box(recover(&dir, &caches))
            })
            .median_ns;

        let ratio = replay as f64 / cold.max(1) as f64;
        println!(
            "  -> warm replay vs cold rebuild at wal={n}: {:.1}x faster ({ratio:.3}x)",
            cold as f64 / replay.max(1) as f64
        );
        if n == 1000 {
            gate_ratio = ratio;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("  replay/cold_rebuild ratio at wal=1000: {gate_ratio:.3} (target: <= 0.5)");
    group.finish();
}

fn main() {
    recovery_replay();
}
