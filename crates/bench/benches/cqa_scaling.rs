//! Bench: consistent query answering — direct (repair intersection) vs
//! program-based (cautious reasoning over Π(D, IC)), on the data and
//! conflict axes. The two must return identical answers; the bench
//! reports who wins where (the paper's Section 5 motivation is that the
//! program route generalises, not that it is faster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqa_constraints::v;
use cqa_core::query::AnswerSemantics;
use cqa_core::{ProgramStyle, RepairConfig};
use std::hint::black_box;

fn query_for(w: &cqa_bench::Workload) -> cqa_core::Query {
    cqa_core::ConjunctiveQuery::builder(w.instance.schema(), "q", ["x"])
        .atom("R", [v("x"), v("y")])
        .finish()
        .unwrap()
        .into()
}

fn cqa_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("cqa_direct_vs_program");
    group.sample_size(10);
    for clean in [10usize, 40, 160] {
        let w = cqa_bench::example19_scaled(clean, 2, 1, 31);
        let q = query_for(&w);
        group.bench_with_input(BenchmarkId::new("direct", clean), &w, |b, w| {
            b.iter(|| {
                black_box(
                    cqa_core::consistent_answers(
                        &w.instance,
                        &w.ics,
                        &q,
                        RepairConfig::default(),
                        AnswerSemantics::IncludeNullAnswers,
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("via_program", clean), &w, |b, w| {
            b.iter(|| {
                black_box(
                    cqa_core::consistent_answers_via_program(
                        &w.instance,
                        &w.ics,
                        &q,
                        ProgramStyle::Corrected,
                        AnswerSemantics::IncludeNullAnswers,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn cqa_conflict_axis(c: &mut Criterion) {
    let mut group = c.benchmark_group("cqa_conflict_axis");
    group.sample_size(10);
    for conflicts in [1usize, 3, 5] {
        let w = cqa_bench::example19_scaled(10, conflicts, 1, 37);
        let q = query_for(&w);
        group.bench_with_input(BenchmarkId::new("direct", conflicts), &w, |b, w| {
            b.iter(|| {
                black_box(
                    cqa_core::consistent_answers(
                        &w.instance,
                        &w.ics,
                        &q,
                        RepairConfig::default(),
                        AnswerSemantics::IncludeNullAnswers,
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("via_program", conflicts), &w, |b, w| {
            b.iter(|| {
                black_box(
                    cqa_core::consistent_answers_via_program(
                        &w.instance,
                        &w.ics,
                        &q,
                        ProgramStyle::Corrected,
                        AnswerSemantics::IncludeNullAnswers,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, cqa_engines, cqa_conflict_axis);
criterion_main!(benches);
