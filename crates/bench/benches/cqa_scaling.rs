//! Bench: consistent query answering — direct (repair intersection) vs
//! program-based (cautious reasoning over Π(D, IC)), on the data and
//! conflict axes; plus the **instance-size axis** for the repair engine
//! itself: clean (non-conflicting) tuples grow while the conflict count
//! stays fixed, so per-node search cost should be conflict-bounded for the
//! incremental worklist engine and instance-bounded for the seed's
//! full-rescan loop. The speedup at the largest size is the headline
//! number of the index/delta PR.

use cqa_bench::harness::Harness;
use cqa_constraints::v;
use cqa_core::query::AnswerSemantics;
use cqa_core::{ProgramStyle, RepairConfig, SearchStrategy};
use std::hint::black_box;

fn query_for(w: &cqa_bench::Workload) -> cqa_core::Query {
    cqa_core::ConjunctiveQuery::builder(w.instance.schema(), "q", ["x"])
        .atom("R", [v("x"), v("y")])
        .finish()
        .unwrap()
        .into()
}

fn cqa_engines() {
    let mut group = Harness::new("cqa_direct_vs_program");
    for clean in [10usize, 40, 160] {
        let w = cqa_bench::example19_scaled(clean, 2, 1, 31);
        let q = query_for(&w);
        group.bench(format!("direct/{clean}"), || {
            black_box(
                cqa_core::consistent_answers(
                    &w.instance,
                    &w.ics,
                    &q,
                    RepairConfig::default(),
                    AnswerSemantics::IncludeNullAnswers,
                )
                .unwrap(),
            )
        });
        group.bench(format!("via_program/{clean}"), || {
            black_box(
                cqa_core::consistent_answers_via_program(
                    &w.instance,
                    &w.ics,
                    &q,
                    ProgramStyle::Corrected,
                    AnswerSemantics::IncludeNullAnswers,
                )
                .unwrap(),
            )
        });
    }
    group.finish();
}

fn cqa_conflict_axis() {
    let mut group = Harness::new("cqa_conflict_axis");
    for conflicts in [1usize, 3, 5] {
        let w = cqa_bench::example19_scaled(10, conflicts, 1, 37);
        let q = query_for(&w);
        group.bench(format!("direct/{conflicts}"), || {
            black_box(
                cqa_core::consistent_answers(
                    &w.instance,
                    &w.ics,
                    &q,
                    RepairConfig::default(),
                    AnswerSemantics::IncludeNullAnswers,
                )
                .unwrap(),
            )
        });
        group.bench(format!("via_program/{conflicts}"), || {
            black_box(
                cqa_core::consistent_answers_via_program(
                    &w.instance,
                    &w.ics,
                    &q,
                    ProgramStyle::Corrected,
                    AnswerSemantics::IncludeNullAnswers,
                )
                .unwrap(),
            )
        });
    }
    group.finish();
}

/// The instance-size axis: conflicts held at 2 key conflicts + 1 dangling
/// FK while clean tuples grow 16×. The incremental engine's node cost is
/// bounded by the conflict neighbourhood; the full-rescan baseline pays
/// O(instance) per node.
fn repair_instance_size_axis() {
    let mut group = Harness::new("repair_instance_size_axis");
    let sizes = [50usize, 200, 800];
    let mut speedup_at_largest = 0.0f64;
    for &clean in &sizes {
        let w = cqa_bench::example19_scaled(clean, 2, 1, 31);
        let incremental = RepairConfig {
            strategy: SearchStrategy::Incremental,
            ..RepairConfig::default()
        };
        let rescan = RepairConfig {
            strategy: SearchStrategy::FullRescan,
            ..RepairConfig::default()
        };
        let a = group
            .bench(format!("incremental/{clean}"), || {
                black_box(cqa_core::repairs_with_config(&w.instance, &w.ics, incremental).unwrap())
            })
            .median_ns;
        let b = group
            .bench(format!("full_rescan/{clean}"), || {
                black_box(cqa_core::repairs_with_config(&w.instance, &w.ics, rescan).unwrap())
            })
            .median_ns;
        let speedup = b as f64 / a.max(1) as f64;
        println!("  -> speedup at clean={clean}: {speedup:.1}x");
        if clean == *sizes.last().unwrap() {
            speedup_at_largest = speedup;
        }
    }
    println!(
        "  incremental vs full-rescan at clean={}: {speedup_at_largest:.1}x (target: >= 5x)",
        sizes.last().unwrap()
    );
    group.finish();
}

fn main() {
    cqa_engines();
    cqa_conflict_axis();
    repair_instance_size_axis();
}
