//! Bench: `|=_N` consistency checking scales polynomially in data size
//! (the tractable side of the paper's complexity picture), across the
//! three main constraint shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn satisfaction_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("satisfaction_nullaware");
    group.sample_size(20);
    for n in [100usize, 400, 1600] {
        // Consistent FD workload: checking is the quadratic self-join.
        let fd = cqa_bench::fd_workload(n, 0, 3);
        group.bench_with_input(BenchmarkId::new("fd_clean", n), &fd, |b, w| {
            b.iter(|| black_box(cqa_constraints::is_consistent(&w.instance, &w.ics)))
        });
        // FK workload with 10% dangling references (finds violations).
        let fk = cqa_bench::fk_workload(n, n / 2, n / 10, 3);
        group.bench_with_input(BenchmarkId::new("fk_dangling", n), &fk, |b, w| {
            b.iter(|| {
                black_box(cqa_constraints::violations(
                    &w.instance,
                    &w.ics,
                    cqa_constraints::SatMode::NullAware,
                ))
            })
        });
    }
    group.finish();
}

fn semantics_overhead(c: &mut Criterion) {
    // NullAware vs Classical: the IsNull escapes and relevant-attribute
    // matching must not cost more than classical checking.
    let w = cqa_bench::fk_workload(800, 400, 40, 5);
    let mut group = c.benchmark_group("satisfaction_mode_overhead");
    group.sample_size(20);
    group.bench_function("null_aware", |b| {
        b.iter(|| {
            black_box(cqa_constraints::violations(
                &w.instance,
                &w.ics,
                cqa_constraints::SatMode::NullAware,
            ))
        })
    });
    group.bench_function("classical", |b| {
        b.iter(|| {
            black_box(cqa_constraints::violations(
                &w.instance,
                &w.ics,
                cqa_constraints::SatMode::Classical,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, satisfaction_scaling, semantics_overhead);
criterion_main!(benches);
