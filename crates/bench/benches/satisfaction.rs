//! Bench: `|=_N` consistency checking scales polynomially in data size
//! (the tractable side of the paper's complexity picture), across the
//! three main constraint shapes — and the index-probed checker vs the
//! naive nested-loop oracle.

use cqa_bench::harness::Harness;
use std::hint::black_box;

fn satisfaction_scaling() {
    let mut group = Harness::new("satisfaction_nullaware");
    for n in [100usize, 400, 1600] {
        // Consistent FD workload: checking is the quadratic self-join.
        let fd = cqa_bench::fd_workload(n, 0, 3);
        group.bench(format!("fd_clean/{n}"), || {
            black_box(cqa_constraints::is_consistent(&fd.instance, &fd.ics))
        });
        // FK workload with 10% dangling references (finds violations).
        let fk = cqa_bench::fk_workload(n, n / 2, n / 10, 3);
        group.bench(format!("fk_dangling/{n}"), || {
            black_box(cqa_constraints::violations(
                &fk.instance,
                &fk.ics,
                cqa_constraints::SatMode::NullAware,
            ))
        });
    }
    group.finish();
}

fn indexed_vs_naive() {
    // The tentpole A/B: index-probed joins vs full nested-loop scans on
    // the same workload (identical output, pinned by the property suite).
    let mut group = Harness::new("satisfaction_indexed_vs_naive");
    for n in [100usize, 400, 1600] {
        let fd = cqa_bench::fd_workload(n, 2, 3);
        group.bench(format!("indexed/{n}"), || {
            black_box(cqa_constraints::violations(
                &fd.instance,
                &fd.ics,
                cqa_constraints::SatMode::NullAware,
            ))
        });
        group.bench(format!("naive/{n}"), || {
            black_box(cqa_constraints::violations_naive(
                &fd.instance,
                &fd.ics,
                cqa_constraints::SatMode::NullAware,
            ))
        });
    }
    group.finish();
}

fn semantics_overhead() {
    // NullAware vs Classical: the IsNull escapes and relevant-attribute
    // matching must not cost more than classical checking.
    let w = cqa_bench::fk_workload(800, 400, 40, 5);
    let mut group = Harness::new("satisfaction_mode_overhead");
    group.bench("null_aware", || {
        black_box(cqa_constraints::violations(
            &w.instance,
            &w.ics,
            cqa_constraints::SatMode::NullAware,
        ))
    });
    group.bench("classical", || {
        black_box(cqa_constraints::violations(
            &w.instance,
            &w.ics,
            cqa_constraints::SatMode::Classical,
        ))
    });
    group.finish();
}

fn main() {
    satisfaction_scaling();
    indexed_vs_naive();
    semantics_overhead();
}
