//! Bench: repair enumeration — polynomial in clean data for a fixed
//! number of conflicts, exponential in the number of interacting
//! conflicts (the Theorem 1/3 shape), and the classic-vs-null baseline
//! of Examples 14/15.

use cqa_bench::harness::Harness;
use cqa_relational::{s, Value};
use std::hint::black_box;

fn data_axis() {
    // Fixed 2 key conflicts + 1 dangling FK; growing clean data.
    let mut group = Harness::new("repairs_data_axis");
    for clean in [20usize, 80, 320] {
        let w = cqa_bench::example19_scaled(clean, 2, 1, 23);
        group.bench(format!("{clean}"), || {
            black_box(cqa_core::repairs(&w.instance, &w.ics).unwrap())
        });
    }
    group.finish();
}

fn conflict_axis() {
    // Fixed clean data; growing conflict count → 2^k repairs.
    let mut group = Harness::new("repairs_conflict_axis");
    for conflicts in [2usize, 4, 6, 8] {
        let w = cqa_bench::fd_workload(10, conflicts, 29);
        group.bench(format!("{conflicts}"), || {
            let reps = cqa_core::repairs(&w.instance, &w.ics).unwrap();
            assert_eq!(reps.len(), 1 << conflicts);
            black_box(reps)
        });
    }
    group.finish();
}

fn classic_vs_null() {
    // Example 14/15 shape: the null semantics is domain-independent, the
    // classic baseline pays per domain value.
    let sc = cqa_relational::Schema::builder()
        .relation("Course", ["ID", "Code"])
        .relation("Student", ["ID", "Name"])
        .finish()
        .unwrap()
        .into_shared();
    let mut d = cqa_relational::Instance::empty(sc.clone());
    d.insert_named("Course", [s("21"), s("C15")]).unwrap();
    d.insert_named("Course", [s("34"), s("C18")]).unwrap();
    d.insert_named("Student", [s("21"), s("Ann")]).unwrap();
    let ric = cqa_constraints::builders::foreign_key(&sc, "Course", &[0], "Student", &[0]).unwrap();
    let ics = cqa_constraints::IcSet::new([cqa_constraints::Constraint::from(ric)]);

    let mut group = Harness::new("classic_vs_null");
    group.bench("null_semantics", || {
        black_box(cqa_core::repairs(&d, &ics).unwrap())
    });
    for k in [4usize, 16, 64] {
        let domain: Vec<Value> = (0..k).map(|j| s(&format!("mu{j}"))).collect();
        group.bench(format!("classic_domain/{k}"), || {
            black_box(cqa_core::classic::repairs_with_domain(&d, &ics, &domain, 1 << 22).unwrap())
        });
    }
    group.finish();
}

fn main() {
    data_axis();
    conflict_axis();
    classic_vs_null();
}
