//! Bench: repair enumeration — polynomial in clean data for a fixed
//! number of conflicts, exponential in the number of interacting
//! conflicts (the Theorem 1/3 shape), and the classic-vs-null baseline
//! of Examples 14/15.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqa_relational::{s, Value};
use std::hint::black_box;

fn data_axis(c: &mut Criterion) {
    // Fixed 2 key conflicts + 1 dangling FK; growing clean data.
    let mut group = c.benchmark_group("repairs_data_axis");
    group.sample_size(10);
    for clean in [20usize, 80, 320] {
        let w = cqa_bench::example19_scaled(clean, 2, 1, 23);
        group.bench_with_input(BenchmarkId::from_parameter(clean), &w, |b, w| {
            b.iter(|| black_box(cqa_core::repairs(&w.instance, &w.ics).unwrap()))
        });
    }
    group.finish();
}

fn conflict_axis(c: &mut Criterion) {
    // Fixed clean data; growing conflict count → 2^k repairs.
    let mut group = c.benchmark_group("repairs_conflict_axis");
    group.sample_size(10);
    for conflicts in [2usize, 4, 6, 8] {
        let w = cqa_bench::fd_workload(10, conflicts, 29);
        group.bench_with_input(BenchmarkId::from_parameter(conflicts), &w, |b, w| {
            b.iter(|| {
                let reps = cqa_core::repairs(&w.instance, &w.ics).unwrap();
                assert_eq!(reps.len(), 1 << conflicts);
                black_box(reps)
            })
        });
    }
    group.finish();
}

fn classic_vs_null(c: &mut Criterion) {
    // Example 14/15 shape: the null semantics is domain-independent, the
    // classic baseline pays per domain value.
    let sc = cqa_relational::Schema::builder()
        .relation("Course", ["ID", "Code"])
        .relation("Student", ["ID", "Name"])
        .finish()
        .unwrap()
        .into_shared();
    let mut d = cqa_relational::Instance::empty(sc.clone());
    d.insert_named("Course", [s("21"), s("C15")]).unwrap();
    d.insert_named("Course", [s("34"), s("C18")]).unwrap();
    d.insert_named("Student", [s("21"), s("Ann")]).unwrap();
    let ric = cqa_constraints::builders::foreign_key(&sc, "Course", &[0], "Student", &[0])
        .unwrap();
    let ics = cqa_constraints::IcSet::new([cqa_constraints::Constraint::from(ric)]);

    let mut group = c.benchmark_group("classic_vs_null");
    group.sample_size(20);
    group.bench_function("null_semantics", |b| {
        b.iter(|| black_box(cqa_core::repairs(&d, &ics).unwrap()))
    });
    for k in [4usize, 16, 64] {
        let domain: Vec<Value> = (0..k).map(|j| s(&format!("mu{j}"))).collect();
        group.bench_with_input(
            BenchmarkId::new("classic_domain", k),
            &domain,
            |b, domain| {
                b.iter(|| {
                    black_box(
                        cqa_core::classic::repairs_with_domain(&d, &ics, domain, 1 << 22)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, data_axis, conflict_axis, classic_vs_null);
criterion_main!(benches);
