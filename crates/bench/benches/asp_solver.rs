//! Bench: the ASP substrate — grounding scales near-linearly in the fact
//! count for fixed rules (the intelligent-grounding claim), and stable-
//! model enumeration (now two-watched-literal driven) is governed by the
//! number of choice points.

use cqa_bench::harness::Harness;
use cqa_core::ProgramStyle;
use std::hint::black_box;

fn grounding() {
    let mut group = Harness::new("grounding_vs_facts");
    for n in [100usize, 400, 1600] {
        let w = cqa_bench::example19_scaled(n, 2, 2, 41);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        group.bench(format!("{n}"), || black_box(cqa_asp::ground(&program)));
    }
    group.finish();
}

fn grounding_chain_depth() {
    // Recursion depth in the possibly-true fixpoint: UIC chains.
    let mut group = Harness::new("grounding_vs_chain_depth");
    for depth in [4usize, 8, 16] {
        let w = cqa_bench::chain_workload(depth, 20);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        group.bench(format!("{depth}"), || black_box(cqa_asp::ground(&program)));
    }
    group.finish();
}

fn stable_model_enumeration() {
    let mut group = Harness::new("stable_models_vs_choices");
    for conflicts in [2usize, 4, 6] {
        let w = cqa_bench::fd_workload(10, conflicts, 43);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        let gp = cqa_asp::ground(&program);
        group.bench(format!("{conflicts}"), || {
            let models = cqa_asp::stable_models(&gp);
            assert_eq!(models.len(), 1 << conflicts);
            black_box(models)
        });
    }
    group.finish();
}

fn main() {
    grounding();
    grounding_chain_depth();
    stable_model_enumeration();
}
