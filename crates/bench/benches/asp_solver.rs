//! Bench: the ASP substrate — grounding scales near-linearly in the fact
//! count for fixed rules (the intelligent-grounding claim), and stable-
//! model enumeration is driven by the number of choice points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqa_core::ProgramStyle;
use std::hint::black_box;

fn grounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("grounding_vs_facts");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let w = cqa_bench::example19_scaled(n, 2, 2, 41);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, p| {
            b.iter(|| black_box(cqa_asp::ground(p)))
        });
    }
    group.finish();
}

fn grounding_chain_depth(c: &mut Criterion) {
    // Recursion depth in the possibly-true fixpoint: UIC chains.
    let mut group = c.benchmark_group("grounding_vs_chain_depth");
    group.sample_size(10);
    for depth in [4usize, 8, 16] {
        let w = cqa_bench::chain_workload(depth, 20);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(depth), &program, |b, p| {
            b.iter(|| black_box(cqa_asp::ground(p)))
        });
    }
    group.finish();
}

fn stable_model_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("stable_models_vs_choices");
    group.sample_size(10);
    for conflicts in [2usize, 4, 6] {
        let w = cqa_bench::fd_workload(10, conflicts, 43);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        let gp = cqa_asp::ground(&program);
        group.bench_with_input(BenchmarkId::from_parameter(conflicts), &gp, |b, gp| {
            b.iter(|| {
                let models = cqa_asp::stable_models(gp);
                assert_eq!(models.len(), 1 << conflicts);
                black_box(models)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, grounding, grounding_chain_depth, stable_model_enumeration);
criterion_main!(benches);
