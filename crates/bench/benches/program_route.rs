//! Bench: the logic-program CQA route on the clean-size axis — the cost
//! profile of the seminaive incremental grounder (PR 4) and the DRed
//! delete–rederive pass (PR 5).
//!
//! Five series per instance size (Example-19 shape, conflicts fixed at
//! 2 key conflicts + 1 dangling FK while clean tuples grow 16×):
//!
//! * `ground_scratch/N` — building a fresh [`GroundingState`] for
//!   Π(D, IC): the possibly-true fixpoint plus full rule instantiation,
//!   O(instance) per call. What every program-route call paid before the
//!   incremental grounder existed.
//! * `reground_delta/N` — applying a **single-fact insertion** to a live
//!   state: seminaive propagation touches only the rules in the delta's
//!   derivation cone, so the cost should be conflict-bounded, not
//!   instance-bounded. The state clone handed to each iteration is set up
//!   *outside* the timed region.
//! * `reground_delete/N` — removing that fact again: the DRed two-pass
//!   (over-delete the cone, rederive survivors), which before PR 5 was a
//!   full rebuild. Symmetric to `reground_delta`, and held to the same
//!   within-run gate: `bench_check` enforces
//!   `reground_delete/800 ≤ 0.25 × ground_scratch/800` (the "delete at
//!   least 4× cheaper than scratch" acceptance bar), alongside the
//!   existing insert-side gate.
//! * `reground_mixed_churn/N` — an alternating insert/delete sequence
//!   (6 ops across both relations) on a live state: the realistic
//!   multi-tenant drift the grounding cache replays.
//!   `reground_mixed_churn/800` is regression-gated against the committed
//!   `BENCH_5.json`.
//! * `solve/N` — stable-model enumeration over the (cached) ground
//!   program with the CDCL learning solver: the downstream consumer whose
//!   input the grounder feeds.
//! * `resolve_delta/N` — the ISSUE-8 closer for the 13× solver gap: a
//!   **warmed** [`SolverState`] (per-partition model cache, learned
//!   clauses, warm heuristics) re-answering after a single-fact delta.
//!   The state clone + delta reground run in untimed setup; the timed
//!   region is [`resolve_on_state`] alone. `bench_check` enforces
//!   `resolve_delta/800 ≤ 0.25 × solve/800` within the same run — the
//!   incremental solver must beat from-scratch enumeration at least 4×,
//!   matching the insert/delete grounder gates.
//! * `solve_threads/{1,4}` — from-scratch [`stable_models_with`] at the
//!   largest size, sequential vs the partition fan-out + portfolio
//!   minimality path, pinning that the thread knob actually buys time on
//!   the shape the paper's Section 5 scales.

use cqa_asp::{
    resolve_on_state, stable_models, stable_models_with, GroundingState, SolveOptions, SolverState,
};
use cqa_bench::harness::Harness;
use cqa_core::ProgramStyle;
use cqa_relational::{s, CancelToken};
use std::hint::black_box;

fn program_route() {
    let mut group = Harness::new("program_route");
    let sizes = [50usize, 200, 800];
    let mut insert_ratio_at_largest = f64::NAN;
    let mut delete_ratio_at_largest = f64::NAN;
    for &clean in &sizes {
        let w = cqa_bench::example19_scaled(clean, 2, 1, 31);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        let scratch = group
            .bench(format!("ground_scratch/{clean}"), || {
                black_box(GroundingState::new(&program).ground_program().rules.len())
            })
            .median_ns;
        let base = GroundingState::new(&program);
        let r_pred = base.program().pred_id("R").unwrap();
        let s_pred = base.program().pred_id("S").unwrap();
        let reground = group
            .bench_with_setup(
                format!("reground_delta/{clean}"),
                || base.clone(),
                |mut state| {
                    state.add_fact_named("R", [s("dx"), s("dy")]).unwrap();
                    black_box(state.ground_program().rules.len())
                },
            )
            .median_ns;
        let reground_del = group
            .bench_with_setup(
                format!("reground_delete/{clean}"),
                || {
                    // Untimed: a live state that already absorbed the fact
                    // the timed region deletes.
                    let mut state = base.clone();
                    state.add_fact_named("R", [s("dx"), s("dy")]).unwrap();
                    state
                },
                |mut state| {
                    state.remove_facts([(r_pred, vec![s("dx"), s("dy")])]);
                    black_box(state.ground_program().rules.len())
                },
            )
            .median_ns;
        group.bench_with_setup(
            format!("reground_mixed_churn/{clean}"),
            || base.clone(),
            |mut state| {
                state.add_fact_named("R", [s("mx0"), s("my0")]).unwrap();
                state.add_fact_named("S", [s("ms0"), s("mx0")]).unwrap();
                state.remove_facts([(s_pred, vec![s("ms0"), s("mx0")])]);
                state.add_fact_named("R", [s("mx1"), s("my1")]).unwrap();
                state.remove_facts([(r_pred, vec![s("mx0"), s("my0")])]);
                state.remove_facts([(r_pred, vec![s("mx1"), s("my1")])]);
                black_box(state.ground_program().rules.len())
            },
        );
        let ins_ratio = reground as f64 / scratch.max(1) as f64;
        let del_ratio = reground_del as f64 / scratch.max(1) as f64;
        println!(
            "  -> reground-after-Δ vs scratch at clean={clean}: insert {:.1}x faster ({ins_ratio:.3}x), delete {:.1}x faster ({del_ratio:.3}x)",
            scratch as f64 / reground.max(1) as f64,
            scratch as f64 / reground_del.max(1) as f64,
        );
        if clean == *sizes.last().unwrap() {
            insert_ratio_at_largest = ins_ratio;
            delete_ratio_at_largest = del_ratio;
        }
        let gp = base.ground_program();
        group.bench(format!("solve/{clean}"), || {
            black_box(stable_models(gp).len())
        });
        // Warm a solver state on the base grounding, then time how fast
        // it re-answers after a one-fact insertion (cache hits on every
        // untouched component, clause reuse + warm heuristics on the
        // touched one). Clone + reground are untimed setup.
        let mut warmed = SolverState::new();
        resolve_on_state(
            &base,
            &mut warmed,
            SolveOptions::default(),
            &CancelToken::never(),
        )
        .unwrap();
        group.bench_with_setup(
            format!("resolve_delta/{clean}"),
            || {
                let mut state = base.clone();
                state.add_fact_named("R", [s("dx"), s("dy")]).unwrap();
                (state, warmed.clone())
            },
            |(state, mut solver)| {
                black_box(
                    resolve_on_state(
                        &state,
                        &mut solver,
                        SolveOptions::default(),
                        &CancelToken::never(),
                    )
                    .unwrap()
                    .len(),
                )
            },
        );
        if clean == *sizes.last().unwrap() {
            for threads in [1usize, 4] {
                group.bench(format!("solve_threads/{threads}"), || {
                    black_box(
                        stable_models_with(gp, SolveOptions { threads }, &CancelToken::never())
                            .unwrap()
                            .len(),
                    )
                });
            }
        }
    }
    println!(
        "  insert reground/scratch ratio at clean={}: {insert_ratio_at_largest:.3} (target: <= 0.25)",
        sizes.last().unwrap()
    );
    println!(
        "  delete reground/scratch ratio at clean={}: {delete_ratio_at_largest:.3} (target: <= 0.25)",
        sizes.last().unwrap()
    );
    group.finish();
}

fn main() {
    program_route();
}
