//! Bench: the logic-program CQA route on the clean-size axis — the cost
//! profile of PR 4's seminaive incremental grounder.
//!
//! Three series per instance size (Example-19 shape, conflicts fixed at
//! 2 key conflicts + 1 dangling FK while clean tuples grow 16×):
//!
//! * `ground_scratch/N` — building a fresh [`GroundingState`] for
//!   Π(D, IC): the possibly-true fixpoint plus full rule instantiation,
//!   O(instance) per call. What every program-route call paid before the
//!   incremental grounder existed.
//! * `reground_delta/N` — applying a **single-fact delta** to a live
//!   state: seminaive propagation touches only the rules in the delta's
//!   derivation cone, so the cost should be conflict-bounded, not
//!   instance-bounded. The state clone handed to each iteration is set up
//!   *outside* the timed region. `reground_delta/800` is regression-gated
//!   against the committed `BENCH_4.json`, and `bench_check` additionally
//!   enforces the host-independent within-run ratio
//!   `reground_delta/800 ≤ 0.25 × ground_scratch/800` (the headline
//!   "≥ 4× faster after a delta" claim).
//! * `solve/N` — stable-model enumeration over the (cached) ground
//!   program with the CDCL learning solver: the downstream consumer whose
//!   input the grounder feeds.

use cqa_asp::{stable_models, GroundingState};
use cqa_bench::harness::Harness;
use cqa_core::ProgramStyle;
use cqa_relational::s;
use std::hint::black_box;

fn program_route() {
    let mut group = Harness::new("program_route");
    let sizes = [50usize, 200, 800];
    let mut ratio_at_largest = f64::NAN;
    for &clean in &sizes {
        let w = cqa_bench::example19_scaled(clean, 2, 1, 31);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        let scratch = group
            .bench(format!("ground_scratch/{clean}"), || {
                black_box(GroundingState::new(&program).ground_program().rules.len())
            })
            .median_ns;
        let base = GroundingState::new(&program);
        let reground = group
            .bench_with_setup(
                format!("reground_delta/{clean}"),
                || base.clone(),
                |mut state| {
                    state.add_fact_named("R", [s("dx"), s("dy")]).unwrap();
                    black_box(state.ground_program().rules.len())
                },
            )
            .median_ns;
        let ratio = reground as f64 / scratch.max(1) as f64;
        println!(
            "  -> reground-after-Δ vs scratch at clean={clean}: {:.1}x faster ({ratio:.3}x the cost)",
            scratch as f64 / reground.max(1) as f64
        );
        if clean == *sizes.last().unwrap() {
            ratio_at_largest = ratio;
        }
        let gp = base.ground_program();
        group.bench(format!("solve/{clean}"), || {
            black_box(stable_models(gp).len())
        });
    }
    println!(
        "  reground/scratch ratio at clean={}: {ratio_at_largest:.3} (target: <= 0.25)",
        sizes.last().unwrap()
    );
    group.finish();
}

fn main() {
    program_route();
}
