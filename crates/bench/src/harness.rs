//! A minimal, dependency-free timing harness for the `[[bench]]` targets.
//!
//! The container this workspace builds in has no network access, so the
//! usual `criterion` dependency is out; this module provides the subset
//! the benches need: auto-calibrated iteration counts, multiple samples,
//! median/mean/min statistics, a readable table on stdout and a
//! machine-readable JSON-lines record.
//!
//! JSON output: set `BENCH_JSON=/path/to/file` and every finished group
//! appends one JSON object per line (`{"group": …, "results": [...]}`),
//! which is how `BENCH_1.json` baselines are recorded.

use std::hint::black_box;
use std::time::Instant;

/// Statistics of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (unique within its group).
    pub name: String,
    /// Median of the per-iteration sample means, nanoseconds.
    pub median_ns: u128,
    /// Mean of the per-iteration sample means, nanoseconds.
    pub mean_ns: u128,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

impl BenchResult {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{:?},\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"samples\":{},\"iters\":{}}}",
            self.name, self.median_ns, self.mean_ns, self.min_ns, self.samples, self.iters
        )
    }
}

/// A named group of benchmarks (the unit reported and recorded together).
pub struct Harness {
    group: String,
    results: Vec<BenchResult>,
}

/// Iteration count and sample count for a payload whose single run took
/// `once_ns`: aim at ~20 ms per sample, at least one iteration, fewer
/// samples for very slow payloads — but never fewer than five. A median
/// of two samples is just the slower of two runs, which once recorded a
/// 2.8x-inflated baseline for `repair_parallel/threads/2` (302 ms median
/// vs 107 ms min) and turned the regression gate into a coin flip; five
/// samples bound a slow entry to ~5 s of wall clock while making the
/// median a real central tendency.
fn calibrate(once_ns: u128) -> (u64, usize) {
    let once_ns = once_ns.max(1);
    const TARGET_SAMPLE_NS: u128 = 20_000_000;
    let iters: u64 = (TARGET_SAMPLE_NS / once_ns).clamp(1, 1_000_000) as u64;
    let samples: usize = if once_ns > 200_000_000 { 5 } else { 7 };
    (iters, samples)
}

/// Format nanoseconds human-readably.
fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Harness {
    /// Start a benchmark group.
    pub fn new(group: impl Into<String>) -> Self {
        let group = group.into();
        println!("\n== {group} ==");
        Harness {
            group,
            results: Vec::new(),
        }
    }

    /// Time `f`, auto-calibrating iterations to roughly 20 ms per sample
    /// (minimum one iteration; slow payloads get fewer samples). The
    /// sample loop times whole iteration batches with one clock read —
    /// the lowest-overhead form, right for self-contained payloads.
    pub fn bench<T>(&mut self, name: impl Into<String>, mut f: impl FnMut() -> T) -> &BenchResult {
        // Calibration run (also warms caches and lazy indexes).
        let t0 = Instant::now();
        black_box(f());
        let (iters, samples) = calibrate(t0.elapsed().as_nanos());

        let mut per_iter: Vec<u128> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() / iters as u128);
        }
        self.record(name.into(), per_iter, samples, iters)
    }

    /// Like [`Harness::bench`], but each iteration first runs `setup`
    /// *outside* the timed region and hands its value to `f` — for
    /// payloads that consume state (e.g. applying a delta to a cloned
    /// grounding) whose preparation cost must not pollute the series.
    /// Pays two clock reads per iteration instead of per batch.
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: impl Into<String>,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) -> &BenchResult {
        // Calibration run (also warms caches).
        let s0 = setup();
        let t0 = Instant::now();
        black_box(f(s0));
        let (iters, samples) = calibrate(t0.elapsed().as_nanos());

        let mut per_iter: Vec<u128> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut timed: u128 = 0;
            for _ in 0..iters {
                let s = setup();
                let t = Instant::now();
                black_box(f(s));
                timed += t.elapsed().as_nanos();
            }
            per_iter.push(timed / iters as u128);
        }
        self.record(name.into(), per_iter, samples, iters)
    }

    /// Shared statistics + reporting tail of the `bench*` methods.
    fn record(
        &mut self,
        name: String,
        mut per_iter: Vec<u128>,
        samples: usize,
        iters: u64,
    ) -> &BenchResult {
        per_iter.sort_unstable();
        let median_ns = per_iter[per_iter.len() / 2];
        let mean_ns = per_iter.iter().sum::<u128>() / per_iter.len() as u128;
        let min_ns = per_iter[0];
        println!(
            "  {name:<44} median {:>12}  (min {}, {samples}x{iters} iters)",
            fmt_ns(median_ns),
            fmt_ns(min_ns),
        );
        self.results.push(BenchResult {
            name,
            median_ns,
            mean_ns,
            min_ns,
            samples,
            iters,
        });
        self.results.last().expect("just pushed")
    }

    /// The recorded result for `name`, if any.
    pub fn result(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }

    /// Finish the group: append a JSON-lines record when `BENCH_JSON` is
    /// set, and return the results.
    pub fn finish(self) -> Vec<BenchResult> {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            use std::io::Write;
            let line = format!(
                "{{\"group\":{:?},\"results\":[{}]}}\n",
                self.group,
                self.results
                    .iter()
                    .map(BenchResult::to_json)
                    .collect::<Vec<_>>()
                    .join(",")
            );
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                Ok(mut file) => {
                    if let Err(e) = file.write_all(line.as_bytes()) {
                        eprintln!("BENCH_JSON write failed: {e}");
                    }
                }
                Err(e) => eprintln!("BENCH_JSON open failed ({path}): {e}"),
            }
        }
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_plausible_stats() {
        let mut h = Harness::new("self_test");
        h.bench("noop_sum", || (0..100u64).sum::<u64>());
        let r = h.result("noop_sum").unwrap();
        assert!(r.iters >= 1);
        assert!(r.min_ns <= r.median_ns);
        let results = h.finish();
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert!(fmt_ns(12_345).contains("µs"));
        assert!(fmt_ns(12_345_678).contains("ms"));
        assert!(fmt_ns(2_345_678_901).ends_with(" s"));
    }
}
