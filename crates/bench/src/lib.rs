//! Workload generators shared by the benches and the `experiments`
//! binary, plus the dependency-free timing harness ([`harness`]).
//!
//! Each generator produces `(Instance, IcSet)` pairs whose inconsistency
//! profile is controlled precisely, so the benches can separate the two
//! complexity axes the paper's theorems talk about: *data size* (the
//! polynomial axis for checking) and *number of interacting violations*
//! (the exponential axis for repair enumeration and Π₂ᵖ-hard CQA).
//!
//! Randomness comes from the workspace's own deterministic
//! [`XorShift`](cqa_relational::testing::XorShift) generator — no external
//! crates, and identical workloads on every run and platform.

pub mod harness;

use cqa_constraints::{builders, v, Constraint, Ic, IcSet};
use cqa_relational::testing::XorShift;
use cqa_relational::{s, Instance, Schema, Value};
use std::sync::Arc;

/// A generated workload.
pub struct Workload {
    /// The database.
    pub instance: Instance,
    /// Its constraints.
    pub ics: IcSet,
}

/// Key/FD workload: relation `R(k, v)` with a key on `k`; `clean` tuples
/// with unique keys plus `violations` key-conflicting pairs.
pub fn fd_workload(clean: usize, violations: usize, seed: u64) -> Workload {
    let schema = Schema::builder()
        .relation("R", ["k", "v"])
        .finish()
        .expect("static schema")
        .into_shared();
    let mut rng = XorShift::new(seed);
    let mut instance = Instance::empty(schema.clone());
    for i in 0..clean {
        instance
            .insert_named(
                "R",
                [
                    s(&format!("k{i}")),
                    s(&format!("v{}", (rng.next_u64() % 65536))),
                ],
            )
            .expect("arity");
    }
    for i in 0..violations {
        let key = format!("dup{i}");
        instance
            .insert_named("R", [s(&key), s("a")])
            .expect("arity");
        instance
            .insert_named("R", [s(&key), s("b")])
            .expect("arity");
    }
    let mut ics = IcSet::default();
    ics.push(builders::functional_dependency(&schema, "R", &[0], 1).expect("static"));
    Workload { instance, ics }
}

/// Foreign-key workload: `child(id, ref)` → `parent(id, payload)` with
/// `dangling` children referencing absent parents, plus nulls sprinkled
/// into the non-relevant payload column.
pub fn fk_workload(children: usize, parents: usize, dangling: usize, seed: u64) -> Workload {
    let schema = Schema::builder()
        .relation("parent", ["id", "payload"])
        .relation("child", ["id", "pref"])
        .finish()
        .expect("static schema")
        .into_shared();
    let mut rng = XorShift::new(seed);
    let mut instance = Instance::empty(schema.clone());
    for i in 0..parents {
        let payload = if rng.chance(1, 5) {
            Value::Null
        } else {
            s(&format!("p{i}"))
        };
        instance
            .insert_named("parent", [s(&format!("id{i}")), payload])
            .expect("arity");
    }
    for i in 0..children {
        let target = rng.below(parents.max(1));
        instance
            .insert_named("child", [s(&format!("c{i}")), s(&format!("id{target}"))])
            .expect("arity");
    }
    for i in 0..dangling {
        instance
            .insert_named(
                "child",
                [s(&format!("dangle{i}")), s(&format!("missing{i}"))],
            )
            .expect("arity");
    }
    let mut ics = IcSet::default();
    ics.push(builders::foreign_key(&schema, "child", &[1], "parent", &[0]).expect("static"));
    Workload { instance, ics }
}

/// The Example 19 shape scaled up: key + FK + NOT NULL with controllable
/// numbers of key conflicts and dangling references.
pub fn example19_scaled(
    clean: usize,
    key_conflicts: usize,
    dangling: usize,
    seed: u64,
) -> Workload {
    let schema = Schema::builder()
        .relation("R", ["x", "y"])
        .relation("S", ["u", "v"])
        .finish()
        .expect("static schema")
        .into_shared();
    let mut rng = XorShift::new(seed);
    let mut instance = Instance::empty(schema.clone());
    for i in 0..clean {
        instance
            .insert_named(
                "R",
                [
                    s(&format!("r{i}")),
                    s(&format!("y{}", (rng.next_u64() % 65536))),
                ],
            )
            .expect("arity");
        instance
            .insert_named("S", [s(&format!("s{i}")), s(&format!("r{i}"))])
            .expect("arity");
    }
    for i in 0..key_conflicts {
        instance
            .insert_named("R", [s(&format!("dup{i}")), s("a")])
            .expect("arity");
        instance
            .insert_named("R", [s(&format!("dup{i}")), s("b")])
            .expect("arity");
    }
    for i in 0..dangling {
        instance
            .insert_named("S", [Value::Null, s(&format!("gone{i}"))])
            .expect("arity");
    }
    let mut ics = IcSet::default();
    ics.push(builders::functional_dependency(&schema, "R", &[0], 1).expect("static"));
    ics.push(builders::foreign_key(&schema, "S", &[1], "R", &[0]).expect("static"));
    ics.push(builders::not_null(&schema, "R", 0).expect("static"));
    Workload { instance, ics }
}

/// Denial-only workload (Corollary 1's class): `P(x) ∧ Q(x) → false` with
/// `overlap` shared values — every repair program is head-cycle-free.
pub fn denial_workload(size: usize, overlap: usize, seed: u64) -> Workload {
    let schema = Schema::builder()
        .relation("P", ["a"])
        .relation("Q", ["b"])
        .finish()
        .expect("static schema")
        .into_shared();
    let mut rng = XorShift::new(seed);
    let mut instance = Instance::empty(schema.clone());
    for i in 0..size {
        instance
            .insert_named("P", [s(&format!("p{i}"))])
            .expect("arity");
        instance
            .insert_named("Q", [s(&format!("q{i}"))])
            .expect("arity");
    }
    for i in 0..overlap {
        let shared = format!("both{}", rng.below(overlap.max(1)).max(i));
        instance.insert_named("P", [s(&shared)]).expect("arity");
        instance.insert_named("Q", [s(&shared)]).expect("arity");
    }
    let denial = Ic::builder(&schema, "den")
        .body_atom("P", [v("x")])
        .body_atom("Q", [v("x")])
        .finish()
        .expect("static");
    Workload {
        instance,
        ics: IcSet::new([Constraint::from(denial)]),
    }
}

/// A universal-IC chain `T₁(x) → T₂(x) → … → Tₙ(x)` with seeds in `T₁`,
/// used for grounding/chase scaling.
pub fn chain_workload(length: usize, seeds: usize) -> Workload {
    let mut builder = Schema::builder();
    for i in 0..length {
        builder = builder.relation(format!("T{i}"), ["x"]);
    }
    let schema = builder.finish().expect("static").into_shared();
    let mut instance = Instance::empty(schema.clone());
    for j in 0..seeds {
        instance
            .insert_named("T0", [s(&format!("v{j}"))])
            .expect("arity");
    }
    let mut ics = IcSet::default();
    for i in 0..length - 1 {
        let ic = Ic::builder(&schema, format!("step{i}"))
            .body_atom(&format!("T{i}"), [v("x")])
            .head_atom(&format!("T{}", i + 1), [v("x")])
            .finish()
            .expect("static");
        ics.push(ic);
    }
    Workload { instance, ics }
}

/// The schema-arc of a workload (convenience).
pub fn schema_of(w: &Workload) -> Arc<Schema> {
    w.instance.schema().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{is_consistent, violations, SatMode};

    #[test]
    fn fd_workload_violation_count() {
        let w = fd_workload(50, 3, 7);
        assert!(!is_consistent(&w.instance, &w.ics));
        // each conflicting pair yields 2 violations (both orientations)
        assert_eq!(violations(&w.instance, &w.ics, SatMode::NullAware).len(), 6);
        let clean = fd_workload(50, 0, 7);
        assert!(is_consistent(&clean.instance, &clean.ics));
    }

    #[test]
    fn fk_workload_dangling_count() {
        let w = fk_workload(30, 10, 4, 7);
        assert_eq!(violations(&w.instance, &w.ics, SatMode::NullAware).len(), 4);
    }

    #[test]
    fn example19_scaled_matches_repair_count() {
        // one key conflict (2 choices) × one dangling FK (2 choices) = 4.
        let w = example19_scaled(5, 1, 1, 7);
        let reps = cqa_core::repairs(&w.instance, &w.ics).unwrap();
        assert_eq!(reps.len(), 4);
    }

    #[test]
    fn denial_workload_is_hcf() {
        let w = denial_workload(5, 2, 7);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, cqa_core::ProgramStyle::Corrected)
                .unwrap();
        let gp = cqa_asp::ground(&program);
        assert!(cqa_asp::is_hcf(&gp));
    }

    #[test]
    fn chain_workload_is_ric_acyclic_and_repairable() {
        let w = chain_workload(4, 2);
        assert!(cqa_constraints::graph::is_ric_acyclic(&w.ics));
        let reps = cqa_core::repairs(&w.instance, &w.ics).unwrap();
        // each seed independently: delete or chase through the chain
        assert_eq!(reps.len(), 4); // 2 seeds × 2 choices… minimised set
    }

    #[test]
    fn generators_are_deterministic() {
        let a = fd_workload(20, 2, 42);
        let b = fd_workload(20, 2, 42);
        assert_eq!(a.instance, b.instance);
    }
}
