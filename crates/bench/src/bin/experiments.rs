//! Regenerate every table, figure and worked example of Bravo & Bertossi
//! (EDBT 2006) — the experiment harness behind `EXPERIMENTS.md`.
//!
//! Usage:
//! ```text
//! cargo run -p cqa-bench --bin experiments            # all experiments
//! cargo run -p cqa-bench --bin experiments -- e04 e18 # a selection
//! ```
//!
//! Output is Markdown: one section per experiment, stating the paper's
//! expected artefact and the measured one.

use cqa_constraints::alt::{semantics_matrix, AltSemantics};
use cqa_constraints::classify::classify;
use cqa_constraints::{
    builders, c, graph, insertion_allowed, is_consistent, satisfies_via_projection, v, CmpOp,
    Constraint, Ic, IcSet,
};
use cqa_core::{classic, ProgramStyle, RepairConfig, RepairSemantics};
use cqa_relational::display::{instance_set, instance_tables};
use cqa_relational::{i, null, s, Instance, Schema, Tuple, Value};
use std::sync::Arc;
use std::time::Instant;

fn inst(sc: &Arc<Schema>, rows: &[(&str, Vec<Value>)]) -> Instance {
    let mut d = Instance::empty(sc.clone());
    for (rel, vals) in rows {
        d.insert_named(rel, Tuple::new(vals.clone())).unwrap();
    }
    d
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "consistent"
    } else {
        "INCONSISTENT"
    }
}

fn check(label: &str, expected: &str, got: impl std::fmt::Display) {
    let got = got.to_string();
    let status = if got == expected {
        "ok"
    } else {
        "** MISMATCH **"
    };
    println!("| {label} | {expected} | {got} | {status} |");
}

fn header(id: &str, title: &str) {
    println!("\n## {id} — {title}\n");
}

fn e01() {
    header("E01", "Example 1: the constraint classes");
    let sc = Schema::builder()
        .relation("P", ["a", "b"])
        .relation("R", ["x", "y", "z"])
        .relation("S", ["s"])
        .relation("R2", ["u", "v"])
        .finish()
        .unwrap();
    let a = Ic::builder(&sc, "a")
        .body_atom("P", [v("x"), v("y")])
        .body_atom("R", [v("y"), v("z"), v("w")])
        .head_atom("S", [v("x")])
        .builtin(v("z"), CmpOp::Neq, c(2))
        .builtin(v("w"), CmpOp::Leq, v("y"))
        .finish()
        .unwrap();
    let b = Ic::builder(&sc, "b")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("R", [v("x"), v("y"), v("z")])
        .finish()
        .unwrap();
    let cc = Ic::builder(&sc, "c")
        .body_atom("S", [v("x")])
        .head_atom("R2", [v("x"), v("y")])
        .head_atom("R", [v("x"), v("y2"), v("z")])
        .finish()
        .unwrap();
    println!("| constraint | paper class | measured | status |");
    println!("|---|---|---|---|");
    check("(a)", "Universal", format!("{:?}", classify(&a)));
    check("(b)", "Referential", format!("{:?}", classify(&b)));
    check("(c)", "GeneralExistential", format!("{:?}", classify(&cc)));
    for ic in [&a, &b, &cc] {
        println!("\n`{}`", ic.display(&sc));
    }
}

fn example2_ics(sc: &Schema) -> IcSet {
    let ic1 = Ic::builder(sc, "ic1")
        .body_atom("S", [v("x")])
        .head_atom("Q", [v("x")])
        .finish()
        .unwrap();
    let ic2 = Ic::builder(sc, "ic2")
        .body_atom("Q", [v("x")])
        .head_atom("R", [v("x")])
        .finish()
        .unwrap();
    let ic3 = Ic::builder(sc, "ic3")
        .body_atom("Q", [v("x")])
        .head_atom("T", [v("x"), v("y")])
        .finish()
        .unwrap();
    IcSet::new([
        Constraint::from(ic1),
        Constraint::from(ic2),
        Constraint::from(ic3),
    ])
}

fn e02() {
    header(
        "E02",
        "Examples 2–3: dependency graphs G(IC), G^C(IC), RIC-acyclicity (the paper's two figures)",
    );
    let sc = Schema::builder()
        .relation("S", ["s"])
        .relation("Q", ["q"])
        .relation("R", ["r"])
        .relation("T", ["x", "y"])
        .finish()
        .unwrap();
    let mut ics = example2_ics(&sc);
    println!("figure 1 — G(IC) in DOT:\n```dot");
    print!("{}", graph::dependency_graph(&ics).to_dot(&sc, &ics));
    println!("```");
    println!("figure 2 — G^C(IC) in DOT:\n```dot");
    print!(
        "{}",
        graph::contracted_dependency_graph(&ics).to_dot(&sc, &ics)
    );
    println!("```");
    println!("| property | paper | measured | status |");
    println!("|---|---|---|---|");
    check(
        "components of G^C",
        "2",
        graph::contracted_dependency_graph(&ics).components.len(),
    );
    check("RIC-acyclic", "true", graph::is_ric_acyclic(&ics));
    let ic4 = Ic::builder(&sc, "ic4")
        .body_atom("T", [v("x"), v("y")])
        .head_atom("R", [v("y")])
        .finish()
        .unwrap();
    ics.push(ic4);
    check(
        "components after adding T(x,y)→R(y)",
        "1",
        graph::contracted_dependency_graph(&ics).components.len(),
    );
    check(
        "RIC-acyclic after adding",
        "false",
        graph::is_ric_acyclic(&ics),
    );
}

fn e03() {
    header(
        "E03",
        "Example 4: the null-semantics comparison matrix on D = {P(a,b,null)}",
    );
    let sc = Schema::builder()
        .relation("P", ["a", "b", "c"])
        .relation("R", ["x", "y"])
        .finish()
        .unwrap();
    let psi1 = Ic::builder(&sc, "psi1: P(x,y,z)->R(y,z)")
        .body_atom("P", [v("x"), v("y"), v("z")])
        .head_atom("R", [v("y"), v("z")])
        .finish()
        .unwrap();
    let psi2 = Ic::builder(&sc, "psi2: P(x,y,z)->R(x,y)")
        .body_atom("P", [v("x"), v("y"), v("z")])
        .head_atom("R", [v("x"), v("y")])
        .finish()
        .unwrap();
    let sc = Arc::new(sc);
    let d = inst(&sc, &[("P", vec![s("a"), s("b"), null()])]);
    println!("paper expectation: ψ1 consistent under BB04 and simple match only;");
    println!("ψ2 consistent under BB04 only.\n");
    println!("| constraint | semantics | verdict |");
    println!("|---|---|---|");
    for row in semantics_matrix(&d, &[&psi1, &psi2]) {
        for (label, ok) in &row.verdicts {
            println!("| {} | {} | {} |", row.constraint, label, verdict(*ok));
        }
    }
}

fn e04() {
    header(
        "E04",
        "Example 5: the Course/Exp foreign key under DB2-style simple match",
    );
    let sc = Schema::builder()
        .relation("Course", ["Code", "ID", "Term"])
        .relation("Exp", ["ID", "Code", "Times"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("Course", vec![s("CS27"), s("21"), s("W04")]),
            ("Course", vec![s("CS18"), s("34"), null()]),
            ("Course", vec![s("CS50"), null(), s("W05")]),
            ("Exp", vec![s("21"), s("CS27"), s("3")]),
            ("Exp", vec![s("34"), s("CS18"), null()]),
            ("Exp", vec![s("45"), s("CS32"), s("2")]),
        ],
    );
    println!("{}", instance_tables(&d));
    let fk = builders::foreign_key(&sc, "Course", &[1, 0], "Exp", &[0, 1]).unwrap();
    let ics = IcSet::new([Constraint::from(fk.clone())]);
    println!("| check | paper (DB2) | measured | status |");
    println!("|---|---|---|---|");
    check("database accepted", "true", is_consistent(&d, &ics));
    check(
        "insert Course(CS41, 18, null)",
        "false",
        insertion_allowed(&d, &ics, "Course", [s("CS41"), s("18"), null()]),
    );
    check(
        "partial match accepts",
        "false",
        cqa_constraints::alt::satisfies_alt(&d, &fk, AltSemantics::PartialMatch),
    );
    check(
        "full match accepts",
        "false",
        cqa_constraints::alt::satisfies_alt(&d, &fk, AltSemantics::FullMatch),
    );
}

fn e05() {
    header("E05", "Example 6: the salary check constraint");
    let sc = Schema::builder()
        .relation("Emp", ["ID", "Name", "Salary"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("Emp", vec![i(32), null(), i(1000)]),
            ("Emp", vec![i(41), s("Paul"), null()]),
        ],
    );
    println!("{}", instance_tables(&d));
    let chk = builders::check_column(&sc, "Emp", 2, CmpOp::Gt, 100).unwrap();
    println!(
        "relevant attributes A(ψ) = {} (paper: {{Emp[3]}})",
        chk.relevant().display(&sc)
    );
    let ics = IcSet::new([Constraint::from(chk)]);
    println!("| check | paper (DB2) | measured | status |");
    println!("|---|---|---|---|");
    check("database accepted", "true", is_consistent(&d, &ics));
    check(
        "insert Emp(32, null, 50)",
        "false",
        insertion_allowed(&d, &ics, "Emp", [i(32), null(), i(50)]),
    );
}

fn e06() {
    header("E06", "Example 7: set vs bag semantics");
    let sc = Schema::builder()
        .relation("P", ["A", "B"])
        .finish()
        .unwrap()
        .into_shared();
    let mut d = Instance::empty(sc.clone());
    let first = d.insert_named("P", [s("a"), s("b")]).unwrap();
    let second = d.insert_named("P", [s("a"), s("b")]).unwrap();
    println!("| check | paper | measured | status |");
    println!("|---|---|---|---|");
    check("first insert new", "true", first);
    check("duplicate collapses (set semantics)", "false", second);
    let fd = builders::functional_dependency(&sc, "P", &[0], 1).unwrap();
    check(
        "FD satisfied by the collapsed row",
        "true",
        is_consistent(&d, &IcSet::new([Constraint::from(fd)])),
    );
    println!("\n(the paper notes SQL's bag semantics would keep both rows yet");
    println!("fail a PRIMARY KEY; first-order FDs cannot express that — we");
    println!("follow the paper and work with sets)");
}

fn e07() {
    header("E07", "Example 8: multi-row age check with a null age");
    let sc = Schema::builder()
        .relation("Person", ["Name", "Dad", "Mom", "Age"])
        .finish()
        .unwrap()
        .into_shared();
    let chk = Ic::builder(&sc, "age")
        .body_atom("Person", [v("x"), v("y"), v("z"), v("w")])
        .body_atom("Person", [v("z"), v("s"), v("t"), v("u")])
        .builtin(v("u"), CmpOp::Gt, v("w"))
        .finish()
        .unwrap();
    let d = inst(
        &sc,
        &[
            ("Person", vec![s("Lee"), s("Rod"), s("Mary"), i(27)]),
            ("Person", vec![s("Rod"), s("Joe"), s("Tess"), i(55)]),
            ("Person", vec![s("Mary"), s("Adam"), s("Ann"), null()]),
        ],
    );
    println!("{}", instance_tables(&d));
    println!("| check | paper | measured | status |");
    println!("|---|---|---|---|");
    check(
        "relevant attributes",
        "{Person[1], Person[3], Person[4]}",
        chk.relevant().display(&sc),
    );
    check(
        "database consistent",
        "true",
        is_consistent(&d, &IcSet::new([Constraint::from(chk)])),
    );
}

fn e08() {
    header(
        "E08",
        "Example 9: a null in referenced attributes is no witness",
    );
    let sc = Schema::builder()
        .relation("Course", ["Code", "Term", "ID"])
        .relation("Employee", ["Term", "ID"])
        .finish()
        .unwrap()
        .into_shared();
    let uic = Ic::builder(&sc, "ref")
        .body_atom("Course", [v("x"), v("y"), v("z")])
        .head_atom("Employee", [v("y"), v("z")])
        .finish()
        .unwrap();
    let d = inst(
        &sc,
        &[
            ("Course", vec![s("CS18"), s("W04"), i(34)]),
            ("Employee", vec![s("W04"), null()]),
        ],
    );
    println!("{}", instance_tables(&d));
    println!("| semantics | paper | measured | status |");
    println!("|---|---|---|---|");
    check(
        "|=_N",
        "INCONSISTENT",
        verdict(is_consistent(
            &d,
            &IcSet::new([Constraint::from(uic.clone())]),
        )),
    );
    check(
        "Levene–Loizou",
        "INCONSISTENT",
        verdict(cqa_constraints::alt::satisfies_alt(
            &d,
            &uic,
            AltSemantics::LeveneLoizou,
        )),
    );
}

fn e09() {
    header(
        "E09",
        "Example 10: relevant attributes and the projections D^A",
    );
    let sc = Schema::builder()
        .relation("P", ["A", "B", "C"])
        .relation("R", ["A", "B"])
        .finish()
        .unwrap();
    let psi = Ic::builder(&sc, "psi")
        .body_atom("P", [v("x"), v("y"), v("z")])
        .head_atom("R", [v("x"), v("y")])
        .finish()
        .unwrap();
    let gamma = Ic::builder(&sc, "gamma")
        .body_atom("P", [v("x"), v("y"), v("z")])
        .body_atom("R", [v("z"), v("w")])
        .head_atom("R", [v("x"), v("vv")])
        .builtin(v("w"), CmpOp::Gt, c(3))
        .finish()
        .unwrap();
    println!("| constraint | paper A(ψ) | measured | status |");
    println!("|---|---|---|---|");
    check("ψ", "{P[1], P[2], R[1], R[2]}", psi.relevant().display(&sc));
    check(
        "γ",
        "{P[1], P[3], R[1], R[2]}",
        gamma.relevant().display(&sc),
    );
    let sc = Arc::new(sc);
    let d = inst(
        &sc,
        &[
            ("P", vec![s("a"), s("b"), s("a")]),
            ("P", vec![s("b"), s("c"), s("a")]),
            ("R", vec![s("a"), i(5)]),
            ("R", vec![s("a"), i(2)]),
        ],
    );
    let p = sc.rel_id("P").unwrap();
    println!("\nP^A(ψ) rows (paper: (a,b), (b,c)):");
    for t in psi.relevant().project_relation(&d, p) {
        println!("  {t}");
    }
    println!("P^A(γ) rows (paper: (a,a), (b,a)):");
    for t in gamma.relevant().project_relation(&d, p) {
        println!("  {t}");
    }
}

fn e10() {
    header("E10", "Examples 11–13: |=_N satisfaction runs");
    // Example 11
    let sc = Schema::builder()
        .relation("P", ["A", "B", "C"])
        .relation("R", ["D", "E"])
        .relation("T", ["F"])
        .finish()
        .unwrap()
        .into_shared();
    let a = Ic::builder(&sc, "a")
        .body_atom("P", [v("x"), v("y"), v("z")])
        .head_atom("R", [v("x"), v("y")])
        .finish()
        .unwrap();
    let b = Ic::builder(&sc, "b")
        .body_atom("T", [v("x")])
        .head_atom("P", [v("x"), v("y"), v("z")])
        .finish()
        .unwrap();
    let ics = IcSet::new([Constraint::from(a.clone()), Constraint::from(b)]);
    let d = inst(
        &sc,
        &[
            ("P", vec![s("a"), s("d"), s("e")]),
            ("P", vec![s("b"), null(), s("g")]),
            ("R", vec![s("a"), s("d")]),
            ("T", vec![s("b")]),
        ],
    );
    println!("| check | paper | measured | status |");
    println!("|---|---|---|---|");
    check("Example 11 D consistent", "true", is_consistent(&d, &ics));
    check(
        "Example 11 + P(f,d,null) consistent",
        "false",
        insertion_allowed(&d, &ics, "P", [s("f"), s("d"), null()]),
    );
    check(
        "Example 11 projection cross-check",
        "true",
        satisfies_via_projection(&d, &a),
    );
    // Example 13
    let sc13 = Schema::builder()
        .relation("P", ["A", "B"])
        .relation("Q", ["X", "Y", "Z"])
        .finish()
        .unwrap()
        .into_shared();
    let psi13 = Ic::builder(&sc13, "psi")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("Q", [v("x"), v("z"), v("z")])
        .finish()
        .unwrap();
    let d13 = inst(
        &sc13,
        &[
            ("P", vec![s("a"), s("b")]),
            ("P", vec![null(), s("c")]),
            ("Q", vec![s("a"), null(), null()]),
        ],
    );
    check(
        "Example 13 null witness accepted",
        "true",
        is_consistent(&d13, &IcSet::new([Constraint::from(psi13)])),
    );
}

fn example14_setup() -> (Arc<Schema>, Instance, IcSet) {
    let sc = Schema::builder()
        .relation("Course", ["ID", "Code"])
        .relation("Student", ["ID", "Name"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("Course", vec![s("21"), s("C15")]),
            ("Course", vec![s("34"), s("C18")]),
            ("Student", vec![s("21"), s("Ann")]),
            ("Student", vec![s("45"), s("Paul")]),
        ],
    );
    let ric = builders::foreign_key(&sc, "Course", &[0], "Student", &[0]).unwrap();
    (sc, d, IcSet::new([Constraint::from(ric)]))
}

fn e11() {
    header("E11", "Examples 14–15: classic repairs vs null-based repairs (figure: repair count vs domain size)");
    let (_, d, ics) = example14_setup();
    println!("| |domain| | classic repairs (paper: |domain|+1, → ∞) | null repairs (paper: 2) |");
    println!("|---|---|---|");
    for k in [1usize, 2, 4, 8, 16] {
        let domain: Vec<Value> = (0..k).map(|j| s(&format!("mu{j}"))).collect();
        let classic_count = classic::repairs_with_domain(&d, &ics, &domain, 1 << 22)
            .unwrap()
            .len();
        let null_count = cqa_core::repairs(&d, &ics).unwrap().len();
        println!("| {k} | {classic_count} | {null_count} |");
    }
    println!("\nthe two null-based repairs (paper's Example 15):");
    for r in cqa_core::repairs(&d, &ics).unwrap() {
        println!("  {}", instance_set(&r));
    }
}

fn e12() {
    header("E12", "Example 16: repairs and ≤_D incomparability");
    let sc = Schema::builder()
        .relation("Q", ["x", "y"])
        .relation("P", ["a", "b"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[("Q", vec![s("a"), s("b")]), ("P", vec![s("a"), s("c")])],
    );
    let psi1 = Ic::builder(&sc, "psi1")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("Q", [v("x"), v("z")])
        .finish()
        .unwrap();
    let psi2 = Ic::builder(&sc, "psi2")
        .body_atom("Q", [v("x"), v("y")])
        .builtin(v("y"), CmpOp::Neq, c(s("b")))
        .finish()
        .unwrap();
    let ics = IcSet::new([Constraint::from(psi1), Constraint::from(psi2)]);
    let reps = cqa_core::repairs(&d, &ics).unwrap();
    println!("paper: D1 = {{}}, D2 = {{P(a,c), Q(a,null)}}\nmeasured:");
    for r in &reps {
        println!("  {}", instance_set(r));
    }
    println!(
        "pairwise ≤_D-incomparable: {}",
        !cqa_core::leq_d(&d, &reps[0], &reps[1]).unwrap()
            && !cqa_core::leq_d(&d, &reps[1], &reps[0]).unwrap()
    );
}

fn e13() {
    header("E13", "Example 17: R(b, null) dominates R(b, d)");
    let sc = Schema::builder()
        .relation("P", ["a", "b"])
        .relation("R", ["x", "y"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("P", vec![s("a"), null()]),
            ("P", vec![s("b"), s("c")]),
            ("R", vec![s("a"), s("b")]),
        ],
    );
    let ric = Ic::builder(&sc, "ric")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("R", [v("x"), v("z")])
        .finish()
        .unwrap();
    let ics = IcSet::new([Constraint::from(ric)]);
    println!("paper: two repairs, D1 with R(b,null), D2 deleting P(b,c)\nmeasured:");
    for r in cqa_core::repairs(&d, &ics).unwrap() {
        println!("  {}", instance_set(&r));
    }
    let d3 = d.with_atom(&cqa_relational::DatabaseAtom::new(
        sc.rel_id("R").unwrap(),
        Tuple::new(vec![s("b"), s("d")]),
    ));
    println!(
        "D3 (with R(b,d)) consistent but not a repair: consistent={}, dominated={}",
        is_consistent(&d3, &ics),
        cqa_core::lt_d(
            &d,
            &d.with_atom(&cqa_relational::DatabaseAtom::new(
                sc.rel_id("R").unwrap(),
                Tuple::new(vec![s("b"), null()]),
            )),
            &d3
        )
        .unwrap()
    );
}

fn e14() {
    header("E14", "Example 18: the RIC-cyclic set and its four repairs");
    let sc = Schema::builder()
        .relation("P", ["a", "b"])
        .relation("T", ["t"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("P", vec![s("a"), s("b")]),
            ("P", vec![null(), s("a")]),
            ("T", vec![s("c")]),
        ],
    );
    let uic = Ic::builder(&sc, "uic")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("T", [v("x")])
        .finish()
        .unwrap();
    let ric = Ic::builder(&sc, "ric")
        .body_atom("T", [v("x")])
        .head_atom("P", [v("y"), v("x")])
        .finish()
        .unwrap();
    let ics = IcSet::new([Constraint::from(uic), Constraint::from(ric)]);
    println!(
        "RIC-acyclic: {} (paper: cyclic)",
        graph::is_ric_acyclic(&ics)
    );
    println!("paper: exactly 4 repairs (its table on p.13)\nmeasured:");
    let reps = cqa_core::repairs(&d, &ics).unwrap();
    for r in &reps {
        let delta = cqa_relational::delta(&d, r).unwrap();
        println!("  {} (Δ size {})", instance_set(r), delta.len());
    }
    println!(
        "count: {} — decidable despite the cycle (Theorem 2)",
        reps.len()
    );
}

fn example19_setup() -> (Arc<Schema>, Instance, IcSet) {
    let sc = Schema::builder()
        .relation("R", ["X", "Y"])
        .relation("S", ["U", "V"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("R", vec![s("a"), s("b")]),
            ("R", vec![s("a"), s("c")]),
            ("S", vec![s("e"), s("f")]),
            ("S", vec![null(), s("a")]),
        ],
    );
    let mut ics = IcSet::default();
    ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
    ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
    ics.push(builders::not_null(&sc, "R", 0).unwrap());
    (sc, d, ics)
}

fn e15() {
    header(
        "E15",
        "Example 19: key + foreign key + NOT NULL — four repairs",
    );
    let (_, d, ics) = example19_setup();
    println!("paper: D1..D4 (p.13)\nmeasured:");
    for r in cqa_core::repairs(&d, &ics).unwrap() {
        println!("  {}", instance_set(&r));
    }
}

fn e16() {
    header("E16", "Example 20: conflicting NOT NULL — Rep vs Rep_d");
    let sc = Schema::builder()
        .relation("P", ["a"])
        .relation("Q", ["x", "y"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[
            ("P", vec![s("a")]),
            ("P", vec![s("b")]),
            ("Q", vec![s("b"), s("c")]),
        ],
    );
    let ric = Ic::builder(&sc, "ric")
        .body_atom("P", [v("x")])
        .head_atom("Q", [v("x"), v("y")])
        .finish()
        .unwrap();
    let mut ics = IcSet::default();
    ics.push(ric);
    ics.push(builders::not_null(&sc, "Q", 1).unwrap());
    println!(
        "conflicting pairs detected: {:?} (paper: the RIC/NNC clash)",
        ics.conflicting_pairs()
    );
    println!(
        "null-based semantics refuses: {}",
        cqa_core::repairs(&d, &ics).is_err()
    );
    let repd = cqa_core::repairs_with_config(
        &d,
        &ics,
        RepairConfig {
            semantics: RepairSemantics::DeletionPreferring,
            ..RepairConfig::default()
        },
    )
    .unwrap();
    println!("Rep_d repairs (paper: the deletion repair {{P(b), Q(b,c)}}):");
    for r in &repd {
        println!("  {}", instance_set(r));
    }
    println!("classic repairs over explicit domains (paper: one per µ):");
    println!("| |domain| | classic repairs |");
    println!("|---|---|");
    for k in [1usize, 3, 6] {
        let domain: Vec<Value> = (0..k).map(|j| s(&format!("mu{j}"))).collect();
        let n = classic::repairs_with_domain(&d, &ics, &domain, 1 << 22)
            .unwrap()
            .len();
        println!("| {k} | {n} |");
    }
}

fn e17() {
    header("E17", "Examples 21–22: the repair programs, rule by rule");
    let (_, d, ics) = example19_setup();
    let program = cqa_core::repair_program(&d, &ics, ProgramStyle::PaperExact).unwrap();
    println!("Π(D, IC) for Example 19/21 (paper-exact style):\n```prolog");
    print!("{program}");
    println!("```");
    println!("note: our rule-2 instances carry IsNull-escape guards for *all*");
    println!("relevant antecedent variables (y != null, z != null), where the");
    println!("paper's Example 21 prints only x != null — see DESIGN.md.");

    // Example 22
    let sc = Schema::builder()
        .relation("P", ["A", "B"])
        .relation("R", ["X"])
        .relation("S", ["Y"])
        .finish()
        .unwrap()
        .into_shared();
    let d22 = inst(
        &sc,
        &[("P", vec![s("a"), s("b")]), ("P", vec![s("c"), null()])],
    );
    let uic = Ic::builder(&sc, "uic")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("R", [v("x")])
        .head_atom("S", [v("y")])
        .finish()
        .unwrap();
    let mut ics22 = IcSet::default();
    ics22.push(uic);
    ics22.push(builders::not_null(&sc, "P", 1).unwrap());
    let p22 = cqa_core::repair_program(&d22, &ics22, ProgramStyle::PaperExact).unwrap();
    let partitions = p22
        .to_string()
        .lines()
        .filter(|l| l.contains("P_fa(x") && l.contains("R_ta("))
        .count();
    println!("\nExample 22 Q'/Q'' partition rules: {partitions} (paper: 4)");
}

fn e18() {
    header("E18", "Example 23: stable models M1–M4 and Theorem 4");
    let (sc, d, ics) = example19_setup();
    let program = cqa_core::repair_program(&d, &ics, ProgramStyle::PaperExact).unwrap();
    let gp = cqa_asp::ground(&program);
    let models = cqa_asp::stable_models(&gp);
    println!(
        "{} ground atoms, {} ground rules, {} stable models (paper: 4)",
        gp.atom_count(),
        gp.rules.len(),
        models.len()
    );
    for (idx, m) in models.iter().enumerate() {
        let dm = cqa_core::program::extract_instance(&sc, &program, &gp, m).unwrap();
        println!("  M{} → D_M = {}", idx + 1, instance_set(&dm));
    }
    let via_program = cqa_core::repairs_via_program(&d, &ics, ProgramStyle::PaperExact).unwrap();
    let via_engine = cqa_core::repairs(&d, &ics).unwrap();
    println!(
        "Theorem 4 (models ↔ repairs): {}",
        if via_program == via_engine {
            "holds"
        } else {
            "** FAILS **"
        }
    );
}

fn e18b() {
    header(
        "E18b",
        "the Definition-9 erratum: all-null pre-existing witnesses",
    );
    let sc = Schema::builder()
        .relation("S", ["U", "V"])
        .relation("R", ["X", "Y"])
        .finish()
        .unwrap()
        .into_shared();
    let d = inst(
        &sc,
        &[("S", vec![s("u"), s("a")]), ("R", vec![s("a"), null()])],
    );
    let mut ics = IcSet::default();
    ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
    println!(
        "D = {} with S(u,v) → ∃y R(v,y); |=_N-consistent: {} (Definition 4 counts R(a,null))",
        instance_set(&d),
        is_consistent(&d, &ics)
    );
    for style in [ProgramStyle::PaperExact, ProgramStyle::Corrected] {
        let reps = cqa_core::repairs_via_program(&d, &ics, style).unwrap();
        println!("{style:?}: {} model-instances:", reps.len());
        for r in &reps {
            println!("  {}", instance_set(r));
        }
    }
    println!("PaperExact yields a spurious deletion model; Corrected restores");
    println!("the one-to-one correspondence (see DESIGN.md for the analysis).");
}

fn e19() {
    header(
        "E19",
        "Example 24 + Theorem 5: bilateral predicates, HCF, shift",
    );
    let sc = Schema::builder()
        .relation("T", ["t"])
        .relation("R", ["a", "b"])
        .relation("S", ["u", "v"])
        .finish()
        .unwrap()
        .into_shared();
    let ric = Ic::builder(&sc, "ric")
        .body_atom("T", [v("x")])
        .head_atom("R", [v("x"), v("y")])
        .finish()
        .unwrap();
    let uic = Ic::builder(&sc, "uic")
        .body_atom("S", [v("x"), v("y")])
        .head_atom("T", [v("x")])
        .finish()
        .unwrap();
    let ics = IcSet::new([Constraint::from(ric), Constraint::from(uic)]);
    println!("| check | paper | measured | status |");
    println!("|---|---|---|---|");
    check(
        "bilateral predicates",
        "1",
        graph::bilateral_predicates(&ics).len(),
    );
    check(
        "Theorem 5 condition",
        "true",
        graph::theorem5_hcf_condition(&ics),
    );
    let d = inst(&sc, &[("S", vec![s("1"), s("2")]), ("T", vec![s("9")])]);
    let program = cqa_core::repair_program(&d, &ics, ProgramStyle::Corrected).unwrap();
    let gp = cqa_asp::ground(&program);
    check("ground program HCF", "true", cqa_asp::is_hcf(&gp));
    let shifted = cqa_asp::shift(&gp).unwrap();
    check(
        "shift preserves stable models",
        "true",
        cqa_asp::stable_models(&gp) == cqa_asp::stable_models(&shifted),
    );
    let sym_sc = Schema::builder()
        .relation("P", ["a", "b"])
        .finish()
        .unwrap();
    let sym = Ic::builder(&sym_sc, "sym")
        .body_atom("P", [v("x"), v("y")])
        .head_atom("P", [v("y"), v("x")])
        .finish()
        .unwrap();
    check(
        "P(x,y)→P(y,x) fails Theorem 5",
        "false",
        graph::theorem5_hcf_condition(&IcSet::new([Constraint::from(sym)])),
    );
}

fn e20() {
    header(
        "E20",
        "Theorem 1 shape: repair checking vs instance size and conflicts",
    );
    println!("repair-check = consistency + ≤_D-minimality over the Prop.-1 space;");
    println!("polynomial in clean data, exponential in the candidate universe.\n");
    println!("| clean tuples | key conflicts | universe atoms | check time |");
    println!("|---|---|---|---|");
    for (clean, conflicts) in [(1usize, 1usize), (2, 1), (3, 1), (1, 2)] {
        let w = cqa_bench::fd_workload(clean, conflicts, 11);
        let reps = cqa_core::repairs(&w.instance, &w.ics).unwrap();
        let universe = cqa_core::bruteforce::candidate_universe(&w.instance, &w.ics);
        if universe.len() > 18 {
            println!(
                "| {clean} | {conflicts} | {} | (skipped: universe too large) |",
                universe.len()
            );
            continue;
        }
        let start = Instant::now();
        let ok = cqa_core::is_repair(&w.instance, &reps[0], &w.ics).unwrap();
        let elapsed = start.elapsed();
        assert!(ok);
        println!(
            "| {clean} | {conflicts} | {} | {elapsed:?} |",
            universe.len()
        );
    }
}

fn e21() {
    header(
        "E21",
        "Theorems 2–3 shape: CQA scaling (data axis vs conflict axis)",
    );
    use cqa_core::query::AnswerSemantics;
    println!("| clean tuples | conflicts | repairs | CQA direct | CQA via program |");
    println!("|---|---|---|---|---|");
    for (clean, conflicts) in [(10usize, 1usize), (20, 1), (40, 1), (10, 3), (10, 5)] {
        let w = cqa_bench::example19_scaled(clean, conflicts, 1, 13);
        let sc = w.instance.schema().clone();
        let q: cqa_core::Query = cqa_core::ConjunctiveQuery::builder(&sc, "q", ["x"])
            .atom("R", [v("x"), v("y")])
            .finish()
            .unwrap()
            .into();
        let t0 = Instant::now();
        let direct = cqa_core::consistent_answers(
            &w.instance,
            &w.ics,
            &q,
            RepairConfig::default(),
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        let t_direct = t0.elapsed();
        let t1 = Instant::now();
        let via = cqa_core::consistent_answers_via_program(
            &w.instance,
            &w.ics,
            &q,
            ProgramStyle::Corrected,
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        let t_program = t1.elapsed();
        assert_eq!(direct, via);
        let n_reps = cqa_core::repairs(&w.instance, &w.ics).unwrap().len();
        println!("| {clean} | {conflicts} | {n_reps} | {t_direct:?} | {t_program:?} |");
    }
    println!("\n(the conflict axis drives repair count exponentially — the Π₂ᵖ");
    println!("hardness axis — while the data axis stays polynomial)");
}

fn e22() {
    header(
        "E22",
        "Corollary 1 shape: HCF / shifted-normal vs disjunctive solving",
    );
    println!("| overlap (denial violations) | atoms | disjunctive solve | shifted-normal solve | models |");
    println!("|---|---|---|---|---|");
    for overlap in [2usize, 4, 6, 8] {
        let w = cqa_bench::denial_workload(20, overlap, 17);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        let gp = cqa_asp::ground(&program);
        assert!(cqa_asp::is_hcf(&gp));
        let t0 = Instant::now();
        let disj = cqa_asp::stable_models(&gp);
        let t_disj = t0.elapsed();
        let shifted = cqa_asp::shift(&gp).unwrap();
        let t1 = Instant::now();
        let norm = cqa_asp::stable_models(&shifted);
        let t_norm = t1.elapsed();
        assert_eq!(disj, norm);
        println!(
            "| {overlap} | {} | {t_disj:?} | {t_norm:?} | {} |",
            gp.atom_count(),
            disj.len()
        );
    }
    println!("\n(the shifted program uses the polynomial least-model stability");
    println!("fast path — the coNP-vs-Π₂ᵖ drop of Corollary 1 in the small)");
}

fn e23() {
    header("E23", "Proposition 1: active-domain containment sweep");
    let mut checked = 0;
    for seed in 0..20u64 {
        let w = cqa_bench::example19_scaled(3, 1, 1, seed);
        let reps = cqa_core::repairs(&w.instance, &w.ics).unwrap();
        let mut allowed = w.instance.active_domain();
        allowed.extend(w.ics.constants());
        allowed.insert(Value::Null);
        for r in &reps {
            assert!(!r.active_domain().iter().any(|val| !allowed.contains(val)));
            checked += 1;
        }
    }
    println!("{checked} repairs over 20 random databases: every active domain");
    println!("within adom(D) ∪ const(IC) ∪ {{null}} — Proposition 1 holds.");
}

fn e24() {
    header(
        "E24",
        "grounding scaling (the Section-5 substrate; figure: atoms/rules vs |D|)",
    );
    println!("| facts | ground atoms | ground rules | grounding time |");
    println!("|---|---|---|---|");
    for n in [50usize, 100, 200, 400] {
        let w = cqa_bench::example19_scaled(n, 2, 2, 19);
        let program =
            cqa_core::repair_program(&w.instance, &w.ics, ProgramStyle::Corrected).unwrap();
        let t0 = Instant::now();
        let gp = cqa_asp::ground(&program);
        let elapsed = t0.elapsed();
        println!(
            "| {} | {} | {} | {elapsed:?} |",
            w.instance.len(),
            gp.atom_count(),
            gp.rules.len()
        );
    }
}

fn e25() {
    header(
        "E25",
        "ablation: relevance-pruned repair programs ([12] direction)",
    );
    println!(
        "| relations (constrained+audit) | full program rules | pruned rules | same repairs |"
    );
    println!("|---|---|---|---|");
    for extra in [1usize, 4, 8] {
        let mut builder = Schema::builder()
            .relation("R", ["X", "Y"])
            .relation("S", ["U", "V"]);
        for j in 0..extra {
            builder = builder.relation(format!("Audit{j}"), ["who", "what"]);
        }
        let sc = builder.finish().unwrap().into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("R", [s("a"), s("b")]).unwrap();
        d.insert_named("R", [s("a"), s("c")]).unwrap();
        d.insert_named("S", [null(), s("a")]).unwrap();
        for j in 0..extra {
            d.insert_named(&format!("Audit{j}"), [s("w"), s("x")])
                .unwrap();
        }
        let mut ics = IcSet::default();
        ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
        ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
        let full = cqa_core::repair_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        let pruned =
            cqa_core::repair_program_with(&d, &ics, ProgramStyle::Corrected, true).unwrap();
        let same = cqa_core::repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap()
            == cqa_core::repairs_via_program_with(&d, &ics, ProgramStyle::Corrected, true).unwrap();
        println!(
            "| 2+{extra} | {} | {} | {} |",
            full.rules().len(),
            pruned.rules().len(),
            same
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all: Vec<(&str, fn())> = vec![
        ("e01", e01 as fn()),
        ("e02", e02),
        ("e03", e03),
        ("e04", e04),
        ("e05", e05),
        ("e06", e06),
        ("e07", e07),
        ("e08", e08),
        ("e09", e09),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
        ("e13", e13),
        ("e14", e14),
        ("e15", e15),
        ("e16", e16),
        ("e17", e17),
        ("e18", e18),
        ("e18b", e18b),
        ("e19", e19),
        ("e20", e20),
        ("e21", e21),
        ("e22", e22),
        ("e23", e23),
        ("e24", e24),
        ("e25", e25),
    ];
    println!("# nullcqa experiment harness — paper artefact reproduction");
    println!("\n(paper: Bravo & Bertossi, EDBT 2006, arXiv cs/0604076)");
    let selected: Vec<&(&str, fn())> = if args.is_empty() || args.iter().any(|a| a == "all") {
        all.iter().collect()
    } else {
        all.iter()
            .filter(|(id, _)| args.iter().any(|a| a.eq_ignore_ascii_case(id)))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no experiment matched; known ids:");
        for (id, _) in &all {
            eprintln!("  {id}");
        }
        std::process::exit(1);
    }
    for (_, run) in selected {
        run();
    }
}
