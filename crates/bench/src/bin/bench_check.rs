//! Bench regression gate: compare a freshly recorded `BENCH_JSON` file
//! against the committed baseline and fail (exit 1) if a guarded series
//! regressed beyond tolerance.
//!
//! Usage:
//!
//! ```text
//! bench_check <current.json> <baseline.json> [tolerance]
//! ```
//!
//! Both files are the JSON-lines format written by
//! [`cqa_bench::harness::Harness::finish`]. The guarded series are the
//! headline numbers of the index/interning PRs
//! (`repair_instance_size_axis` / `incremental/800`) and of the parallel
//! search PR (`repair_parallel` / `threads/4` at clean=800). `tolerance`
//! is the allowed slowdown factor (default 1.25 — “fail if >25% slower
//! than the committed baseline”). When both `repair_parallel` thread
//! endpoints are present in the *current* file, the threads=4-vs-1
//! speedup is reported alongside the gate for CI-log visibility (it is
//! informational: wall-clock scaling is a property of the host's core
//! count, not of the code under test). The parser is a purpose-built
//! extractor for the harness's own fixed output shape, not a general JSON
//! reader — this workspace is dependency-free by construction.

use std::process::ExitCode;

/// Series guarded against regression: (group, name).
const GUARDED: &[(&str, &str)] = &[
    ("repair_instance_size_axis", "incremental/800"),
    ("repair_parallel", "threads/4"),
    ("program_route", "reground_delta/800"),
    ("program_route", "reground_mixed_churn/800"),
    ("program_route", "resolve_delta/800"),
    ("recovery_replay", "replay/1000"),
    ("fast_path", "fast_path/80000"),
];

/// Entries whose *baseline* median exceeds this are gated on `min_ns`
/// instead of `median_ns`. Slow payloads get few samples, so their median
/// is a high-variance order statistic (the committed `BENCH_6.json`
/// recorded `repair_parallel/threads/2` at median 302 ms vs min 107 ms
/// from a 2-sample run); the minimum is the stablest point estimate a
/// small sample offers and is what criterion-style harnesses fall back
/// to for exactly this reason.
const SLOW_ENTRY_NS: u128 = 200_000_000;

/// Within-run cap on `threads/4 ÷ threads/1`. Host-independent, so it can
/// be a hard gate — but it must hold on a *single-core* host too, where
/// the pool degrades to sequential plus bounded scheduler overhead
/// (measured ~1.15x); 1.5x leaves noise headroom there while still
/// catching the real failure modes (lost stealing, lock contention,
/// busy-spin), which overshoot it immediately.
const PARALLEL_RATIO_TOLERANCE: f64 = 1.5;

/// Within-run cap on `reground_delta/800 ÷ ground_scratch/800` and on
/// `reground_delete/800 ÷ ground_scratch/800` in the `program_route`
/// group. Host-independent (the series run on the same machine in the
/// same process), so it is a hard gate: the incremental grounder must
/// make regrounding after a single-fact insertion *or deletion* at
/// clean=800 at least 4× cheaper than grounding from scratch — the PR-4
/// (insert) and PR-5 (DRed delete) acceptance criteria. Measured ~0.04x
/// on the recording host for both directions; 0.25 leaves wide margin
/// while still catching a grounder that silently falls back to full
/// rematerialisation.
const REGROUND_RATIO_TOLERANCE: f64 = 0.25;

/// Within-run cap on `resolve_delta/800 ÷ solve/800` in the
/// `program_route` group. Host-independent like the reground gates: a
/// warm `SolverState` resolving after a one-fact reground reuses every
/// unchanged partition's cached model set and only re-enumerates the
/// component the delta touched, so it must come in at least 4× under a
/// scratch enumeration of the same ground program.
const RESOLVE_RATIO_TOLERANCE: f64 = 0.25;

/// Within-run cap on `fast_path/800 ÷ enumeration/800` in the
/// `fast_path` group. Host-independent like the other ratio gates: on a
/// key-FD workload with 8 conflicting pairs (2⁸ = 256 repairs), the
/// planner's FO-rewrite route answers by index probes over `D` while the
/// enumeration baseline materialises all 256 repairs and intersects their
/// answers, so the fast path must come in at least 20× under enumeration
/// at clean=800. Measured ~0.002x on the recording host; a planner that
/// silently falls back to enumeration converges on 1x and trips this
/// immediately.
const FAST_PATH_RATIO_TOLERANCE: f64 = 0.05;

/// Within-run cap on `append_group/8 ÷ append_solo/8` in the
/// `storage_write` group — the ISSUE-10 acceptance gate "grouped ≥ 3×
/// per-append-fsync at batch width 8 under `Always`". Host-independent:
/// both series run the identical 8-writer append burst on the same
/// filesystem in the same process; only the fsync schedule differs
/// (one per append vs one leader fsync per batch). Absolute
/// `storage_write` numbers are *not* in [`GUARDED`] on purpose — they
/// are fsync-bound, and fsync latency varies orders of magnitude
/// across hosts, which would turn a committed-baseline comparison into
/// hardware lottery. Measured ~0.19x on the recording host.
const GROUP_COMMIT_RATIO_TOLERANCE: f64 = 1.0 / 3.0;

/// Within-run cap on `compact_incremental/20 ÷ compact_full/20` in the
/// `storage_write` group: compacting with 2 of 20 relations dirty must
/// rewrite only the dirty segments (plus the manifest) and re-reference
/// the other 18 — O(changed relations). A compactor that silently
/// rewrites everything converges on the full series and trips this.
/// Measured ~0.17x on the recording host.
const INCREMENTAL_COMPACT_RATIO_TOLERANCE: f64 = 0.3;

/// Within-run cap on `replay/1000 ÷ cold_rebuild/1000` in the
/// `recovery_replay` group. Host-independent for the same reason as the
/// reground gates. Crash recovery replays the WAL through the
/// incremental grounding engine (warm snapshot grounding evolved by the
/// net drift); if it silently falls back to grounding the recovered
/// state from scratch, the two series converge and the ratio jumps to
/// ~1. Measured ~0.41 at a 1000-delta WAL over a ~4000-atom snapshot on
/// the recording host.
const RECOVERY_RATIO_TOLERANCE: f64 = 0.5;

/// Median (ns) of `name` within `group` in a harness JSON-lines dump.
fn median_ns(json: &str, group: &str, name: &str) -> Option<u128> {
    stat_ns(json, group, name, "median_ns")
}

/// Fastest sample (ns) of `name` within `group`.
fn min_ns(json: &str, group: &str, name: &str) -> Option<u128> {
    stat_ns(json, group, name, "min_ns")
}

/// Numeric field `field` of `name` within `group` in a harness JSON-lines
/// dump. Field lookup is anchored at the record's unique
/// `{"name":"…","median_ns":` prefix so sibling records never shadow it.
fn stat_ns(json: &str, group: &str, name: &str, field: &str) -> Option<u128> {
    let group_tag = format!("{{\"group\":\"{group}\",");
    let line = json.lines().find(|l| l.starts_with(&group_tag))?;
    let name_tag = format!("{{\"name\":\"{name}\",\"median_ns\":");
    let at = line.find(&name_tag)?;
    let record = &line[at..];
    let field_tag = format!("\"{field}\":");
    let at = record.find(&field_tag)? + field_tag.len();
    let digits: String = record[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn run(current_path: &str, baseline_path: &str, tolerance: f64) -> Result<(), String> {
    let current = std::fs::read_to_string(current_path)
        .map_err(|e| format!("cannot read {current_path}: {e}"))?;
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    for (group, name) in GUARDED {
        let base_median = median_ns(&baseline, group, name)
            .ok_or_else(|| format!("{baseline_path}: no record of {group}/{name}"))?;
        // Slow entries run with few samples; compare their stablest
        // statistic (the minimum) instead of a 2-of-5 order statistic.
        let (stat, cur, base) = if base_median > SLOW_ENTRY_NS {
            let cur = min_ns(&current, group, name)
                .ok_or_else(|| format!("{current_path}: no record of {group}/{name}"))?;
            let base = min_ns(&baseline, group, name)
                .ok_or_else(|| format!("{baseline_path}: no record of {group}/{name}"))?;
            ("min", cur, base)
        } else {
            let cur = median_ns(&current, group, name)
                .ok_or_else(|| format!("{current_path}: no record of {group}/{name}"))?;
            ("median", cur, base_median)
        };
        let ratio = cur as f64 / base as f64;
        println!(
            "{group}/{name}: current {stat} {:.3} ms vs baseline {:.3} ms ({ratio:.2}x, tolerance {tolerance:.2}x)",
            cur as f64 / 1e6,
            base as f64 / 1e6,
        );
        if ratio > tolerance {
            return Err(format!(
                "{group}/{name} regressed: {ratio:.2}x the committed baseline (> {tolerance:.2}x)"
            ));
        }
    }
    // Within-run parallel-scaling gate. Absolute ns comparisons against a
    // committed baseline are only meaningful on similar hardware, but the
    // *ratio* of threads=4 to threads=1 inside one run is host-independent:
    // a scheduler regression (lock contention, lost stealing, busy-spin)
    // shows up as threads=4 falling behind threads=1 on any host. On
    // multi-core hosts the ratio sits well under 1 and the printed speedup
    // is the headline number.
    if let (Some(t1), Some(t4)) = (
        median_ns(&current, "repair_parallel", "threads/1"),
        median_ns(&current, "repair_parallel", "threads/4"),
    ) {
        let ratio = t4 as f64 / t1.max(1) as f64;
        println!(
            "repair_parallel threads=4 vs threads=1: {:.2}x speedup on this host",
            t1 as f64 / t4.max(1) as f64
        );
        if ratio > PARALLEL_RATIO_TOLERANCE {
            return Err(format!(
                "repair_parallel threads/4 is {ratio:.2}x threads/1 in the same run \
                 (> {PARALLEL_RATIO_TOLERANCE:.2}x): parallel scheduler regression"
            ));
        }
    }
    // Within-run incremental-grounding gates: reground-after-Δ — in both
    // the insert and the DRed delete direction — must stay a small
    // fraction of ground-from-scratch at the largest size.
    for (series, what) in [
        ("reground_delta/800", "insert"),
        ("reground_delete/800", "delete"),
    ] {
        if let (Some(scratch), Some(reground)) = (
            median_ns(&current, "program_route", "ground_scratch/800"),
            median_ns(&current, "program_route", series),
        ) {
            let ratio = reground as f64 / scratch.max(1) as f64;
            println!(
                "program_route {what}-reground vs scratch at clean=800: {:.1}x faster ({ratio:.3}x)",
                scratch as f64 / reground.max(1) as f64
            );
            if ratio > REGROUND_RATIO_TOLERANCE {
                return Err(format!(
                    "program_route {series} is {ratio:.3}x ground_scratch/800 in the same \
                     run (> {REGROUND_RATIO_TOLERANCE:.2}x): incremental grounding regression"
                ));
            }
        }
    }
    // Within-run incremental-solving gate: enumerating stable models
    // after a 1-fact reground with a warm `SolverState` (partition model
    // cache + premise-tracked learned clauses) must stay a small fraction
    // of solving the same program from scratch. Host-independent like the
    // reground gates; a resolver that silently re-enumerates every
    // partition converges on the scratch series and trips this.
    if let (Some(scratch), Some(resolve)) = (
        median_ns(&current, "program_route", "solve/800"),
        median_ns(&current, "program_route", "resolve_delta/800"),
    ) {
        let ratio = resolve as f64 / scratch.max(1) as f64;
        println!(
            "program_route delta-resolve vs scratch solve at clean=800: {:.1}x faster ({ratio:.3}x)",
            scratch as f64 / resolve.max(1) as f64
        );
        if ratio > RESOLVE_RATIO_TOLERANCE {
            return Err(format!(
                "program_route resolve_delta/800 is {ratio:.3}x solve/800 in the same \
                 run (> {RESOLVE_RATIO_TOLERANCE:.2}x): incremental solving regression"
            ));
        }
    }
    // Within-run planner gate: the FO-rewrite fast path must stay a small
    // fraction of repair enumeration on the same workload in the same run.
    if let (Some(enumerated), Some(fast)) = (
        median_ns(&current, "fast_path", "enumeration/800"),
        median_ns(&current, "fast_path", "fast_path/800"),
    ) {
        let ratio = fast as f64 / enumerated.max(1) as f64;
        println!(
            "fast_path planner vs enumeration at clean=800: {:.1}x faster ({ratio:.4}x)",
            enumerated as f64 / fast.max(1) as f64
        );
        if ratio > FAST_PATH_RATIO_TOLERANCE {
            return Err(format!(
                "fast_path fast_path/800 is {ratio:.3}x enumeration/800 in the same run \
                 (> {FAST_PATH_RATIO_TOLERANCE:.2}x): planner fast-path regression"
            ));
        }
    }
    // Within-run group-commit gate: the 8-writer append burst with one
    // leader fsync per batch must beat the same burst paying one fsync
    // per append by at least 3x.
    if let (Some(solo), Some(grouped)) = (
        median_ns(&current, "storage_write", "append_solo/8"),
        median_ns(&current, "storage_write", "append_group/8"),
    ) {
        let ratio = grouped as f64 / solo.max(1) as f64;
        println!(
            "storage_write group commit vs per-append fsync at width 8: {:.1}x faster ({ratio:.3}x)",
            solo as f64 / grouped.max(1) as f64
        );
        if ratio > GROUP_COMMIT_RATIO_TOLERANCE {
            return Err(format!(
                "storage_write append_group/8 is {ratio:.3}x append_solo/8 in the same run \
                 (> {GROUP_COMMIT_RATIO_TOLERANCE:.2}x): group commit no longer coalesces fsyncs"
            ));
        }
    }
    // Within-run incremental-compaction gate: folding the WAL with 2 of
    // 20 relations dirty must stay well under a full rewrite of every
    // segment.
    if let (Some(full), Some(incremental)) = (
        median_ns(&current, "storage_write", "compact_full/20"),
        median_ns(&current, "storage_write", "compact_incremental/20"),
    ) {
        let ratio = incremental as f64 / full.max(1) as f64;
        println!(
            "storage_write incremental vs full compaction at 2/20 dirty: {:.1}x faster ({ratio:.3}x)",
            full as f64 / incremental.max(1) as f64
        );
        if ratio > INCREMENTAL_COMPACT_RATIO_TOLERANCE {
            return Err(format!(
                "storage_write compact_incremental/20 is {ratio:.3}x compact_full/20 in the \
                 same run (> {INCREMENTAL_COMPACT_RATIO_TOLERANCE:.2}x): compaction is no \
                 longer O(changed relations)"
            ));
        }
    }
    // Within-run crash-recovery gate: replaying a 1000-delta WAL onto a
    // warm snapshot grounding must stay at most half the cost of
    // rebuilding the recovered state's grounding cold.
    if let (Some(cold), Some(replay)) = (
        median_ns(&current, "recovery_replay", "cold_rebuild/1000"),
        median_ns(&current, "recovery_replay", "replay/1000"),
    ) {
        let ratio = replay as f64 / cold.max(1) as f64;
        println!(
            "recovery_replay warm replay vs cold rebuild at wal=1000: {:.1}x faster ({ratio:.3}x)",
            cold as f64 / replay.max(1) as f64
        );
        if ratio > RECOVERY_RATIO_TOLERANCE {
            return Err(format!(
                "recovery_replay replay/1000 is {ratio:.3}x cold_rebuild/1000 in the same \
                 run (> {RECOVERY_RATIO_TOLERANCE:.2}x): recovery no longer rides the \
                 incremental grounding path"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (current, baseline) = match (args.get(1), args.get(2)) {
        (Some(c), Some(b)) => (c.clone(), b.clone()),
        _ => {
            eprintln!("usage: bench_check <current.json> <baseline.json> [tolerance]");
            return ExitCode::from(2);
        }
    };
    let tolerance: f64 = match args.get(3) {
        Some(t) => match t.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("bad tolerance `{t}`");
                return ExitCode::from(2);
            }
        },
        None => 1.25,
    };
    match run(&current, &baseline, tolerance) {
        Ok(()) => {
            println!("bench gate OK");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("bench gate FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"group\":\"other\",\"results\":[{\"name\":\"incremental/800\",\"median_ns\":1,\"mean_ns\":1,\"min_ns\":1,\"samples\":7,\"iters\":1}]}\n",
        "{\"group\":\"repair_instance_size_axis\",\"results\":[",
        "{\"name\":\"incremental/80\",\"median_ns\":11,\"mean_ns\":11,\"min_ns\":11,\"samples\":7,\"iters\":1},",
        "{\"name\":\"incremental/800\",\"median_ns\":2962000,\"mean_ns\":3000000,\"min_ns\":2900000,\"samples\":7,\"iters\":6}",
        "]}\n"
    );

    #[test]
    fn extracts_the_right_series() {
        assert_eq!(
            median_ns(SAMPLE, "repair_instance_size_axis", "incremental/800"),
            Some(2_962_000)
        );
        // Exact-name match: the /80 record does not shadow /800.
        assert_eq!(
            median_ns(SAMPLE, "repair_instance_size_axis", "incremental/80"),
            Some(11)
        );
        assert_eq!(median_ns(SAMPLE, "no_such_group", "incremental/800"), None);
        assert_eq!(
            median_ns(SAMPLE, "repair_instance_size_axis", "missing"),
            None
        );
    }

    #[test]
    fn extracts_min_ns_of_the_right_record() {
        // min_ns lookup is anchored at its record, not at the line: the
        // /80 record's min (11) must not shadow the /800 record's min.
        assert_eq!(
            min_ns(SAMPLE, "repair_instance_size_axis", "incremental/800"),
            Some(2_900_000)
        );
        assert_eq!(
            min_ns(SAMPLE, "repair_instance_size_axis", "incremental/80"),
            Some(11)
        );
    }
}
