//! Safe first-order queries: conjunctive queries with negation and
//! builtins, and unions thereof.
//!
//! The paper (Definition 8) defines consistent answers for first-order
//! queries under a query-answering relation `|=q_N` it deliberately leaves
//! open (Section 4). This implementation fixes the standard choice: safe
//! queries evaluated classically with `null` treated as an ordinary
//! constant — polynomial in data, coinciding with classical first-order
//! semantics on null-free databases, exactly the two properties the paper
//! assumes. A convenience filter excludes answers containing `null`
//! ([`AnswerSemantics::ExcludeNullAnswers`]) for applications that read
//! nulls as "unknown" rather than as a value.

use crate::error::CoreError;
use cqa_constraints::{c, v, CmpOp, TermSpec};
use cqa_relational::{Instance, RelId, Schema, Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// How to treat nulls in answer tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnswerSemantics {
    /// Return every answer, nulls included (default: null is a value).
    #[default]
    IncludeNullAnswers,
    /// Drop answer tuples containing `null` (null as "unknown").
    ExcludeNullAnswers,
}

/// How nulls behave *inside* query evaluation — the `|=q_N` knob the
/// paper's Section 7(a) defers to its extended version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryNullSemantics {
    /// Null is an ordinary constant: `null = null` joins, comparisons
    /// treat null via the total value order. Matches the IC-checking
    /// convention of Definition 4 (default).
    #[default]
    NullAsValue,
    /// SQL's three-valued reading: a comparison or join touching `null`
    /// is *unknown*, hence never satisfies a condition. Nulls still bind
    /// to variables (they can be *returned*), but they never *test* equal
    /// — not even to another null — and builtins over null are false.
    SqlThreeValued,
}

impl QueryNullSemantics {
    /// Equality test under this semantics.
    fn values_match(self, a: &Value, b: &Value) -> bool {
        match self {
            QueryNullSemantics::NullAsValue => a == b,
            QueryNullSemantics::SqlThreeValued => !a.is_null() && !b.is_null() && a == b,
        }
    }

    /// Builtin comparison under this semantics.
    fn cmp(self, op: CmpOp, a: &Value, b: &Value) -> bool {
        match self {
            QueryNullSemantics::NullAsValue => op.eval(a, b),
            QueryNullSemantics::SqlThreeValued => !a.is_null() && !b.is_null() && op.eval(a, b),
        }
    }
}

/// A term inside a query atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum QTerm {
    Var(u32),
    Const(Value),
}

/// A query atom over a schema relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct QAtom {
    pub rel: RelId,
    pub terms: Vec<QTerm>,
}

/// A builtin comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct QBuiltin {
    pub op: CmpOp,
    pub lhs: QTerm,
    pub rhs: QTerm,
}

/// A safe conjunctive query with negation:
/// `ans(x̄) ← pos₁, …, not neg₁, …, cmp₁, …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    pub(crate) name: String,
    pub(crate) var_names: Vec<String>,
    pub(crate) head: Vec<u32>,
    pub(crate) pos: Vec<QAtom>,
    pub(crate) neg: Vec<QAtom>,
    pub(crate) builtins: Vec<QBuiltin>,
}

impl ConjunctiveQuery {
    /// Start building a query against `schema`. `head_vars` lists the
    /// answer variables (empty = boolean query).
    pub fn builder(
        schema: &Schema,
        name: impl Into<String>,
        head_vars: impl IntoIterator<Item = impl Into<String>>,
    ) -> QueryBuilder<'_> {
        QueryBuilder::new(schema, name, head_vars)
    }

    /// Number of answer variables (0 = boolean).
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Is this a boolean (sentence) query?
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluate over one instance with the default (null-as-value)
    /// semantics: the set of head-variable bindings. For a boolean query
    /// the result is either `{()}` (true) or `{}`.
    pub fn eval(&self, instance: &Instance) -> std::collections::BTreeSet<Tuple> {
        self.eval_with(instance, QueryNullSemantics::NullAsValue)
    }

    /// Evaluate under an explicit null semantics (`|=q_N` hook).
    pub fn eval_with(
        &self,
        instance: &Instance,
        mode: QueryNullSemantics,
    ) -> std::collections::BTreeSet<Tuple> {
        let mut out = std::collections::BTreeSet::new();
        self.for_each_match(instance, mode, &mut |bindings| {
            // negated atoms: no matching tuple may exist.
            for n in &self.neg {
                if atom_has_match(instance, n, bindings, mode) {
                    return true;
                }
            }
            let answer: Tuple = self
                .head
                .iter()
                .map(|v| bindings[*v as usize].expect("safe head var"))
                .collect();
            out.insert(answer);
            true
        });
        out
    }

    /// Enumerate every binding of the *positive* body (builtins applied,
    /// negated atoms NOT applied) and hand it to `sink`; a `false` return
    /// from the sink aborts the enumeration. The fast-path planner uses
    /// this to intercept each candidate match before the classical
    /// negation filter, substituting its own repair-aware treatment of
    /// positive and negated ground atoms.
    pub(crate) fn for_each_match(
        &self,
        instance: &Instance,
        mode: QueryNullSemantics,
        sink: &mut dyn FnMut(&[Option<Value>]) -> bool,
    ) {
        let mut bindings: Vec<Option<Value>> = vec![None; self.var_names.len()];
        self.join_pos(instance, mode, 0, &mut bindings, sink);
    }

    fn join_pos(
        &self,
        instance: &Instance,
        mode: QueryNullSemantics,
        depth: usize,
        bindings: &mut Vec<Option<Value>>,
        sink: &mut dyn FnMut(&[Option<Value>]) -> bool,
    ) -> bool {
        if depth == self.pos.len() {
            // builtins
            for b in &self.builtins {
                let l = term_value(&b.lhs, bindings);
                let r = term_value(&b.rhs, bindings);
                if !mode.cmp(b.op, l, r) {
                    return true;
                }
            }
            return sink(bindings);
        }
        let atom = &self.pos[depth];
        'tuples: for t in instance.relation(atom.rel) {
            let mut newly: Vec<u32> = Vec::new();
            for (pos, term) in atom.terms.iter().enumerate() {
                let val = t.get(pos);
                match term {
                    QTerm::Const(cv) => {
                        if !mode.values_match(val, cv) {
                            undo(bindings, &newly);
                            continue 'tuples;
                        }
                    }
                    QTerm::Var(vid) => match &bindings[*vid as usize] {
                        Some(b) => {
                            if !mode.values_match(b, val) {
                                undo(bindings, &newly);
                                continue 'tuples;
                            }
                        }
                        None => {
                            bindings[*vid as usize] = Some(*val);
                            newly.push(*vid);
                        }
                    },
                }
            }
            let keep_going = self.join_pos(instance, mode, depth + 1, bindings, sink);
            undo(bindings, &newly);
            if !keep_going {
                return false;
            }
        }
        true
    }
}

fn undo(bindings: &mut [Option<Value>], newly: &[u32]) {
    for v in newly {
        bindings[*v as usize] = None;
    }
}

fn term_value<'a>(t: &'a QTerm, bindings: &'a [Option<Value>]) -> &'a Value {
    match t {
        QTerm::Const(c) => c,
        QTerm::Var(v) => bindings[*v as usize].as_ref().expect("safe var"),
    }
}

fn atom_has_match(
    instance: &Instance,
    atom: &QAtom,
    bindings: &[Option<Value>],
    mode: QueryNullSemantics,
) -> bool {
    'tuples: for t in instance.relation(atom.rel) {
        for (pos, term) in atom.terms.iter().enumerate() {
            let val = t.get(pos);
            let expect = match term {
                QTerm::Const(c) => c,
                QTerm::Var(v) => bindings[*v as usize].as_ref().expect("safe var"),
            };
            if !mode.values_match(val, expect) {
                continue 'tuples;
            }
        }
        return true;
    }
    false
}

/// A union of conjunctive queries with matching answer arity — the `Query`
/// type the CQA layer accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    pub(crate) disjuncts: Vec<ConjunctiveQuery>,
}

impl Query {
    /// A single-disjunct query.
    pub fn from_cq(cq: ConjunctiveQuery) -> Self {
        Query {
            disjuncts: vec![cq],
        }
    }

    /// A union; all disjuncts must share the answer arity.
    pub fn union(disjuncts: Vec<ConjunctiveQuery>) -> Result<Self, CoreError> {
        if disjuncts.is_empty() {
            return Err(CoreError::InvalidQuery("empty union".into()));
        }
        let arity = disjuncts[0].arity();
        if disjuncts.iter().any(|d| d.arity() != arity) {
            return Err(CoreError::InvalidQuery(
                "union disjuncts must share answer arity".into(),
            ));
        }
        Ok(Query { disjuncts })
    }

    /// Answer arity.
    pub fn arity(&self) -> usize {
        self.disjuncts[0].arity()
    }

    /// Is this a boolean query?
    pub fn is_boolean(&self) -> bool {
        self.arity() == 0
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// Evaluate: union of the disjunct answers.
    pub fn eval(&self, instance: &Instance) -> std::collections::BTreeSet<Tuple> {
        self.eval_with(instance, QueryNullSemantics::NullAsValue)
    }

    /// Evaluate under an explicit null semantics.
    pub fn eval_with(
        &self,
        instance: &Instance,
        mode: QueryNullSemantics,
    ) -> std::collections::BTreeSet<Tuple> {
        let mut out = std::collections::BTreeSet::new();
        for d in &self.disjuncts {
            out.extend(d.eval_with(instance, mode));
        }
        out
    }
}

impl From<ConjunctiveQuery> for Query {
    fn from(cq: ConjunctiveQuery) -> Self {
        Query::from_cq(cq)
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vars: Vec<&str> = self
            .head
            .iter()
            .map(|v| self.var_names[*v as usize].as_str())
            .collect();
        write!(f, "{}({})", self.name, vars.join(", "))
    }
}

/// Builder for [`ConjunctiveQuery`]. Reuses the constraint layer's
/// [`TermSpec`] (so `v("x")` / `c(1)` work in both).
pub struct QueryBuilder<'s> {
    schema: &'s Schema,
    name: String,
    head_names: Vec<String>,
    vars: BTreeMap<String, u32>,
    var_names: Vec<String>,
    pos: Vec<QAtom>,
    neg: Vec<QAtom>,
    builtins: Vec<QBuiltin>,
    error: Option<CoreError>,
}

impl<'s> QueryBuilder<'s> {
    fn new(
        schema: &'s Schema,
        name: impl Into<String>,
        head_vars: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        QueryBuilder {
            schema,
            name: name.into(),
            head_names: head_vars.into_iter().map(Into::into).collect(),
            vars: BTreeMap::new(),
            var_names: Vec::new(),
            pos: Vec::new(),
            neg: Vec::new(),
            builtins: Vec::new(),
            error: None,
        }
    }

    fn term(&mut self, spec: TermSpec) -> QTerm {
        match spec {
            TermSpec::Var(n) => {
                let next = self.var_names.len() as u32;
                let id = *self.vars.entry(n.clone()).or_insert_with(|| {
                    self.var_names.push(n);
                    next
                });
                QTerm::Var(id)
            }
            TermSpec::Const(val) => QTerm::Const(val),
        }
    }

    fn resolve(&mut self, relation: &str, terms: Vec<TermSpec>) -> Option<QAtom> {
        let Some(rel) = self.schema.rel_id(relation) else {
            self.error = Some(CoreError::InvalidQuery(format!(
                "unknown relation `{relation}`"
            )));
            return None;
        };
        let arity = self.schema.relation(rel).arity();
        if terms.len() != arity {
            self.error = Some(CoreError::InvalidQuery(format!(
                "atom over `{relation}` has {} terms, arity is {arity}",
                terms.len()
            )));
            return None;
        }
        let terms = terms.into_iter().map(|t| self.term(t)).collect();
        Some(QAtom { rel, terms })
    }

    /// Add a positive atom.
    pub fn atom(mut self, relation: &str, terms: impl IntoIterator<Item = TermSpec>) -> Self {
        if self.error.is_some() {
            return self;
        }
        if let Some(a) = self.resolve(relation, terms.into_iter().collect()) {
            self.pos.push(a);
        }
        self
    }

    /// Add a negated atom.
    pub fn not_atom(mut self, relation: &str, terms: impl IntoIterator<Item = TermSpec>) -> Self {
        if self.error.is_some() {
            return self;
        }
        if let Some(a) = self.resolve(relation, terms.into_iter().collect()) {
            self.neg.push(a);
        }
        self
    }

    /// Add a builtin comparison.
    pub fn cmp(mut self, lhs: TermSpec, op: CmpOp, rhs: TermSpec) -> Self {
        if self.error.is_some() {
            return self;
        }
        let l = self.term(lhs);
        let r = self.term(rhs);
        self.builtins.push(QBuiltin { op, lhs: l, rhs: r });
        self
    }

    /// Validate safety and finish.
    pub fn finish(mut self) -> Result<ConjunctiveQuery, CoreError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        // Resolve head variables (they must occur in the body to be safe).
        let head: Vec<u32> = self
            .head_names
            .iter()
            .map(|n| self.vars.get(n).copied())
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| {
                CoreError::InvalidQuery("head variable does not occur in the body".into())
            })?;
        // Safety: positive atoms bind everything used elsewhere.
        let mut safe = vec![false; self.var_names.len()];
        for a in &self.pos {
            for t in &a.terms {
                if let QTerm::Var(v) = t {
                    safe[*v as usize] = true;
                }
            }
        }
        let unsafe_var = |terms: &[&QTerm]| -> Option<String> {
            for t in terms {
                if let QTerm::Var(v) = t {
                    if !safe[*v as usize] {
                        return Some(self.var_names[*v as usize].clone());
                    }
                }
            }
            None
        };
        for v in &head {
            if !safe[*v as usize] {
                return Err(CoreError::InvalidQuery(format!(
                    "head variable `{}` not bound by a positive atom",
                    self.var_names[*v as usize]
                )));
            }
        }
        for a in &self.neg {
            if let Some(name) = unsafe_var(&a.terms.iter().collect::<Vec<_>>()) {
                return Err(CoreError::InvalidQuery(format!(
                    "negated atom uses unbound variable `{name}`"
                )));
            }
        }
        for b in &self.builtins {
            if let Some(name) = unsafe_var(&[&b.lhs, &b.rhs]) {
                return Err(CoreError::InvalidQuery(format!(
                    "builtin uses unbound variable `{name}`"
                )));
            }
        }
        Ok(ConjunctiveQuery {
            name: self.name,
            var_names: self.var_names,
            head,
            pos: self.pos,
            neg: self.neg,
            builtins: self.builtins,
        })
    }
}

/// Re-export the term shorthands for query building.
pub fn qv(name: &str) -> TermSpec {
    v(name)
}

/// Constant term shorthand.
pub fn qc(value: impl Into<Value>) -> TermSpec {
    c(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relational::{i, null, s, Schema};
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Instance) {
        let sc = Schema::builder()
            .relation("Emp", ["id", "dept"])
            .relation("Dept", ["name"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("Emp", [i(1), s("cs")]).unwrap();
        d.insert_named("Emp", [i(2), s("math")]).unwrap();
        d.insert_named("Emp", [i(3), null()]).unwrap();
        d.insert_named("Dept", [s("cs")]).unwrap();
        (sc, d)
    }

    #[test]
    fn basic_join() {
        let (sc, d) = setup();
        let q = ConjunctiveQuery::builder(&sc, "q", ["x"])
            .atom("Emp", [qv("x"), qv("d")])
            .atom("Dept", [qv("d")])
            .finish()
            .unwrap();
        let answers = q.eval(&d);
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&Tuple::new(vec![i(1)])));
    }

    #[test]
    fn negation() {
        let (sc, d) = setup();
        let q = ConjunctiveQuery::builder(&sc, "q", ["x"])
            .atom("Emp", [qv("x"), qv("d")])
            .not_atom("Dept", [qv("d")])
            .finish()
            .unwrap();
        let answers = q.eval(&d);
        // math and null departments are not in Dept (null as a constant).
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn builtins_and_constants() {
        let (sc, d) = setup();
        let q = ConjunctiveQuery::builder(&sc, "q", ["x"])
            .atom("Emp", [qv("x"), qv("d")])
            .cmp(qv("x"), CmpOp::Gt, qc(1))
            .finish()
            .unwrap();
        assert_eq!(q.eval(&d).len(), 2);
        let q2 = ConjunctiveQuery::builder(&sc, "q2", ["x"])
            .atom("Emp", [qv("x"), qc(s("cs"))])
            .finish()
            .unwrap();
        assert_eq!(q2.eval(&d).len(), 1);
    }

    #[test]
    fn null_matches_null_constant_semantics() {
        let (sc, d) = setup();
        let q = ConjunctiveQuery::builder(&sc, "q", ["x"])
            .atom("Emp", [qv("x"), qc(null())])
            .finish()
            .unwrap();
        let answers = q.eval(&d);
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&Tuple::new(vec![i(3)])));
    }

    #[test]
    fn sql_three_valued_mode_never_joins_null() {
        let (sc, d) = setup();
        // join Emp.dept with Dept.name: emp 3 has a null dept.
        let join = ConjunctiveQuery::builder(&sc, "j", ["x"])
            .atom("Emp", [qv("x"), qv("d")])
            .atom("Dept", [qv("d")])
            .finish()
            .unwrap();
        // Both modes agree here (no null in Dept):
        assert_eq!(
            join.eval_with(&d, QueryNullSemantics::SqlThreeValued),
            join.eval(&d)
        );
        // But a literal null never matches in SQL mode:
        let null_probe = ConjunctiveQuery::builder(&sc, "p", ["x"])
            .atom("Emp", [qv("x"), qc(null())])
            .finish()
            .unwrap();
        assert_eq!(null_probe.eval(&d).len(), 1);
        assert!(null_probe
            .eval_with(&d, QueryNullSemantics::SqlThreeValued)
            .is_empty());
        // Builtins over null are unknown → false:
        let cmp_null = ConjunctiveQuery::builder(&sc, "c", ["x"])
            .atom("Emp", [qv("x"), qv("d")])
            .cmp(qv("d"), CmpOp::Neq, qc(s("cs")))
            .finish()
            .unwrap();
        // null dept: `d <> 'cs'` is true as-value, unknown in SQL mode.
        assert!(cmp_null.eval(&d).contains(&Tuple::new(vec![i(3)])));
        assert!(!cmp_null
            .eval_with(&d, QueryNullSemantics::SqlThreeValued)
            .contains(&Tuple::new(vec![i(3)])));
    }

    #[test]
    fn sql_mode_nulls_still_bindable_and_returnable() {
        let (sc, d) = setup();
        // Nulls can be *returned* — they just never *test* equal.
        let q = ConjunctiveQuery::builder(&sc, "q", ["d"])
            .atom("Emp", [qv("x"), qv("d")])
            .finish()
            .unwrap();
        let answers = q.eval_with(&d, QueryNullSemantics::SqlThreeValued);
        assert!(answers.contains(&Tuple::new(vec![null()])));
    }

    #[test]
    fn sql_mode_negation_uses_strict_matching() {
        let (sc, d) = setup();
        // `not Dept(d)` with d = null: under SQL semantics the negated
        // atom can never match (null never equals), so emp 3 qualifies in
        // both modes; the difference shows when Dept itself holds a null.
        let mut d2 = d.clone();
        d2.insert_named("Dept", [null()]).unwrap();
        let q = ConjunctiveQuery::builder(&sc, "q", ["x"])
            .atom("Emp", [qv("x"), qv("dd")])
            .not_atom("Dept", [qv("dd")])
            .finish()
            .unwrap();
        // as-value: Dept(null) matches emp 3's null dept → excluded.
        assert!(!q.eval(&d2).contains(&Tuple::new(vec![i(3)])));
        // SQL mode: null ≠ null → not excluded.
        assert!(q
            .eval_with(&d2, QueryNullSemantics::SqlThreeValued)
            .contains(&Tuple::new(vec![i(3)])));
    }

    #[test]
    fn boolean_query() {
        let (sc, d) = setup();
        let q = ConjunctiveQuery::builder(&sc, "q", Vec::<String>::new())
            .atom("Dept", [qc(s("cs"))])
            .finish()
            .unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.eval(&d).len(), 1); // the empty tuple: true
        let q2 = ConjunctiveQuery::builder(&sc, "q2", Vec::<String>::new())
            .atom("Dept", [qc(s("bio"))])
            .finish()
            .unwrap();
        assert!(q2.eval(&d).is_empty()); // false
    }

    #[test]
    fn union_queries() {
        let (sc, d) = setup();
        let q1 = ConjunctiveQuery::builder(&sc, "q1", ["x"])
            .atom("Emp", [qv("x"), qc(s("cs"))])
            .finish()
            .unwrap();
        let q2 = ConjunctiveQuery::builder(&sc, "q2", ["x"])
            .atom("Emp", [qv("x"), qc(s("math"))])
            .finish()
            .unwrap();
        let u = Query::union(vec![q1, q2]).unwrap();
        assert_eq!(u.eval(&d).len(), 2);
    }

    #[test]
    fn safety_violations_rejected() {
        let (sc, _) = setup();
        assert!(matches!(
            ConjunctiveQuery::builder(&sc, "bad", ["z"])
                .atom("Dept", [qv("d")])
                .finish(),
            Err(CoreError::InvalidQuery(_))
        ));
        assert!(matches!(
            ConjunctiveQuery::builder(&sc, "bad", Vec::<String>::new())
                .atom("Dept", [qv("d")])
                .not_atom("Emp", [qv("w"), qv("d")])
                .finish(),
            Err(CoreError::InvalidQuery(_))
        ));
        assert!(matches!(
            ConjunctiveQuery::builder(&sc, "bad", Vec::<String>::new())
                .atom("Dept", [qv("d")])
                .cmp(qv("q"), CmpOp::Lt, qc(1))
                .finish(),
            Err(CoreError::InvalidQuery(_))
        ));
    }

    #[test]
    fn arity_mismatched_union_rejected() {
        let (sc, _) = setup();
        let q1 = ConjunctiveQuery::builder(&sc, "q1", ["x"])
            .atom("Emp", [qv("x"), qv("d")])
            .finish()
            .unwrap();
        let q2 = ConjunctiveQuery::builder(&sc, "q2", Vec::<String>::new())
            .atom("Dept", [qv("d")])
            .finish()
            .unwrap();
        assert!(Query::union(vec![q1, q2]).is_err());
        assert!(Query::union(vec![]).is_err());
    }

    #[test]
    fn unknown_relation_and_arity_errors() {
        let (sc, _) = setup();
        assert!(ConjunctiveQuery::builder(&sc, "bad", Vec::<String>::new())
            .atom("Nope", [qv("x")])
            .finish()
            .is_err());
        assert!(ConjunctiveQuery::builder(&sc, "bad", Vec::<String>::new())
            .atom("Dept", [qv("x"), qv("y")])
            .finish()
            .is_err());
    }
}
