//! Derived-result caches, scoped per handle.
//!
//! Two caches make repeated calls over an unchanged (or mildly changed)
//! database cheap:
//!
//! * [`WorklistCache`] — root violation scans for the repair engine. The
//!   O(instance) full scan is the one per-call cost of `repairs*` that
//!   does not shrink with the conflict count; keyed on
//!   [`Instance::version`] + constraint set, invalidation is exact.
//! * [`GroundingCache`] — persistent [`GroundingState`]s for the repair
//!   program Π(D, IC), keyed by constraint set, program style and pruning
//!   flag, stamped with the instance version. A version mismatch does not
//!   discard the entry: the cache diffs the stored base instance against
//!   the caller's and, when the change is insert-only, *regrounds
//!   incrementally* through [`GroundingState::add_facts`] — the program
//!   route's analogue of `violations_touching`. Deletions rebuild (the
//!   possibly-true set is not monotone under removal).
//!
//! Both caches are small LRUs behind a [`CqaCaches`] bundle. The
//! process-wide [`global`] bundle is the default every free function uses
//! — existing call sites keep their behaviour — while the `Database`
//! facade owns a bundle per database, so many tenants in one process
//! cannot evict each other's scans (ROADMAP "Worklist-cache scope"; the
//! per-tenant test pins this).

use crate::error::CoreError;
use crate::program::{repair_program_with, ProgramStyle};
use cqa_asp::GroundingState;
use cqa_constraints::{violations, IcSet, SatMode, Violation};
use cqa_relational::{delta, Instance};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Capacity of each cache (entries, LRU eviction).
const CACHE_CAP: usize = 8;

/// LRU cache of root full-violation scans keyed by
/// `(Instance::version, IcSet)`.
#[derive(Debug, Default)]
pub struct WorklistCache {
    entries: Mutex<Vec<(u64, IcSet, Vec<Violation>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl WorklistCache {
    /// An empty cache.
    pub fn new() -> Self {
        WorklistCache::default()
    }

    /// The full violation set of `d` — the root worklist of the
    /// incremental and parallel searches — served from the cache when the
    /// version + constraint set match. Keying on [`Instance::version`]
    /// makes invalidation exact: any content mutation reassigns the stamp,
    /// and clones share stamps only while content-identical.
    pub(crate) fn root_worklist(&self, d: &Instance, ics: &IcSet) -> Vec<Violation> {
        let version = d.version();
        {
            let mut cache = self.entries.lock().expect("worklist cache lock");
            if let Some(pos) = cache
                .iter()
                .position(|(v, set, _)| *v == version && set == ics)
            {
                let entry = cache.remove(pos);
                let worklist = entry.2.clone();
                cache.push(entry); // most-recently-used at the back
                self.hits.fetch_add(1, Ordering::Relaxed);
                return worklist;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let worklist = violations(d, ics, SatMode::NullAware);
        let mut cache = self.entries.lock().expect("worklist cache lock");
        // The lock was dropped during the scan: a concurrent caller may
        // have raced the same key in. Re-check so duplicates never waste
        // LRU slots.
        if !cache.iter().any(|(v, set, _)| *v == version && set == ics) {
            if cache.len() >= CACHE_CAP {
                cache.remove(0);
            }
            cache.push((version, ics.clone(), worklist.clone()));
        }
        worklist
    }

    /// Lifetime `(hits, misses)` of this handle. Meaningful as
    /// before/after deltas.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Key of one cached grounding: constraint set, program style, pruning.
type GroundingKey = (IcSet, ProgramStyle, bool);

/// One cached grounding: the instance it was built from (for diffing) and
/// the live state. `Arc`-shared so a cache hit hands out a reference, not
/// a deep copy — read-only callers (`repairs_via_program*`) never pay for
/// the state's size, and the per-query extension path clones explicitly.
#[derive(Debug, Clone)]
struct GroundingEntry {
    base: Instance,
    state: Arc<GroundingState>,
}

/// LRU cache of persistent Π(D, IC) groundings. See the module docs for
/// the hit / incremental-reground / rebuild trichotomy.
#[derive(Debug, Default)]
pub struct GroundingCache {
    entries: Mutex<Vec<(GroundingKey, GroundingEntry)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    regrounds: AtomicU64,
}

impl GroundingCache {
    /// An empty cache.
    pub fn new() -> Self {
        GroundingCache::default()
    }

    /// A grounding of Π(`d`, `ics`) in the given style, shared out of the
    /// cache (read-only callers use the `Arc` directly; the per-query
    /// extension path clones the state before mutating). Same version →
    /// hit; insert-only drift → incremental reground; anything else →
    /// rebuild.
    pub(crate) fn state_for(
        &self,
        d: &Instance,
        ics: &IcSet,
        style: ProgramStyle,
        prune: bool,
    ) -> Result<Arc<GroundingState>, CoreError> {
        // Borrowed key comparison — the owned IcSet clone is only paid on
        // the insert path, never on a hit (same discipline as the
        // worklist cache).
        let matches = |(k_ics, k_style, k_prune): &GroundingKey| {
            k_ics == ics && *k_style == style && *k_prune == prune
        };
        // Fast path under the lock: an exact-version hit costs an Arc
        // bump.
        let stale: Option<GroundingEntry> = {
            let mut cache = self.entries.lock().expect("grounding cache lock");
            match cache.iter().position(|(k, _)| matches(k)) {
                Some(pos) => {
                    let (k, entry) = cache.remove(pos);
                    if entry.base.version() == d.version() {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        let state = entry.state.clone();
                        cache.push((k, entry)); // most-recently-used at the back
                        return Ok(state);
                    }
                    Some(entry)
                }
                None => None,
            }
        };
        // Slow path: the grounding work — rebuild or incremental reground
        // — runs with the lock released (same discipline as the worklist
        // cache's scan), so an unrelated key is never blocked behind an
        // O(instance) grounding. The stale entry travels outside the
        // cache meanwhile; a racing thread on the same key at worst
        // duplicates work, never corrupts.
        let evolved = match stale {
            Some(mut entry) => evolve(&mut entry, d)?.then_some(entry),
            None => None,
        };
        let entry = match evolved {
            Some(entry) => {
                self.regrounds.fetch_add(1, Ordering::Relaxed);
                entry
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                GroundingEntry {
                    base: d.clone(),
                    state: Arc::new(build(d, ics, style, prune)?),
                }
            }
        };
        let state = entry.state.clone();
        let mut cache = self.entries.lock().expect("grounding cache lock");
        if let Some(pos) = cache.iter().position(|(k, _)| matches(k)) {
            cache.remove(pos); // racer's entry: ours is current for `d`
        }
        if cache.len() >= CACHE_CAP {
            cache.remove(0);
        }
        cache.push(((ics.clone(), style, prune), entry));
        Ok(state)
    }

    /// Lifetime `(hits, incremental regrounds, misses)` of this handle.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.regrounds.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Ground Π(`d`, `ics`) from scratch into a fresh state.
fn build(
    d: &Instance,
    ics: &IcSet,
    style: ProgramStyle,
    prune: bool,
) -> Result<GroundingState, CoreError> {
    let program = repair_program_with(d, ics, style, prune)?;
    Ok(GroundingState::new(&program))
}

/// Try to evolve a cached grounding onto `d` incrementally (in place;
/// `Arc::make_mut` deep-copies only if a previous caller still holds the
/// state). `false` when the drift involves deletions or a schema change
/// (caller rebuilds).
fn evolve(entry: &mut GroundingEntry, d: &Instance) -> Result<bool, CoreError> {
    let Ok(diff) = delta(&entry.base, d) else {
        return Ok(false); // schema mismatch
    };
    if !diff.removed.is_empty() {
        return Ok(false);
    }
    let schema = d.schema();
    let facts: Vec<(cqa_asp::PredId, Vec<cqa_relational::Value>)> = diff
        .inserted
        .iter()
        .map(|atom| {
            let name = schema.relation(atom.rel).name();
            let pred = entry
                .state
                .program()
                .pred_id(name)
                .expect("repair programs declare every base predicate");
            (pred, atom.tuple.values().to_vec())
        })
        .collect();
    Arc::make_mut(&mut entry.state).add_facts(facts)?;
    entry.base = d.clone();
    Ok(true)
}

/// The two caches bundled: what a `Database` facade owns, and what the
/// process-wide default provides to the free functions.
#[derive(Debug, Default)]
pub struct CqaCaches {
    /// Root violation scans for the repair engine.
    pub worklist: WorklistCache,
    /// Persistent repair-program groundings.
    pub grounding: GroundingCache,
}

impl CqaCaches {
    /// A fresh, empty bundle (one per tenant).
    pub fn new() -> Self {
        CqaCaches::default()
    }
}

/// The process-wide default bundle, used by every free function that is
/// not handed an explicit one.
pub fn global() -> &'static CqaCaches {
    static GLOBAL: OnceLock<CqaCaches> = OnceLock::new();
    GLOBAL.get_or_init(CqaCaches::new)
}

/// Lifetime `(hits, incremental regrounds, misses)` of the process-wide
/// default grounding cache. Meaningful as before/after deltas.
pub fn grounding_cache_stats() -> (u64, u64, u64) {
    global().grounding.stats()
}
