//! Derived-result caches, scoped per handle.
//!
//! Two caches make repeated calls over an unchanged (or mildly changed)
//! database cheap:
//!
//! * [`WorklistCache`] — root violation scans for the repair engine. The
//!   O(instance) full scan is the one per-call cost of `repairs*` that
//!   does not shrink with the conflict count; keyed on
//!   [`Instance::version`] + constraint set, invalidation is exact.
//! * [`GroundingCache`] — persistent [`GroundingState`]s for the repair
//!   program Π(D, IC), keyed by constraint set, program style and pruning
//!   flag, stamped with the instance version. A version mismatch does not
//!   discard the entry: the cache takes the [`InstanceDelta`] of the
//!   stored base instance against the caller's and replays it onto the
//!   live state — removals through the DRed delete–rederive pass
//!   ([`GroundingState::remove_facts`]), insertions through the seminaive
//!   worklist ([`GroundingState::add_facts`]) — so *any* drift regrounds
//!   incrementally, the program route's analogue of
//!   `violations_touching`.
//!
//!   **Drift policy.** Replaying a delta costs proportional to its
//!   derivation cone; replaying most of the instance costs more than
//!   starting over (every removal tears down and every insertion rebuilds
//!   cone-by-cone, where a from-scratch grounding batches the whole
//!   fixpoint). The cache therefore keeps a rebuild *escape hatch*: when
//!   the drift exceeds [`MAX_DRIFT_NUM`]/[`MAX_DRIFT_DEN`] of the target
//!   instance's atoms — or the schema changed, which no fact delta can
//!   express — the entry is rebuilt from scratch instead. The
//!   reground/rebuild split is observable in [`GroundingCacheStats`].
//!
//! The worklist cache is a small LRU; the grounding cache is bounded by a
//! *size-aware* budget instead of an entry count — each entry weighs its
//! ground program's `atoms + rules`, and least-recently-used entries are
//! evicted until the summed weight fits (the most recent entry always
//! survives, even oversized). Both live behind a [`CqaCaches`] bundle.
//! The process-wide [`global`] bundle is the default every free function
//! uses — existing call sites keep their behaviour — while the `Database`
//! facade owns a bundle per database, so many tenants in one process
//! cannot evict each other's scans (ROADMAP "Worklist-cache scope"; the
//! per-tenant test pins this).

use crate::error::{CoreError, InterruptPhase};
use crate::program::{repair_program_with, ProgramStyle};
use cqa_asp::{GroundingState, SolverState, SolverStateStats};
use cqa_constraints::{violations, IcSet, SatMode, Violation};
use cqa_relational::{CancelToken, Instance, InstanceDelta};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Capacity of the worklist cache (entries, LRU eviction).
const CACHE_CAP: usize = 8;

/// Default grounding-cache budget: summed `atoms + rules` across cached
/// ground programs. Generous — a clean=800 Example-19 grounding weighs
/// ~20k — but bounded, so a process serving many large tenants through
/// one bundle cannot grow without limit.
pub const DEFAULT_GROUNDING_BUDGET: usize = 1 << 20;

/// Numerator of the drift escape hatch: a delta larger than
/// `MAX_DRIFT_NUM/MAX_DRIFT_DEN` of the target instance rebuilds.
pub const MAX_DRIFT_NUM: usize = 1;
/// Denominator of the drift escape hatch.
pub const MAX_DRIFT_DEN: usize = 2;

/// Lifetime counters of one [`WorklistCache`] handle, in the same
/// named-struct shape as [`GroundingCacheStats`] and
/// [`SolverStateStats`]. Meaningful as before/after deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorklistCacheStats {
    /// Scans answered from the cache.
    pub hits: u64,
    /// Scans that ran the full-violation pass.
    pub misses: u64,
    /// Entries evicted by the LRU capacity.
    pub evictions: u64,
}

/// LRU cache of root full-violation scans keyed by
/// `(Instance::version, IcSet)`.
#[derive(Debug, Default)]
pub struct WorklistCache {
    entries: Mutex<Vec<(u64, IcSet, Vec<Violation>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl WorklistCache {
    /// An empty cache.
    pub fn new() -> Self {
        WorklistCache::default()
    }

    /// The full violation set of `d` — the root worklist of the
    /// incremental and parallel searches — served from the cache when the
    /// version + constraint set match. Keying on [`Instance::version`]
    /// makes invalidation exact: any content mutation reassigns the stamp,
    /// and clones share stamps only while content-identical.
    pub(crate) fn root_worklist(&self, d: &Instance, ics: &IcSet) -> Vec<Violation> {
        let version = d.version();
        {
            let mut cache = self.entries.lock().expect("worklist cache lock");
            if let Some(pos) = cache
                .iter()
                .position(|(v, set, _)| *v == version && set == ics)
            {
                let entry = cache.remove(pos);
                let worklist = entry.2.clone();
                cache.push(entry); // most-recently-used at the back
                self.hits.fetch_add(1, Ordering::Relaxed);
                return worklist;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let worklist = violations(d, ics, SatMode::NullAware);
        let mut cache = self.entries.lock().expect("worklist cache lock");
        // The lock was dropped during the scan: a concurrent caller may
        // have raced the same key in. Re-check so duplicates never waste
        // LRU slots.
        if !cache.iter().any(|(v, set, _)| *v == version && set == ics) {
            if cache.len() >= CACHE_CAP {
                cache.remove(0);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            cache.push((version, ics.clone(), worklist.clone()));
        }
        worklist
    }

    /// Lifetime counters of this handle.
    pub fn stats(&self) -> WorklistCacheStats {
        WorklistCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Key of one cached grounding: constraint set, program style, pruning.
type GroundingKey = (IcSet, ProgramStyle, bool);

/// One cached grounding: the instance it was built from (for diffing),
/// the live state, and the paired incremental solver. `Arc`-shared so a
/// cache hit hands out a reference, not a deep copy — read-only callers
/// (`repairs_via_program*`) never pay for the state's size, and the
/// per-query extension path clones explicitly.
///
/// The [`SolverState`] follows the grounding's *lineage*: it rides along
/// through incremental evolution (atom ids are stable there) and is
/// replaced by a fresh one whenever the grounding is rebuilt from scratch
/// (atom ids restart). Everything it holds is content-validated, so a
/// racer observing an older grounding through a shared solver stays
/// sound — at worst it re-solves.
#[derive(Debug, Clone)]
struct GroundingEntry {
    base: Instance,
    state: Arc<GroundingState>,
    solver: Arc<Mutex<SolverState>>,
}

/// Lifetime counters of one [`GroundingCache`] handle. Meaningful as
/// before/after deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroundingCacheStats {
    /// Exact version matches: the cached state was handed out as-is.
    pub hits: u64,
    /// Incremental regrounds: a drifted entry evolved in place by
    /// replaying its [`InstanceDelta`] (removals via DRed, insertions via
    /// the seminaive worklist).
    pub regrounds: u64,
    /// Stale entries rebuilt from scratch (drift over the escape-hatch
    /// fraction, or a schema change).
    pub rebuilds: u64,
    /// Cold misses: no entry for the key at all.
    pub misses: u64,
    /// Entries evicted by the size budget.
    pub evictions: u64,
}

/// Budgeted LRU cache of persistent Π(D, IC) groundings. See the module
/// docs for the hit / incremental-reground / rebuild trichotomy and the
/// size-aware eviction policy.
#[derive(Debug)]
pub struct GroundingCache {
    entries: Mutex<Vec<(GroundingKey, GroundingEntry)>>,
    /// Summed `atoms + rules` budget across cached ground programs.
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    regrounds: AtomicU64,
    rebuilds: AtomicU64,
    evictions: AtomicU64,
}

impl Default for GroundingCache {
    fn default() -> Self {
        GroundingCache::with_budget(DEFAULT_GROUNDING_BUDGET)
    }
}

/// Eviction weight of one entry: ground atoms + ground rules held live,
/// floored at 1 so even an empty grounding counts against the budget —
/// the budget therefore also bounds the entry *count*, which keeps the
/// linear key scan under the lock short.
fn entry_weight(entry: &GroundingEntry) -> usize {
    let gp = entry.state.ground_program();
    (gp.atom_count() + gp.rules.len()).max(1)
}

impl GroundingCache {
    /// An empty cache with the default size budget.
    pub fn new() -> Self {
        GroundingCache::default()
    }

    /// An empty cache bounded by `budget` (summed `atoms + rules` across
    /// cached ground programs; the most recent entry is always kept).
    pub fn with_budget(budget: usize) -> Self {
        GroundingCache {
            entries: Mutex::new(Vec::new()),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            regrounds: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A grounding of Π(`d`, `ics`) in the given style, shared out of the
    /// cache (read-only callers use the `Arc` directly; the per-query
    /// extension path clones the state before mutating). Same version →
    /// hit; bounded drift → incremental reground (any mix of insertions
    /// and deletions); oversized drift or schema change → rebuild.
    pub(crate) fn state_for(
        &self,
        d: &Instance,
        ics: &IcSet,
        style: ProgramStyle,
        prune: bool,
    ) -> Result<Arc<GroundingState>, CoreError> {
        self.state_for_governed(d, ics, style, prune, &CancelToken::never())
    }

    /// [`GroundingCache::state_for`] under a cancellation token. The
    /// exact-version hit path is O(1) and never polls; the rebuild and
    /// incremental-reground paths run their propagation loops governed. A
    /// trip mid-grounding *poisons* the in-flight state (the in-place
    /// update cannot unwind soundly), which is then discarded — never
    /// cached — and surfaces as [`CoreError::Interrupted`] with
    /// `phase = Grounding`, `partial = 0`: a partial grounding supports
    /// no sound conclusions. The stale entry was already detached from
    /// the cache, so a later call simply rebuilds from scratch.
    pub(crate) fn state_for_governed(
        &self,
        d: &Instance,
        ics: &IcSet,
        style: ProgramStyle,
        prune: bool,
        cancel: &CancelToken,
    ) -> Result<Arc<GroundingState>, CoreError> {
        self.entry_for_governed(d, ics, style, prune, cancel)
            .map(|(state, _)| state)
    }

    /// [`GroundingCache::state_for_governed`] returning the paired
    /// incremental [`SolverState`] as well — what the program route's
    /// delta-aware solving path consumes. The solver handle follows the
    /// grounding's lineage: it survives incremental regrounds and is
    /// replaced together with the grounding on rebuilds.
    pub(crate) fn entry_for_governed(
        &self,
        d: &Instance,
        ics: &IcSet,
        style: ProgramStyle,
        prune: bool,
        cancel: &CancelToken,
    ) -> Result<(Arc<GroundingState>, Arc<Mutex<SolverState>>), CoreError> {
        // Borrowed key comparison — the owned IcSet clone is only paid on
        // the insert path, never on a hit (same discipline as the
        // worklist cache).
        let matches = |(k_ics, k_style, k_prune): &GroundingKey| {
            k_ics == ics && *k_style == style && *k_prune == prune
        };
        // Fast path under the lock: an exact-version hit costs an Arc
        // bump.
        let stale: Option<GroundingEntry> = {
            let mut cache = self.entries.lock().expect("grounding cache lock");
            match cache.iter().position(|(k, _)| matches(k)) {
                Some(pos) => {
                    let (k, entry) = cache.remove(pos);
                    if entry.base.version() == d.version() {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        let handles = (entry.state.clone(), entry.solver.clone());
                        cache.push((k, entry)); // most-recently-used at the back
                        return Ok(handles);
                    }
                    Some(entry)
                }
                None => None,
            }
        };
        // Slow path: the grounding work — rebuild or incremental reground
        // — runs with the lock released (same discipline as the worklist
        // cache's scan), so an unrelated key is never blocked behind an
        // O(instance) grounding. The stale entry travels outside the
        // cache meanwhile; a racing thread on the same key at worst
        // duplicates work, never corrupts.
        let had_stale = stale.is_some();
        let evolved = match stale {
            Some(mut entry) => evolve(&mut entry, d, cancel)?.then_some(entry),
            None => None,
        };
        let entry = match evolved {
            Some(entry) => {
                self.regrounds.fetch_add(1, Ordering::Relaxed);
                entry
            }
            None => {
                if had_stale {
                    self.rebuilds.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                GroundingEntry {
                    base: d.clone(),
                    state: Arc::new(build(d, ics, style, prune, cancel)?),
                    // A rebuilt grounding restarts atom interning: the old
                    // solver's ids are meaningless for it, so it starts
                    // fresh too.
                    solver: Arc::new(Mutex::new(SolverState::new())),
                }
            }
        };
        let handles = (entry.state.clone(), entry.solver.clone());
        let mut cache = self.entries.lock().expect("grounding cache lock");
        if let Some(pos) = cache.iter().position(|(k, _)| matches(k)) {
            cache.remove(pos); // racer's entry: ours is current for `d`
        }
        cache.push(((ics.clone(), style, prune), entry));
        // Size-aware eviction: drop least-recently-used entries until the
        // summed weight fits the budget. The entry just inserted (at the
        // back) always survives, even when it alone exceeds the budget.
        let mut total: usize = cache.iter().map(|(_, e)| entry_weight(e)).sum();
        while total > self.budget && cache.len() > 1 {
            let (_, victim) = cache.remove(0);
            total -= entry_weight(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(handles)
    }

    /// Lifetime counters of this handle.
    pub fn stats(&self) -> GroundingCacheStats {
        GroundingCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            regrounds: self.regrounds.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Summed counters of the incremental solvers paired with the cached
    /// groundings — same named-struct shape as [`GroundingCache::stats`]
    /// and [`WorklistCache::stats`]. Solvers evicted with their entries
    /// stop contributing, so read this as a point-in-time gauge.
    pub fn solver_stats(&self) -> SolverStateStats {
        let cache = self.entries.lock().expect("grounding cache lock");
        let mut total = SolverStateStats::default();
        for (_, entry) in cache.iter() {
            let s = entry.solver.lock().expect("solver state lock").stats();
            total.partition_hits += s.partition_hits;
            total.partition_misses += s.partition_misses;
            total.learned_reused += s.learned_reused;
            total.learned_tombstoned += s.learned_tombstoned;
        }
        total
    }
}

/// Ground Π(`d`, `ics`) from scratch into a fresh state, governed: a
/// cancellation mid-build poisons the partial state, which is discarded
/// here (never cached). On success the token is detached again so the
/// cached state can never be tripped by a long-expired deadline.
fn build(
    d: &Instance,
    ics: &IcSet,
    style: ProgramStyle,
    prune: bool,
    cancel: &CancelToken,
) -> Result<GroundingState, CoreError> {
    let program = repair_program_with(d, ics, style, prune)?;
    let mut state = GroundingState::new_governed(&program, cancel.clone());
    if state.is_poisoned() {
        return Err(CoreError::Interrupted {
            phase: InterruptPhase::Grounding,
            partial: 0,
        });
    }
    state.set_cancel(CancelToken::never());
    Ok(state)
}

/// Try to evolve a cached grounding onto `d` incrementally (in place;
/// `Arc::make_mut` deep-copies only if a previous caller still holds the
/// state): replay the drift's removals through the DRed two-pass, then
/// its insertions through the seminaive worklist. `false` when the drift
/// exceeds the escape-hatch fraction or the schema changed (caller
/// rebuilds).
fn evolve(
    entry: &mut GroundingEntry,
    d: &Instance,
    cancel: &CancelToken,
) -> Result<bool, CoreError> {
    let Ok(drift) = InstanceDelta::between(&entry.base, d) else {
        return Ok(false); // schema mismatch
    };
    if drift.exceeds_fraction_of(d, MAX_DRIFT_NUM, MAX_DRIFT_DEN) {
        return Ok(false); // replaying would cost more than starting over
    }
    let schema = d.schema();
    let as_fact = |atom: &cqa_relational::DatabaseAtom| {
        let name = schema.relation(atom.rel).name();
        let pred = entry
            .state
            .program()
            .pred_id(name)
            .expect("repair programs declare every base predicate");
        (pred, atom.tuple.values().to_vec())
    };
    let removed: Vec<(cqa_asp::PredId, Vec<cqa_relational::Value>)> =
        drift.removed.iter().map(as_fact).collect();
    let added: Vec<(cqa_asp::PredId, Vec<cqa_relational::Value>)> =
        drift.added.iter().map(as_fact).collect();
    let state = Arc::make_mut(&mut entry.state);
    // Govern the DRed + seminaive replay. A trip poisons the state; the
    // Err path drops `entry` (already detached from the cache), so the
    // poisoned grounding can never be observed by a later call.
    state.set_cancel(cancel.clone());
    state.remove_facts(removed);
    if !state.is_poisoned() {
        state.add_facts(added)?;
    }
    if state.is_poisoned() {
        return Err(CoreError::Interrupted {
            phase: InterruptPhase::Grounding,
            partial: 0,
        });
    }
    // Detach the token: a cached state must never carry a trippable one.
    state.set_cancel(CancelToken::never());
    entry.base = d.clone();
    Ok(true)
}

/// The two caches bundled: what a `Database` facade owns, and what the
/// process-wide default provides to the free functions. The bundle also
/// carries the fast-path planner's routing counters
/// ([`crate::plan::PlannerCounters`]) so each tenant observes which
/// engine answered its own queries.
#[derive(Debug, Default)]
pub struct CqaCaches {
    /// Root violation scans for the repair engine.
    pub worklist: WorklistCache,
    /// Persistent repair-program groundings.
    pub grounding: GroundingCache,
    /// Fast-path planner routing counters.
    pub planner: crate::plan::PlannerCounters,
}

impl CqaCaches {
    /// A fresh, empty bundle (one per tenant).
    pub fn new() -> Self {
        CqaCaches::default()
    }

    /// A fresh bundle whose grounding cache is bounded by `budget`
    /// (summed `atoms + rules` across cached ground programs) instead of
    /// the default — the knob for tenants with unusually large or
    /// unusually many constraint-set keys.
    pub fn with_grounding_budget(budget: usize) -> Self {
        CqaCaches {
            worklist: WorklistCache::new(),
            grounding: GroundingCache::with_budget(budget),
            planner: crate::plan::PlannerCounters::default(),
        }
    }
}

/// Warm `caches` for `(d, ics, style)` through the ordinary cache paths:
/// ground Π(d, IC) into the grounding cache (unpruned, the program
/// route's default) and scan the root worklist.
///
/// This is the recovery hook for durable databases: warm on the snapshot
/// state, apply the WAL deltas to the instance, then warm again on the
/// final state — the second call finds a version-mismatched entry and
/// rides the *incremental reground* path, so a reopened database resumes
/// with the same warm-cache trajectory a never-crashed process had,
/// instead of paying a cold from-scratch grounding on its next query.
pub fn warm_caches_in(
    d: &Instance,
    ics: &IcSet,
    style: ProgramStyle,
    caches: &CqaCaches,
) -> Result<(), CoreError> {
    let _ = caches.grounding.state_for(d, ics, style, false)?;
    let _ = caches.worklist.root_worklist(d, ics);
    Ok(())
}

/// The process-wide default bundle, used by every free function that is
/// not handed an explicit one.
pub fn global() -> &'static CqaCaches {
    static GLOBAL: OnceLock<CqaCaches> = OnceLock::new();
    GLOBAL.get_or_init(CqaCaches::new)
}

/// Lifetime counters of the process-wide default grounding cache.
/// Meaningful as before/after deltas.
pub fn grounding_cache_stats() -> GroundingCacheStats {
    global().grounding.stats()
}
