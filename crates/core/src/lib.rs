#![warn(missing_docs)]

//! # cqa-core
//!
//! The core contribution of Bravo & Bertossi, *Semantically Correct Query
//! Answers in the Presence of Null Values* (EDBT 2006): null-aware database
//! repairs and consistent query answering.
//!
//! * [`repair`] — the `≤_D` repair order (Definition 6), repair checking
//!   (Theorem 1's decision problem), and `≤_D`-minimisation.
//! * [`engine`] — repair enumeration (Definition 7) by violation-driven
//!   decision search: each branch deletes a ground body atom or inserts a
//!   consequent atom with `null` at the existential positions; decisions
//!   never flip (mirroring the program denial `← P(t_a), P(f_a)`).
//! * [`bruteforce`] — an exhaustive oracle over the Proposition-1 candidate
//!   space (`adom(D) ∪ const(IC) ∪ {null}`), used to validate the engine.
//! * [`classic`] — the pre-null repair semantics of Arenas, Bertossi &
//!   Chomicki 1999 (\[2\] in the paper), parameterised by an explicit finite
//!   domain; the baseline of Examples 14/15.
//! * [`program`] — the repair logic programs Π(D, IC) of Definition 9 with
//!   annotation constants `t_a`, `f_a`, `t*`, `t**`, in both the paper's
//!   exact form and a corrected form (see `ProgramStyle`), plus the
//!   stable-model → repair extraction of Definition 10 (Theorem 4).
//! * [`query`] — safe conjunctive queries with negation and builtins, and
//!   unions thereof, evaluated with null as an ordinary constant.
//! * [`cqa`] — consistent answers (Definition 8): by repair intersection
//!   and by cautious reasoning over Π(D, IC) plus query rules.
//! * [`plan`] — the fast-path planner: classifies each
//!   `(IcSet, query, semantics)` request and answers it without repair
//!   enumeration when a polynomial route is sound (see its decision
//!   table); [`rewrite`] is the FO-rewrite route for key FDs, [`chase`]
//!   the true/false-tuple classification for deletion-only sets.
//! * [`nonconflict`] — the non-conflicting-IC assumption and the
//!   deletion-preferring `Rep_d` semantics of Example 20.

pub mod bruteforce;
pub mod cache;
pub mod chase;
pub mod classic;
pub mod cqa;
pub mod engine;
pub mod error;
pub mod nonconflict;
pub mod parallel;
pub mod plan;
pub mod program;
pub mod query;
pub mod repair;
pub mod rewrite;

pub use cache::{
    grounding_cache_stats, warm_caches_in, CqaCaches, GroundingCache, GroundingCacheStats,
    WorklistCache, WorklistCacheStats,
};
pub use cqa::{
    consistent_answers, consistent_answers_enumerated, consistent_answers_enumerated_governed,
    consistent_answers_full, consistent_answers_full_in, consistent_answers_governed,
    consistent_answers_via_program, consistent_answers_via_program_governed,
    consistent_answers_via_program_in, AnswerSet,
};
pub use cqa_asp::{SolveOptions, SolverStateStats};
pub use engine::{
    repairs, repairs_with_config, repairs_with_config_governed, repairs_with_config_in,
    repairs_with_trace, repairs_with_trace_governed, repairs_with_trace_in, worklist_cache_stats,
    RepairAction, RepairConfig, RepairSemantics, RepairStep, SearchStrategy, TracedRepair,
};
pub use error::{CoreError, InterruptPhase};
pub use plan::{plan_query, DeclineReason, PlanRoute, PlannerCounters, PlannerStats, QueryPlan};
pub use program::{
    repair_program, repair_program_with, repairs_via_program, repairs_via_program_governed,
    repairs_via_program_in, repairs_via_program_solved, repairs_via_program_with, ProgramStyle,
};
pub use query::{AnswerSemantics, QueryNullSemantics};
pub use query::{ConjunctiveQuery, Query, QueryBuilder};
pub use repair::{
    is_repair, leq_d, lt_d, minimal_delta_indices, minimal_delta_indices_chunked,
    minimize_candidates,
};
