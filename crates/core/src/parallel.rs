//! Work-stealing parallel repair search.
//!
//! This is the branch scheduler behind
//! [`SearchStrategy::Parallel`](crate::SearchStrategy::Parallel); the
//! architecture overview lives in the [`crate::engine`] module docs. In
//! one paragraph: search nodes are self-contained *tasks* (branch path,
//! decision map, trace, inherited violation worklist), each worker owns a
//! copy-on-write fork of the base instance that it reconciles against the
//! incoming task's cumulative decision delta, expansion pushes child
//! tasks onto the worker's own deque (LIFO end — depth-first locality)
//! while idle workers steal from the opposite end (FIFO — shallow tasks
//! with the largest subtrees), and consistent fixpoints publish
//! `(path, Δ, trace)` into a shared collector that is sorted by path
//! after the pool drains. Lexicographic path order equals sequential
//! depth-first discovery order, so everything downstream of the join —
//! deduplication, `≤_D`-minimisation, materialisation, the final pinned
//! sort — sees exactly the candidate sequence the sequential strategies
//! produce, at every thread count and under every scheduling interleaving.
//!
//! Everything here is `std`-only: `Mutex<VecDeque<_>>` per worker instead
//! of a lock-free deque (task grain — one search node, including its
//! index-probed revalidation and touching scans — is orders of magnitude
//! above the lock cost), scoped threads instead of a pool crate, and
//! atomics for the in-flight count, the node budget and the abort flag.
//!
//! Termination: `pending` counts tasks that have been pushed but not yet
//! fully executed. A worker increments it *before* publishing children
//! (while its own task is still counted) and decrements it only after the
//! expansion is complete, so `pending == 0` is stable and implies the
//! whole tree has been explored. Budget exhaustion flips `over_budget`,
//! which every worker checks between tasks; the drained pool then reports
//! [`CoreError::BudgetExceeded`] like the sequential drivers.
//!
//! ## Failure containment (ISSUE 7)
//!
//! The pool never hangs and never propagates a panic:
//!
//! * **Cancellation.** Every charged node and every between-task loop
//!   polls the governor token; a trip makes all workers drain promptly
//!   and the join reports [`CoreError::Interrupted`] with the fixpoints
//!   published so far.
//! * **Worker panics.** Each task runs under `catch_unwind`: a panicking
//!   task records its payload, flips a pool-wide flag that stops the
//!   siblings at their next between-task check, and the join reports
//!   [`CoreError::WorkerPanic`] instead of unwinding through the scope
//!   (which would abort the process via double-panic on the joins).
//! * **Lock poisoning.** Pool locks are acquired poison-tolerantly: the
//!   panic containment above means a poisoned queue/collector mutex only
//!   arises from a panic *outside* any task — and even then the data is a
//!   plain deque/vec whose invariants hold at every lock release point,
//!   so recovering the inner value is sound and keeps sibling workers
//!   (and any later search on the same process) running.

use crate::cache::CqaCaches;
use crate::engine::{delta_of, fixes_for, Decision, Fix, RepairAction, RepairConfig, RepairStep};
use crate::error::{CoreError, InterruptPhase};
use cqa_constraints::{violation_active, violations_touching, IcSet, SatMode, Violation};
use cqa_relational::{CancelToken, DatabaseAtom, Delta, Instance};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Poison-tolerant lock: a worker panic between tasks cannot take the
/// pool down with `PoisonError` (see module docs, "Failure containment").
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One search node, self-contained so any worker can execute it.
struct Task {
    /// Fix indices taken from the root to reach this node — the output
    /// order key: lexicographic path order is sequential DFS order.
    path: Vec<u32>,
    /// Decisions accumulated on this branch (never flipped).
    decisions: BTreeMap<DatabaseAtom, Decision>,
    /// The decision steps, in the order the branch made them.
    trace: Vec<RepairStep>,
    /// Violations inherited from the parent that may still be live here.
    worklist: Vec<Violation>,
    /// The single-decision delta that created this node, whose touching
    /// violations must be appended to the worklist before branching.
    /// Deferred to the executing worker so the parent never needs the
    /// child's instance state; `None` only at the root.
    touch: Option<Delta>,
}

/// A published fixpoint: branch path, decision delta, decision trace.
type Found = (Vec<u32>, Delta, Vec<RepairStep>);

/// Map `f` over `0..len` with contiguous chunks fanned out across up to
/// `threads` scoped workers, results concatenated in index order (so the
/// output is identical at every thread count). Serial — no threads
/// spawned — when one worker suffices. Shared by repair materialisation
/// and chunked `≤_D`-minimisation.
pub(crate) fn chunked_map<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..len)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(len);
                scope.spawn(move || (start..end).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("chunked_map worker panicked"))
            .collect()
    })
}

/// Map `f` over the up-to-`threads` contiguous chunks of `0..len`,
/// results in chunk order (deterministic chunk boundaries, so downstream
/// folds see the same partition at every thread count). Serial — no
/// threads spawned — when one worker suffices. The CQA layer fans its
/// per-repair query evaluation out through this.
pub(crate) fn map_chunks<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let workers = threads.max(1).min(len.max(1));
    if workers <= 1 {
        return vec![f(0..len)];
    }
    let chunk = len.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..len)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(len);
                scope.spawn(move || f(start..end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("map_chunks worker panicked"))
            .collect()
    })
}

/// State shared by the worker pool.
struct Shared<'a> {
    ics: &'a IcSet,
    config: RepairConfig,
    base: &'a Instance,
    /// One deque per worker: owner pushes/pops at the back, thieves pop
    /// at the front.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks pushed but not yet fully executed (see module docs).
    pending: AtomicUsize,
    /// Search nodes charged so far, against `config.node_budget`.
    nodes: AtomicUsize,
    over_budget: AtomicBool,
    /// Governor token: polled per charged node and between tasks.
    cancel: &'a CancelToken,
    /// Set when a worker observed the cancellation with work outstanding
    /// (the result is a prefix, not the full candidate set).
    interrupted: AtomicBool,
    /// Set when a task panicked; `panic_note` holds the payload.
    panicked: AtomicBool,
    /// The first panicking task's payload message.
    panic_note: Mutex<Option<String>>,
    /// Consistent fixpoints: `(path, Δ, trace)`.
    found: Mutex<Vec<Found>>,
}

impl Shared<'_> {
    /// Should workers stop picking up new tasks? (Cancellation is checked
    /// separately so it can flag `interrupted`.)
    fn halted(&self) -> bool {
        self.over_budget.load(Ordering::Relaxed) || self.panicked.load(Ordering::Relaxed)
    }
}

/// Render a caught panic payload for [`CoreError::WorkerPanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run the parallel search and return the fixpoint candidates in
/// sequential depth-first discovery order (sorted by branch path).
pub(crate) fn search(
    d: &Instance,
    ics: &IcSet,
    config: RepairConfig,
    threads: usize,
    caches: &CqaCaches,
    cancel: &CancelToken,
) -> Result<Vec<(Delta, Vec<RepairStep>)>, CoreError> {
    let threads = threads.max(1);
    // Fork point: on a cache miss the root scan registers the indexes its
    // probes need on `base`; on a hit the scan was skipped, so revalidate
    // the cached worklist once here — conflict-bounded work that registers
    // the witness-probe indexes the workers hit hardest. Either way the
    // worker forks below share `base`'s index snapshots Arc-wise instead
    // of each rebuilding them from scratch.
    let base = d.clone();
    let worklist = caches.worklist.root_worklist(&base, ics);
    for violation in &worklist {
        let _ = violation_active(&base, ics, violation, SatMode::NullAware);
    }
    let shared = Shared {
        ics,
        config,
        base: &base,
        queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(1),
        nodes: AtomicUsize::new(0),
        over_budget: AtomicBool::new(false),
        cancel,
        interrupted: AtomicBool::new(false),
        panicked: AtomicBool::new(false),
        panic_note: Mutex::new(None),
        found: Mutex::new(Vec::new()),
    };
    lock(&shared.queues[0]).push_back(Task {
        path: Vec::new(),
        decisions: BTreeMap::new(),
        trace: Vec::new(),
        worklist,
        touch: None,
    });
    std::thread::scope(|scope| {
        let shared = &shared;
        for id in 0..threads {
            scope.spawn(move || worker(shared, id));
        }
    });
    // Outcome priority: a panic is a bug report (loudest), then the
    // governor, then the budget — matching the sequential driver, whose
    // per-node check order is cancel before budget.
    if let Some(message) = lock(&shared.panic_note).take() {
        return Err(CoreError::WorkerPanic { message });
    }
    let mut found = shared
        .found
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if shared.interrupted.load(Ordering::Relaxed) {
        return Err(CoreError::Interrupted {
            phase: InterruptPhase::RepairSearch,
            partial: found.len(),
        });
    }
    if shared.over_budget.load(Ordering::Relaxed) {
        return Err(CoreError::BudgetExceeded {
            budget: config.node_budget,
        });
    }
    found.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(found
        .into_iter()
        .map(|(_, delta, trace)| (delta, trace))
        .collect())
}

/// Worker loop: drain own deque depth-first, steal when empty, exit when
/// the whole pool is idle or the budget tripped.
fn worker(shared: &Shared<'_>, id: usize) {
    let mut fork = shared.base.clone();
    let mut applied = Delta::default();
    let mut idle_rounds: u32 = 0;
    loop {
        if shared.halted() {
            return;
        }
        if shared.cancel.is_cancelled() {
            // Work still outstanding means the candidate set is a prefix.
            if shared.pending.load(Ordering::Acquire) > 0 {
                shared.interrupted.store(true, Ordering::Relaxed);
            }
            return;
        }
        let task = pop_own(shared, id).or_else(|| steal(shared, id));
        match task {
            Some(task) => {
                idle_rounds = 0;
                // Contain panics to the task: record the payload, flag the
                // pool, and keep this worker's loop intact — siblings stop
                // at their next between-task check and the scope join
                // never sees an unwinding thread. The fork may be stale
                // relative to `applied` after a mid-task panic, but this
                // worker never runs another task (`halted()` above).
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_task(shared, id, &mut fork, &mut applied, task)
                }));
                if let Err(payload) = outcome {
                    *lock(&shared.panic_note) = Some(panic_message(payload));
                    shared.panicked.store(true, Ordering::Relaxed);
                }
                // Decrement only after children (if any) were published:
                // `pending` never reads 0 while work remains.
                shared.pending.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                if shared.pending.load(Ordering::Acquire) == 0 {
                    return;
                }
                // Back off: yield at first, then sleep — an idle worker
                // must not burn a core (or, oversubscribed, steal cycles
                // from the productive workers) while a long task runs.
                idle_rounds += 1;
                if idle_rounds < 16 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
        }
    }
}

fn pop_own(shared: &Shared<'_>, id: usize) -> Option<Task> {
    lock(&shared.queues[id]).pop_back()
}

/// Steal the oldest (shallowest) task from another worker, scanning
/// round-robin from the neighbour.
fn steal(shared: &Shared<'_>, id: usize) -> Option<Task> {
    let n = shared.queues.len();
    for offset in 1..n {
        let victim = (id + offset) % n;
        if let Some(task) = lock(&shared.queues[victim]).pop_front() {
            return Some(task);
        }
    }
    None
}

/// Morph `fork` (currently `base + applied`) into `base + target` by
/// applying only the set difference of the two cumulative decision deltas
/// — O(Δ) instance work, no rebuild, regardless of how far apart the two
/// branches are in the tree.
fn reconcile(fork: &mut Instance, applied: &mut Delta, target: Delta) {
    for atom in applied.inserted.difference(&target.inserted) {
        fork.remove(atom.rel, &atom.tuple);
    }
    for atom in applied.removed.difference(&target.removed) {
        let _ = fork.insert(atom.rel, atom.tuple.clone());
    }
    for atom in target.inserted.difference(&applied.inserted) {
        let _ = fork.insert(atom.rel, atom.tuple.clone());
    }
    for atom in target.removed.difference(&applied.removed) {
        fork.remove(atom.rel, &atom.tuple);
    }
    *applied = target;
}

/// Execute one search node: reconcile the fork, extend the worklist with
/// the entering decision's touching violations, branch on the first live
/// violation (or publish a fixpoint), and push child tasks.
///
/// Mirrors `Search::run_incremental` exactly — same worklist order, same
/// lazy revalidation, same fix filtering — so a node at the same decision
/// prefix sees the same instance content and emits the same children as
/// the sequential driver would.
fn run_task(shared: &Shared<'_>, id: usize, fork: &mut Instance, applied: &mut Delta, task: Task) {
    let nodes = shared.nodes.fetch_add(1, Ordering::Relaxed) + 1;
    if nodes > shared.config.node_budget {
        shared.over_budget.store(true, Ordering::Relaxed);
        return;
    }
    if shared.cancel.is_cancelled() {
        // Abandon the node unexpanded: the candidate set is a prefix.
        shared.interrupted.store(true, Ordering::Relaxed);
        return;
    }
    #[cfg(test)]
    if INJECT_PANIC_AT_NODE.load(Ordering::Relaxed) == nodes {
        panic!("injected worker panic at node {nodes}");
    }
    reconcile(fork, applied, delta_of(&task.decisions));
    let mut worklist = task.worklist;
    if let Some(step_delta) = &task.touch {
        for v in violations_touching(fork, shared.ics, step_delta, SatMode::NullAware) {
            if !worklist.contains(&v) {
                worklist.push(v);
            }
        }
    }
    let mut pending = worklist.into_iter();
    let violation = loop {
        match pending.next() {
            Some(v) if violation_active(fork, shared.ics, &v, SatMode::NullAware) => {
                break v;
            }
            Some(_) => continue, // fixed by an ancestor decision
            None => {
                // `applied` is exactly delta_of(task.decisions) since the
                // reconcile above — clone it instead of rebuilding.
                lock(&shared.found).push((task.path, applied.clone(), task.trace));
                return;
            }
        }
    };
    let rest: Vec<Violation> = pending.collect();
    let constraint_name = shared.ics.constraints()[violation.constraint_index]
        .name()
        .to_string();
    let fixes = fixes_for(shared.ics, shared.config.semantics, &violation);
    let mut children: Vec<Task> = Vec::with_capacity(fixes.len());
    for (index, fix) in fixes.into_iter().enumerate() {
        let (action, atom) = match fix {
            Fix::Delete(atom) => {
                if task.decisions.get(&atom) == Some(&Decision::Inserted) {
                    continue; // protected
                }
                (RepairAction::Delete, atom)
            }
            Fix::Insert(atom) => {
                if task.decisions.get(&atom) == Some(&Decision::Deleted) {
                    continue; // already ruled out on this branch
                }
                debug_assert!(
                    !fork.contains(&atom),
                    "insert fix must not already be present"
                );
                (RepairAction::Insert, atom)
            }
        };
        let decision = match action {
            RepairAction::Insert => Decision::Inserted,
            RepairAction::Delete => Decision::Deleted,
        };
        let mut decisions = task.decisions.clone();
        decisions.insert(atom.clone(), decision);
        let mut trace = task.trace.clone();
        trace.push(RepairStep {
            constraint: constraint_name.clone(),
            action,
            atom: atom.clone(),
        });
        let mut path = task.path.clone();
        path.push(index as u32);
        let touch = match action {
            RepairAction::Insert => Delta::insertion(atom),
            RepairAction::Delete => Delta::deletion(atom),
        };
        children.push(Task {
            path,
            decisions,
            trace,
            worklist: rest.clone(),
            touch: Some(touch),
        });
    }
    if !children.is_empty() {
        shared.pending.fetch_add(children.len(), Ordering::AcqRel);
        let mut queue = lock(&shared.queues[id]);
        // Reversed so the owner's LIFO pop explores fix 0 first, matching
        // the sequential driver's branch order.
        for child in children.into_iter().rev() {
            queue.push_back(child);
        }
    }
}

/// Test hook: make the task that charges exactly this node number panic
/// (0 = disabled). Drives the panic-containment unit test below.
#[cfg(test)]
static INJECT_PANIC_AT_NODE: AtomicUsize = AtomicUsize::new(0);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchStrategy;
    use cqa_constraints::{v, Constraint, Ic};
    use cqa_relational::{s, Schema, Tuple};

    /// n dangling Course rows under a Course → Student RIC: every row
    /// branches (delete | insert null-witness), so the tree has 2^n
    /// fixpoints — plenty of parallel work.
    fn dangling(n: usize) -> (Instance, IcSet) {
        let sc = Schema::builder()
            .relation("Course", ["ID", "Code"])
            .relation("Student", ["ID", "Name"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        for k in 0..n {
            d.insert_named("Course", Tuple::new([s(&format!("id{k}")), s("C1")]))
                .unwrap();
        }
        let ric = Ic::builder(&sc, "ric")
            .body_atom("Course", [v("id"), v("code")])
            .head_atom("Student", [v("id"), v("name")])
            .finish()
            .unwrap();
        (d, IcSet::new([Constraint::from(ric)]))
    }

    fn config(threads: usize) -> RepairConfig {
        RepairConfig {
            strategy: SearchStrategy::Parallel { threads },
            ..RepairConfig::default()
        }
    }

    #[test]
    fn injected_worker_panic_is_typed_and_pool_is_reusable() {
        let (d, ics) = dangling(6);
        let caches = CqaCaches::new();
        let baseline = search(&d, &ics, config(4), 4, &caches, &CancelToken::never()).unwrap();
        assert_eq!(baseline.len(), 64);

        // Silence the default panic hook while the injected panic fires
        // (containment is under test; the report would just be noise).
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        INJECT_PANIC_AT_NODE.store(3, Ordering::Relaxed);
        let err = search(&d, &ics, config(4), 4, &caches, &CancelToken::never()).unwrap_err();
        INJECT_PANIC_AT_NODE.store(0, Ordering::Relaxed);
        std::panic::set_hook(prev);

        match err {
            CoreError::WorkerPanic { message } => {
                assert!(message.contains("injected worker panic"), "{message}")
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // The machinery survives: same caches, fresh call, full answer.
        let again = search(&d, &ics, config(4), 4, &caches, &CancelToken::never()).unwrap();
        assert_eq!(again.len(), baseline.len());
    }

    #[test]
    fn tripped_token_interrupts_with_prefix() {
        let (d, ics) = dangling(6);
        let caches = CqaCaches::new();
        let cancel = CancelToken::new();
        cancel.cancel(); // pre-tripped: workers must drain immediately
        let err = search(&d, &ics, config(4), 4, &caches, &cancel).unwrap_err();
        match err {
            CoreError::Interrupted { phase, partial } => {
                assert_eq!(phase, InterruptPhase::RepairSearch);
                assert!(partial < 64, "pre-tripped token cannot finish the tree");
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
        // And the same pool machinery still completes untripped.
        let full = search(&d, &ics, config(4), 4, &caches, &CancelToken::never()).unwrap();
        assert_eq!(full.len(), 64);
    }
}
