//! Exhaustive repair enumeration over the Proposition-1 candidate space —
//! the correctness oracle for [`crate::engine`].
//!
//! Proposition 1: every repair's active domain is contained in
//! `adom(D) ∪ const(IC) ∪ {null}`. The oracle therefore enumerates every
//! instance whose atoms are drawn from that (finite) universe, filters by
//! `|=_N` consistency, and keeps the `≤_D`-minimal ones. Exponential in
//! the universe size; callers keep inputs tiny (property tests, Theorem-1
//! experiments).

use crate::repair::minimize_candidates;
use cqa_constraints::{is_consistent, IcSet};
use cqa_relational::{DatabaseAtom, Instance, Schema, Tuple, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The atom universe: every tuple over `adom(D) ∪ const(IC) ∪ {null}` for
/// every relation, in deterministic order. Original atoms come first so
/// subset enumeration visits "close" candidates early.
pub fn candidate_universe(d: &Instance, ics: &IcSet) -> Vec<DatabaseAtom> {
    let mut domain: BTreeSet<Value> = d.active_domain();
    domain.extend(ics.constants());
    domain.insert(Value::Null);
    let domain: Vec<Value> = domain.into_iter().collect();

    let mut atoms: Vec<DatabaseAtom> = d.atoms().collect();
    let existing: BTreeSet<DatabaseAtom> = atoms.iter().cloned().collect();
    for (rel, decl) in d.schema().iter() {
        let arity = decl.arity();
        let mut indices = vec![0usize; arity];
        loop {
            let tuple: Tuple = indices.iter().map(|&i| domain[i]).collect();
            let atom = DatabaseAtom::new(rel, tuple);
            if !existing.contains(&atom) {
                atoms.push(atom);
            }
            // Odometer increment.
            let mut pos = 0;
            loop {
                if pos == arity {
                    break;
                }
                indices[pos] += 1;
                if indices[pos] < domain.len() {
                    break;
                }
                indices[pos] = 0;
                pos += 1;
            }
            if pos == arity {
                break;
            }
        }
        if arity == 0 {
            // Zero-arity relations: single empty tuple handled above once.
        }
    }
    atoms
}

/// Enumerate every subset of `universe` as an instance; the callback
/// returns `false` to stop. Panics if the universe exceeds 20 atoms
/// (2^20 instances is the sanity bound for oracle use).
pub fn for_each_subset(
    schema: Arc<Schema>,
    universe: &[DatabaseAtom],
    mut f: impl FnMut(&Instance) -> bool,
) {
    let n = universe.len();
    assert!(
        n <= 20,
        "brute-force universe too large ({n} atoms); oracle is for tiny inputs"
    );
    for mask in 0u64..(1u64 << n) {
        let atoms = universe
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, a)| a.clone());
        let inst = Instance::from_atoms(schema.clone(), atoms).expect("universe atoms well-typed");
        if !f(&inst) {
            return;
        }
    }
}

/// All repairs of `d` wrt `ics`, by exhaustive search.
pub fn oracle_repairs(d: &Instance, ics: &IcSet) -> Vec<Instance> {
    let universe = candidate_universe(d, ics);
    let mut consistent: Vec<Instance> = Vec::new();
    for_each_subset(d.schema().clone(), &universe, |inst| {
        if is_consistent(inst, ics) {
            consistent.push(inst.clone());
        }
        true
    });
    minimize_candidates(d, consistent).expect("same schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{v, Constraint, Ic};
    use cqa_relational::s;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("P", ["a"])
            .relation("Q", ["x"])
            .finish()
            .unwrap()
            .into_shared()
    }

    #[test]
    fn universe_contains_original_atoms_and_null_variants() {
        let sc = schema();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("P", [s("a")]).unwrap();
        let ics = IcSet::default();
        let universe = candidate_universe(&d, &ics);
        // domain = {a, null}; per relation 2 tuples → 4 atoms total.
        assert_eq!(universe.len(), 4);
        assert_eq!(universe[0], d.atoms().next().unwrap());
    }

    #[test]
    fn universe_includes_ic_constants() {
        let sc = schema();
        let d = Instance::empty(sc.clone());
        let ic = Ic::builder(&sc, "k")
            .body_atom("P", [v("x")])
            .builtin(
                v("x"),
                cqa_constraints::CmpOp::Neq,
                cqa_constraints::c(s("z")),
            )
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic)]);
        let universe = candidate_universe(&d, &ics);
        // domain = {z, null} → 2 tuples per relation.
        assert_eq!(universe.len(), 4);
    }

    #[test]
    fn oracle_on_consistent_instance_returns_it() {
        let sc = schema();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("P", [s("a")]).unwrap();
        let ic = Ic::builder(&sc, "incl")
            .body_atom("P", [v("x")])
            .head_atom("Q", [v("x")])
            .finish()
            .unwrap();
        let mut d_ok = d.clone();
        d_ok.insert_named("Q", [s("a")]).unwrap();
        let ics = IcSet::new([Constraint::from(ic)]);
        let repairs = oracle_repairs(&d_ok, &ics);
        assert_eq!(repairs, vec![d_ok]);
    }

    #[test]
    fn oracle_finds_both_repairs_of_inclusion_violation() {
        // D = {P(a)}, IC: P(x) → Q(x): repairs {} and {P(a), Q(a)}.
        let sc = schema();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("P", [s("a")]).unwrap();
        let ic = Ic::builder(&sc, "incl")
            .body_atom("P", [v("x")])
            .head_atom("Q", [v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic)]);
        let repairs = oracle_repairs(&d, &ics);
        assert_eq!(repairs.len(), 2);
        let sizes: Vec<usize> = repairs.iter().map(Instance::len).collect();
        assert!(sizes.contains(&0));
        assert!(sizes.contains(&2));
    }

    #[test]
    fn oracle_example16() {
        // D = {Q(a,b), P(a,c)}; ψ1: P(x,y) → ∃z Q(x,z); ψ2: Q(x,y) → y ≠ b.
        let sc = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("Q", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("P", [s("a"), s("c")]).unwrap();
        d.insert_named("Q", [s("a"), s("b")]).unwrap();
        let psi1 = Ic::builder(&sc, "psi1")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("z")])
            .finish()
            .unwrap();
        let psi2 = Ic::builder(&sc, "psi2")
            .body_atom("Q", [v("x"), v("y")])
            .builtin(
                v("y"),
                cqa_constraints::CmpOp::Neq,
                cqa_constraints::c(s("b")),
            )
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(psi1), Constraint::from(psi2)]);
        // Universe: domain {a,b,c,null}: P and Q each 16 tuples → 32 atoms:
        // too big for subset enumeration. Shrink: restrict to a 1-ary-ish
        // variant is not faithful; instead verify via the engine elsewhere.
        // Here: only check the universe bound panics.
        let universe = candidate_universe(&d, &ics);
        assert!(universe.len() > 20);
    }

    #[test]
    fn example16_with_tight_domain() {
        // Same shape as Example 16 but over unary relations so the oracle
        // applies: D = {Q(b), P(a)}, ψ1: P(x) → Q′(x)… simplified to keep
        // the two-repair structure: IC1: P(x) → R(x); IC2: Q(x) → false.
        let sc = Schema::builder()
            .relation("P", ["a"])
            .relation("Q", ["x"])
            .relation("R", ["r"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("P", [s("a")]).unwrap();
        d.insert_named("Q", [s("a")]).unwrap();
        let ic1 = Ic::builder(&sc, "ic1")
            .body_atom("P", [v("x")])
            .head_atom("R", [v("x")])
            .finish()
            .unwrap();
        let ic2 = Ic::builder(&sc, "ic2")
            .body_atom("Q", [v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic1), Constraint::from(ic2)]);
        let repairs = oracle_repairs(&d, &ics);
        // Q(a) must go; P(a) either deleted or joined by R(a): 2 repairs.
        assert_eq!(repairs.len(), 2);
        for r in &repairs {
            assert!(is_consistent(r, &ics));
            assert!(r.relation_named("Q").unwrap().is_empty());
        }
    }

    #[test]
    fn null_only_universe_for_empty_instance() {
        let sc = schema();
        let d = Instance::empty(sc);
        let ics = IcSet::default();
        let universe = candidate_universe(&d, &ics);
        // domain = {null} → one tuple per relation.
        assert_eq!(universe.len(), 2);
        assert!(universe.iter().all(|a| a.tuple.all_null()));
    }
}
