//! Error type for the repair and CQA layers.

use std::fmt;

/// Errors raised by repair enumeration, program generation and CQA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The constraint set has conflicting NOT NULL / existential
    /// interactions (Example 20) and the chosen semantics requires the
    /// paper's non-conflicting assumption. The pairs are
    /// `(tgd index, nnc index)` into the constraint set.
    ConflictingConstraints(Vec<(usize, usize)>),
    /// A constraint falls outside the class handled by Definition 9
    /// programs (UICs, RICs, NNCs) — e.g. a repeated existential variable
    /// or a disjunctive head with existentials.
    UnsupportedByProgram {
        /// Constraint name.
        constraint: String,
        /// Why it is unsupported.
        reason: String,
    },
    /// The search exceeded its node budget (the repair space is
    /// exponential in the number of interacting violations).
    BudgetExceeded {
        /// The configured budget.
        budget: usize,
    },
    /// A relational-layer error (arity mismatches and the like).
    Relational(cqa_relational::RelationalError),
    /// An ASP-layer error surfaced during program construction.
    Asp(cqa_asp::AspError),
    /// The repair program unexpectedly has no stable models (cannot
    /// happen for non-conflicting sets; indicates a malformed program).
    NoStableModels,
    /// A query failed validation (safety, arity, unknown relation).
    InvalidQuery(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ConflictingConstraints(pairs) => write!(
                f,
                "constraint set is conflicting (NOT NULL on an existential attribute) at pairs {pairs:?}; \
                 use RepairSemantics::DeletionPreferring or drop the NNC"
            ),
            CoreError::UnsupportedByProgram { constraint, reason } => {
                write!(f, "constraint `{constraint}` not expressible as a Definition-9 repair program: {reason}")
            }
            CoreError::BudgetExceeded { budget } => {
                write!(f, "repair search exceeded its node budget of {budget}")
            }
            CoreError::Relational(e) => write!(f, "relational error: {e}"),
            CoreError::Asp(e) => write!(f, "logic-program error: {e}"),
            CoreError::NoStableModels => write!(f, "repair program has no stable models"),
            CoreError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<cqa_relational::RelationalError> for CoreError {
    fn from(e: cqa_relational::RelationalError) -> Self {
        CoreError::Relational(e)
    }
}

impl From<cqa_asp::AspError> for CoreError {
    fn from(e: cqa_asp::AspError) -> Self {
        CoreError::Asp(e)
    }
}
