//! Error type for the repair and CQA layers.

use std::fmt;

/// Errors raised by repair enumeration, program generation and CQA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The constraint set has conflicting NOT NULL / existential
    /// interactions (Example 20) and the chosen semantics requires the
    /// paper's non-conflicting assumption. The pairs are
    /// `(tgd index, nnc index)` into the constraint set.
    ConflictingConstraints(Vec<(usize, usize)>),
    /// A constraint falls outside the class handled by Definition 9
    /// programs (UICs, RICs, NNCs) — e.g. a repeated existential variable
    /// or a disjunctive head with existentials.
    UnsupportedByProgram {
        /// Constraint name.
        constraint: String,
        /// Why it is unsupported.
        reason: String,
    },
    /// The search exceeded its node budget (the repair space is
    /// exponential in the number of interacting violations).
    BudgetExceeded {
        /// The configured budget.
        budget: usize,
    },
    /// A relational-layer error (arity mismatches and the like).
    Relational(cqa_relational::RelationalError),
    /// An ASP-layer error surfaced during program construction.
    Asp(cqa_asp::AspError),
    /// The repair program unexpectedly has no stable models (cannot
    /// happen for non-conflicting sets; indicates a malformed program).
    NoStableModels,
    /// A query failed validation (safety, arity, unknown relation).
    InvalidQuery(String),
    /// A cancellation token (deadline or manual cancel) tripped while an
    /// engine was running. `partial` counts the *sound* intermediate
    /// results completed before the interrupt — see [`InterruptPhase`]
    /// for what each phase counts. The computation's caller-visible state
    /// is unchanged; retrying with a larger deadline is always safe.
    Interrupted {
        /// Which engine observed the cancellation.
        phase: InterruptPhase,
        /// Sound intermediate results completed before the interrupt.
        partial: usize,
    },
    /// A worker thread of the parallel repair search panicked. The pool
    /// shut down cleanly (siblings drained, no lock poisoned from the
    /// caller's view) and remains usable for subsequent calls.
    WorkerPanic {
        /// The panic payload, if it was a string.
        message: String,
    },
}

/// Which engine loop a [`CoreError::Interrupted`] surfaced from, and what
/// its `partial` count means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptPhase {
    /// Grounding the repair program. `partial` is always 0: a partial
    /// grounding supports no sound conclusions and is discarded.
    Grounding,
    /// The repair search tree walk. `partial` counts minimal-candidate
    /// repairs collected so far — an under-approximation of the repair
    /// set, pending the final minimality cross-check.
    RepairSearch,
    /// Stable-model enumeration on the program route. `partial` counts
    /// models fully enumerated and verified stable; each is a genuine
    /// repair candidate even though the enumeration is incomplete.
    ModelEnumeration,
    /// Per-repair query evaluation during consistent-answer
    /// intersection. `partial` counts repairs whose answers were fully
    /// intersected (the running intersection over-approximates until
    /// every repair is seen, so it is not returned).
    QueryEvaluation,
}

impl fmt::Display for InterruptPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptPhase::Grounding => write!(f, "grounding"),
            InterruptPhase::RepairSearch => write!(f, "repair search"),
            InterruptPhase::ModelEnumeration => write!(f, "stable-model enumeration"),
            InterruptPhase::QueryEvaluation => write!(f, "query evaluation"),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ConflictingConstraints(pairs) => write!(
                f,
                "constraint set is conflicting (NOT NULL on an existential attribute) at pairs {pairs:?}; \
                 use RepairSemantics::DeletionPreferring or drop the NNC"
            ),
            CoreError::UnsupportedByProgram { constraint, reason } => {
                write!(f, "constraint `{constraint}` not expressible as a Definition-9 repair program: {reason}")
            }
            CoreError::BudgetExceeded { budget } => {
                write!(f, "repair search exceeded its node budget of {budget}")
            }
            CoreError::Relational(e) => write!(f, "relational error: {e}"),
            CoreError::Asp(e) => write!(f, "logic-program error: {e}"),
            CoreError::NoStableModels => write!(f, "repair program has no stable models"),
            CoreError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            CoreError::Interrupted { phase, partial } => {
                write!(
                    f,
                    "interrupted during {phase} ({partial} sound partial results)"
                )
            }
            CoreError::WorkerPanic { message } => {
                write!(f, "parallel repair-search worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<cqa_relational::RelationalError> for CoreError {
    fn from(e: cqa_relational::RelationalError) -> Self {
        CoreError::Relational(e)
    }
}

impl From<cqa_asp::AspError> for CoreError {
    fn from(e: cqa_asp::AspError) -> Self {
        CoreError::Asp(e)
    }
}
