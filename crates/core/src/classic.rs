//! The classic repair semantics of Arenas, Bertossi & Chomicki 1999 —
//! reference \[2\] of the paper — as the baseline of Examples 14/15.
//!
//! Classic repairs minimise the symmetric difference `Δ(D, D′)` under set
//! inclusion, with no special role for `null`: restoring a referential
//! constraint by insertion must pick *concrete* values for the existential
//! attributes, one repair per choice. Over an infinite domain this yields
//! infinitely many repairs (and CQA is undecidable for cyclic referential
//! sets, Calì–Lembo–Rosati 2003 — reference \[11\]); this module therefore
//! takes the candidate value domain as an explicit, finite parameter so
//! the growth is observable (experiment E11).

use crate::error::CoreError;
use cqa_constraints::{first_violation, IcSet, SatMode, Term, Violation, ViolationKind};
use cqa_relational::{delta, DatabaseAtom, Instance, Tuple, Value};
use std::collections::BTreeMap;

/// All classic repairs of `d` wrt `ics`, with insertions drawing
/// existential values from `domain`. `null` in the domain is allowed but
/// defeats the point of the baseline; Example 14 uses plain constants.
pub fn repairs_with_domain(
    d: &Instance,
    ics: &IcSet,
    domain: &[Value],
    node_budget: usize,
) -> Result<Vec<Instance>, CoreError> {
    let mut search = Search {
        ics,
        domain,
        node_budget,
        nodes: 0,
        candidates: Vec::new(),
    };
    let mut decisions = BTreeMap::new();
    search.run(d.clone(), &mut decisions)?;
    // ⊆-minimise the symmetric differences.
    let mut unique: Vec<Instance> = Vec::new();
    for c in search.candidates {
        if !unique.contains(&c) {
            unique.push(c);
        }
    }
    let deltas: Vec<_> = unique
        .iter()
        .map(|c| delta(d, c))
        .collect::<Result<Vec<_>, _>>()?;
    let mut keep = Vec::new();
    'outer: for (i, di) in deltas.iter().enumerate() {
        for (j, dj) in deltas.iter().enumerate() {
            if i != j && dj.subset_of(di) && dj.len() < di.len() {
                continue 'outer;
            }
        }
        keep.push(unique[i].clone());
    }
    keep.sort_by(|a, b| {
        a.atoms()
            .collect::<Vec<_>>()
            .cmp(&b.atoms().collect::<Vec<_>>())
    });
    Ok(keep)
}

struct Search<'a> {
    ics: &'a IcSet,
    domain: &'a [Value],
    node_budget: usize,
    nodes: usize,
    candidates: Vec<Instance>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    Inserted,
    Deleted,
}

impl Search<'_> {
    fn run(
        &mut self,
        current: Instance,
        decisions: &mut BTreeMap<DatabaseAtom, Decision>,
    ) -> Result<(), CoreError> {
        self.nodes += 1;
        if self.nodes > self.node_budget {
            return Err(CoreError::BudgetExceeded {
                budget: self.node_budget,
            });
        }
        let Some(violation) = first_violation(&current, self.ics, SatMode::Classical) else {
            self.candidates.push(current);
            return Ok(());
        };
        for fix in self.fixes(&violation) {
            let (atom, decision) = match &fix {
                Fix::Delete(a) => (a, Decision::Deleted),
                Fix::Insert(a) => (a, Decision::Inserted),
            };
            let conflicting = match decision {
                Decision::Deleted => decisions.get(atom) == Some(&Decision::Inserted),
                Decision::Inserted => decisions.get(atom) == Some(&Decision::Deleted),
            };
            if conflicting {
                continue;
            }
            let fresh = !decisions.contains_key(atom);
            if fresh {
                decisions.insert(atom.clone(), decision);
            }
            let next = match decision {
                Decision::Deleted => current.without_atom(atom),
                Decision::Inserted => current.with_atom(atom),
            };
            self.run(next, decisions)?;
            if fresh {
                decisions.remove(atom);
            }
        }
        Ok(())
    }

    fn fixes(&self, violation: &Violation) -> Vec<Fix> {
        let mut out = Vec::new();
        match &violation.kind {
            ViolationKind::NotNull { atom, .. } => out.push(Fix::Delete(atom.clone())),
            ViolationKind::Tgd {
                bindings,
                body_atoms,
            } => {
                for a in body_atoms {
                    let fix = Fix::Delete(a.clone());
                    if !out.contains(&fix) {
                        out.push(fix);
                    }
                }
                let ic = self.ics.constraints()[violation.constraint_index]
                    .as_ic()
                    .expect("Tgd violation");
                for head in ic.head() {
                    // Enumerate every domain valuation of the existential
                    // positions — the classic semantics' insertion space.
                    let ex_positions: Vec<usize> = head
                        .terms
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| matches!(t, Term::Var(v) if bindings[v.index()].is_none()))
                        .map(|(i, _)| i)
                        .collect();
                    let base: Vec<Value> = head
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Const(c) => *c,
                            Term::Var(v) => bindings[v.index()].unwrap_or(Value::Null),
                        })
                        .collect();
                    let mut odometer = vec![0usize; ex_positions.len()];
                    loop {
                        let mut vals = base.clone();
                        for (slot, &pos) in ex_positions.iter().enumerate() {
                            vals[pos] = self.domain[odometer[slot]];
                        }
                        // Repeated existential variables must agree; the
                        // odometer assigns per-position, so filter
                        // inconsistent choices.
                        if consistent_repeats(head, bindings, &vals) {
                            let fix = Fix::Insert(DatabaseAtom::new(head.rel, Tuple::new(vals)));
                            if !out.contains(&fix) {
                                out.push(fix);
                            }
                        }
                        if ex_positions.is_empty() {
                            break;
                        }
                        let mut slot = 0;
                        loop {
                            if slot == odometer.len() {
                                break;
                            }
                            odometer[slot] += 1;
                            if odometer[slot] < self.domain.len() {
                                break;
                            }
                            odometer[slot] = 0;
                            slot += 1;
                        }
                        if slot == odometer.len() {
                            break;
                        }
                    }
                }
            }
        }
        out
    }
}

fn consistent_repeats(
    head: &cqa_constraints::IcAtom,
    bindings: &[Option<Value>],
    vals: &[Value],
) -> bool {
    let mut seen: BTreeMap<u32, &Value> = BTreeMap::new();
    for (i, t) in head.terms.iter().enumerate() {
        if let Term::Var(v) = t {
            if bindings[v.index()].is_none() {
                if let Some(prev) = seen.get(&v.0) {
                    if *prev != &vals[i] {
                        return false;
                    }
                } else {
                    seen.insert(v.0, &vals[i]);
                }
            }
        }
    }
    true
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Fix {
    Delete(DatabaseAtom),
    Insert(DatabaseAtom),
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{v, Constraint, Ic};
    use cqa_relational::{s, Schema};
    use std::sync::Arc;

    /// Example 14: Course/Student with the classic semantics.
    fn example14() -> (Arc<Schema>, Instance, IcSet) {
        let sc = Schema::builder()
            .relation("Course", ["ID", "Code"])
            .relation("Student", ["ID", "Name"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("Course", [s("21"), s("C15")]).unwrap();
        d.insert_named("Course", [s("34"), s("C18")]).unwrap();
        d.insert_named("Student", [s("21"), s("Ann")]).unwrap();
        d.insert_named("Student", [s("45"), s("Paul")]).unwrap();
        let ric = Ic::builder(&sc, "ric")
            .body_atom("Course", [v("id"), v("code")])
            .head_atom("Student", [v("id"), v("name")])
            .finish()
            .unwrap();
        (sc, d, IcSet::new([Constraint::from(ric)]))
    }

    #[test]
    fn example14_repair_count_grows_with_domain() {
        let (_, d, ics) = example14();
        for k in [1usize, 2, 4, 8] {
            let domain: Vec<Value> = (0..k).map(|i| s(&format!("mu{i}"))).collect();
            let reps = repairs_with_domain(&d, &ics, &domain, 1 << 20).unwrap();
            // one deletion repair + one insertion repair per domain value
            assert_eq!(reps.len(), k + 1, "domain size {k}");
        }
    }

    #[test]
    fn classic_repairs_are_consistent_classically() {
        let (_, d, ics) = example14();
        let domain = vec![s("mu")];
        for r in repairs_with_domain(&d, &ics, &domain, 1 << 20).unwrap() {
            assert!(cqa_constraints::violations(&r, &ics, SatMode::Classical).is_empty());
        }
    }

    #[test]
    fn consistent_database_unique_repair() {
        let (sc, _, ics) = example14();
        let mut d = Instance::empty(sc);
        d.insert_named("Course", [s("21"), s("C15")]).unwrap();
        d.insert_named("Student", [s("21"), s("Ann")]).unwrap();
        let reps = repairs_with_domain(&d, &ics, &[s("mu")], 1 << 20).unwrap();
        assert_eq!(reps, vec![d]);
    }

    #[test]
    fn budget_respected() {
        let (_, d, ics) = example14();
        let domain: Vec<Value> = (0..64).map(|i| s(&format!("m{i}"))).collect();
        assert!(matches!(
            repairs_with_domain(&d, &ics, &domain, 2),
            Err(CoreError::BudgetExceeded { .. })
        ));
    }
}
