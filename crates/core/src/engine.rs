//! Repair enumeration by violation-driven decision search.
//!
//! A branch state is the original instance plus a set of *decisions*
//! (`atom ↦ Inserted | Deleted`). The loop picks a violation of the
//! current instance (deterministic order) and branches over its minimal
//! fixes:
//!
//! * form-(1) violation with assignment σ — delete any one matched ground
//!   body atom, or insert any one consequent atom instantiated with σ at
//!   the universal positions and `null` at the existential positions (the
//!   paper's null-privileging repair steps; value-insertions are `≤_D`-
//!   dominated by null-insertions, Example 17);
//! * denial / check violation — deletions only (nothing to insert);
//! * NOT NULL violation — delete the offending tuple.
//!
//! Decisions never flip (an atom once inserted is protected, once deleted
//! stays out — mirroring the program denial `← P(t_a), P(f_a)` of
//! Definition 9), which makes every branch terminate: the decided-atom set
//! grows monotonically inside the finite Proposition-1 universe.
//! Fixpoints are consistent candidates; the result is their
//! `≤_D`-minimisation. The engine is validated against the brute-force
//! oracle in the property suite.
//!
//! ## Incremental search (the default strategy)
//!
//! The naive loop re-scans the *whole instance* for a violation at every
//! search node — O(data) per node even when only one atom changed. The
//! default [`SearchStrategy::Incremental`] instead carries a **violation
//! worklist** down the tree:
//!
//! * the root worklist is the full violation set (index-probed scan);
//! * each branch applies its single-atom decision as a [`Delta`] *in
//!   place* (fixpoints record their decision delta instead of snapshotting,
//!   so the relation `Arc`s stay unshared and every in-place change is
//!   O(log n), never a copy-on-write of the instance), appends the
//!   violations touching that delta
//!   ([`cqa_constraints::violations_touching`]), and recurses;
//! * on entry a node lazily re-validates worklist entries
//!   ([`cqa_constraints::violation_active`]) until it finds a live one to
//!   branch on — entries invalidated by ancestor decisions drop out here;
//! * on exit the branch delta is reverted.
//!
//! Per-node cost is therefore bounded by the conflict neighbourhood of one
//! change, not by instance size — the operational form of the paper's
//! observation that repairs differ from `D` only inside the Proposition-1
//! universe. [`SearchStrategy::FullRescan`] retains the naive per-node
//! rescan for A/B benchmarking and as a secondary oracle.
//!
//! The post-search pipeline is delta-based too: every fixpoint records its
//! decision delta (which *is* Δ(D, candidate), since decisions never flip),
//! so candidate de-duplication and `≤_D`-minimisation
//! ([`crate::repair::minimal_delta_indices`]) compare symmetric
//! differences in O(Δ) per pair instead of recomputing Δ against — or
//! comparing — full instances.
//!
//! ## Parallel search architecture
//!
//! Branches of the decision search are independent given the decision
//! prefix that reaches them, so [`SearchStrategy::Parallel`] runs the same
//! incremental worklist search across a work-stealing pool
//! ([`crate::parallel`], std-only):
//!
//! * **Tasks, not stacks.** A search node is a self-contained task: its
//!   branch path (the sequence of fix indices from the root, the key that
//!   pins output order), its decision map, trace, and the inherited
//!   violation worklist plus the not-yet-expanded delta of the decision
//!   that created it. Expanding a node pushes one task per viable fix onto
//!   the worker's own deque (LIFO end, preserving depth-first locality);
//!   idle workers steal from the opposite (FIFO) end, taking the shallow,
//!   large-subtree tasks.
//! * **One fork per worker.** Each worker owns a CoW fork of the base
//!   instance (relation extensions and index snapshots are `Arc`-shared
//!   until first touch) and *reconciles* it between tasks by applying the
//!   set difference of the outgoing and incoming cumulative decision
//!   deltas — O(Δ) instance work per task, never a rebuild.
//! * **Deterministic join.** Fixpoints publish `(path, Δ, trace)` into a
//!   shared collector. After the pool drains, candidates are sorted by
//!   path — lexicographic path order *is* sequential depth-first discovery
//!   order — so de-duplication, `≤_D`-minimisation and materialisation see
//!   the exact candidate sequence the single-threaded strategies produce,
//!   and the final repair list is byte-identical at every thread count
//!   (the property suite and the 50-run scheduling stress test pin this).
//! * **Parallel materialisation.** Surviving repairs are materialised
//!   (base + Δ) and sort-keyed across the same worker count, then merged
//!   in pinned order.
//!
//! The root violation scan — the one remaining O(instance) step — is
//! cached across `repairs*` calls keyed by [`Instance::version`] and the
//! constraint set, so repeated enumeration over an unchanged instance
//! starts from the conflict set directly. The cache lives in a
//! [`crate::cache::CqaCaches`] bundle: the free functions use the
//! process-wide default ([`worklist_cache_stats`]), while the `Database`
//! facade passes its per-tenant bundle through the `*_in` variants so
//! co-resident databases cannot evict each other's scans.

use crate::cache::CqaCaches;
use crate::error::{CoreError, InterruptPhase};
use crate::repair::minimal_delta_indices_chunked;
use cqa_constraints::{
    first_violation_naive, violation_active, violations_touching, Constraint, IcSet, SatMode, Term,
    Violation, ViolationKind,
};
use cqa_relational::{CancelToken, DatabaseAtom, Delta, Instance, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Which repair semantics to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairSemantics {
    /// The paper's null-based semantics (Definitions 6–7). Requires a
    /// non-conflicting constraint set; conflicting sets are rejected with
    /// [`CoreError::ConflictingConstraints`].
    #[default]
    NullBased,
    /// `Rep_d`: NOT-NULL-conflicting referential violations are repaired
    /// by deletion only (the paper's remark after Example 20). Accepts
    /// conflicting sets.
    DeletionPreferring,
}

/// How the search finds the violation to branch on at each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Delta-driven worklist: per-node cost scales with conflict size.
    #[default]
    Incremental,
    /// Naive full-instance rescan per node (the seed behaviour): retained
    /// as an A/B baseline for the scaling benchmarks and as a secondary
    /// oracle in tests.
    FullRescan,
    /// The incremental worklist search distributed over a work-stealing
    /// pool of `threads` workers (see the module docs' "Parallel search
    /// architecture"). Output — repairs, traces, errors — is byte-identical
    /// to [`SearchStrategy::Incremental`] at every thread count; `threads`
    /// is clamped to at least 1.
    Parallel {
        /// Worker-thread count.
        threads: usize,
    },
}

/// Search configuration.
#[derive(Debug, Clone, Copy)]
pub struct RepairConfig {
    /// Semantics variant.
    pub semantics: RepairSemantics,
    /// Maximum number of search nodes (branches are exponential in the
    /// number of interacting violations).
    pub node_budget: usize,
    /// Violation-finding strategy.
    pub strategy: SearchStrategy,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            semantics: RepairSemantics::NullBased,
            node_budget: 1 << 22,
            strategy: SearchStrategy::Incremental,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Decision {
    Inserted,
    Deleted,
}

/// What a repair step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairAction {
    /// The atom was inserted (a `t_a` decision).
    Insert,
    /// The atom was deleted (an `f_a` decision).
    Delete,
}

/// One step of a repair derivation: which constraint fired and how the
/// violation was fixed — the "sequence of local repairs" view the paper's
/// Section 7(c) sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairStep {
    /// Name of the violated constraint.
    pub constraint: String,
    /// Insert or delete.
    pub action: RepairAction,
    /// The atom acted on.
    pub atom: DatabaseAtom,
}

/// A repair together with the decision sequence that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedRepair {
    /// The repaired instance.
    pub instance: Instance,
    /// The decisions, in the order the search made them.
    pub steps: Vec<RepairStep>,
}

/// All repairs of `d` wrt `ics` under the default configuration.
pub fn repairs(d: &Instance, ics: &IcSet) -> Result<Vec<Instance>, CoreError> {
    repairs_with_config(d, ics, RepairConfig::default())
}

/// All repairs of `d` wrt `ics`, using the process-wide default caches.
pub fn repairs_with_config(
    d: &Instance,
    ics: &IcSet,
    config: RepairConfig,
) -> Result<Vec<Instance>, CoreError> {
    repairs_with_config_in(d, ics, config, crate::cache::global())
}

/// [`repairs_with_config`] against an explicit cache bundle (the facade
/// passes its per-database one).
pub fn repairs_with_config_in(
    d: &Instance,
    ics: &IcSet,
    config: RepairConfig,
    caches: &CqaCaches,
) -> Result<Vec<Instance>, CoreError> {
    repairs_with_config_governed(d, ics, config, caches, &CancelToken::never())
}

/// [`repairs_with_config_in`] under a cancellation token (see
/// [`repairs_with_trace_governed`]).
pub fn repairs_with_config_governed(
    d: &Instance,
    ics: &IcSet,
    config: RepairConfig,
    caches: &CqaCaches,
    cancel: &CancelToken,
) -> Result<Vec<Instance>, CoreError> {
    Ok(repairs_with_trace_governed(d, ics, config, caches, cancel)?
        .into_iter()
        .map(|t| t.instance)
        .collect())
}

/// All repairs with the decision sequences that produced them
/// (provenance; the paper's Section 7(b)/(c) hooks). Process-wide default
/// caches.
pub fn repairs_with_trace(
    d: &Instance,
    ics: &IcSet,
    config: RepairConfig,
) -> Result<Vec<TracedRepair>, CoreError> {
    repairs_with_trace_in(d, ics, config, crate::cache::global())
}

/// [`repairs_with_trace`] against an explicit cache bundle.
pub fn repairs_with_trace_in(
    d: &Instance,
    ics: &IcSet,
    config: RepairConfig,
    caches: &CqaCaches,
) -> Result<Vec<TracedRepair>, CoreError> {
    repairs_with_trace_governed(d, ics, config, caches, &CancelToken::never())
}

/// [`repairs_with_trace_in`] under a cancellation token. Every search
/// node polls `cancel` (sequential and parallel strategies alike); a
/// tripped token surfaces as [`CoreError::Interrupted`] with
/// `phase = RepairSearch` and `partial` counting the candidate repairs
/// collected before the interrupt.
pub fn repairs_with_trace_governed(
    d: &Instance,
    ics: &IcSet,
    config: RepairConfig,
    caches: &CqaCaches,
    cancel: &CancelToken,
) -> Result<Vec<TracedRepair>, CoreError> {
    if config.semantics == RepairSemantics::NullBased && !ics.is_non_conflicting() {
        return Err(CoreError::ConflictingConstraints(ics.conflicting_pairs()));
    }
    let (candidates, threads) = match config.strategy {
        SearchStrategy::Parallel { threads } => {
            let threads = threads.max(1);
            (
                crate::parallel::search(d, ics, config, threads, caches, cancel)?,
                threads,
            )
        }
        sequential => {
            let mut search = Search {
                ics,
                config,
                nodes: 0,
                candidates: Vec::new(),
                cancel: cancel.clone(),
            };
            let mut decisions = BTreeMap::new();
            let mut trace = Vec::new();
            match sequential {
                SearchStrategy::Incremental => {
                    let mut work = d.clone();
                    let worklist = caches.worklist.root_worklist(&work, ics);
                    search.run_incremental(&mut work, worklist, &mut decisions, &mut trace)?;
                }
                SearchStrategy::FullRescan => {
                    search.run_rescan(d.clone(), &mut decisions, &mut trace)?;
                }
                SearchStrategy::Parallel { .. } => unreachable!("handled above"),
            }
            (search.candidates, 1)
        }
    };
    Ok(finish_candidates(d, candidates, threads))
}

/// The shared post-search pipeline: deduplicate fixpoint candidates,
/// `≤_D`-minimise, materialise the survivors and pin the output order.
///
/// `candidates` must arrive in sequential depth-first discovery order (the
/// parallel scheduler sorts by branch path before calling, which is the
/// same order), so the trace kept for a duplicated delta — the first-found
/// one — is identical across all strategies.
///
/// Deduplication is by decision delta — against one base, equal deltas
/// mean equal instances. The search tracked each candidate's delta, so
/// neither deduplication nor minimisation ever recomputes Δ(D, candidate)
/// against the full instance: both are O(Δ) per comparison. Only the
/// `≤_D`-minimal survivors are materialised (base + Δ), fanned out over
/// `threads` workers when the parallel strategy is active — non-minimal
/// candidates never touch the instance, and the search itself never
/// snapshots one.
fn finish_candidates(
    d: &Instance,
    candidates: Vec<(Delta, Vec<RepairStep>)>,
    threads: usize,
) -> Vec<TracedRepair> {
    let mut unique: Vec<(Delta, Vec<RepairStep>)> = Vec::new();
    let mut seen: BTreeSet<Delta> = BTreeSet::new();
    for (delta, steps) in candidates {
        if seen.insert(delta.clone()) {
            unique.push((delta, steps));
        }
    }
    let deltas: Vec<Delta> = unique.iter().map(|(dl, _)| dl.clone()).collect();
    let keep = minimal_delta_indices_chunked(&deltas, threads);
    let mut keyed = materialise(d, &unique, &keep, threads);
    // Deterministic order: by atom list. Distinct repairs have distinct
    // atom lists (equal-delta candidates were deduplicated), so the order
    // is total regardless of how the keyed pairs were produced.
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.into_iter().map(|(_, repair)| repair).collect()
}

/// Materialise the kept candidates (base + Δ) together with their sort
/// keys, chunked across `threads` scoped workers when it pays: with
/// hundreds of surviving repairs over a large base, the copy-on-write
/// `apply_delta` per survivor is the dominant serial tail of the parallel
/// strategy.
fn materialise(
    d: &Instance,
    unique: &[(Delta, Vec<RepairStep>)],
    keep: &[usize],
    threads: usize,
) -> Vec<(Vec<DatabaseAtom>, TracedRepair)> {
    crate::parallel::chunked_map(keep.len(), threads, |k| {
        let i = keep[k];
        let mut instance = d.clone();
        instance.apply_delta(&unique[i].0);
        let key: Vec<DatabaseAtom> = instance.atoms().collect();
        let repair = TracedRepair {
            instance,
            steps: unique[i].1.clone(),
        };
        (key, repair)
    })
}

/// Lifetime counters of the *process-wide default* root-worklist cache,
/// for tests and diagnostics. Meaningful as before/after deltas, not as
/// absolute values. Per-database bundles report through
/// [`crate::cache::WorklistCache::stats`] instead.
pub fn worklist_cache_stats() -> crate::cache::WorklistCacheStats {
    crate::cache::global().worklist.stats()
}

/// The symmetric difference a decision set denotes: decisions never flip
/// and inserts/deletes are only ever applied to absent/present atoms, so
/// the decision map *is* Δ(D, current) at every fixpoint.
pub(crate) fn delta_of(decisions: &BTreeMap<DatabaseAtom, Decision>) -> Delta {
    let mut delta = Delta::default();
    for (atom, decision) in decisions {
        match decision {
            Decision::Inserted => {
                delta.inserted.insert(atom.clone());
            }
            Decision::Deleted => {
                delta.removed.insert(atom.clone());
            }
        }
    }
    delta
}

struct Search<'a> {
    ics: &'a IcSet,
    config: RepairConfig,
    nodes: usize,
    /// Consistent fixpoints: each candidate's decision delta (which *is*
    /// Δ(D, candidate), since decisions never flip) and the decision trace
    /// that produced it. Candidates are *not* snapshotted — cloning at a
    /// fixpoint would share the relation/index `Arc`s and turn the
    /// parent's next in-place delta into an O(instance) copy-on-write.
    candidates: Vec<(Delta, Vec<RepairStep>)>,
    /// Governor token, polled once per charged search node.
    cancel: CancelToken,
}

impl Search<'_> {
    fn charge_node(&mut self) -> Result<(), CoreError> {
        if self.cancel.is_cancelled() {
            return Err(CoreError::Interrupted {
                phase: InterruptPhase::RepairSearch,
                partial: self.candidates.len(),
            });
        }
        self.nodes += 1;
        if self.nodes > self.config.node_budget {
            return Err(CoreError::BudgetExceeded {
                budget: self.config.node_budget,
            });
        }
        Ok(())
    }

    /// Incremental search: the worklist carries every violation that may
    /// still be live; each node re-validates lazily until it finds one to
    /// branch on, and each branch extends the worklist with the violations
    /// touching its single-atom delta. `current` is mutated in place and
    /// restored before returning.
    fn run_incremental(
        &mut self,
        current: &mut Instance,
        worklist: Vec<Violation>,
        decisions: &mut BTreeMap<DatabaseAtom, Decision>,
        trace: &mut Vec<RepairStep>,
    ) -> Result<(), CoreError> {
        self.charge_node()?;
        let mut pending = worklist.into_iter();
        let violation = loop {
            match pending.next() {
                Some(v) if violation_active(current, self.ics, &v, SatMode::NullAware) => {
                    break v;
                }
                Some(_) => continue, // fixed by an ancestor decision
                None => {
                    self.candidates.push((delta_of(decisions), trace.clone()));
                    return Ok(());
                }
            }
        };
        let rest: Vec<Violation> = pending.collect();
        let constraint_name = self.ics.constraints()[violation.constraint_index]
            .name()
            .to_string();
        for fix in self.fixes(&violation) {
            let (action, atom) = match &fix {
                Fix::Delete(atom) => {
                    if decisions.get(atom) == Some(&Decision::Inserted) {
                        continue; // protected
                    }
                    (RepairAction::Delete, atom.clone())
                }
                Fix::Insert(atom) => {
                    if decisions.get(atom) == Some(&Decision::Deleted) {
                        continue; // already ruled out on this branch
                    }
                    debug_assert!(
                        !current.contains(atom),
                        "insert fix must not already be present"
                    );
                    (RepairAction::Insert, atom.clone())
                }
            };
            let decision = match action {
                RepairAction::Insert => Decision::Inserted,
                RepairAction::Delete => Decision::Deleted,
            };
            let fresh = !decisions.contains_key(&atom);
            if fresh {
                decisions.insert(atom.clone(), decision);
            }
            trace.push(RepairStep {
                constraint: constraint_name.clone(),
                action,
                atom: atom.clone(),
            });
            let delta = match action {
                RepairAction::Insert => Delta::insertion(atom.clone()),
                RepairAction::Delete => Delta::deletion(atom.clone()),
            };
            current.apply_delta(&delta);
            let mut child = rest.clone();
            for v in violations_touching(current, self.ics, &delta, SatMode::NullAware) {
                if !child.contains(&v) {
                    child.push(v);
                }
            }
            let res = self.run_incremental(current, child, decisions, trace);
            current.revert_delta(&delta);
            trace.pop();
            if fresh {
                decisions.remove(&atom);
            }
            res?;
        }
        Ok(())
    }

    /// The seed's naive loop: full violation rescan at every node, fork
    /// per branch. Kept as the benchmark baseline and secondary oracle.
    fn run_rescan(
        &mut self,
        current: Instance,
        decisions: &mut BTreeMap<DatabaseAtom, Decision>,
        trace: &mut Vec<RepairStep>,
    ) -> Result<(), CoreError> {
        self.charge_node()?;
        let Some(violation) = first_violation_naive(&current, self.ics, SatMode::NullAware) else {
            self.candidates.push((delta_of(decisions), trace.clone()));
            return Ok(());
        };
        let constraint_name = self.ics.constraints()[violation.constraint_index]
            .name()
            .to_string();
        for fix in self.fixes(&violation) {
            match fix {
                Fix::Delete(atom) => {
                    if decisions.get(&atom) == Some(&Decision::Inserted) {
                        continue; // protected
                    }
                    let fresh = !decisions.contains_key(&atom);
                    if fresh {
                        decisions.insert(atom.clone(), Decision::Deleted);
                    }
                    trace.push(RepairStep {
                        constraint: constraint_name.clone(),
                        action: RepairAction::Delete,
                        atom: atom.clone(),
                    });
                    let next = current.without_atom(&atom);
                    self.run_rescan(next, decisions, trace)?;
                    trace.pop();
                    if fresh {
                        decisions.remove(&atom);
                    }
                }
                Fix::Insert(atom) => {
                    if decisions.get(&atom) == Some(&Decision::Deleted) {
                        continue; // already ruled out on this branch
                    }
                    debug_assert!(
                        !current.contains(&atom),
                        "insert fix must not already be present"
                    );
                    let fresh = !decisions.contains_key(&atom);
                    if fresh {
                        decisions.insert(atom.clone(), Decision::Inserted);
                    }
                    trace.push(RepairStep {
                        constraint: constraint_name.clone(),
                        action: RepairAction::Insert,
                        atom: atom.clone(),
                    });
                    let next = current.with_atom(&atom);
                    self.run_rescan(next, decisions, trace)?;
                    trace.pop();
                    if fresh {
                        decisions.remove(&atom);
                    }
                }
            }
        }
        Ok(())
    }

    /// The minimal fixes for a violation, in deterministic order:
    /// deletions (body order), then insertions (head order).
    fn fixes(&self, violation: &Violation) -> Vec<Fix> {
        fixes_for(self.ics, self.config.semantics, violation)
    }
}

/// The minimal fixes for a violation, in deterministic order: deletions
/// (body order), then insertions (head order). Shared by the sequential
/// drivers and the parallel branch scheduler — the fix *index* within this
/// list is the branch-path component that pins parallel output order.
pub(crate) fn fixes_for(
    ics: &IcSet,
    semantics: RepairSemantics,
    violation: &Violation,
) -> Vec<Fix> {
    let mut out: Vec<Fix> = Vec::new();
    match &violation.kind {
        ViolationKind::NotNull { atom, .. } => {
            out.push(Fix::Delete(atom.clone()));
        }
        ViolationKind::Tgd {
            bindings,
            body_atoms,
        } => {
            for atom in body_atoms {
                let fix = Fix::Delete(atom.clone());
                if !out.contains(&fix) {
                    out.push(fix);
                }
            }
            let ic = ics.constraints()[violation.constraint_index]
                .as_ic()
                .expect("Tgd violation indexes a form-(1) constraint");
            for head in ic.head() {
                let tuple: Tuple = head
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => bindings[v.index()].unwrap_or(Value::Null),
                    })
                    .collect();
                let atom = DatabaseAtom::new(head.rel, tuple);
                if semantics == RepairSemantics::DeletionPreferring
                    && insert_violates_nnc(ics, &atom)
                {
                    continue;
                }
                let fix = Fix::Insert(atom);
                if !out.contains(&fix) {
                    out.push(fix);
                }
            }
        }
    }
    out
}

fn insert_violates_nnc(ics: &IcSet, atom: &DatabaseAtom) -> bool {
    ics.constraints().iter().any(|c| match c {
        Constraint::NotNull(nnc) => nnc.rel == atom.rel && atom.tuple.get(nnc.position).is_null(),
        Constraint::Tgd(_) => false,
    })
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Fix {
    Delete(DatabaseAtom),
    Insert(DatabaseAtom),
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{builders, c, is_consistent, v, CmpOp, Ic};
    use cqa_relational::{display::instance_set, null, s, Schema};
    use std::sync::Arc;

    fn inst(sc: &Arc<Schema>, rows: &[(&str, Vec<Value>)]) -> Instance {
        let mut d = Instance::empty(sc.clone());
        for (rel, vals) in rows {
            d.insert_named(rel, Tuple::new(vals.clone())).unwrap();
        }
        d
    }

    fn sets(repairs: &[Instance]) -> Vec<String> {
        repairs.iter().map(instance_set).collect()
    }

    #[test]
    fn consistent_database_is_its_own_single_repair() {
        let sc = Schema::builder()
            .relation("P", ["a", "b"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(&sc, &[("P", vec![s("a"), null()])]);
        let ics = IcSet::default();
        assert_eq!(repairs(&d, &ics).unwrap(), vec![d]);
    }

    #[test]
    fn example15_course_student_two_repairs() {
        // Course(ID, Code) → ∃Name Student(ID, Name); Course(34, C18)
        // dangling: delete it or insert Student(34, null).
        let sc = Schema::builder()
            .relation("Course", ["ID", "Code"])
            .relation("Student", ["ID", "Name"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[
                ("Course", vec![s("21"), s("C15")]),
                ("Course", vec![s("34"), s("C18")]),
                ("Student", vec![s("21"), s("Ann")]),
                ("Student", vec![s("45"), s("Paul")]),
            ],
        );
        let ric = Ic::builder(&sc, "ric")
            .body_atom("Course", [v("id"), v("code")])
            .head_atom("Student", [v("id"), v("name")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ric)]);
        let reps = repairs(&d, &ics).unwrap();
        assert_eq!(reps.len(), 2);
        let rendered = sets(&reps);
        assert!(rendered
            .iter()
            .any(|r| !r.contains("Course(34, C18)") && !r.contains("Student(34")));
        assert!(rendered
            .iter()
            .any(|r| r.contains("Course(34, C18)") && r.contains("Student(34, null)")));
        for r in &reps {
            assert!(is_consistent(r, &ics));
        }
    }

    #[test]
    fn example16_two_repairs() {
        // D = {Q(a,b), P(a,c)}; ψ1: P(x,y) → ∃z Q(x,z); ψ2: Q(x,y) → y ≠ b.
        let sc = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("Q", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[("P", vec![s("a"), s("c")]), ("Q", vec![s("a"), s("b")])],
        );
        let psi1 = Ic::builder(&sc, "psi1")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("z")])
            .finish()
            .unwrap();
        let psi2 = Ic::builder(&sc, "psi2")
            .body_atom("Q", [v("x"), v("y")])
            .builtin(v("y"), CmpOp::Neq, c(s("b")))
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(psi1), Constraint::from(psi2)]);
        let reps = repairs(&d, &ics).unwrap();
        let rendered = sets(&reps);
        assert_eq!(reps.len(), 2, "{rendered:?}");
        assert!(rendered.contains(&"{}".to_string()));
        assert!(rendered.contains(&"{P(a, c), Q(a, null)}".to_string()));
    }

    #[test]
    fn example17_two_repairs() {
        let sc = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("R", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[
                ("P", vec![s("a"), null()]),
                ("P", vec![s("b"), s("c")]),
                ("R", vec![s("a"), s("b")]),
            ],
        );
        let ric = Ic::builder(&sc, "ric")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("R", [v("x"), v("z")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ric)]);
        let reps = repairs(&d, &ics).unwrap();
        let rendered = sets(&reps);
        assert_eq!(reps.len(), 2, "{rendered:?}");
        assert!(rendered.contains(&"{P(a, null), P(b, c), R(a, b), R(b, null)}".to_string()));
        assert!(rendered.contains(&"{P(a, null), R(a, b)}".to_string()));
    }

    #[test]
    fn example18_cyclic_rics_four_repairs() {
        // UIC: P(x,y) → T(x); RIC: T(x) → ∃y P(y,x);
        // D = {P(a,b), P(null,a), T(c)}.
        let sc = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("T", ["t"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[
                ("P", vec![s("a"), s("b")]),
                ("P", vec![null(), s("a")]),
                ("T", vec![s("c")]),
            ],
        );
        let uic = Ic::builder(&sc, "uic")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("T", [v("x")])
            .finish()
            .unwrap();
        let ric = Ic::builder(&sc, "ric")
            .body_atom("T", [v("x")])
            .head_atom("P", [v("y"), v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(uic), Constraint::from(ric)]);
        let reps = repairs(&d, &ics).unwrap();
        let rendered = sets(&reps);
        assert_eq!(reps.len(), 4, "{rendered:?}");
        assert!(rendered.contains(&"{P(null, a), P(null, c), P(a, b), T(a), T(c)}".to_string()));
        assert!(rendered.contains(&"{P(null, a), P(a, b), T(a)}".to_string()));
        assert!(rendered.contains(&"{P(null, a), P(null, c), T(c)}".to_string()));
        assert!(rendered.contains(&"{P(null, a)}".to_string()));
    }

    #[test]
    fn example19_key_fk_nnc_four_repairs() {
        // R(X,Y) with key R[1]; S(U,V) with S[2] → R[1]; NNC on R[1].
        let sc = Schema::builder()
            .relation("R", ["X", "Y"])
            .relation("S", ["U", "V"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[
                ("R", vec![s("a"), s("b")]),
                ("R", vec![s("a"), s("c")]),
                ("S", vec![s("e"), s("f")]),
                ("S", vec![null(), s("a")]),
            ],
        );
        let mut ics = IcSet::default();
        ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
        ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
        ics.push(builders::not_null(&sc, "R", 0).unwrap());
        let reps = repairs(&d, &ics).unwrap();
        let rendered = sets(&reps);
        assert_eq!(reps.len(), 4, "{rendered:?}");
        assert!(rendered.contains(&"{R(a, b), R(f, null), S(null, a), S(e, f)}".to_string()));
        assert!(rendered.contains(&"{R(a, c), R(f, null), S(null, a), S(e, f)}".to_string()));
        assert!(rendered.contains(&"{R(a, b), S(null, a)}".to_string()));
        assert!(rendered.contains(&"{R(a, c), S(null, a)}".to_string()));
    }

    #[test]
    fn example20_conflicting_set_rejected_then_handled_by_repd() {
        // P(x) → ∃y Q(x,y) with NNC on Q[2].
        let sc = Schema::builder()
            .relation("P", ["a"])
            .relation("Q", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[
                ("P", vec![s("a")]),
                ("P", vec![s("b")]),
                ("Q", vec![s("b"), s("c")]),
            ],
        );
        let ric = Ic::builder(&sc, "ric")
            .body_atom("P", [v("x")])
            .head_atom("Q", [v("x"), v("y")])
            .finish()
            .unwrap();
        let mut ics = IcSet::default();
        ics.push(ric);
        ics.push(builders::not_null(&sc, "Q", 1).unwrap());
        assert!(matches!(
            repairs(&d, &ics),
            Err(CoreError::ConflictingConstraints(_))
        ));
        let reps = repairs_with_config(
            &d,
            &ics,
            RepairConfig {
                semantics: RepairSemantics::DeletionPreferring,
                ..RepairConfig::default()
            },
        )
        .unwrap();
        // Rep_d: only the deletion repair {P(b), Q(b,c)}.
        assert_eq!(sets(&reps), vec!["{P(b), Q(b, c)}".to_string()]);
        // The deletion-preferring semantics go through the parallel
        // scheduler unchanged (conflicting sets are accepted there too).
        let parallel = repairs_with_config(
            &d,
            &ics,
            RepairConfig {
                semantics: RepairSemantics::DeletionPreferring,
                strategy: SearchStrategy::Parallel { threads: 2 },
                ..RepairConfig::default()
            },
        )
        .unwrap();
        assert_eq!(parallel, reps);
    }

    #[test]
    fn chase_through_uic_chain() {
        // S(x) → Q(x), Q(x) → R(x); D = {S(a)}: repairs are {}, plus the
        // full chain {S(a), Q(a), R(a)}, plus… deleting the inserted Q is
        // blocked, so intermediate states don't leak out.
        let sc = Schema::builder()
            .relation("S", ["s"])
            .relation("Q", ["q"])
            .relation("R", ["r"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(&sc, &[("S", vec![s("a")])]);
        let ic1 = Ic::builder(&sc, "ic1")
            .body_atom("S", [v("x")])
            .head_atom("Q", [v("x")])
            .finish()
            .unwrap();
        let ic2 = Ic::builder(&sc, "ic2")
            .body_atom("Q", [v("x")])
            .head_atom("R", [v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic1), Constraint::from(ic2)]);
        let reps = repairs(&d, &ics).unwrap();
        let rendered = sets(&reps);
        assert_eq!(
            rendered,
            vec!["{}".to_string(), "{S(a), Q(a), R(a)}".to_string()]
        );
    }

    #[test]
    fn budget_exceeded_reported() {
        let sc = Schema::builder()
            .relation("P", ["a"])
            .relation("Q", ["x"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        for i in 0..6 {
            d.insert_named("P", [s(&format!("v{i}"))]).unwrap();
        }
        let ic = Ic::builder(&sc, "incl")
            .body_atom("P", [v("x")])
            .head_atom("Q", [v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic)]);
        let err = repairs_with_config(
            &d,
            &ics,
            RepairConfig {
                node_budget: 3,
                ..RepairConfig::default()
            },
        );
        assert!(matches!(err, Err(CoreError::BudgetExceeded { .. })));
    }

    #[test]
    fn traces_explain_each_repair() {
        // Example 15 shape: the deletion repair is one step, the
        // insertion repair one step; steps name the violated constraint.
        let sc = Schema::builder()
            .relation("Course", ["ID", "Code"])
            .relation("Student", ["ID", "Name"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[
                ("Course", vec![s("34"), s("C18")]),
                ("Student", vec![s("21"), s("Ann")]),
            ],
        );
        let ric = Ic::builder(&sc, "enrolled")
            .body_atom("Course", [v("id"), v("code")])
            .head_atom("Student", [v("id"), v("name")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ric)]);
        let traced = repairs_with_trace(&d, &ics, RepairConfig::default()).unwrap();
        assert_eq!(traced.len(), 2);
        for t in &traced {
            assert_eq!(t.steps.len(), 1);
            assert_eq!(t.steps[0].constraint, "enrolled");
            // replaying the steps on D yields the repair
            let mut replay = d.clone();
            for step in &t.steps {
                match step.action {
                    RepairAction::Insert => {
                        replay
                            .insert(step.atom.rel, step.atom.tuple.clone())
                            .unwrap();
                    }
                    RepairAction::Delete => {
                        replay.remove(step.atom.rel, &step.atom.tuple);
                    }
                }
            }
            assert_eq!(&replay, &t.instance);
        }
        let actions: Vec<RepairAction> = traced.iter().map(|t| t.steps[0].action).collect();
        assert!(actions.contains(&RepairAction::Insert));
        assert!(actions.contains(&RepairAction::Delete));
    }

    #[test]
    fn incremental_and_rescan_strategies_agree() {
        // Same repairs from the worklist search and the naive per-node
        // rescan, across the paper's interacting-constraint shapes.
        let sc = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("T", ["t"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[
                ("P", vec![s("a"), s("b")]),
                ("P", vec![null(), s("a")]),
                ("T", vec![s("c")]),
            ],
        );
        let uic = Ic::builder(&sc, "uic")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("T", [v("x")])
            .finish()
            .unwrap();
        let ric = Ic::builder(&sc, "ric")
            .body_atom("T", [v("x")])
            .head_atom("P", [v("y"), v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(uic), Constraint::from(ric)]);
        let incremental = repairs_with_config(
            &d,
            &ics,
            RepairConfig {
                strategy: SearchStrategy::Incremental,
                ..RepairConfig::default()
            },
        )
        .unwrap();
        let rescan = repairs_with_config(
            &d,
            &ics,
            RepairConfig {
                strategy: SearchStrategy::FullRescan,
                ..RepairConfig::default()
            },
        )
        .unwrap();
        assert_eq!(incremental, rescan);
        assert_eq!(incremental.len(), 4);
        for threads in [1usize, 2, 4] {
            let parallel = repairs_with_config(
                &d,
                &ics,
                RepairConfig {
                    strategy: SearchStrategy::Parallel { threads },
                    ..RepairConfig::default()
                },
            )
            .unwrap();
            assert_eq!(parallel, incremental, "threads={threads}");
        }
    }

    #[test]
    fn parallel_traces_match_sequential() {
        // Traces, not just instances: the first-found trace kept on
        // deduplication must survive the path-sorted parallel join.
        let sc = Schema::builder()
            .relation("Course", ["ID", "Code"])
            .relation("Student", ["ID", "Name"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[
                ("Course", vec![s("34"), s("C18")]),
                ("Course", vec![s("77"), s("C3")]),
                ("Student", vec![s("21"), s("Ann")]),
            ],
        );
        let ric = Ic::builder(&sc, "enrolled")
            .body_atom("Course", [v("id"), v("code")])
            .head_atom("Student", [v("id"), v("name")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ric)]);
        let sequential = repairs_with_trace(&d, &ics, RepairConfig::default()).unwrap();
        for threads in [1usize, 3] {
            let parallel = repairs_with_trace(
                &d,
                &ics,
                RepairConfig {
                    strategy: SearchStrategy::Parallel { threads },
                    ..RepairConfig::default()
                },
            )
            .unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn parallel_budget_exceeded_reported() {
        let sc = Schema::builder()
            .relation("P", ["a"])
            .relation("Q", ["x"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        for i in 0..6 {
            d.insert_named("P", [s(&format!("v{i}"))]).unwrap();
        }
        let ic = Ic::builder(&sc, "incl")
            .body_atom("P", [v("x")])
            .head_atom("Q", [v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic)]);
        let err = repairs_with_config(
            &d,
            &ics,
            RepairConfig {
                node_budget: 3,
                strategy: SearchStrategy::Parallel { threads: 4 },
                ..RepairConfig::default()
            },
        );
        assert!(matches!(err, Err(CoreError::BudgetExceeded { .. })));
    }

    #[test]
    fn parallel_zero_threads_clamps_to_one() {
        let sc = Schema::builder()
            .relation("P", ["a", "b"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(&sc, &[("P", vec![s("a"), null()])]);
        let reps = repairs_with_config(
            &d,
            &IcSet::default(),
            RepairConfig {
                strategy: SearchStrategy::Parallel { threads: 0 },
                ..RepairConfig::default()
            },
        )
        .unwrap();
        assert_eq!(reps, vec![d]);
    }

    #[test]
    fn engine_matches_oracle_on_small_cases() {
        // Deterministic mini-stress: engine vs brute force on several
        // hand-picked shapes with unary/binary relations.
        let sc = Schema::builder()
            .relation("P", ["a"])
            .relation("Q", ["x"])
            .finish()
            .unwrap()
            .into_shared();
        let incl = Ic::builder(&sc, "incl")
            .body_atom("P", [v("x")])
            .head_atom("Q", [v("x")])
            .finish()
            .unwrap();
        let denial = Ic::builder(&sc, "den")
            .body_atom("P", [v("x")])
            .body_atom("Q", [v("x")])
            .finish()
            .unwrap();
        for ics in [
            IcSet::new([Constraint::from(incl.clone())]),
            IcSet::new([Constraint::from(denial.clone())]),
            IcSet::new([Constraint::from(incl), Constraint::from(denial)]),
        ] {
            for rows in [
                vec![("P", vec![s("a")])],
                vec![("P", vec![s("a")]), ("Q", vec![s("a")])],
                vec![("P", vec![null()]), ("Q", vec![s("a")])],
                vec![
                    ("P", vec![s("a")]),
                    ("P", vec![null()]),
                    ("Q", vec![null()]),
                ],
            ] {
                let d = inst(&sc, &rows);
                let engine = repairs(&d, &ics).unwrap();
                let oracle = crate::bruteforce::oracle_repairs(&d, &ics);
                assert_eq!(engine, oracle, "rows={rows:?}");
            }
        }
    }
}
