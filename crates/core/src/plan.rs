//! # Planner architecture
//!
//! Consistent query answering by repair enumeration is exponential in the
//! number of conflicts. For large `(IcSet, query)` classes the consistent
//! answers are computable *directly* on the inconsistent instance in
//! polynomial time, and this module is the dispatcher that recognises
//! those classes and routes each request to the cheapest sound engine:
//!
//! 1. **FO-rewrite** ([`crate::rewrite`]) — key-style functional
//!    dependencies (plus NOT NULL constraints) with quantifier-free
//!    conjunctive queries. Fuxman/Miller-style: every candidate answer is
//!    guarded by "no key-conflicting tuple disagrees on a used non-key
//!    position", evaluated once on the inconsistent instance with one
//!    composite-index probe per (tuple, FD).
//! 2. **Chase fast path** ([`crate::chase`]) — arbitrary *deletion-only*
//!    constraint sets (denials, multi-row checks, FDs, NOT NULL) with the
//!    same query class. In the style of Laurent & Spyratos
//!    (arXiv 2301.03668) every tuple is classified as *true* (in every
//!    repair), *false* (in no repair) or *uncertain* by a polynomial pass
//!    over the violation hypergraph, and the query is answered from that
//!    classification.
//! 3. **Fallback** — everything else keeps the existing repair-enumeration
//!    route ([`crate::cqa::consistent_answers_enumerated_governed`]) or
//!    the logic-program route, unchanged.
//!
//! ## Decision table
//!
//! | Constraint set | Query | Repair semantics | Route |
//! |---|---|---|---|
//! | key FDs + NOT NULL only ([`PlanClass::KeyFdOnly`]) | single quantifier-free CQ | `NullBased` | **FO-rewrite** |
//! | head-empty ICs + NOT NULL ([`PlanClass::DeletionOnly`]) | single quantifier-free CQ | `NullBased` | **Chase** |
//! | any IC with head atoms ([`PlanClass::General`]) | — | — | enumerate |
//! | — | union of ≥ 2 disjuncts | — | enumerate |
//! | — | CQ with non-head (existential) variables | — | enumerate |
//! | — | — | `DeletionPreferring` | enumerate |
//!
//! ## Why each route is sound
//!
//! For a *head-empty* constraint set (no IC can force an insertion) every
//! repair is a deletion repair, and under `≤_D` the repairs are exactly
//! the **maximal independent sets** of the violation hypergraph whose
//! edges are the ground violation witnesses (`violations(D)`): violations
//! of any `D' ⊆ D` are exactly the edges contained in `D'`, because a
//! head-empty ground violation mentions only its own body atoms. From
//! maximal-independent-set structure:
//!
//! * a tuple is in **no** repair iff it forms a singleton edge (a NOT
//!   NULL violation, or a single-tuple denial/check violation) — set `F`;
//! * a tuple `t` is in **every** repair iff no edge `e ∋ t` has `e \ {t}`
//!   independent (no member of `e \ {t}` is in `F` and no other edge is
//!   contained in `e \ {t}`): such an `e \ {t}` extends to a maximal
//!   independent set that must exclude `t`, and conversely a maximal
//!   independent set missing `t` must contain such an `e \ {t}`.
//!
//! A **quantifier-free** CQ (every variable appears in the head) factors
//! through single tuples: an answer binding fully grounds every atom, so
//! the binding is consistent iff its builtins hold, every positive ground
//! tuple is in every repair, and every negated ground atom is in no
//! repair (absent from `D`, or in `F` — evaluating negation against `D`
//! alone would be wrong exactly when `F` is non-empty). Under
//! [`QueryNullSemantics::SqlThreeValued`] a ground atom containing `null`
//! never matches any tuple, so a null-carrying negated atom passes
//! trivially; positive matches still pin exact tuples because first
//! occurrences bind tuple values verbatim. Candidate bindings are
//! complete when enumerated on `D` because repairs are subsets of `D`.
//!
//! The FO-rewrite route is the same argument specialised to FD edges
//! (always size 2): `t` is sure iff it is no NOT-NULL violator and every
//! key-conflicting partner is itself in `F`. The FD conflict test under
//! `|=_N` requires the shared determinant values and *both* dependent
//! values non-null — those positions are exactly the FD's escape
//! variables (Definition 4), so a null anywhere in them escapes the
//! constraint and creates no edge.
//!
//! ## Why each refusal is necessary
//!
//! * **Unions** — per-disjunct fast-path answers under-approximate: with
//!   `D = {R(a,b), R(a,c)}` under the key FD `R[0]→1`, the union
//!   `q(x) ← R(x,'b') ∨ R(x,'c')` has consistent answer `a` (each repair
//!   satisfies one disjunct) yet neither disjunct alone has any.
//! * **Existential variables** — a binding no longer pins its witnesses;
//!   different repairs may satisfy the query through different tuples, so
//!   the per-tuple factorisation (and the whole polynomial argument —
//!   CQA is coNP-complete in general) breaks.
//! * **Head atoms (RICs/UICs)** — insertion repairs exist; repairs are no
//!   longer subsets of `D` and the independent-set characterisation is
//!   unsound.
//! * **`RepairSemantics::DeletionPreferring`** — `Rep_d` changes which
//!   repairs exist; the fast paths model the default `≤_D` semantics.
//!
//! Resource-limit semantics differ by design: the fast paths never
//! consult [`RepairConfig::node_budget`] (they build no repair tree) but
//! do poll the cancellation token, surfacing
//! [`CoreError::Interrupted`] with `phase = QueryEvaluation`.
//!
//! The planner runs automatically inside `consistent_answers*`; callers
//! that need enumeration-backed answers regardless (the oracle tests) use
//! [`crate::cqa::consistent_answers_enumerated`]. The route taken is
//! observable through [`PlannerStats`] (the `Database` facade exposes it
//! as `planner_stats()`), and [`plan_query`] is public so a caller can
//! inspect the routing decision — with the reasons for a refusal —
//! without running the query.

use crate::cache::CqaCaches;
use crate::chase::ChaseClassification;
use crate::cqa::AnswerSet;
use crate::engine::{RepairConfig, RepairSemantics};
use crate::error::{CoreError, InterruptPhase};
use crate::query::{AnswerSemantics, ConjunctiveQuery, QAtom, QTerm, Query, QueryNullSemantics};
use crate::rewrite::RewriteOracle;
use cqa_constraints::{plan_class, IcSet, PlanClass};
use cqa_relational::{CancelToken, DatabaseAtom, Instance, RelId, Tuple, Value};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// The engine a request is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanRoute {
    /// Fuxman/Miller-style guarded evaluation, once, on the inconsistent
    /// instance (key FDs + NOT NULL, quantifier-free CQ).
    FoRewrite,
    /// Laurent–Spyratos-style true/false-tuple classification over the
    /// violation hypergraph (any deletion-only set, quantifier-free CQ).
    Chase,
    /// Repair enumeration (or the program route) — the sound fallback.
    Enumerate,
}

/// Why the planner refused a fast path (each is a soundness requirement,
/// not a heuristic — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclineReason {
    /// `RepairSemantics::DeletionPreferring` changes the repair set.
    NonDefaultRepairSemantics,
    /// Unions need cross-disjunct compensation between repairs.
    UnionQuery,
    /// A non-head variable breaks the per-tuple factorisation.
    ExistentialQueryVars,
    /// An IC with head atoms admits insertion repairs.
    HeadedConstraints,
}

/// The routing decision for one `(IcSet, query, config)` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// The engine the request is routed to.
    pub route: PlanRoute,
    /// Refusal reasons; non-empty exactly when `route` is
    /// [`PlanRoute::Enumerate`].
    pub declined: Vec<DeclineReason>,
}

/// Classify one request against the decision table (pure analysis — no
/// data is touched, so the decision is O(constraints + query)).
pub fn plan_query(ics: &IcSet, query: &Query, config: &RepairConfig) -> QueryPlan {
    let mut declined = Vec::new();
    if config.semantics != RepairSemantics::NullBased {
        declined.push(DeclineReason::NonDefaultRepairSemantics);
    }
    if query.disjuncts().len() > 1 {
        declined.push(DeclineReason::UnionQuery);
    }
    if query.disjuncts().iter().any(|cq| !is_quantifier_free(cq)) {
        declined.push(DeclineReason::ExistentialQueryVars);
    }
    let class = plan_class(ics);
    if class == PlanClass::General {
        declined.push(DeclineReason::HeadedConstraints);
    }
    let route = if !declined.is_empty() {
        PlanRoute::Enumerate
    } else if class == PlanClass::KeyFdOnly {
        PlanRoute::FoRewrite
    } else {
        PlanRoute::Chase
    };
    QueryPlan { route, declined }
}

/// Every variable of the query appears in its head (so an answer binding
/// grounds the whole body).
fn is_quantifier_free(cq: &ConjunctiveQuery) -> bool {
    let mut in_head = vec![false; cq.var_names.len()];
    for v in &cq.head {
        in_head[*v as usize] = true;
    }
    let term_ok = |t: &QTerm| match t {
        QTerm::Var(v) => in_head[*v as usize],
        QTerm::Const(_) => true,
    };
    cq.pos
        .iter()
        .chain(cq.neg.iter())
        .all(|a| a.terms.iter().all(term_ok))
        && cq
            .builtins
            .iter()
            .all(|b| term_ok(&b.lhs) && term_ok(&b.rhs))
}

/// What both fast-path engines must answer about a ground tuple: is it in
/// *every* repair, and is it in *no* repair?
pub(crate) trait TupleOracle {
    /// Is the tuple (a member of `D`) in every repair?
    fn sure(&self, rel: RelId, values: &[Value]) -> bool;
    /// Is the tuple (a member of `D`) in no repair?
    fn in_no_repair(&self, rel: RelId, values: &[Value]) -> bool;
}

/// Plan the request; when a fast path applies, answer it there and return
/// `Some`. `None` means "enumerate" — the caller falls through to the
/// repair-enumeration body unchanged. Either way the route is recorded in
/// the cache bundle's [`PlannerCounters`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch(
    d: &Instance,
    ics: &IcSet,
    query: &Query,
    config: &RepairConfig,
    semantics: AnswerSemantics,
    query_semantics: QueryNullSemantics,
    caches: &CqaCaches,
    cancel: &CancelToken,
) -> Result<Option<AnswerSet>, CoreError> {
    let plan = plan_query(ics, query, config);
    caches.planner.record(plan.route);
    if plan.route == PlanRoute::Enumerate {
        return Ok(None);
    }
    let cq = &query.disjuncts()[0];
    let mut tuples = match plan.route {
        PlanRoute::FoRewrite => {
            let oracle = RewriteOracle::new(d, ics);
            eval_fast(cq, d, query_semantics, &oracle, cancel)?
        }
        PlanRoute::Chase => {
            let oracle = ChaseClassification::classify(d, ics, caches, cancel)?;
            eval_fast(cq, d, query_semantics, &oracle, cancel)?
        }
        PlanRoute::Enumerate => unreachable!("handled above"),
    };
    if semantics == AnswerSemantics::ExcludeNullAnswers {
        tuples.retain(|t| !t.has_null());
    }
    Ok(Some(AnswerSet {
        tuples,
        arity: query.arity(),
    }))
}

/// Poll the cancel token once per this many candidate bindings.
const CANCEL_STRIDE: usize = 1024;

/// The shared fast-path evaluator: enumerate candidate bindings of the
/// positive body on the inconsistent instance, then replace the classical
/// positive/negative membership tests with the oracle's repair-aware
/// ones. See the module docs for why this factorisation is exact for
/// quantifier-free queries over deletion-only constraint sets.
fn eval_fast(
    cq: &ConjunctiveQuery,
    d: &Instance,
    mode: QueryNullSemantics,
    oracle: &dyn TupleOracle,
    cancel: &CancelToken,
) -> Result<BTreeSet<Tuple>, CoreError> {
    let mut out = BTreeSet::new();
    let mut seen = 0usize;
    let mut tripped = false;
    cq.for_each_match(d, mode, &mut |bindings| {
        seen += 1;
        if seen.is_multiple_of(CANCEL_STRIDE) && cancel.is_cancelled() {
            tripped = true;
            return false;
        }
        // Every positive ground tuple must be in every repair.
        for a in &cq.pos {
            let vals = ground_atom(a, bindings);
            if !oracle.sure(a.rel, &vals) {
                return true;
            }
        }
        // Every negated ground atom must be in no repair.
        for n in &cq.neg {
            let vals = ground_atom(n, bindings);
            if mode == QueryNullSemantics::SqlThreeValued && vals.iter().any(Value::is_null) {
                // A null never tests equal in SQL mode: the atom cannot
                // match in any repair.
                continue;
            }
            let atom = DatabaseAtom::new(n.rel, Tuple::new(vals));
            if !d.contains(&atom) {
                continue; // repairs are subsets of D
            }
            if !oracle.in_no_repair(n.rel, atom.tuple.values()) {
                return true;
            }
        }
        out.insert(
            cq.head
                .iter()
                .map(|v| bindings[*v as usize].expect("safe head var"))
                .collect(),
        );
        true
    });
    if tripped {
        return Err(CoreError::Interrupted {
            phase: InterruptPhase::QueryEvaluation,
            partial: out.len(),
        });
    }
    Ok(out)
}

/// Ground one atom under a (complete, quantifier-free) binding.
fn ground_atom(atom: &QAtom, bindings: &[Option<Value>]) -> Vec<Value> {
    atom.terms
        .iter()
        .map(|t| match t {
            QTerm::Const(c) => *c,
            QTerm::Var(v) => bindings[*v as usize].expect("quantifier-free binding"),
        })
        .collect()
}

/// Lifetime routing counters of one cache bundle, in the same
/// named-struct shape as the other stats ([`PlannerStats`] is the
/// snapshot). Lives on [`CqaCaches`] so the facade's per-tenant bundles
/// each see their own traffic.
#[derive(Debug, Default)]
pub struct PlannerCounters {
    fo_rewrite: AtomicU64,
    chase: AtomicU64,
    fallbacks: AtomicU64,
    /// 0 = no query planned yet, else `PlanRoute` discriminant + 1.
    last_route: AtomicU8,
}

impl PlannerCounters {
    pub(crate) fn record(&self, route: PlanRoute) {
        let (counter, tag) = match route {
            PlanRoute::FoRewrite => (&self.fo_rewrite, 1),
            PlanRoute::Chase => (&self.chase, 2),
            PlanRoute::Enumerate => (&self.fallbacks, 3),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.last_route.store(tag, Ordering::Relaxed);
    }

    /// Snapshot of the counters. Meaningful as before/after deltas.
    pub fn stats(&self) -> PlannerStats {
        PlannerStats {
            fo_rewrite: self.fo_rewrite.load(Ordering::Relaxed),
            chase: self.chase.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            last_route: match self.last_route.load(Ordering::Relaxed) {
                1 => Some(PlanRoute::FoRewrite),
                2 => Some(PlanRoute::Chase),
                3 => Some(PlanRoute::Enumerate),
                _ => None,
            },
        }
    }
}

/// Snapshot of one bundle's planner counters (PR-8 stats idiom — compare
/// before/after a call to see which engine answered it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannerStats {
    /// Requests answered by the FO-rewrite route.
    pub fo_rewrite: u64,
    /// Requests answered by the chase fast path.
    pub chase: u64,
    /// Requests declined to the enumeration/program fallback.
    pub fallbacks: u64,
    /// The route of the most recently planned request.
    pub last_route: Option<PlanRoute>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{qc, qv};
    use cqa_constraints::{builders, v, Ic};
    use cqa_relational::{s, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("R", ["X", "Y"])
            .relation("S", ["U"])
            .finish()
            .unwrap()
            .into_shared()
    }

    fn key_fd(sc: &Arc<Schema>) -> IcSet {
        let mut ics = IcSet::default();
        ics.push(builders::functional_dependency(sc, "R", &[0], 1).unwrap());
        ics
    }

    #[test]
    fn routes_follow_the_decision_table() {
        let sc = schema();
        let qf: Query = ConjunctiveQuery::builder(&sc, "q", ["x", "y"])
            .atom("R", [qv("x"), qv("y")])
            .finish()
            .unwrap()
            .into();
        let config = RepairConfig::default();

        // Key FDs + quantifier-free query → FO-rewrite.
        let plan = plan_query(&key_fd(&sc), &qf, &config);
        assert_eq!(plan.route, PlanRoute::FoRewrite);
        assert!(plan.declined.is_empty());

        // Adding a denial keeps it deletion-only → chase.
        let mut del = key_fd(&sc);
        del.push(
            Ic::builder(&sc, "d")
                .body_atom("R", [v("x"), v("x")])
                .finish()
                .unwrap(),
        );
        assert_eq!(plan_query(&del, &qf, &config).route, PlanRoute::Chase);

        // A RIC forces enumeration.
        let mut general = key_fd(&sc);
        general.push(
            Ic::builder(&sc, "ric")
                .body_atom("S", [v("u")])
                .head_atom("R", [v("u"), v("w")])
                .finish()
                .unwrap(),
        );
        let plan = plan_query(&general, &qf, &config);
        assert_eq!(plan.route, PlanRoute::Enumerate);
        assert_eq!(plan.declined, vec![DeclineReason::HeadedConstraints]);

        // An existential query variable forces enumeration.
        let existential: Query = ConjunctiveQuery::builder(&sc, "e", ["x"])
            .atom("R", [qv("x"), qv("y")])
            .finish()
            .unwrap()
            .into();
        let plan = plan_query(&key_fd(&sc), &existential, &config);
        assert_eq!(plan.route, PlanRoute::Enumerate);
        assert_eq!(plan.declined, vec![DeclineReason::ExistentialQueryVars]);

        // A union forces enumeration.
        let d1 = ConjunctiveQuery::builder(&sc, "d1", ["x"])
            .atom("R", [qv("x"), qc(s("b"))])
            .finish()
            .unwrap();
        let d2 = ConjunctiveQuery::builder(&sc, "d2", ["x"])
            .atom("R", [qv("x"), qc(s("c"))])
            .finish()
            .unwrap();
        let union = Query::union(vec![d1, d2]).unwrap();
        let plan = plan_query(&key_fd(&sc), &union, &config);
        assert_eq!(plan.route, PlanRoute::Enumerate);
        assert!(plan.declined.contains(&DeclineReason::UnionQuery));

        // Non-default repair semantics forces enumeration.
        let deletion_preferring = RepairConfig {
            semantics: crate::engine::RepairSemantics::DeletionPreferring,
            ..RepairConfig::default()
        };
        let plan = plan_query(&key_fd(&sc), &qf, &deletion_preferring);
        assert_eq!(plan.route, PlanRoute::Enumerate);
        assert_eq!(
            plan.declined,
            vec![DeclineReason::NonDefaultRepairSemantics]
        );

        // The empty constraint set is trivially key-FD-only: evaluate once.
        assert_eq!(
            plan_query(&IcSet::default(), &qf, &config).route,
            PlanRoute::FoRewrite
        );

        // Constants and head variables are fine; a builtin-only variable
        // is not quantifier-free... but builtins can only use bound vars,
        // so a ground boolean query stays dispatchable.
        let ground_bool: Query = ConjunctiveQuery::builder(&sc, "b", Vec::<String>::new())
            .atom("R", [qc(s("a")), qc(s("b"))])
            .finish()
            .unwrap()
            .into();
        assert_eq!(
            plan_query(&key_fd(&sc), &ground_bool, &config).route,
            PlanRoute::FoRewrite
        );
    }

    #[test]
    fn union_refusal_is_necessary() {
        // The worked counterexample from the module docs: each repair
        // satisfies one disjunct, so the union has a consistent answer
        // that no per-disjunct fast path could produce.
        let sc = schema();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("R", [s("a"), s("b")]).unwrap();
        d.insert_named("R", [s("a"), s("c")]).unwrap();
        let ics = key_fd(&sc);
        let d1 = ConjunctiveQuery::builder(&sc, "d1", ["x"])
            .atom("R", [qv("x"), qc(s("b"))])
            .finish()
            .unwrap();
        let d2 = ConjunctiveQuery::builder(&sc, "d2", ["x"])
            .atom("R", [qv("x"), qc(s("c"))])
            .finish()
            .unwrap();
        let union = Query::union(vec![d1.clone(), d2.clone()]).unwrap();
        let union_answers = crate::cqa::consistent_answers(
            &d,
            &ics,
            &union,
            RepairConfig::default(),
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        assert_eq!(
            union_answers.tuples,
            BTreeSet::from([Tuple::new(vec![s("a")])])
        );
        for cq in [d1, d2] {
            let alone = crate::cqa::consistent_answers(
                &d,
                &ics,
                &cq.into(),
                RepairConfig::default(),
                AnswerSemantics::IncludeNullAnswers,
            )
            .unwrap();
            assert!(alone.is_empty());
        }
    }

    #[test]
    fn planner_stats_record_routes() {
        let caches = CqaCaches::new();
        assert_eq!(caches.planner.stats(), PlannerStats::default());
        caches.planner.record(PlanRoute::FoRewrite);
        caches.planner.record(PlanRoute::Chase);
        caches.planner.record(PlanRoute::Chase);
        caches.planner.record(PlanRoute::Enumerate);
        let stats = caches.planner.stats();
        assert_eq!(stats.fo_rewrite, 1);
        assert_eq!(stats.chase, 2);
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.last_route, Some(PlanRoute::Enumerate));
    }
}
