//! Consistent query answering (Definition 8): an answer is *consistent*
//! when every repair returns it.
//!
//! Two engines, which must agree (and are tested against each other):
//!
//! * [`consistent_answers`] — materialise the repairs with the decision
//!   engine and intersect the query answers;
//! * [`consistent_answers_via_program`] — append query rules over the
//!   `t**` predicates to Π(D, IC) and take the cautious consequences of
//!   the stable models (the paper's Section 5 pipeline; Theorem 4 makes
//!   the two coincide for RIC-acyclic sets).

use crate::cache::CqaCaches;
use crate::engine::{repairs_with_config_governed, RepairConfig, SearchStrategy};
use crate::error::{CoreError, InterruptPhase};
use crate::program::{annotated, ProgramStyle};
use crate::query::{AnswerSemantics, QTerm, Query};
use cqa_asp::{atom, cmp, neg, pos, tc, tv, AspError, BodyLit, BuiltinOp};
use cqa_constraints::IcSet;
use cqa_relational::{CancelToken, Instance, Tuple};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The result of a CQA call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerSet {
    /// The consistent answer tuples (for a boolean query: contains the
    /// empty tuple iff the answer is *yes*).
    pub tuples: BTreeSet<Tuple>,
    /// Answer arity (0 = boolean).
    pub arity: usize,
}

impl AnswerSet {
    /// Boolean-query verdict: `yes` iff the empty tuple is an answer.
    pub fn is_yes(&self) -> bool {
        self.arity == 0 && self.tuples.contains(&Tuple::new(vec![]))
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// No answers?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// Consistent answers by repair enumeration + intersection, under the
/// default (null-as-value) query evaluation.
pub fn consistent_answers(
    d: &Instance,
    ics: &IcSet,
    query: &Query,
    config: RepairConfig,
    semantics: AnswerSemantics,
) -> Result<AnswerSet, CoreError> {
    consistent_answers_full(
        d,
        ics,
        query,
        config,
        semantics,
        crate::query::QueryNullSemantics::NullAsValue,
    )
}

/// Consistent answers with every knob exposed: repair configuration,
/// answer-tuple filtering, and the query-evaluation null semantics
/// (`|=q_N` — the paper's Section 7(a) extension point).
pub fn consistent_answers_full(
    d: &Instance,
    ics: &IcSet,
    query: &Query,
    config: RepairConfig,
    semantics: AnswerSemantics,
    query_semantics: crate::query::QueryNullSemantics,
) -> Result<AnswerSet, CoreError> {
    consistent_answers_full_in(
        d,
        ics,
        query,
        config,
        semantics,
        query_semantics,
        crate::cache::global(),
    )
}

/// [`consistent_answers_full`] against an explicit cache bundle. Under
/// [`SearchStrategy::Parallel`] the per-repair query evaluation and
/// intersection fan out over the same worker count as the repair search
/// (chunked evaluation, then an ordered intersection of the chunk
/// results); a cross-chunk flag stops all workers once any partial
/// intersection is empty. Output is identical to the serial loop.
pub fn consistent_answers_full_in(
    d: &Instance,
    ics: &IcSet,
    query: &Query,
    config: RepairConfig,
    semantics: AnswerSemantics,
    query_semantics: crate::query::QueryNullSemantics,
    caches: &CqaCaches,
) -> Result<AnswerSet, CoreError> {
    consistent_answers_governed(
        d,
        ics,
        query,
        config,
        semantics,
        query_semantics,
        caches,
        &CancelToken::never(),
    )
}

/// [`consistent_answers_full_in`] under a cancellation token: the repair
/// search polls it per node, and the per-repair evaluation loop polls it
/// per repair (serial and chunked alike). An interrupt there surfaces as
/// [`CoreError::Interrupted`] with `phase = QueryEvaluation` and
/// `partial` counting the repairs whose answers were fully intersected —
/// the running intersection itself is not returned, since it only
/// over-approximates the consistent answers until every repair is seen.
///
/// **Plan-first**: the request is classified by the fast-path planner
/// ([`crate::plan`]) and answered without repair enumeration when a
/// polynomial route is sound (key FDs → FO-rewrite; deletion-only sets →
/// chase classification). Answers are identical either way — only the
/// resource-limit semantics differ: the fast paths never consult
/// [`RepairConfig::node_budget`]. Use [`consistent_answers_enumerated`]
/// (or its governed variant) to force the enumeration route, e.g. as the
/// oracle in planner tests.
#[allow(clippy::too_many_arguments)]
pub fn consistent_answers_governed(
    d: &Instance,
    ics: &IcSet,
    query: &Query,
    config: RepairConfig,
    semantics: AnswerSemantics,
    query_semantics: crate::query::QueryNullSemantics,
    caches: &CqaCaches,
    cancel: &CancelToken,
) -> Result<AnswerSet, CoreError> {
    if let Some(answers) = crate::plan::dispatch(
        d,
        ics,
        query,
        &config,
        semantics,
        query_semantics,
        caches,
        cancel,
    )? {
        return Ok(answers);
    }
    consistent_answers_enumerated_governed(
        d,
        ics,
        query,
        config,
        semantics,
        query_semantics,
        caches,
        cancel,
    )
}

/// [`consistent_answers_full`] with the fast-path planner bypassed: the
/// answer always comes from repair enumeration + intersection. The
/// planner-vs-oracle test suite relies on this to compare both engines on
/// the *same* dispatchable inputs; production callers want
/// [`consistent_answers_full`] instead.
pub fn consistent_answers_enumerated(
    d: &Instance,
    ics: &IcSet,
    query: &Query,
    config: RepairConfig,
    semantics: AnswerSemantics,
    query_semantics: crate::query::QueryNullSemantics,
) -> Result<AnswerSet, CoreError> {
    consistent_answers_enumerated_governed(
        d,
        ics,
        query,
        config,
        semantics,
        query_semantics,
        crate::cache::global(),
        &CancelToken::never(),
    )
}

/// [`consistent_answers_enumerated`] with explicit caches and a
/// cancellation token — the repair-enumeration body that
/// [`consistent_answers_governed`] falls through to when the planner
/// declines.
#[allow(clippy::too_many_arguments)]
pub fn consistent_answers_enumerated_governed(
    d: &Instance,
    ics: &IcSet,
    query: &Query,
    config: RepairConfig,
    semantics: AnswerSemantics,
    query_semantics: crate::query::QueryNullSemantics,
    caches: &CqaCaches,
    cancel: &CancelToken,
) -> Result<AnswerSet, CoreError> {
    let repairs = repairs_with_config_governed(d, ics, config, caches, cancel)?;
    let threads = match config.strategy {
        SearchStrategy::Parallel { threads } => threads.max(1),
        _ => 1,
    };
    let evaluated = AtomicUsize::new(0);
    let interrupted = || CoreError::Interrupted {
        phase: InterruptPhase::QueryEvaluation,
        partial: evaluated.load(Ordering::Relaxed),
    };
    let mut acc: BTreeSet<Tuple> = if threads > 1 && repairs.len() > 1 {
        let empty = AtomicBool::new(false);
        let chunks = crate::parallel::map_chunks(repairs.len(), threads, |range| {
            let mut local: Option<BTreeSet<Tuple>> = None;
            for repair in &repairs[range] {
                if empty.load(Ordering::Relaxed) || cancel.is_cancelled() {
                    break;
                }
                let answers = query.eval_with(repair, query_semantics);
                evaluated.fetch_add(1, Ordering::Relaxed);
                local = Some(match local {
                    None => answers,
                    Some(mut seen) => {
                        seen.retain(|t| answers.contains(t));
                        seen
                    }
                });
                if local.as_ref().is_some_and(BTreeSet::is_empty) {
                    empty.store(true, Ordering::Relaxed);
                    break;
                }
            }
            local
        });
        if cancel.is_cancelled() && !empty.load(Ordering::Relaxed) {
            return Err(interrupted());
        }
        if empty.load(Ordering::Relaxed) {
            // Some subset of repairs already intersects to nothing, so the
            // full intersection is empty — identical to the serial result.
            BTreeSet::new()
        } else {
            let mut parts = chunks.into_iter().flatten();
            let mut acc = parts.next().unwrap_or_default();
            for part in parts {
                acc.retain(|t| part.contains(t));
            }
            acc
        }
    } else {
        let mut iter = repairs.iter();
        let mut acc: BTreeSet<Tuple> = match iter.next() {
            Some(first) => {
                let answers = query.eval_with(first, query_semantics);
                evaluated.fetch_add(1, Ordering::Relaxed);
                answers
            }
            None => BTreeSet::new(), // unreachable: repairs always exist
        };
        for repair in iter {
            if acc.is_empty() {
                break;
            }
            if cancel.is_cancelled() {
                return Err(interrupted());
            }
            let answers = query.eval_with(repair, query_semantics);
            evaluated.fetch_add(1, Ordering::Relaxed);
            acc.retain(|t| answers.contains(t));
        }
        acc
    };
    if semantics == AnswerSemantics::ExcludeNullAnswers {
        acc.retain(|t| !t.has_null());
    }
    Ok(AnswerSet {
        tuples: acc,
        arity: query.arity(),
    })
}

/// Consistent answers via the repair program: cautious reasoning over
/// Π(D, IC) extended with query rules evaluated on the `t**` relations.
/// Uses the process-wide default cache bundle.
pub fn consistent_answers_via_program(
    d: &Instance,
    ics: &IcSet,
    query: &Query,
    style: ProgramStyle,
    semantics: AnswerSemantics,
) -> Result<AnswerSet, CoreError> {
    consistent_answers_via_program_in(d, ics, query, style, semantics, crate::cache::global())
}

/// [`consistent_answers_via_program`] against an explicit cache bundle.
/// The grounding of Π(D, IC) comes out of the cache (grounded once per
/// instance version, regrounded incrementally on any bounded drift —
/// insertions via the seminaive worklist, deletions via DRed) and only
/// the per-query rules are instantiated on top of the clone.
pub fn consistent_answers_via_program_in(
    d: &Instance,
    ics: &IcSet,
    query: &Query,
    style: ProgramStyle,
    semantics: AnswerSemantics,
    caches: &CqaCaches,
) -> Result<AnswerSet, CoreError> {
    consistent_answers_via_program_governed(
        d,
        ics,
        query,
        style,
        semantics,
        caches,
        &CancelToken::never(),
    )
}

/// [`consistent_answers_via_program_in`] under a cancellation token. The
/// token governs the cached (re)grounding, the grounding of the per-query
/// rules on the cloned state, and the cautious-consequence enumeration;
/// the interrupt phase reports whichever stage was cut short.
pub fn consistent_answers_via_program_governed(
    d: &Instance,
    ics: &IcSet,
    query: &Query,
    style: ProgramStyle,
    semantics: AnswerSemantics,
    caches: &CqaCaches,
    cancel: &CancelToken,
) -> Result<AnswerSet, CoreError> {
    // Deep-clone the shared grounding: the query rules below mutate it.
    let mut state = caches
        .grounding
        .state_for_governed(d, ics, style, false, cancel)?
        .as_ref()
        .clone();
    // The clone's propagation of the query rules is governed too; a trip
    // poisons only this private copy, never the cached state.
    state.set_cancel(cancel.clone());
    let schema = d.schema();
    let ans_pred = "ans__q";
    for cq in query.disjuncts() {
        let term = |t: &QTerm| -> cqa_asp::TermSpec {
            match t {
                QTerm::Var(v) => tv(cq.var_names[*v as usize].clone()),
                QTerm::Const(c) => tc(*c),
            }
        };
        let mut body: Vec<BodyLit> = Vec::new();
        for a in &cq.pos {
            body.push(pos(atom(
                annotated(schema.relation(a.rel).name(), "tss"),
                a.terms.iter().map(&term),
            )));
        }
        for a in &cq.neg {
            body.push(neg(atom(
                annotated(schema.relation(a.rel).name(), "tss"),
                a.terms.iter().map(&term),
            )));
        }
        for b in &cq.builtins {
            body.push(cmp(term(&b.lhs), to_asp_op(b.op), term(&b.rhs)));
        }
        let head_terms: Vec<cqa_asp::TermSpec> = cq
            .head
            .iter()
            .map(|v| tv(cq.var_names[*v as usize].clone()))
            .collect();
        state.add_rule([atom(ans_pred, head_terms)], body)?;
        if state.is_poisoned() {
            return Err(CoreError::Interrupted {
                phase: InterruptPhase::Grounding,
                partial: 0,
            });
        }
    }
    let gp = state.ground_program();
    let cautious = cqa_asp::cautious_consequences_cancellable(gp, cancel)
        .map_err(|e| match e {
            AspError::Interrupted { partial, .. } => CoreError::Interrupted {
                phase: InterruptPhase::ModelEnumeration,
                partial,
            },
            other => CoreError::Asp(other),
        })?
        .ok_or(CoreError::NoStableModels)?;
    let Some(ans_id) = state.program().pred_id(ans_pred) else {
        // Query predicate never derivable: no answers.
        return Ok(AnswerSet {
            tuples: BTreeSet::new(),
            arity: query.arity(),
        });
    };
    let mut tuples: BTreeSet<Tuple> = BTreeSet::new();
    for &aid in &cautious {
        let ga = gp.atom(aid);
        if ga.pred == ans_id {
            tuples.insert(Tuple::new(ga.args.iter().cloned()));
        }
    }
    if semantics == AnswerSemantics::ExcludeNullAnswers {
        tuples.retain(|t| !t.has_null());
    }
    Ok(AnswerSet {
        tuples,
        arity: query.arity(),
    })
}

fn to_asp_op(op: cqa_constraints::CmpOp) -> BuiltinOp {
    match op {
        cqa_constraints::CmpOp::Eq => BuiltinOp::Eq,
        cqa_constraints::CmpOp::Neq => BuiltinOp::Neq,
        cqa_constraints::CmpOp::Lt => BuiltinOp::Lt,
        cqa_constraints::CmpOp::Leq => BuiltinOp::Leq,
        cqa_constraints::CmpOp::Gt => BuiltinOp::Gt,
        cqa_constraints::CmpOp::Geq => BuiltinOp::Geq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{qc, qv, ConjunctiveQuery};
    use cqa_constraints::{builders, v, Constraint, Ic};
    use cqa_relational::{null, s, Schema, Value};
    use std::sync::Arc;

    fn example19() -> (Arc<Schema>, Instance, IcSet) {
        let sc = Schema::builder()
            .relation("R", ["X", "Y"])
            .relation("S", ["U", "V"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("R", [s("a"), s("b")]).unwrap();
        d.insert_named("R", [s("a"), s("c")]).unwrap();
        d.insert_named("S", [s("e"), s("f")]).unwrap();
        d.insert_named("S", [null(), s("a")]).unwrap();
        let mut ics = IcSet::default();
        ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
        ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
        ics.push(builders::not_null(&sc, "R", 0).unwrap());
        (sc, d, ics)
    }

    fn both_engines(
        sc: &Arc<Schema>,
        d: &Instance,
        ics: &IcSet,
        q: &Query,
    ) -> (AnswerSet, AnswerSet) {
        let _ = sc;
        let direct = consistent_answers(
            d,
            ics,
            q,
            RepairConfig::default(),
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        let via_program = consistent_answers_via_program(
            d,
            ics,
            q,
            ProgramStyle::Corrected,
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        (direct, via_program)
    }

    #[test]
    fn example19_consistent_answers() {
        let (sc, d, ics) = example19();
        // Q(x): S(_, x) — S tuples survive in every repair.
        let q: Query = ConjunctiveQuery::builder(&sc, "q", ["v"])
            .atom("S", [qv("u"), qv("v")])
            .finish()
            .unwrap()
            .into();
        let (direct, via_program) = both_engines(&sc, &d, &ics, &q);
        assert_eq!(direct, via_program);
        // S(null,a) is in all four repairs; S(e,f) is deleted in two.
        assert_eq!(direct.tuples, BTreeSet::from([Tuple::new(vec![s("a")])]));

        // Q(x): R(x, y) — R(a, …) survives in every repair (with b or c),
        // so x = a is consistent.
        let q2: Query = ConjunctiveQuery::builder(&sc, "q2", ["x"])
            .atom("R", [qv("x"), qv("y")])
            .finish()
            .unwrap()
            .into();
        let (direct2, via_program2) = both_engines(&sc, &d, &ics, &q2);
        assert_eq!(direct2, via_program2);
        assert_eq!(direct2.tuples, BTreeSet::from([Tuple::new(vec![s("a")])]));

        // Q(x,y): R(x,y) — no single R row is in every repair.
        let q3: Query = ConjunctiveQuery::builder(&sc, "q3", ["x", "y"])
            .atom("R", [qv("x"), qv("y")])
            .finish()
            .unwrap()
            .into();
        let (direct3, via_program3) = both_engines(&sc, &d, &ics, &q3);
        assert_eq!(direct3, via_program3);
        assert!(direct3.is_empty());
    }

    #[test]
    fn boolean_queries() {
        let (sc, d, ics) = example19();
        // ∃x S(x, 'a')? — true in every repair.
        let yes: Query = ConjunctiveQuery::builder(&sc, "yes", Vec::<String>::new())
            .atom("S", [qv("x"), qc(s("a"))])
            .finish()
            .unwrap()
            .into();
        let (direct, via_program) = both_engines(&sc, &d, &ics, &yes);
        assert_eq!(direct, via_program);
        assert!(direct.is_yes());

        // ∃x S(x, 'f')? — S(e,f) is deleted in two repairs: no.
        let no: Query = ConjunctiveQuery::builder(&sc, "no", Vec::<String>::new())
            .atom("S", [qv("x"), qc(s("f"))])
            .finish()
            .unwrap()
            .into();
        let (direct2, via_program2) = both_engines(&sc, &d, &ics, &no);
        assert_eq!(direct2, via_program2);
        assert!(!direct2.is_yes());
    }

    #[test]
    fn negation_in_queries() {
        let (sc, d, ics) = example19();
        // Q(u): S(u, v) ∧ ¬R(v, v)… use a simpler shape: S(u,v), not R(v,b).
        let q: Query = ConjunctiveQuery::builder(&sc, "q", ["u"])
            .atom("S", [qv("u"), qv("vv")])
            .not_atom("R", [qv("vv"), qv("vv")])
            .finish()
            .unwrap()
            .into();
        let (direct, via_program) = both_engines(&sc, &d, &ics, &q);
        assert_eq!(direct, via_program);
    }

    #[test]
    fn union_queries_agree() {
        let (sc, d, ics) = example19();
        let q1 = ConjunctiveQuery::builder(&sc, "q1", ["x"])
            .atom("R", [qv("x"), qv("y")])
            .finish()
            .unwrap();
        let q2 = ConjunctiveQuery::builder(&sc, "q2", ["x"])
            .atom("S", [qv("y"), qv("x")])
            .finish()
            .unwrap();
        let q = Query::union(vec![q1, q2]).unwrap();
        let (direct, via_program) = both_engines(&sc, &d, &ics, &q);
        assert_eq!(direct, via_program);
        // a from both branches; f not (S(e,f) deleted in some repairs).
        assert!(direct.tuples.contains(&Tuple::new(vec![s("a")])));
        assert!(!direct.tuples.contains(&Tuple::new(vec![s("f")])));
    }

    #[test]
    fn exclude_null_answers_mode() {
        let sc = Schema::builder()
            .relation("S", ["U", "V"])
            .relation("R", ["X", "Y"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("S", [s("u"), s("a")]).unwrap();
        let mut ics = IcSet::default();
        ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
        // Q(y): R(x, y) — in the insertion repair R(a,null) exists, but the
        // deletion repair has no R at all → no consistent answers anyway.
        // Use brave-ish shape instead: query S to see null filtering:
        let q: Query = ConjunctiveQuery::builder(&sc, "q", ["u", "v"])
            .atom("S", [qv("u"), qv("v")])
            .finish()
            .unwrap()
            .into();
        let with_nulls = consistent_answers(
            &d,
            &ics,
            &q,
            RepairConfig::default(),
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        assert!(with_nulls.is_empty()); // S(u,a) deleted in one repair

        // Make S consistent and null-valued:
        let mut d2 = Instance::empty(sc.clone());
        d2.insert_named("S", [null(), s("a")]).unwrap();
        d2.insert_named("R", [s("a"), s("b")]).unwrap();
        let incl = consistent_answers(
            &d2,
            &ics,
            &q,
            RepairConfig::default(),
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        assert_eq!(incl.len(), 1);
        let excl = consistent_answers(
            &d2,
            &ics,
            &q,
            RepairConfig::default(),
            AnswerSemantics::ExcludeNullAnswers,
        )
        .unwrap();
        assert!(excl.is_empty());
    }

    #[test]
    fn consistent_database_cqa_equals_plain_evaluation() {
        let sc = Schema::builder()
            .relation("R", ["X", "Y"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("R", [s("a"), s("b")]).unwrap();
        d.insert_named("R", [s("c"), s("d")]).unwrap();
        let ic = Ic::builder(&sc, "trivial")
            .body_atom("R", [v("x"), v("y")])
            .head_atom("R", [v("x"), v("y")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic)]);
        let q: Query = ConjunctiveQuery::builder(&sc, "q", ["x"])
            .atom("R", [qv("x"), qv("y")])
            .finish()
            .unwrap()
            .into();
        let direct = consistent_answers(
            &d,
            &ics,
            &q,
            RepairConfig::default(),
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        assert_eq!(direct.tuples, q.eval(&d));
        let via_program = consistent_answers_via_program(
            &d,
            &ics,
            &q,
            ProgramStyle::Corrected,
            AnswerSemantics::IncludeNullAnswers,
        )
        .unwrap();
        assert_eq!(via_program.tuples, q.eval(&d));
    }

    #[test]
    fn sql_three_valued_query_semantics_in_cqa() {
        // A consistent DB whose repair contains an introduced null: the
        // null row is an answer under null-as-value, not under SQL mode.
        let sc = Schema::builder()
            .relation("S", ["U", "V"])
            .relation("R", ["X", "Y"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("S", [s("u"), s("a")]).unwrap();
        d.insert_named("R", [s("a"), null()]).unwrap();
        let mut ics = IcSet::default();
        ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
        // Query: pairs (x, y) in R with y = y (trivial) — as-value keeps
        // the null row; SQL three-valued mode needs an actual test, so
        // compare y against itself via a builtin:
        let q: Query = ConjunctiveQuery::builder(&sc, "q", ["x", "y"])
            .atom("R", [qv("x"), qv("y")])
            .cmp(qv("y"), cqa_constraints::CmpOp::Eq, qv("y"))
            .finish()
            .unwrap()
            .into();
        let as_value = consistent_answers_full(
            &d,
            &ics,
            &q,
            RepairConfig::default(),
            AnswerSemantics::IncludeNullAnswers,
            crate::query::QueryNullSemantics::NullAsValue,
        )
        .unwrap();
        assert_eq!(as_value.len(), 1);
        let sql_mode = consistent_answers_full(
            &d,
            &ics,
            &q,
            RepairConfig::default(),
            AnswerSemantics::IncludeNullAnswers,
            crate::query::QueryNullSemantics::SqlThreeValued,
        )
        .unwrap();
        assert!(sql_mode.is_empty()); // null = null is unknown in SQL
    }

    #[test]
    fn builtins_in_cqa_queries() {
        let (sc, d, ics) = example19();
        let q: Query = ConjunctiveQuery::builder(&sc, "q", ["v"])
            .atom("S", [qv("u"), qv("v")])
            .cmp(qv("v"), cqa_constraints::CmpOp::Neq, qc(Value::str("f")))
            .finish()
            .unwrap()
            .into();
        let (direct, via_program) = both_engines(&sc, &d, &ics, &q);
        assert_eq!(direct, via_program);
        assert_eq!(direct.tuples, BTreeSet::from([Tuple::new(vec![s("a")])]));
    }
}
