//! The chase fast path: true/false-tuple classification for deletion-only
//! constraint sets, in the style of Laurent & Spyratos (arXiv 2301.03668).
//!
//! For tables with nulls under FDs, Laurent & Spyratos compute consistent
//! answers by a polynomial chase-like pass that sorts tuples into *true*
//! (in every repair), *false* (in no repair) and *uncertain* — no repairs
//! are ever materialised. This module generalises that computation from
//! FDs to every *deletion-only* constraint set this system supports
//! (head-empty ICs — denials, multi-row checks, FDs — plus NOT NULL
//! constraints): for such sets the repairs are exactly the maximal
//! independent sets of the violation hypergraph, and the classification
//! falls out of one pass over its edges (see `plan.rs` for the proof):
//!
//! * **false** — tuples forming a singleton edge (a NOT NULL violation or
//!   a single-tuple check/denial violation): no repair keeps them;
//! * **uncertain** — tuples `t` with some edge `e ∋ t` whose remainder
//!   `e \ {t}` is independent (contains no full edge): that remainder
//!   extends to a repair that must exclude `t`;
//! * **true** — everything else in `D`.
//!
//! The edge set is the engine's own root violation worklist, shared
//! through [`WorklistCache`](crate::cache::WorklistCache) — a repeated
//! query on an unchanged instance pays zero scans. The classification
//! pass polls the cancel token and surfaces
//! [`CoreError::Interrupted`] with `phase = QueryEvaluation`.

use crate::cache::CqaCaches;
use crate::error::{CoreError, InterruptPhase};
use crate::plan::TupleOracle;
use cqa_constraints::{IcSet, ViolationKind};
use cqa_relational::{CancelToken, DatabaseAtom, Instance, RelId, Tuple, Value};
use std::collections::{HashMap, HashSet};

/// Poll the cancel token once per this many edges.
const CANCEL_STRIDE: usize = 256;

/// The classification of every tuple of one instance under one
/// deletion-only constraint set. Tuples in neither set are *true* —
/// present in every repair.
#[derive(Debug)]
pub(crate) struct ChaseClassification {
    false_atoms: HashSet<DatabaseAtom>,
    uncertain_atoms: HashSet<DatabaseAtom>,
}

impl ChaseClassification {
    /// Run the classification pass over the violation hypergraph of
    /// `(d, ics)`.
    pub(crate) fn classify(
        d: &Instance,
        ics: &IcSet,
        caches: &CqaCaches,
        cancel: &CancelToken,
    ) -> Result<Self, CoreError> {
        let worklist = caches.worklist.root_worklist(d, ics);
        // Edges: the ground tuple sets whose joint presence violates a
        // constraint. Body atoms binding the same tuple twice collapse,
        // so a self-joining denial can yield a singleton edge.
        let mut edges: Vec<Vec<DatabaseAtom>> = Vec::with_capacity(worklist.len());
        for violation in &worklist {
            match &violation.kind {
                ViolationKind::Tgd { body_atoms, .. } => {
                    let mut edge = body_atoms.clone();
                    edge.sort();
                    edge.dedup();
                    edges.push(edge);
                }
                ViolationKind::NotNull { atom, .. } => edges.push(vec![atom.clone()]),
            }
        }
        edges.sort();
        edges.dedup();
        let false_atoms: HashSet<DatabaseAtom> = edges
            .iter()
            .filter(|e| e.len() == 1)
            .map(|e| e[0].clone())
            .collect();
        // Atom → indices of the edges containing it, for the sub-edge
        // containment probes below.
        let mut by_atom: HashMap<&DatabaseAtom, Vec<usize>> = HashMap::new();
        for (i, edge) in edges.iter().enumerate() {
            for atom in edge {
                by_atom.entry(atom).or_default().push(i);
            }
        }
        let mut uncertain_atoms: HashSet<DatabaseAtom> = HashSet::new();
        for (i, edge) in edges.iter().enumerate() {
            if i % CANCEL_STRIDE == 0 && cancel.is_cancelled() {
                return Err(CoreError::Interrupted {
                    phase: InterruptPhase::QueryEvaluation,
                    partial: i,
                });
            }
            if edge.len() == 1 {
                continue; // its atom is already false
            }
            for atom in edge {
                if false_atoms.contains(atom) || uncertain_atoms.contains(atom) {
                    continue;
                }
                let rest: Vec<&DatabaseAtom> = edge.iter().filter(|a| *a != atom).collect();
                // `rest` is independent iff no edge is contained in it
                // (singleton false-atom edges included). Any contained
                // edge touches some member of `rest`, so probing each
                // member's edge list covers them all; edge bodies are
                // tiny, so the subset tests are linear scans.
                let dependent = rest.iter().any(|member| {
                    by_atom[*member].iter().any(|&j| {
                        j != i
                            && edges[j].len() <= rest.len()
                            && edges[j].iter().all(|a| rest.contains(&a))
                    })
                });
                if !dependent {
                    uncertain_atoms.insert(atom.clone());
                }
            }
        }
        Ok(ChaseClassification {
            false_atoms,
            uncertain_atoms,
        })
    }
}

impl TupleOracle for ChaseClassification {
    fn sure(&self, rel: RelId, values: &[Value]) -> bool {
        let atom = DatabaseAtom::new(rel, Tuple::new(values.iter().copied()));
        !self.false_atoms.contains(&atom) && !self.uncertain_atoms.contains(&atom)
    }

    fn in_no_repair(&self, rel: RelId, values: &[Value]) -> bool {
        let atom = DatabaseAtom::new(rel, Tuple::new(values.iter().copied()));
        self.false_atoms.contains(&atom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{builders, v, Ic};
    use cqa_relational::{null, s, Schema};

    fn atom(d: &Instance, rel: RelId, vals: Vec<Value>) -> DatabaseAtom {
        let a = DatabaseAtom::new(rel, Tuple::new(vals));
        assert!(d.contains(&a), "test atom must exist");
        a
    }

    #[test]
    fn classification_matches_repair_structure() {
        let sc = Schema::builder()
            .relation("R", ["K", "V"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("R", [s("k1"), s("a")]).unwrap(); // clean: true
        d.insert_named("R", [s("k2"), s("a")]).unwrap(); // FD pair: uncertain
        d.insert_named("R", [s("k2"), s("b")]).unwrap();
        d.insert_named("R", [null(), s("c")]).unwrap(); // NNC violator: false
        let mut ics = IcSet::default();
        ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
        ics.push(builders::not_null(&sc, "R", 0).unwrap());
        let rel = sc.rel_id("R").unwrap();
        let caches = CqaCaches::new();
        let cls = ChaseClassification::classify(&d, &ics, &caches, &CancelToken::never()).unwrap();
        let clean = atom(&d, rel, vec![s("k1"), s("a")]);
        let pair_a = atom(&d, rel, vec![s("k2"), s("a")]);
        let pair_b = atom(&d, rel, vec![s("k2"), s("b")]);
        let nncv = atom(&d, rel, vec![null(), s("c")]);
        assert!(cls.sure(rel, clean.tuple.values()));
        assert!(!cls.sure(rel, pair_a.tuple.values()));
        assert!(!cls.sure(rel, pair_b.tuple.values()));
        assert!(!cls.in_no_repair(rel, pair_a.tuple.values()));
        assert!(cls.in_no_repair(rel, nncv.tuple.values()));
    }

    #[test]
    fn dead_edge_members_keep_partners_sure() {
        // An edge whose remainder contains a false tuple (or a full
        // sub-edge) is not independent — the surviving member stays true.
        let sc = Schema::builder()
            .relation("R", ["K", "V"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("R", [s("k"), s("a")]).unwrap();
        d.insert_named("R", [null(), s("x")]).unwrap(); // in no repair
        let mut ics = IcSet::default();
        // Denial: R(x,'a') ∧ R(y,'x') may not coexist.
        ics.push(
            Ic::builder(&sc, "d")
                .body_atom("R", [v("x"), cqa_constraints::c(s("a"))])
                .body_atom("R", [v("y"), cqa_constraints::c(s("x"))])
                .finish()
                .unwrap(),
        );
        ics.push(builders::not_null(&sc, "R", 0).unwrap());
        let rel = sc.rel_id("R").unwrap();
        let caches = CqaCaches::new();
        let cls = ChaseClassification::classify(&d, &ics, &caches, &CancelToken::never()).unwrap();
        // The null-keyed tuple is in no repair, so it can never push
        // R(k,a) out of one: R(k,a) is true.
        assert!(cls.sure(rel, Tuple::new(vec![s("k"), s("a")]).values()));
        assert!(cls.in_no_repair(rel, Tuple::new(vec![null(), s("x")]).values()));
    }

    #[test]
    fn classification_polls_the_cancel_token() {
        let sc = Schema::builder()
            .relation("R", ["K", "V"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        for i in 0..40 {
            d.insert_named("R", [s(&format!("k{i}")), s("a")]).unwrap();
            d.insert_named("R", [s(&format!("k{i}")), s("b")]).unwrap();
        }
        let mut ics = IcSet::default();
        ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
        let caches = CqaCaches::new();
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let err = ChaseClassification::classify(&d, &ics, &caches, &cancelled).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Interrupted {
                phase: InterruptPhase::QueryEvaluation,
                ..
            }
        ));
    }
}
