//! The `≤_D` repair order (Definition 6), repair checking and
//! minimisation.
//!
//! For instances `D′, D″` over the schema of `D`:
//! `D′ ≤_D D″` iff for every atom `A ∈ Δ(D, D′)`:
//!
//! * `A ∈ Δ(D, D″)` (shared difference), or
//! * `A` contains nulls and some atom `Q(ā, b̄) ∈ Δ(D, D″) ∖ Δ(D, D′)`
//!   agrees with it on the non-null positions (clause (b) of
//!   Definition 6).
//!
//! **Reading note.** Definition 6(b) as printed demands a covering atom in
//! `Δ(D, D″) ∖ Δ(D, D′)` for *every* null atom of `Δ(D, D′)`, even one
//! shared by both differences. That literal reading makes `≤_D`
//! irreflexive on null-containing deltas and — decisively — contradicts
//! the paper's own repair sets: in Example 18, `D₁ ∪ {P(null, null)}`
//! would be incomparable to `D₁` and hence a fifth "repair". We therefore
//! read (b) as applying to *non-shared* null atoms, which reproduces
//! every ordering claim in Examples 16–18 (including `D₁ <_D D₅`) and
//! keeps `≤_D` reflexive. The brute-force property suite pins this down.
//!
//! A *repair* (Definition 7) is a `≤_D`-minimal consistent instance. With
//! nulls confined to repair-introduced values, clause (b) is what makes
//! `Q(ā, null)` strictly preferable to every `Q(ā, b)` with a concrete
//! `b` (Example 17: `R(b, null)` beats `R(b, d)`).

use crate::error::CoreError;
use cqa_constraints::{is_consistent, IcSet};
use cqa_relational::{delta, Delta, Instance};
use std::collections::BTreeSet;

/// `D′ ≤_D D″` over the common original instance `base`.
pub fn leq_d(base: &Instance, d1: &Instance, d2: &Instance) -> Result<bool, CoreError> {
    let delta1 = delta(base, d1)?;
    let delta2 = delta(base, d2)?;
    Ok(leq_d_deltas(&delta1, &delta2))
}

/// `D′ <_D D″` (strictly better).
pub fn lt_d(base: &Instance, d1: &Instance, d2: &Instance) -> Result<bool, CoreError> {
    let delta1 = delta(base, d1)?;
    let delta2 = delta(base, d2)?;
    Ok(leq_d_deltas(&delta1, &delta2) && !leq_d_deltas(&delta2, &delta1))
}

/// The order on precomputed symmetric differences.
pub fn leq_d_deltas(d1: &Delta, d2: &Delta) -> bool {
    for atom in d1.atoms() {
        // Shared differences are fine (clause (a); see the module docs for
        // why this also absorbs shared null atoms).
        if d2.contains(atom) {
            continue;
        }
        // A null-free non-shared difference breaks the order.
        if !atom.has_null() {
            return false;
        }
        // (b) a non-shared null atom must be covered by a *new* atom of Δ₂.
        let covered = d2.atoms().any(|b| !d1.contains(b) && atom.covered_by(b));
        if !covered {
            return false;
        }
    }
    true
}

/// Is `candidate` a repair of `d` wrt `ics`? (The coNP-complete decision
/// problem of Theorem 1, decided over the Proposition-1 candidate space.)
///
/// `candidate` must be consistent and `≤_D`-minimal among consistent
/// instances; minimality is certified against the provided pool of
/// consistent alternatives (callers use the brute-force universe for the
/// exact problem, or an engine-produced candidate set for the practical
/// one).
pub fn is_repair_among<'a>(
    base: &Instance,
    candidate: &Instance,
    ics: &IcSet,
    alternatives: impl IntoIterator<Item = &'a Instance>,
) -> Result<bool, CoreError> {
    if !is_consistent(candidate, ics) {
        return Ok(false);
    }
    let delta_c = delta(base, candidate)?;
    for alt in alternatives {
        let delta_a = delta(base, alt)?;
        if leq_d_deltas(&delta_a, &delta_c) && !leq_d_deltas(&delta_c, &delta_a) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Exact repair check: consistent + `≤_D`-minimal over the full
/// Proposition-1 candidate space (exponential; small inputs only — this is
/// the Theorem-1 problem, used by tests and the repair-check benchmark).
pub fn is_repair(base: &Instance, candidate: &Instance, ics: &IcSet) -> Result<bool, CoreError> {
    if !is_consistent(candidate, ics) {
        return Ok(false);
    }
    let universe = crate::bruteforce::candidate_universe(base, ics);
    let delta_c = delta(base, candidate)?;
    let mut better = false;
    crate::bruteforce::for_each_subset(base.schema().clone(), &universe, |alt| {
        if is_consistent(alt, ics) {
            if let Ok(delta_a) = delta(base, alt) {
                if leq_d_deltas(&delta_a, &delta_c) && !leq_d_deltas(&delta_c, &delta_a) {
                    better = true;
                    return false; // stop
                }
            }
        }
        true
    });
    Ok(!better)
}

/// The indices of the `≤_D`-minimal members of a delta pool — the
/// candidates not strictly dominated by any other. O(k² · Δ²): every
/// comparison walks two symmetric differences only, never an instance.
/// Callers that know each candidate's decision delta (the incremental
/// repair search does) skip recomputing Δ(D, candidate) entirely.
pub fn minimal_delta_indices(deltas: &[Delta]) -> Vec<usize> {
    minimal_delta_indices_chunked(deltas, 1)
}

/// [`minimal_delta_indices`] with the candidate axis chunked over
/// `threads` scoped workers. Minimality of one candidate is independent
/// of every other verdict — each worker scans the full pool for
/// dominators of its own chunk — so the result is the same ascending
/// index list at every thread count; the parallel repair engine calls
/// this to keep `≤_D`-minimisation off its serial tail.
pub fn minimal_delta_indices_chunked(deltas: &[Delta], threads: usize) -> Vec<usize> {
    let minimal = |i: usize| {
        let di = &deltas[i];
        !deltas
            .iter()
            .enumerate()
            .any(|(j, dj)| i != j && leq_d_deltas(dj, di) && !leq_d_deltas(di, dj))
    };
    crate::parallel::chunked_map(deltas.len(), threads, |i| minimal(i).then_some(i))
        .into_iter()
        .flatten()
        .collect()
}

/// Reduce a candidate pool to its `≤_D`-minimal, de-duplicated members.
///
/// Recomputes Δ(D, candidate) per candidate (O(candidates × instance));
/// search code that already tracks decision deltas should de-duplicate by
/// [`Delta`] and call [`minimal_delta_indices`] directly instead.
pub fn minimize_candidates(
    base: &Instance,
    candidates: Vec<Instance>,
) -> Result<Vec<Instance>, CoreError> {
    // Deduplicate by symmetric difference: against one base, equal deltas
    // mean equal instances.
    let mut unique: Vec<Instance> = Vec::new();
    let mut deltas: Vec<Delta> = Vec::new();
    let mut seen: BTreeSet<Delta> = BTreeSet::new();
    for c in candidates {
        let d = delta(base, &c)?;
        if seen.insert(d.clone()) {
            unique.push(c);
            deltas.push(d);
        }
    }
    let mut keep: Vec<Instance> = minimal_delta_indices(&deltas)
        .into_iter()
        .map(|i| unique[i].clone())
        .collect();
    // Deterministic order: by atom list.
    keep.sort_by(|a, b| {
        a.atoms()
            .collect::<Vec<_>>()
            .cmp(&b.atoms().collect::<Vec<_>>())
    });
    Ok(keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{v, Constraint, Ic, IcSet};
    use cqa_relational::{null, s, DatabaseAtom, Instance, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("P", ["a", "b"])
            .relation("Q", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared()
    }

    fn inst(sc: &Arc<Schema>, rows: &[(&str, Vec<cqa_relational::Value>)]) -> Instance {
        let mut d = Instance::empty(sc.clone());
        for (rel, vals) in rows {
            d.insert_named(rel, cqa_relational::Tuple::new(vals.clone()))
                .unwrap();
        }
        d
    }

    #[test]
    fn example16_incomparability() {
        // D = {Q(a,b), P(a,c)}; D1 = {}; D2 = {P(a,c), Q(a,null)}.
        let sc = schema();
        let d = inst(
            &sc,
            &[("Q", vec![s("a"), s("b")]), ("P", vec![s("a"), s("c")])],
        );
        let d1 = inst(&sc, &[]);
        let d2 = inst(
            &sc,
            &[("P", vec![s("a"), s("c")]), ("Q", vec![s("a"), null()])],
        );
        assert!(!leq_d(&d, &d2, &d1).unwrap());
        assert!(!leq_d(&d, &d1, &d2).unwrap());
    }

    #[test]
    fn example17_null_insertion_dominates_value_insertion() {
        // D = {P(a,null), P(b,c), R(a,b)} with P → ∃z R(x,z). D1 inserts
        // R(b,null), D3 inserts R(b,d): D1 <_D D3.
        let sc = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("R", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[
                ("P", vec![s("a"), null()]),
                ("P", vec![s("b"), s("c")]),
                ("R", vec![s("a"), s("b")]),
            ],
        );
        let d1 = d.with_atom(&DatabaseAtom::new(
            sc.rel_id("R").unwrap(),
            cqa_relational::Tuple::new(vec![s("b"), null()]),
        ));
        let d3 = d.with_atom(&DatabaseAtom::new(
            sc.rel_id("R").unwrap(),
            cqa_relational::Tuple::new(vec![s("b"), s("d")]),
        ));
        assert!(leq_d(&d, &d1, &d3).unwrap());
        assert!(!leq_d(&d, &d3, &d1).unwrap());
        assert!(lt_d(&d, &d1, &d3).unwrap());
    }

    #[test]
    fn leq_is_reflexive() {
        // Under the shared-atoms reading of Definition 6 (module docs),
        // ≤_D is reflexive — including for deltas containing null atoms —
        // and <_D is irreflexive.
        let sc = schema();
        let d = inst(&sc, &[("P", vec![s("a"), null()])]);
        let null_free = inst(
            &sc,
            &[("P", vec![s("a"), s("x")]), ("P", vec![s("a"), null()])],
        );
        assert!(leq_d(&d, &null_free, &null_free).unwrap());
        assert!(!lt_d(&d, &null_free, &null_free).unwrap());
        let with_null_delta = inst(
            &sc,
            &[("Q", vec![s("a"), null()]), ("P", vec![s("a"), null()])],
        );
        assert!(leq_d(&d, &with_null_delta, &with_null_delta).unwrap());
        assert!(!lt_d(&d, &with_null_delta, &with_null_delta).unwrap());
    }

    #[test]
    fn junk_null_insertions_are_dominated() {
        // The case the brute-force oracle caught during development:
        // {P(c0), R(c0,null)} must strictly dominate the same repair with
        // extra null atoms thrown in.
        let sc = Schema::builder()
            .relation("P", ["a"])
            .relation("R", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(&sc, &[("P", vec![s("c0")])]);
        let good = inst(&sc, &[("P", vec![s("c0")]), ("R", vec![s("c0"), null()])]);
        let junk = inst(
            &sc,
            &[
                ("P", vec![s("c0")]),
                ("P", vec![null()]),
                ("R", vec![s("c0"), null()]),
                ("R", vec![null(), null()]),
            ],
        );
        assert!(lt_d(&d, &good, &junk).unwrap());
        assert!(!lt_d(&d, &junk, &good).unwrap());
    }

    #[test]
    fn minimize_drops_dominated_candidates() {
        let sc = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("R", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(&sc, &[("P", vec![s("b"), s("c")])]);
        let with_null = d.with_atom(&DatabaseAtom::new(
            sc.rel_id("R").unwrap(),
            cqa_relational::Tuple::new(vec![s("b"), null()]),
        ));
        let with_value = d.with_atom(&DatabaseAtom::new(
            sc.rel_id("R").unwrap(),
            cqa_relational::Tuple::new(vec![s("b"), s("d")]),
        ));
        let kept = minimize_candidates(&d, vec![with_value, with_null.clone(), with_null.clone()])
            .unwrap();
        assert_eq!(kept, vec![with_null]);
    }

    #[test]
    fn is_repair_exact_check_theorem1() {
        // The Theorem-1 decision problem over the full Prop.-1 space,
        // small enough for the exhaustive certifier.
        let sc = Schema::builder()
            .relation("P", ["a"])
            .relation("Q", ["x"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("P", [s("a")]).unwrap();
        let ic = Ic::builder(&sc, "incl")
            .body_atom("P", [v("x")])
            .head_atom("Q", [v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic)]);
        // the two true repairs
        let deletion = Instance::empty(sc.clone());
        let mut insertion = d.clone();
        insertion.insert_named("Q", [s("a")]).unwrap();
        assert!(is_repair(&d, &deletion, &ics).unwrap());
        assert!(is_repair(&d, &insertion, &ics).unwrap());
        // a consistent non-minimal candidate is rejected
        let mut overkill = Instance::empty(sc.clone());
        overkill.insert_named("Q", [s("a")]).unwrap();
        assert!(!is_repair(&d, &overkill, &ics).unwrap());
        // an inconsistent candidate is rejected
        assert!(!is_repair(&d, &d, &ics).unwrap());
    }

    #[test]
    fn is_repair_among_detects_domination() {
        let sc = schema();
        // IC: P(x,y) → Q(x,y) — treat tiny case by hand.
        let ic = Ic::builder(&sc, "ic")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("y")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic)]);
        let d = inst(&sc, &[("P", vec![s("a"), s("b")])]);
        let fix_insert = inst(
            &sc,
            &[("P", vec![s("a"), s("b")]), ("Q", vec![s("a"), s("b")])],
        );
        let fix_delete = inst(&sc, &[]);
        let overkill = inst(&sc, &[("Q", vec![s("a"), s("b")])]); // delete AND insert
        let pool = [fix_insert.clone(), fix_delete.clone(), overkill.clone()];
        assert!(is_repair_among(&d, &fix_insert, &ics, &pool).unwrap());
        assert!(is_repair_among(&d, &fix_delete, &ics, &pool).unwrap());
        assert!(!is_repair_among(&d, &overkill, &ics, &pool).unwrap());
        // inconsistent candidates are never repairs
        assert!(!is_repair_among(&d, &d, &ics, &pool).unwrap());
    }
}
