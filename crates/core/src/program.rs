//! Repair logic programs Π(D, IC) — Definition 9 of the paper — and the
//! stable-model → repair extraction of Definition 10 / Theorem 4.
//!
//! Annotation constants are realised as name-mangled predicates: for a
//! relation `r` the program uses `r` (facts), `r_ta` (advised true),
//! `r_fa` (advised false), `r_ts` (`t*`: true or becomes true) and
//! `r_tss` (`t**`: true in the repair), plus one `aux__<i>` predicate per
//! referential constraint. This keeps the ASP engine generic — the
//! annotation is part of the predicate name rather than an extra term —
//! and matches the paper's program rule for rule shape and count exactly.
//!
//! ## Paper erratum and [`ProgramStyle`]
//!
//! Definition 9's aux rules carry a `yᵢ ≠ null` guard. The guard is what
//! keeps the *insertion* branch stable (an inserted all-null witness must
//! not derive `aux`, or it would remove the very rule that justified it
//! from the Gelfond–Lifschitz reduct). Its side effect: a *pre-existing*
//! witness whose existential attributes are all null does not register,
//! so `Π(D, IC)` gains a spurious deletion model on databases like
//! `{S(u,a), R(a,null)}` with `S(u,v) → ∃y R(v,y)` — although
//! Definition 4 counts `R(a,null)` as a witness (cf. Example 13) and `D`
//! is consistent. [`ProgramStyle::Corrected`] (default) adds a fact-based
//! witness rule `aux(x̄′) ← Q(x̄′,ȳ), not Q_fa(x̄′,ȳ), x̄′ ≠ null`, which
//! registers every original witness without breaking insertion stability
//! (inserted witnesses are never facts). [`ProgramStyle::PaperExact`]
//! reproduces Definition 9 verbatim; experiment E18b demonstrates the
//! difference.
//!
//! A second, smaller deviation: Definition 9's UIC rule guards
//! `x_l ≠ null` range over `A(ψ) ∩ x̄`; the paper's Example 21 prints only
//! the key variable guard (valid under SQL's three-valued reading of the
//! `ϕ̄` builtins). We emit guards for the full IsNull-escape set of
//! formula (4), which is the faithful rendering of Definitions 4 + 9.
//!
//! ## Incremental grounding architecture
//!
//! Π(D, IC) depends on the database only through its **facts** — the
//! constraint, annotation and denial rules are functions of the schema
//! and the constraint set alone. That makes the program route a perfect
//! fit for the persistent grounder in `cqa-asp`
//! ([`cqa_asp::GroundingState`], whose module docs describe the worklist
//! and delta-seeding internals): a database delta is exactly a fact delta
//! of the program.
//!
//! The pieces, mirroring the direct route's worklist machinery:
//!
//! * **Cached state.** [`crate::cache::GroundingCache`] keeps one live
//!   `GroundingState` per `(IcSet, ProgramStyle, prune)` key, stamped
//!   with [`cqa_relational::Instance::version`]. A repeat call over an
//!   unchanged instance reuses the ground program outright.
//! * **Delta seeding.** On a version mismatch the cache takes the
//!   [`cqa_relational::InstanceDelta`] of the stored base instance
//!   against the caller's and replays it on the live state: removals run
//!   the DRed delete–rederive two-pass, insertions the seminaive
//!   worklist — regrounding bounded by the delta's derivation cone under
//!   *arbitrary* churn, the program-route analogue of
//!   `violations_touching` (the `program_route` bench pins regrounding
//!   after a single-fact insert or delete at a few percent of a
//!   from-scratch grounding at clean=800).
//! * **State invalidation.** Only drifts beyond the cache's escape-hatch
//!   fraction (replaying would cost more than starting over) and schema
//!   changes rebuild the entry; correctness never depends on the
//!   incremental path being taken. The oracle sweep in
//!   `tests/engine_vs_program.rs` pins incremental == from-scratch over
//!   random mixed insert/delete sequences.
//! * **Per-query extension.** CQA appends its `ans__q` rules to a *clone*
//!   of the cached state ([`cqa_asp::GroundingState::add_rule`]), so
//!   query rules never pollute the shared grounding.

use crate::cache::CqaCaches;
use crate::error::{CoreError, InterruptPhase};
use cqa_asp::{
    atom, cmp, neg, pos, resolve_on_state, tc, tv, AspError, AtomSpec, BodyLit, BuiltinOp, Program,
    SolveOptions,
};
use cqa_constraints::{classify::classify, Constraint, Ic, IcClass, IcSet, Term};
use cqa_relational::{CancelToken, Instance, RelId, Schema, Tuple, Value};
use std::collections::BTreeMap;

/// Which variant of the repair program to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgramStyle {
    /// Definition 9, with the fact-based witness rule restoring the
    /// one-to-one stable-model/repair correspondence (default).
    #[default]
    Corrected,
    /// Definition 9 verbatim, including its all-null-witness corner case.
    PaperExact,
}

/// Annotation-predicate name for a relation.
pub fn annotated(name: &str, annotation: &str) -> String {
    format!("{name}_{annotation}")
}

/// The `aux` predicate name for constraint index `i`.
pub fn aux_pred(index: usize) -> String {
    format!("aux__{index}")
}

/// Build Π(D, IC). Errors on constraints outside the Definition-9 class
/// (anything existential that is not a plain referential IC).
pub fn repair_program(
    d: &Instance,
    ics: &IcSet,
    style: ProgramStyle,
) -> Result<Program, CoreError> {
    repair_program_with(d, ics, style, false)
}

/// Build Π(D, IC) with optional *relevance pruning*: annotation,
/// interpretation and denial rules (rules 5–7) are emitted only for
/// relations that occur in some constraint. Untouched relations cannot
/// change in any repair, so their rules are dead weight in the ground
/// program — this is the program-optimisation direction of Caniupán &
/// Bertossi (reference \[12\] of the paper). Use
/// [`extract_instance_with_base`] to read models of pruned programs.
pub fn repair_program_with(
    d: &Instance,
    ics: &IcSet,
    style: ProgramStyle,
    prune_untouched: bool,
) -> Result<Program, CoreError> {
    let schema = d.schema();
    let mut p = Program::new();

    // 1. Facts.
    for a in d.atoms() {
        p.fact(
            schema.relation(a.rel).name(),
            a.tuple.values().iter().cloned(),
        )?;
    }
    // Declare every base predicate (even for empty relations) so rules
    // referencing them resolve with the right arity.
    for (_, decl) in schema.iter() {
        p.pred(decl.name(), decl.arity())?;
    }

    // 2–4. Constraint rules.
    for (index, con) in ics.constraints().iter().enumerate() {
        match con {
            Constraint::Tgd(ic) => match classify(ic) {
                IcClass::Universal => uic_rules(&mut p, schema, ic)?,
                IcClass::Referential => ric_rules(&mut p, schema, ic, index, style)?,
                IcClass::GeneralExistential => {
                    return Err(CoreError::UnsupportedByProgram {
                        constraint: ic.name().to_string(),
                        reason: "existential constraint outside form (3) \
                                 (repeated existential variable or multiple atoms)"
                            .into(),
                    })
                }
            },
            Constraint::NotNull(nnc) => {
                // 4. P_fa(x̄) ← P_ts(x̄), xᵢ = null.
                let rel = schema.relation(nnc.rel);
                let vars: Vec<String> = (0..rel.arity()).map(|i| format!("x{i}")).collect();
                let terms = |suffix: &str| {
                    atom(
                        annotated(rel.name(), suffix),
                        vars.iter().map(|v| tv(v.clone())),
                    )
                };
                p.rule(
                    [terms("fa")],
                    [
                        pos(terms("ts")),
                        cmp(
                            tv(vars[nnc.position].clone()),
                            BuiltinOp::Eq,
                            tc(Value::Null),
                        ),
                    ],
                )?;
            }
        }
    }

    // 5–7. Annotation, interpretation and denial rules, per predicate
    // (or only per constrained predicate when pruning).
    let constrained: std::collections::BTreeSet<RelId> = ics
        .constraints()
        .iter()
        .flat_map(|con| match con {
            Constraint::Tgd(ic) => ic.relations().into_iter().collect::<Vec<_>>(),
            Constraint::NotNull(nnc) => vec![nnc.rel],
        })
        .collect();
    for (rel, decl) in schema.iter() {
        if prune_untouched && !constrained.contains(&rel) {
            continue;
        }
        let vars: Vec<String> = (0..decl.arity()).map(|i| format!("x{i}")).collect();
        let with = |suffix: Option<&str>| -> AtomSpec {
            let name = match suffix {
                Some(sfx) => annotated(decl.name(), sfx),
                None => decl.name().to_string(),
            };
            atom(name, vars.iter().map(|v| tv(v.clone())))
        };
        // 5. t* ← fact; t* ← ta.
        p.rule([with(Some("ts"))], [pos(with(None))])?;
        p.rule([with(Some("ts"))], [pos(with(Some("ta")))])?;
        // 6. t** ← t*, not fa.
        p.rule(
            [with(Some("tss"))],
            [pos(with(Some("ts"))), neg(with(Some("fa")))],
        )?;
        // 7. ← ta, fa.
        p.rule([], [pos(with(Some("ta"))), pos(with(Some("fa")))])?;
    }
    Ok(p)
}

/// Convert a constraint term into an ASP term spec using the IC's own
/// variable names.
fn spec(ic: &Ic, t: &Term) -> cqa_asp::TermSpec {
    match t {
        Term::Var(v) => tv(ic.var_name(*v)),
        Term::Const(c) => tc(*c),
    }
}

/// Rules 2: one disjunctive rule per partition (Q′, Q″) of the head atoms.
fn uic_rules(p: &mut Program, schema: &Schema, ic: &Ic) -> Result<(), CoreError> {
    let n = ic.head().len();
    for mask in 0u32..(1 << n) {
        // bit set = head atom in Q′ (checked deleted), clear = in Q″
        // (checked absent).
        let mut head: Vec<AtomSpec> = Vec::new();
        let mut body: Vec<BodyLit> = Vec::new();
        for b in ic.body() {
            let name = schema.relation(b.rel).name();
            head.push(atom(
                annotated(name, "fa"),
                b.terms.iter().map(|t| spec(ic, t)),
            ));
            body.push(pos(atom(
                annotated(name, "ts"),
                b.terms.iter().map(|t| spec(ic, t)),
            )));
        }
        for (j, h) in ic.head().iter().enumerate() {
            let name = schema.relation(h.rel).name();
            head.push(atom(
                annotated(name, "ta"),
                h.terms.iter().map(|t| spec(ic, t)),
            ));
            if mask & (1 << j) != 0 {
                body.push(pos(atom(
                    annotated(name, "fa"),
                    h.terms.iter().map(|t| spec(ic, t)),
                )));
            } else {
                body.push(neg(atom(
                    name.to_string(),
                    h.terms.iter().map(|t| spec(ic, t)),
                )));
            }
        }
        // IsNull-escape guards: x ≠ null for the escape variables.
        for v in ic.relevant().escape_vars() {
            body.push(cmp(tv(ic.var_name(*v)), BuiltinOp::Neq, tc(Value::Null)));
        }
        // ϕ̄: conjunction of complemented builtins.
        for b in ic.builtins() {
            body.push(cmp(
                spec(ic, &b.lhs),
                to_asp_op(b.op.negate()),
                spec(ic, &b.rhs),
            ));
        }
        p.rule(head, body)?;
    }
    Ok(())
}

/// Rules 3: the referential fix rule plus the aux witness rules.
fn ric_rules(
    p: &mut Program,
    schema: &Schema,
    ic: &Ic,
    index: usize,
    style: ProgramStyle,
) -> Result<(), CoreError> {
    let body_atom = &ic.body()[0];
    let head_atom = &ic.head()[0];
    let body_name = schema.relation(body_atom.rel).name();
    let head_name = schema.relation(head_atom.rel).name();

    // x̄′: the distinct universal variables of the head atom, in order.
    let mut x_prime: Vec<String> = Vec::new();
    for t in &head_atom.terms {
        if let Term::Var(v) = t {
            if !ic.is_existential(*v) {
                let name = ic.var_name(*v).to_string();
                if !x_prime.contains(&name) {
                    x_prime.push(name);
                }
            }
        }
    }
    let guards = |vars: &[String]| -> Vec<BodyLit> {
        vars.iter()
            .map(|v| cmp(tv(v.clone()), BuiltinOp::Neq, tc(Value::Null)))
            .collect()
    };
    // Escape guards for the fix rule: all IsNull-escape variables of ψ
    // (= x̄′ for plain foreign keys).
    let escape_names: Vec<String> = ic
        .relevant()
        .escape_vars()
        .iter()
        .map(|v| ic.var_name(*v).to_string())
        .collect();

    // Fix rule: P_fa(x̄) ∨ Q_ta(x̄′, null̄) ← P_ts(x̄), not aux(x̄′), x̄′ ≠ null.
    let insert_terms: Vec<cqa_asp::TermSpec> = head_atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(v) if ic.is_existential(*v) => tc(Value::Null),
            other => spec(ic, other),
        })
        .collect();
    let mut fix_body: Vec<BodyLit> = vec![
        pos(atom(
            annotated(body_name, "ts"),
            body_atom.terms.iter().map(|t| spec(ic, t)),
        )),
        neg(atom(aux_pred(index), x_prime.iter().map(|v| tv(v.clone())))),
    ];
    fix_body.extend(guards(&escape_names));
    p.rule(
        [
            atom(
                annotated(body_name, "fa"),
                body_atom.terms.iter().map(|t| spec(ic, t)),
            ),
            atom(annotated(head_name, "ta"), insert_terms),
        ],
        fix_body,
    )?;

    // Witness terms: the head atom with its own variable names (existential
    // variables stay as variables).
    let witness_terms: Vec<cqa_asp::TermSpec> =
        head_atom.terms.iter().map(|t| spec(ic, t)).collect();
    let existential_names: Vec<String> = head_atom
        .terms
        .iter()
        .filter_map(|t| match t {
            Term::Var(v) if ic.is_existential(*v) => Some(ic.var_name(*v).to_string()),
            _ => None,
        })
        .collect();

    // aux(x̄′) ← Q_ts(x̄′, ȳ), not Q_fa(x̄′, ȳ), x̄′ ≠ null, yᵢ ≠ null
    // — one rule per existential variable (Definition 9 verbatim).
    for y in &existential_names {
        let mut body: Vec<BodyLit> = vec![
            pos(atom(annotated(head_name, "ts"), witness_terms.clone())),
            neg(atom(annotated(head_name, "fa"), witness_terms.clone())),
        ];
        body.extend(guards(&x_prime));
        body.push(cmp(tv(y.clone()), BuiltinOp::Neq, tc(Value::Null)));
        p.rule(
            [atom(aux_pred(index), x_prime.iter().map(|v| tv(v.clone())))],
            body,
        )?;
    }
    if existential_names.is_empty() {
        // Degenerate: no existential variables (classified referential
        // only when ∃ vars exist, so this is unreachable; keep safe).
        let mut body: Vec<BodyLit> = vec![
            pos(atom(annotated(head_name, "ts"), witness_terms.clone())),
            neg(atom(annotated(head_name, "fa"), witness_terms.clone())),
        ];
        body.extend(guards(&x_prime));
        p.rule(
            [atom(aux_pred(index), x_prime.iter().map(|v| tv(v.clone())))],
            body,
        )?;
    }

    // Corrected style: fact-based witness rule covering pre-existing
    // witnesses with all-null existential attributes.
    if style == ProgramStyle::Corrected {
        let mut body: Vec<BodyLit> = vec![
            pos(atom(head_name.to_string(), witness_terms.clone())),
            neg(atom(annotated(head_name, "fa"), witness_terms.clone())),
        ];
        body.extend(guards(&x_prime));
        p.rule(
            [atom(aux_pred(index), x_prime.iter().map(|v| tv(v.clone())))],
            body,
        )?;
    }
    Ok(())
}

fn to_asp_op(op: cqa_constraints::CmpOp) -> BuiltinOp {
    match op {
        cqa_constraints::CmpOp::Eq => BuiltinOp::Eq,
        cqa_constraints::CmpOp::Neq => BuiltinOp::Neq,
        cqa_constraints::CmpOp::Lt => BuiltinOp::Lt,
        cqa_constraints::CmpOp::Leq => BuiltinOp::Leq,
        cqa_constraints::CmpOp::Gt => BuiltinOp::Gt,
        cqa_constraints::CmpOp::Geq => BuiltinOp::Geq,
    }
}

/// Extract the database instance `D_M` associated with a stable model
/// (Definition 10): the atoms annotated `t**`.
pub fn extract_instance(
    schema: &std::sync::Arc<Schema>,
    program: &Program,
    gp: &cqa_asp::GroundProgram,
    model: &cqa_asp::stable::Model,
) -> Result<Instance, CoreError> {
    // Map tss predicate ids back to relations.
    let mut tss_to_rel: BTreeMap<cqa_asp::PredId, RelId> = BTreeMap::new();
    for (rel, decl) in schema.iter() {
        if let Some(pid) = program.pred_id(&annotated(decl.name(), "tss")) {
            tss_to_rel.insert(pid, rel);
        }
    }
    let mut inst = Instance::empty(schema.clone());
    for &atom_id in model {
        let ga = gp.atom(atom_id);
        if let Some(&rel) = tss_to_rel.get(&ga.pred) {
            inst.insert(rel, Tuple::new(ga.args.iter().cloned()))?;
        }
    }
    Ok(inst)
}

/// Like [`extract_instance`], but relations without a `t**` predicate in
/// the program (pruned, unconstrained relations) are copied verbatim from
/// the original instance — they cannot change in any repair.
pub fn extract_instance_with_base(
    base: &Instance,
    program: &Program,
    gp: &cqa_asp::GroundProgram,
    model: &cqa_asp::stable::Model,
) -> Result<Instance, CoreError> {
    let schema = base.schema();
    let mut inst = extract_instance(schema, program, gp, model)?;
    for (rel, decl) in schema.iter() {
        if program.pred_id(&annotated(decl.name(), "tss")).is_none() {
            for t in base.relation(rel) {
                inst.insert(rel, t.clone())?;
            }
        }
    }
    Ok(inst)
}

/// The repairs of `d` according to the stable models of Π(D, IC)
/// (Theorem 4: for RIC-acyclic IC these are exactly the repairs).
/// Distinct stable models can map to the same instance only in the
/// paper-exact corner cases; the result is de-duplicated and sorted.
/// Grounding goes through the process-wide default [`CqaCaches`]: a
/// repeat call over an unchanged instance reuses the ground program, and
/// any bounded drift — insertions, deletions, or both — regrounds
/// incrementally.
pub fn repairs_via_program(
    d: &Instance,
    ics: &IcSet,
    style: ProgramStyle,
) -> Result<Vec<Instance>, CoreError> {
    repairs_via_program_with(d, ics, style, false)
}

/// [`repairs_via_program`] against an explicit cache bundle.
pub fn repairs_via_program_in(
    d: &Instance,
    ics: &IcSet,
    style: ProgramStyle,
    caches: &CqaCaches,
) -> Result<Vec<Instance>, CoreError> {
    repairs_via_program_with_in(d, ics, style, false, caches)
}

/// [`repairs_via_program`] over an optionally pruned program.
pub fn repairs_via_program_with(
    d: &Instance,
    ics: &IcSet,
    style: ProgramStyle,
    prune_untouched: bool,
) -> Result<Vec<Instance>, CoreError> {
    repairs_via_program_with_in(d, ics, style, prune_untouched, crate::cache::global())
}

/// The fully-parameterised program route: cached incremental grounding,
/// stable-model enumeration, Definition-10 extraction.
pub fn repairs_via_program_with_in(
    d: &Instance,
    ics: &IcSet,
    style: ProgramStyle,
    prune_untouched: bool,
    caches: &CqaCaches,
) -> Result<Vec<Instance>, CoreError> {
    repairs_via_program_governed(
        d,
        ics,
        style,
        prune_untouched,
        caches,
        &CancelToken::never(),
    )
}

/// [`repairs_via_program_with_in`] under a cancellation token, polled by
/// the grounding loops ([`CoreError::Interrupted`] with `Grounding`), the
/// CDCL stable-model enumeration, and the per-model extraction (both
/// `ModelEnumeration`, `partial` counting models fully processed).
pub fn repairs_via_program_governed(
    d: &Instance,
    ics: &IcSet,
    style: ProgramStyle,
    prune_untouched: bool,
    caches: &CqaCaches,
    cancel: &CancelToken,
) -> Result<Vec<Instance>, CoreError> {
    repairs_via_program_solved(
        d,
        ics,
        style,
        prune_untouched,
        SolveOptions::default(),
        caches,
        cancel,
    )
}

/// [`repairs_via_program_governed`] with explicit [`SolveOptions`]: the
/// stable models come from the *incremental* resolve path — the ground
/// program is split into connected components, unchanged components are
/// answered from the [`cqa_asp::SolverState`] paired with the cached
/// grounding, and only changed components are re-solved (reusing learned
/// clauses whose rule premises survived). The repair set is identical to
/// the scratch enumeration at every thread count.
pub fn repairs_via_program_solved(
    d: &Instance,
    ics: &IcSet,
    style: ProgramStyle,
    prune_untouched: bool,
    opts: SolveOptions,
    caches: &CqaCaches,
    cancel: &CancelToken,
) -> Result<Vec<Instance>, CoreError> {
    let (state, solver) =
        caches
            .grounding
            .entry_for_governed(d, ics, style, prune_untouched, cancel)?;
    let gp = state.ground_program();
    let mut solver = solver.lock().expect("solver state lock");
    let models = resolve_on_state(&state, &mut solver, opts, cancel).map_err(|e| match e {
        AspError::Interrupted { partial, .. } => CoreError::Interrupted {
            phase: InterruptPhase::ModelEnumeration,
            partial,
        },
        other => CoreError::Asp(other),
    })?;
    drop(solver);
    let mut out: Vec<Instance> = Vec::new();
    for m in &models {
        if cancel.is_cancelled() {
            return Err(CoreError::Interrupted {
                phase: InterruptPhase::ModelEnumeration,
                partial: out.len(),
            });
        }
        let inst = extract_instance_with_base(d, state.program(), gp, m)?;
        if !out.contains(&inst) {
            out.push(inst);
        }
    }
    out.sort_by(|a, b| {
        a.atoms()
            .collect::<Vec<_>>()
            .cmp(&b.atoms().collect::<Vec<_>>())
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{builders, v};
    use cqa_relational::{display::instance_set, null, s, Instance, Schema};
    use std::sync::Arc;

    fn inst(sc: &Arc<Schema>, rows: &[(&str, Vec<Value>)]) -> Instance {
        let mut d = Instance::empty(sc.clone());
        for (rel, vals) in rows {
            d.insert_named(rel, Tuple::new(vals.clone())).unwrap();
        }
        d
    }

    fn sets(repairs: &[Instance]) -> Vec<String> {
        repairs.iter().map(instance_set).collect()
    }

    /// Example 19/21/23 setup: key R\[1\], FK S\[2\] → R\[1\], NNC on R\[1\].
    fn example19() -> (Arc<Schema>, Instance, IcSet) {
        let sc = Schema::builder()
            .relation("R", ["X", "Y"])
            .relation("S", ["U", "V"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[
                ("R", vec![s("a"), s("b")]),
                ("R", vec![s("a"), s("c")]),
                ("S", vec![s("e"), s("f")]),
                ("S", vec![null(), s("a")]),
            ],
        );
        let mut ics = IcSet::default();
        ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
        ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
        ics.push(builders::not_null(&sc, "R", 0).unwrap());
        (sc, d, ics)
    }

    #[test]
    fn example21_program_shape() {
        let (_, d, ics) = example19();
        let program = repair_program(&d, &ics, ProgramStyle::PaperExact).unwrap();
        let text = program.to_string();
        // Facts.
        assert!(text.contains("R(a, b)."));
        assert!(text.contains("S(null, a)."));
        // Key rule (rule 2): disjunctive deletion head with inequality.
        assert!(text.contains("R_fa("));
        // FK rule (rule 3): disjunctive fa/ta with aux.
        assert!(text.contains("not aux__1("));
        assert!(text.contains("R_ta("));
        // NNC rule (rule 4).
        assert!(text.contains("= null"));
        // Annotation rules (5, 6) and denial (7).
        assert!(text.contains("R_ts(x0, x1) :- R(x0, x1)."));
        assert!(text.contains("R_tss(x0, x1) :- R_ts(x0, x1), not R_fa(x0, x1)."));
        assert!(text.contains(":- R_ta(x0, x1), R_fa(x0, x1)."));
    }

    #[test]
    fn example23_four_stable_models_match_example19_repairs() {
        let (_, d, ics) = example19();
        for style in [ProgramStyle::PaperExact, ProgramStyle::Corrected] {
            let reps = repairs_via_program(&d, &ics, style).unwrap();
            let rendered = sets(&reps);
            assert_eq!(reps.len(), 4, "{style:?}: {rendered:?}");
            assert!(rendered.contains(&"{R(a, b), R(f, null), S(null, a), S(e, f)}".to_string()));
            assert!(rendered.contains(&"{R(a, c), R(f, null), S(null, a), S(e, f)}".to_string()));
            assert!(rendered.contains(&"{R(a, b), S(null, a)}".to_string()));
            assert!(rendered.contains(&"{R(a, c), S(null, a)}".to_string()));
        }
    }

    #[test]
    fn theorem4_program_agrees_with_engine_on_example19() {
        let (_, d, ics) = example19();
        let via_program = repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        let via_engine = crate::engine::repairs(&d, &ics).unwrap();
        assert_eq!(via_program, via_engine);
    }

    #[test]
    fn example22_partition_rule_count() {
        // IC: P(x,y) → R(x) ∨ S(y) (+ NNC on P[2]); Definition 9 generates
        // 2² = 4 partition rules for the UIC.
        let sc = Schema::builder()
            .relation("P", ["A", "B"])
            .relation("R", ["X"])
            .relation("S", ["Y"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[("P", vec![s("a"), s("b")]), ("P", vec![s("c"), null()])],
        );
        let uic = cqa_constraints::Ic::builder(&sc, "uic")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("R", [v("x")])
            .head_atom("S", [v("y")])
            .finish()
            .unwrap();
        let mut ics = IcSet::default();
        ics.push(uic);
        ics.push(builders::not_null(&sc, "P", 1).unwrap());
        let program = repair_program(&d, &ics, ProgramStyle::PaperExact).unwrap();
        let text = program.to_string();
        // Count partition rules: lines containing both P_fa( head and P_ts body.
        let partition_rules = text
            .lines()
            .filter(|l| l.contains("P_fa(x") && l.contains("P_ts(x") && l.contains("R_ta"))
            .count();
        assert_eq!(partition_rules, 4);
        // And the program computes the right repairs: P(c,null) violates
        // the NNC (deleted in every repair); P(a,b) needs R(a) or S(b) or
        // deletion.
        let reps = repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        let rendered = sets(&reps);
        assert_eq!(reps.len(), 3, "{rendered:?}");
        assert!(rendered.contains(&"{}".to_string()));
        assert!(rendered.contains(&"{P(a, b), R(a)}".to_string()));
        assert!(rendered.contains(&"{P(a, b), S(b)}".to_string()));
    }

    #[test]
    fn erratum_all_null_witness_styles_differ() {
        // D = {S(u,a), R(a,null)} with S(u,v) → ∃y R(v,y): consistent per
        // Definition 4 (R(a,null) witnesses), so the only repair is D.
        let sc = Schema::builder()
            .relation("S", ["U", "V"])
            .relation("R", ["X", "Y"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[("S", vec![s("u"), s("a")]), ("R", vec![s("a"), null()])],
        );
        let mut ics = IcSet::default();
        ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
        assert!(cqa_constraints::is_consistent(&d, &ics));

        let corrected = repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        assert_eq!(sets(&corrected), vec![instance_set(&d)]);

        let paper = repairs_via_program(&d, &ics, ProgramStyle::PaperExact).unwrap();
        // Paper-exact: a spurious deletion model appears alongside D.
        assert_eq!(paper.len(), 2, "{:?}", sets(&paper));
        assert!(paper.contains(&d));
    }

    #[test]
    fn insertion_branch_is_stable_in_both_styles() {
        // D = {S(u,a)}: both styles must offer insertion of R(a, null) and
        // deletion of S(u,a) — the stability subtlety the yᵢ ≠ null guard
        // exists for.
        let sc = Schema::builder()
            .relation("S", ["U", "V"])
            .relation("R", ["X", "Y"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(&sc, &[("S", vec![s("u"), s("a")])]);
        let mut ics = IcSet::default();
        ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
        for style in [ProgramStyle::PaperExact, ProgramStyle::Corrected] {
            let reps = repairs_via_program(&d, &ics, style).unwrap();
            let rendered = sets(&reps);
            assert_eq!(reps.len(), 2, "{style:?}: {rendered:?}");
            assert!(rendered.contains(&"{}".to_string()));
            assert!(rendered.contains(&"{S(u, a), R(a, null)}".to_string()));
        }
    }

    #[test]
    fn general_existential_rejected() {
        // Example 13 shape: repeated existential variable.
        let sc = Schema::builder()
            .relation("P", ["A", "B"])
            .relation("Q", ["X", "Y", "Z"])
            .finish()
            .unwrap()
            .into_shared();
        let d = Instance::empty(sc.clone());
        let ic = cqa_constraints::Ic::builder(&sc, "rep")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("z"), v("z")])
            .finish()
            .unwrap();
        let mut ics = IcSet::default();
        ics.push(ic);
        assert!(matches!(
            repair_program(&d, &ics, ProgramStyle::Corrected),
            Err(CoreError::UnsupportedByProgram { .. })
        ));
    }

    #[test]
    fn pruned_program_smaller_but_equivalent() {
        // Schema with an extra, unconstrained relation: pruning drops its
        // rules 5–7 yet the repairs are identical (the relation passes
        // through untouched).
        let sc = Schema::builder()
            .relation("R", ["X", "Y"])
            .relation("S", ["U", "V"])
            .relation("Audit", ["who", "what"])
            .finish()
            .unwrap()
            .into_shared();
        let d = inst(
            &sc,
            &[
                ("R", vec![s("a"), s("b")]),
                ("R", vec![s("a"), s("c")]),
                ("S", vec![null(), s("a")]),
                ("Audit", vec![s("alice"), s("read")]),
                ("Audit", vec![s("bob"), null()]),
            ],
        );
        let mut ics = IcSet::default();
        ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
        ics.push(builders::foreign_key(&sc, "S", &[1], "R", &[0]).unwrap());
        let full = repair_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        let pruned = repair_program_with(&d, &ics, ProgramStyle::Corrected, true).unwrap();
        assert!(pruned.rules().len() < full.rules().len());
        let via_full = repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        let via_pruned = repairs_via_program_with(&d, &ics, ProgramStyle::Corrected, true).unwrap();
        assert_eq!(via_full, via_pruned);
        // Audit rows survive in every repair.
        for r in &via_pruned {
            assert_eq!(r.relation_named("Audit").unwrap().len(), 2);
        }
    }

    #[test]
    fn consistent_database_single_model() {
        let (sc, _, ics) = example19();
        let d = inst(
            &sc,
            &[("R", vec![s("a"), s("b")]), ("S", vec![s("e"), s("a")])],
        );
        let reps = repairs_via_program(&d, &ics, ProgramStyle::Corrected).unwrap();
        assert_eq!(reps, vec![d]);
    }
}
