//! The non-conflicting assumption and helpers around `Rep_d`
//! (Example 20 and the remark following it).
//!
//! A set of constraints is *conflicting* when some NOT NULL constraint
//! guards an attribute that is existentially quantified in a form-(1)
//! constraint: the null-based repair of the latter would immediately
//! violate the former, and the only ≤_D-repairs insert arbitrary domain
//! values — infinitely many over an infinite domain, which is exactly the
//! classic-semantics pathology the null semantics was designed to avoid.
//!
//! The paper's standing assumption is non-conflicting sets; for
//! conflicting ones it sketches `Rep_d`, which prefers deletions. The
//! enumeration side lives in [`crate::engine`]
//! (`RepairSemantics::DeletionPreferring`); this module provides the
//! analysis entry points.

use cqa_constraints::IcSet;

/// A conflicting (tgd, nnc) interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// Index of the form-(1) constraint in the set.
    pub tgd_index: usize,
    /// Index of the NOT NULL constraint in the set.
    pub nnc_index: usize,
    /// Names, for reporting.
    pub tgd_name: String,
    /// Name of the NOT NULL constraint.
    pub nnc_name: String,
}

/// All conflicting interactions of a constraint set.
pub fn conflicts(ics: &IcSet) -> Vec<Conflict> {
    ics.conflicting_pairs()
        .into_iter()
        .map(|(t, n)| Conflict {
            tgd_index: t,
            nnc_index: n,
            tgd_name: ics.constraints()[t].name().to_string(),
            nnc_name: ics.constraints()[n].name().to_string(),
        })
        .collect()
}

/// The constraint set with its conflicting NOT NULL constraints removed —
/// the `IC′` of the `Rep_d` definition.
pub fn without_conflicting_nncs(ics: &IcSet) -> IcSet {
    let drop: std::collections::BTreeSet<usize> = ics
        .conflicting_pairs()
        .into_iter()
        .map(|(_, n)| n)
        .collect();
    ics.constraints()
        .iter()
        .enumerate()
        .filter(|(i, _)| !drop.contains(i))
        .map(|(_, c)| c.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{builders, v, Constraint, Ic, IcSet};
    use cqa_relational::Schema;

    fn conflicted() -> IcSet {
        let sc = Schema::builder()
            .relation("P", ["a"])
            .relation("Q", ["x", "y"])
            .finish()
            .unwrap();
        let ric = Ic::builder(&sc, "ric")
            .body_atom("P", [v("x")])
            .head_atom("Q", [v("x"), v("y")])
            .finish()
            .unwrap();
        let mut ics = IcSet::default();
        ics.push(Constraint::from(ric));
        ics.push(builders::not_null(&sc, "Q", 1).unwrap());
        ics.push(builders::not_null(&sc, "Q", 0).unwrap()); // non-conflicting
        ics
    }

    #[test]
    fn conflicts_reported_with_names() {
        let ics = conflicted();
        let cs = conflicts(&ics);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].tgd_name, "ric");
        assert_eq!(cs[0].nnc_name, "nn_Q_1");
    }

    #[test]
    fn dropping_conflicting_nncs_keeps_the_rest() {
        let ics = conflicted();
        let cleaned = without_conflicting_nncs(&ics);
        assert_eq!(cleaned.len(), 2);
        assert!(cleaned.is_non_conflicting());
        // the harmless NNC survives
        assert!(cleaned.constraints().iter().any(|c| c.name() == "nn_Q_0"));
    }
}
