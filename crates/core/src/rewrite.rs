//! The FO-rewrite fast path: consistent answers for key FDs + NOT NULL
//! constraints by guarded evaluation on the inconsistent instance.
//!
//! The classic first-order-rewritable CQA class (Fuxman & Miller): under
//! primary-key FDs, a quantifier-free conjunctive query is rewritten so
//! each atom `R(x̄)` carries the guard "no tuple sharing `x̄`'s key
//! disagrees on the dependent position". Our conjunctive-query core only
//! supports atom-level negation, and the guard is a negated *conjunction*
//! (`¬∃t′: same key ∧ different value`), so instead of materialising the
//! rewritten formula the guard is evaluated directly: one composite-index
//! probe on the FD's determinant per (candidate tuple, FD) — semantically
//! the same rewritten query, at O(log n) per guard.
//!
//! Null-awareness sharpens the guard in two ways (see `plan.rs` for the
//! derivation):
//!
//! * an FD under `|=_N` escapes when any of its relevant attributes is
//!   null — determinant values and both dependent values must be non-null
//!   for a conflict to exist at all;
//! * a conflicting partner that itself violates a NOT NULL constraint is
//!   in *no* repair, so it cannot push the candidate out of any repair —
//!   such partners are ignored by the guard.

use crate::plan::TupleOracle;
use cqa_constraints::{fd_key_columns, FdKey, IcSet};
use cqa_relational::{Instance, RelId, Value};
use std::collections::HashMap;

/// Per-relation guard data: the key FDs and NOT NULL positions that
/// constrain it.
#[derive(Debug, Default)]
struct RelGuards {
    fds: Vec<FdKey>,
    not_null: Vec<usize>,
}

/// The compiled guard set for one `(instance, IcSet)` pair. Answers the
/// planner's sure / in-no-repair oracle by index probes on the instance.
pub(crate) struct RewriteOracle<'a> {
    d: &'a Instance,
    by_rel: HashMap<RelId, RelGuards>,
}

impl<'a> RewriteOracle<'a> {
    /// Compile the guards. The planner only routes here when every
    /// constraint is a key-style FD or a NOT NULL constraint.
    pub(crate) fn new(d: &'a Instance, ics: &IcSet) -> Self {
        let mut by_rel: HashMap<RelId, RelGuards> = HashMap::new();
        for c in ics.constraints() {
            if let Some(nnc) = c.as_nnc() {
                by_rel
                    .entry(nnc.rel)
                    .or_default()
                    .not_null
                    .push(nnc.position);
            } else if let Some(ic) = c.as_ic() {
                let fd = fd_key_columns(ic)
                    .expect("planner dispatches the FO route only on key-FD sets");
                by_rel.entry(fd.rel).or_default().fds.push(fd);
            }
        }
        RewriteOracle { d, by_rel }
    }

    /// Does the tuple violate a NOT NULL constraint on its relation (and
    /// is therefore in no repair)?
    fn violates_nnc(&self, rel: RelId, values: &[Value]) -> bool {
        self.by_rel
            .get(&rel)
            .is_some_and(|g| g.not_null.iter().any(|&p| values[p].is_null()))
    }
}

impl TupleOracle for RewriteOracle<'_> {
    fn sure(&self, rel: RelId, values: &[Value]) -> bool {
        if self.violates_nnc(rel, values) {
            return false;
        }
        let Some(guards) = self.by_rel.get(&rel) else {
            return true; // unconstrained relation: every tuple survives
        };
        for fd in &guards.fds {
            // Escape: a null in the FD's relevant attributes means this
            // tuple can never witness a violation of it.
            if fd.determinant.iter().any(|&p| values[p].is_null()) || values[fd.dependent].is_null()
            {
                continue;
            }
            let key: Vec<Value> = fd.determinant.iter().map(|&p| values[p]).collect();
            let index = self.d.index_on_cols(rel, &fd.determinant);
            for partner in index.probe_values(&key) {
                let dep = partner.get(fd.dependent);
                if !dep.is_null()
                    && *dep != values[fd.dependent]
                    && !self.violates_nnc(rel, partner.values())
                {
                    // A live key-conflicting partner: some repair keeps it
                    // and drops the candidate.
                    return false;
                }
            }
        }
        true
    }

    fn in_no_repair(&self, rel: RelId, values: &[Value]) -> bool {
        // Under key FDs + NOT NULL the only single-tuple violations are
        // NOT NULL ones (FD edges always pair two distinct tuples).
        self.violates_nnc(rel, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::builders;
    use cqa_relational::{null, s, Schema};
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Instance, IcSet) {
        let sc = Schema::builder()
            .relation("R", ["K", "V"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("R", [s("k1"), s("a")]).unwrap(); // clean
        d.insert_named("R", [s("k2"), s("a")]).unwrap(); // conflicting pair
        d.insert_named("R", [s("k2"), s("b")]).unwrap();
        d.insert_named("R", [s("k3"), null()]).unwrap(); // null dependent: escapes
        d.insert_named("R", [s("k3"), s("c")]).unwrap();
        d.insert_named("R", [null(), s("z")]).unwrap(); // null key: escapes
        let mut ics = IcSet::default();
        ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
        (sc, d, ics)
    }

    fn tuple_values(vals: &[Value]) -> Vec<Value> {
        vals.to_vec()
    }

    #[test]
    fn guard_matches_fd_conflict_structure() {
        let (sc, d, ics) = setup();
        let rel = sc.rel_id("R").unwrap();
        let oracle = RewriteOracle::new(&d, &ics);
        // Clean tuple: sure.
        assert!(oracle.sure(rel, &tuple_values(&[s("k1"), s("a")])));
        // Conflicting pair: neither is sure, both are in some repair.
        assert!(!oracle.sure(rel, &tuple_values(&[s("k2"), s("a")])));
        assert!(!oracle.sure(rel, &tuple_values(&[s("k2"), s("b")])));
        assert!(!oracle.in_no_repair(rel, &tuple_values(&[s("k2"), s("a")])));
        // Null dependent escapes the FD: both k3 tuples are sure.
        assert!(oracle.sure(rel, &tuple_values(&[s("k3"), null()])));
        assert!(oracle.sure(rel, &tuple_values(&[s("k3"), s("c")])));
        // Null determinant escapes too.
        assert!(oracle.sure(rel, &tuple_values(&[null(), s("z")])));
    }

    #[test]
    fn nnc_violating_partner_cannot_unseat_a_tuple() {
        let sc = Schema::builder()
            .relation("R", ["K", "V", "W"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("R", [s("k"), s("a"), s("ok")]).unwrap();
        // Key-conflicting partner, but it violates NOT NULL on W: it is in
        // no repair, so it cannot push the first tuple out of any repair.
        d.insert_named("R", [s("k"), s("b"), null()]).unwrap();
        let mut ics = IcSet::default();
        ics.push(builders::functional_dependency(&sc, "R", &[0], 1).unwrap());
        ics.push(builders::not_null(&sc, "R", 2).unwrap());
        let rel = sc.rel_id("R").unwrap();
        let oracle = RewriteOracle::new(&d, &ics);
        assert!(oracle.sure(rel, &tuple_values(&[s("k"), s("a"), s("ok")])));
        assert!(oracle.in_no_repair(rel, &tuple_values(&[s("k"), s("b"), null()])));
        assert!(!oracle.sure(rel, &tuple_values(&[s("k"), s("b"), null()])));
    }
}
