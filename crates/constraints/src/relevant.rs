//! Relevant attributes `A(ψ)` (Definition 2) and projections `D^A`
//! (Definition 3).
//!
//! For a term `t`, `pos_R(ψ, t)` is the set of positions of predicate `R`
//! where `t` appears in ψ. Then
//!
//! ```text
//! A(ψ) = { R[i] | x a variable occurring at least twice in ψ, i ∈ pos_R(ψ, x) }
//!      ∪ { R[i] | c a constant of ψ,                        i ∈ pos_R(ψ, c) }
//! ```
//!
//! Informally: attributes involved in joins, attributes shared between
//! antecedent and consequent, attributes constrained by ϕ, and attributes
//! compared to constants.
//!
//! Occurrences are counted across the *whole* formula — body atoms, head
//! atoms, and ϕ (a variable occurring once in the body and once in ϕ
//! occurs twice, making its body position relevant; cf. Example 6 where
//! only `Salary` is relevant).
//!
//! The IsNull-escape set of formula (4), written `A(ψ) ∩ x̄` in the paper,
//! is implemented as: the universally quantified variables that occur at
//! some relevant position. This includes the (rare) case of a variable
//! occurring once at a position made relevant by a *different* term — the
//! reading consistent with evaluating `ψ^N` over `D^{A(ψ)}`, where every
//! remaining antecedent position is relevant.

use crate::ast::{Builtin, IcAtom, Term, VarId};
use cqa_relational::{Instance, RelId, Schema, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// The relevant-attribute metadata of one constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelevantAttrs {
    positions: BTreeSet<(RelId, usize)>,
    escape_vars: BTreeSet<VarId>,
    occurrences: Vec<usize>,
}

impl RelevantAttrs {
    /// Compute `A(ψ)` for a validated constraint body/head/ϕ.
    pub(crate) fn compute(
        body: &[IcAtom],
        head: &[IcAtom],
        builtins: &[Builtin],
        universal: &BTreeSet<VarId>,
        var_count: usize,
    ) -> Self {
        let mut occurrences = vec![0usize; var_count];
        let atom_occurrence = |occ: &mut Vec<usize>, atom: &IcAtom| {
            for t in &atom.terms {
                if let Term::Var(v) = t {
                    occ[v.index()] += 1;
                }
            }
        };
        for atom in body.iter().chain(head) {
            atom_occurrence(&mut occurrences, atom);
        }
        for b in builtins {
            for t in [&b.lhs, &b.rhs] {
                if let Term::Var(v) = t {
                    occurrences[v.index()] += 1;
                }
            }
        }

        let mut positions = BTreeSet::new();
        for atom in body.iter().chain(head) {
            for (pos, t) in atom.terms.iter().enumerate() {
                let relevant = match t {
                    Term::Const(_) => true,
                    Term::Var(v) => occurrences[v.index()] >= 2,
                };
                if relevant {
                    positions.insert((atom.rel, pos));
                }
            }
        }

        // Escape variables: universal variables sitting at some relevant
        // position (relevance is per (relation, position), so a second pass
        // is required — a position can be relevant because of *another*
        // atom over the same relation).
        let mut escape_vars = BTreeSet::new();
        for atom in body.iter().chain(head) {
            for (pos, t) in atom.terms.iter().enumerate() {
                if let Term::Var(v) = t {
                    if universal.contains(v) && positions.contains(&(atom.rel, pos)) {
                        escape_vars.insert(*v);
                    }
                }
            }
        }

        RelevantAttrs {
            positions,
            escape_vars,
            occurrences,
        }
    }

    /// Is attribute `(rel, pos)` (0-based) relevant?
    pub fn is_relevant(&self, rel: RelId, pos: usize) -> bool {
        self.positions.contains(&(rel, pos))
    }

    /// All relevant attributes.
    pub fn positions(&self) -> &BTreeSet<(RelId, usize)> {
        &self.positions
    }

    /// Universal variables subject to the IsNull escape of formula (4).
    pub fn escape_vars(&self) -> &BTreeSet<VarId> {
        &self.escape_vars
    }

    /// Number of occurrences of a variable across the whole formula.
    pub fn occurrences(&self, v: VarId) -> usize {
        self.occurrences[v.index()]
    }

    /// The kept (relevant) positions of one relation, sorted — the columns
    /// of `R^{A(ψ)}` in Definition 3.
    pub fn kept_positions(&self, rel: RelId) -> Vec<usize> {
        self.positions
            .iter()
            .filter(|(r, _)| *r == rel)
            .map(|(_, p)| *p)
            .collect()
    }

    /// Project one relation of an instance onto its relevant attributes:
    /// `R^{A}(Π_A(t̄))` for every `R(t̄) ∈ D` (Definition 3).
    pub fn project_relation(&self, instance: &Instance, rel: RelId) -> BTreeSet<Tuple> {
        let kept = self.kept_positions(rel);
        instance
            .relation(rel)
            .iter()
            .map(|t| t.project(&kept))
            .collect()
    }

    /// Render as the paper's 1-based `R[i]` notation, e.g.
    /// `{P\[1\], P\[2\], R\[1\], R\[2\]}`.
    pub fn display(&self, schema: &Schema) -> String {
        let names: Vec<String> = self
            .positions
            .iter()
            .map(|(rel, pos)| format!("{}[{}]", schema.relation(*rel).name(), pos + 1))
            .collect();
        format!("{{{}}}", names.join(", "))
    }

    /// Group the relevant positions by relation.
    pub fn by_relation(&self) -> BTreeMap<RelId, Vec<usize>> {
        let mut out: BTreeMap<RelId, Vec<usize>> = BTreeMap::new();
        for (rel, pos) in &self.positions {
            out.entry(*rel).or_default().push(*pos);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{c, v, CmpOp, Ic};
    use cqa_relational::{s, Schema};

    fn schema3() -> Schema {
        Schema::builder()
            .relation("P", ["a", "b", "c"])
            .relation("R", ["x", "y"])
            .relation("T", ["t"])
            .finish()
            .unwrap()
    }

    #[test]
    fn example10_psi_relevant_attrs() {
        // ψ: ∀xyz (P(x,y,z) → R(x,y));  A(ψ) = {P[1], R[1], P[2], R[2]}.
        let sc = schema3();
        let ic = Ic::builder(&sc, "psi")
            .body_atom("P", [v("x"), v("y"), v("z")])
            .head_atom("R", [v("x"), v("y")])
            .finish()
            .unwrap();
        assert_eq!(ic.relevant().display(&sc), "{P[1], P[2], R[1], R[2]}");
        let p = sc.rel_id("P").unwrap();
        assert!(!ic.relevant().is_relevant(p, 2)); // z occurs once
        assert_eq!(ic.relevant().escape_vars().len(), 2); // x, y
    }

    #[test]
    fn example10_gamma_relevant_attrs() {
        // γ: ∀xyzw (P(x,y,z) ∧ R(z,w) → ∃v R(x,v) ∨ w > 3)
        // A(γ) = {P[1], R[1], P[3], R[2]}.
        let sc = schema3();
        let ic = Ic::builder(&sc, "gamma")
            .body_atom("P", [v("x"), v("y"), v("z")])
            .body_atom("R", [v("z"), v("w")])
            .head_atom("R", [v("x"), v("vv")])
            .builtin(v("w"), CmpOp::Gt, c(3))
            .finish()
            .unwrap();
        assert_eq!(ic.relevant().display(&sc), "{P[1], P[3], R[1], R[2]}");
        // escape vars: x (P[1], R[1]), z (P[3], R[1]), w (R[2]); y occurs once.
        assert_eq!(ic.relevant().escape_vars().len(), 3);
    }

    #[test]
    fn example6_check_constraint_only_compared_attr_relevant() {
        // Emp(id, name, salary) → salary > 100: only Salary relevant.
        let sc = Schema::builder()
            .relation("Emp", ["ID", "Name", "Salary"])
            .finish()
            .unwrap();
        let ic = Ic::builder(&sc, "chk")
            .body_atom("Emp", [v("i"), v("n"), v("s")])
            .builtin(v("s"), CmpOp::Gt, c(100))
            .finish()
            .unwrap();
        assert_eq!(ic.relevant().display(&sc), "{Emp[3]}");
        assert_eq!(ic.relevant().escape_vars().len(), 1);
    }

    #[test]
    fn example13_repeated_existential_is_relevant() {
        // ψ: P(x,y) → ∃z Q(x,z,z): A(ψ) = {P[1], Q[1], Q[2], Q[3]}.
        let sc = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("Q", ["x", "y", "z"])
            .finish()
            .unwrap();
        let ic = Ic::builder(&sc, "ex13")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("z"), v("z")])
            .finish()
            .unwrap();
        assert_eq!(ic.relevant().display(&sc), "{P[1], Q[1], Q[2], Q[3]}");
        // z is existential, hence never an escape var.
        assert_eq!(ic.relevant().escape_vars().len(), 1); // x only
    }

    #[test]
    fn constants_make_positions_relevant() {
        let sc = schema3();
        let ic = Ic::builder(&sc, "k")
            .body_atom("R", [v("x"), c(5)])
            .head_atom("T", [v("x")])
            .finish()
            .unwrap();
        let r = sc.rel_id("R").unwrap();
        assert!(ic.relevant().is_relevant(r, 1)); // constant position
        assert!(ic.relevant().is_relevant(r, 0)); // x occurs twice
    }

    #[test]
    fn position_relevance_is_global_per_relation() {
        // P(x,y,q) ∧ P(y,z,w) → false: y occurs twice at P[2] (atom 1) and
        // P[1] (atom 2); x, z occur once but sit at globally relevant
        // positions, so they become escape variables.
        let sc = schema3();
        let ic = Ic::builder(&sc, "j")
            .body_atom("P", [v("x"), v("y"), v("q")])
            .body_atom("P", [v("y"), v("z"), v("w")])
            .finish()
            .unwrap();
        let p = sc.rel_id("P").unwrap();
        assert!(ic.relevant().is_relevant(p, 0));
        assert!(ic.relevant().is_relevant(p, 1));
        assert!(!ic.relevant().is_relevant(p, 2));
        // escapes: y (twice) plus x and z via shared positions, not q/w.
        assert_eq!(ic.relevant().escape_vars().len(), 3);
    }

    #[test]
    fn projection_of_example10() {
        // D = {P(a,b,a), P(b,c,a)}; P^A(ψ) keeps columns 1,2.
        let sc = schema3();
        let ic = Ic::builder(&sc, "psi")
            .body_atom("P", [v("x"), v("y"), v("z")])
            .head_atom("R", [v("x"), v("y")])
            .finish()
            .unwrap();
        let mut d = Instance::empty(sc.clone().into_shared());
        d.insert_named("P", [s("a"), s("b"), s("a")]).unwrap();
        d.insert_named("P", [s("b"), s("c"), s("a")]).unwrap();
        let p = sc.rel_id("P").unwrap();
        let projected = ic.relevant().project_relation(&d, p);
        let expect: BTreeSet<Tuple> = [
            Tuple::new(vec![s("a"), s("b")]),
            Tuple::new(vec![s("b"), s("c")]),
        ]
        .into_iter()
        .collect();
        assert_eq!(projected, expect);
    }
}
