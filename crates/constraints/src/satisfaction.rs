//! IC satisfaction in databases with null values: `D |=_N ψ`
//! (Definition 4), classical satisfaction, and violation reporting.
//!
//! Definition 4 says `D |=_N ψ` iff `D^{A(ψ)} |= ψ^N`, where `ψ^N` extends
//! ψ's consequent with IsNull-disjuncts over the relevant universal
//! variables and restricts every atom to its relevant attributes; the
//! resulting formula is evaluated classically with `null` treated as any
//! other constant (Example 12).
//!
//! [`violations`] evaluates this *directly on the instance*, without
//! materialising projections. The two are equivalent because a
//! non-relevant position holds, by Definition 2, a variable occurring
//! exactly once in ψ — which constrains nothing on either side of the
//! implication:
//!
//! * in the antecedent, a once-occurring variable matches any value, so
//!   dropping the column does not change the set of assignments over the
//!   remaining variables;
//! * in the consequent, a once-occurring variable is existential and
//!   unconstrained, so a witness tuple only has to agree on relevant
//!   positions — exactly the `Q^{A}` match.
//!
//! The projection-based checker [`satisfies_via_projection`] implements
//! Definition 4 literally and is used as a cross-check in tests and
//! property suites.

use crate::ast::{Ic, IcAtom, IcSet, Nnc, Term, VarId};
use cqa_relational::{DatabaseAtom, Instance, Schema, Value};
use std::collections::BTreeMap;
use std::ops::ControlFlow;

/// Which satisfaction relation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SatMode {
    /// The paper's `|=_N` (Definition 4): IsNull escapes on relevant
    /// universal variables; witnesses matched on relevant attributes.
    #[default]
    NullAware,
    /// Classical first-order satisfaction with `null` as an ordinary
    /// constant: no escapes, witnesses matched on every attribute.
    /// On null-free instances this coincides with `NullAware` (the paper's
    /// remark after Definition 4).
    Classical,
}

/// Why a constraint is violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// A ground instantiation of a form-(1) constraint whose antecedent
    /// holds while no escape or witness applies.
    Tgd {
        /// Value of each constraint variable (indexed by [`VarId`];
        /// existential variables are `None`).
        bindings: Vec<Option<Value>>,
        /// The ground body atoms matched by the assignment, in body order.
        body_atoms: Vec<DatabaseAtom>,
    },
    /// A tuple with `null` at a NOT NULL position.
    NotNull {
        /// The offending atom.
        atom: DatabaseAtom,
        /// The guarded 0-based position.
        position: usize,
    },
}

/// A single constraint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the violated constraint within the [`IcSet`].
    pub constraint_index: usize,
    /// The witness.
    pub kind: ViolationKind,
}

impl Violation {
    /// Human-readable rendering, e.g.
    /// `psi1 violated by P(a, b, null) with {x=a, y=b}`.
    pub fn display(&self, schema: &Schema, ics: &IcSet) -> String {
        let name = ics.constraints()[self.constraint_index].name();
        match &self.kind {
            ViolationKind::Tgd {
                bindings,
                body_atoms,
            } => {
                let ic = ics.constraints()[self.constraint_index]
                    .as_ic()
                    .expect("Tgd violation indexes a form-(1) constraint");
                let mut assigns = Vec::new();
                for (i, b) in bindings.iter().enumerate() {
                    if let Some(v) = b {
                        assigns.push(format!("{}={}", ic.var_name(VarId(i as u32)), v));
                    }
                }
                let atoms: Vec<String> = body_atoms
                    .iter()
                    .map(|a| a.display(schema).to_string())
                    .collect();
                format!(
                    "{name} violated by {} with {{{}}}",
                    atoms.join(", "),
                    assigns.join(", ")
                )
            }
            ViolationKind::NotNull { atom, position } => format!(
                "{name} violated: {} has null at position {}",
                atom.display(schema),
                position + 1
            ),
        }
    }
}

/// All violations of `ics` in `instance` under `mode`, in deterministic
/// order (constraint order, then body-join order).
///
/// Joins are index-probed ([`crate::incremental`]) but enumerate matches in
/// exactly the order of the retained naive evaluator
/// ([`violations_naive`]), which the property suite uses as an oracle.
pub fn violations(instance: &Instance, ics: &IcSet, mode: SatMode) -> Vec<Violation> {
    let mut out = Vec::new();
    let _ = for_each_violation_indexed(instance, ics, mode, |v| {
        out.push(v);
        ControlFlow::<()>::Continue(())
    });
    out
}

/// First violation, if any, via index-probed joins.
pub fn first_violation(instance: &Instance, ics: &IcSet, mode: SatMode) -> Option<Violation> {
    match for_each_violation_indexed(instance, ics, mode, ControlFlow::Break) {
        ControlFlow::Break(v) => Some(v),
        ControlFlow::Continue(()) => None,
    }
}

/// All violations by the naive nested-loop evaluator: full relation scans,
/// no indexes. Retained as the cross-check oracle for the indexed and
/// incremental paths; use [`violations`] everywhere else.
pub fn violations_naive(instance: &Instance, ics: &IcSet, mode: SatMode) -> Vec<Violation> {
    let mut out = Vec::new();
    let _ = for_each_violation(instance, ics, mode, |v| {
        out.push(v);
        ControlFlow::<()>::Continue(())
    });
    out
}

/// First violation by the naive full-scan evaluator (oracle; also the
/// "seed behaviour" baseline of the repair-engine benchmarks).
pub fn first_violation_naive(instance: &Instance, ics: &IcSet, mode: SatMode) -> Option<Violation> {
    match for_each_violation(instance, ics, mode, ControlFlow::Break) {
        ControlFlow::Break(v) => Some(v),
        ControlFlow::Continue(()) => None,
    }
}

fn for_each_violation_indexed<B>(
    instance: &Instance,
    ics: &IcSet,
    mode: SatMode,
    mut f: impl FnMut(Violation) -> ControlFlow<B>,
) -> ControlFlow<B> {
    for (index, constraint) in ics.constraints().iter().enumerate() {
        match constraint {
            crate::ast::Constraint::Tgd(ic) => {
                crate::incremental::tgd_violations_indexed(
                    instance,
                    ic,
                    mode,
                    &mut |bindings, atoms| {
                        f(Violation {
                            constraint_index: index,
                            kind: ViolationKind::Tgd {
                                bindings: bindings.to_vec(),
                                body_atoms: atoms,
                            },
                        })
                    },
                )?;
            }
            crate::ast::Constraint::NotNull(nnc) => {
                // Probe the index bucket of `null` at the guarded column
                // instead of scanning the relation; bucket order equals
                // scan order.
                let ix = instance.index_on(nnc.rel, nnc.position);
                for t in ix.probe(&Value::Null) {
                    f(Violation {
                        constraint_index: index,
                        kind: ViolationKind::NotNull {
                            atom: DatabaseAtom::new(nnc.rel, t.clone()),
                            position: nnc.position,
                        },
                    })?;
                }
            }
        }
    }
    ControlFlow::Continue(())
}

/// `D |=_N IC` — no violations under the paper's semantics.
pub fn is_consistent(instance: &Instance, ics: &IcSet) -> bool {
    first_violation(instance, ics, SatMode::NullAware).is_none()
}

/// Violations plus a convenience consistency flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Every violation found.
    pub violations: Vec<Violation>,
}

impl ConsistencyReport {
    /// `true` iff no violations were found.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Full consistency check, collecting all violations.
pub fn check_instance(instance: &Instance, ics: &IcSet, mode: SatMode) -> ConsistencyReport {
    ConsistencyReport {
        violations: violations(instance, ics, mode),
    }
}

/// Would inserting `tuple` into `relation` keep the instance consistent?
/// Mirrors the DBMS behaviour discussed in Examples 5 and 6: the insertion
/// is checked against `|=_N`.
///
/// Routed through the delta API: the hypothetical instance is a
/// copy-on-write fork (reference-count bumps, not an O(data) clone), the
/// *new* violations are found by seeded matching on the inserted atom only
/// ([`crate::incremental::violations_touching`]), and the full check runs
/// only when the insertion itself is clean — at which point any remaining
/// violation predates the insertion.
pub fn insertion_allowed(
    instance: &Instance,
    ics: &IcSet,
    relation: &str,
    tuple: impl Into<cqa_relational::Tuple>,
) -> bool {
    let tuple = tuple.into();
    let Ok(rel) = instance.schema().require(relation) else {
        return false;
    };
    let mut fork = instance.clone();
    if fork.insert(rel, tuple.clone()).is_err() {
        return false;
    }
    let delta = cqa_relational::Delta::insertion(cqa_relational::DatabaseAtom::new(rel, tuple));
    if !crate::incremental::violations_touching(&fork, ics, &delta, SatMode::NullAware).is_empty() {
        return false;
    }
    is_consistent(&fork, ics)
}

fn for_each_violation<B>(
    instance: &Instance,
    ics: &IcSet,
    mode: SatMode,
    mut f: impl FnMut(Violation) -> ControlFlow<B>,
) -> ControlFlow<B> {
    for (index, constraint) in ics.constraints().iter().enumerate() {
        match constraint {
            crate::ast::Constraint::Tgd(ic) => {
                tgd_violations(instance, ic, mode, &mut |bindings, atoms| {
                    f(Violation {
                        constraint_index: index,
                        kind: ViolationKind::Tgd {
                            bindings: bindings.to_vec(),
                            body_atoms: atoms.to_vec(),
                        },
                    })
                })?;
            }
            crate::ast::Constraint::NotNull(nnc) => {
                nnc_violations(instance, nnc, &mut |atom| {
                    f(Violation {
                        constraint_index: index,
                        kind: ViolationKind::NotNull {
                            atom,
                            position: nnc.position,
                        },
                    })
                })?;
            }
        }
    }
    ControlFlow::Continue(())
}

fn nnc_violations<B>(
    instance: &Instance,
    nnc: &Nnc,
    f: &mut impl FnMut(DatabaseAtom) -> ControlFlow<B>,
) -> ControlFlow<B> {
    for t in instance.relation(nnc.rel) {
        if t.get(nnc.position).is_null() {
            f(DatabaseAtom::new(nnc.rel, t.clone()))?;
        }
    }
    ControlFlow::Continue(())
}

/// Enumerate the violating ground instantiations of one form-(1)
/// constraint.
fn tgd_violations<B>(
    instance: &Instance,
    ic: &Ic,
    mode: SatMode,
    f: &mut impl FnMut(&[Option<Value>], &[DatabaseAtom]) -> ControlFlow<B>,
) -> ControlFlow<B> {
    for_each_body_match(instance, ic, &mut |bindings, atoms| {
        if !ground_satisfied(instance, ic, mode, bindings) {
            f(bindings, atoms)?;
        }
        ControlFlow::Continue(())
    })
}

/// Enumerate every full assignment of the body variables against the
/// instance (null joined as an ordinary constant), calling `f` with the
/// bindings and the matched ground body atoms. Shared by the `|=_N`
/// evaluator and the alternative semantics of [`crate::alt`].
pub(crate) fn for_each_body_match<B>(
    instance: &Instance,
    ic: &Ic,
    f: &mut impl FnMut(&[Option<Value>], &[DatabaseAtom]) -> ControlFlow<B>,
) -> ControlFlow<B> {
    let mut bindings: Vec<Option<Value>> = vec![None; ic.var_count()];
    let mut atoms: Vec<DatabaseAtom> = Vec::with_capacity(ic.body().len());
    join_body(instance, ic, 0, &mut bindings, &mut atoms, f)
}

fn join_body<B>(
    instance: &Instance,
    ic: &Ic,
    depth: usize,
    bindings: &mut Vec<Option<Value>>,
    atoms: &mut Vec<DatabaseAtom>,
    f: &mut impl FnMut(&[Option<Value>], &[DatabaseAtom]) -> ControlFlow<B>,
) -> ControlFlow<B> {
    if depth == ic.body().len() {
        return f(bindings, atoms);
    }
    let atom = &ic.body()[depth];
    'tuples: for t in instance.relation(atom.rel) {
        let mut newly_bound: Vec<VarId> = Vec::new();
        for (pos, term) in atom.terms.iter().enumerate() {
            let val = t.get(pos);
            match term {
                Term::Const(c) => {
                    if val != c {
                        undo(bindings, &newly_bound);
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match &bindings[v.index()] {
                    Some(bound) => {
                        // null joins null: Definition 4 evaluates ψ^N with
                        // null as an ordinary constant (Example 12).
                        if bound != val {
                            undo(bindings, &newly_bound);
                            continue 'tuples;
                        }
                    }
                    None => {
                        bindings[v.index()] = Some(*val);
                        newly_bound.push(*v);
                    }
                },
            }
        }
        atoms.push(DatabaseAtom::new(atom.rel, t.clone()));
        let res = join_body(instance, ic, depth + 1, bindings, atoms, f);
        atoms.pop();
        undo(bindings, &newly_bound);
        res?;
    }
    ControlFlow::Continue(())
}

fn undo(bindings: &mut [Option<Value>], vars: &[VarId]) {
    for v in vars {
        bindings[v.index()] = None;
    }
}

/// Is the ground constraint (under a full body assignment) satisfied?
fn ground_satisfied(
    instance: &Instance,
    ic: &Ic,
    mode: SatMode,
    bindings: &[Option<Value>],
) -> bool {
    // 1. IsNull escape (NullAware only): a relevant universal variable
    //    bound to null satisfies the constraint outright.
    if mode == SatMode::NullAware {
        for v in ic.relevant().escape_vars() {
            if matches!(bindings[v.index()], Some(Value::Null)) {
                return true;
            }
        }
    }
    // 2. ϕ escape: some builtin disjunct true.
    if phi_escape(ic, bindings) {
        return true;
    }
    // 3. Head witness.
    for atom in ic.head() {
        if head_witness(instance, ic, atom, mode, bindings) {
            return true;
        }
    }
    false
}

/// Does some disjunct of ϕ evaluate to true under the assignment?
pub(crate) fn phi_escape(ic: &Ic, bindings: &[Option<Value>]) -> bool {
    ic.builtins().iter().any(|b| {
        b.op.eval(term_value(&b.lhs, bindings), term_value(&b.rhs, bindings))
    })
}

pub(crate) fn term_value<'a>(term: &'a Term, bindings: &'a [Option<Value>]) -> &'a Value {
    match term {
        Term::Const(c) => c,
        Term::Var(v) => bindings[v.index()]
            .as_ref()
            .expect("builtin variables are body variables, bound at check time"),
    }
}

/// Does some tuple of `atom.rel` witness the head atom under the
/// assignment? Matching is restricted to relevant positions in
/// `NullAware` mode (the `Q^{A(ψ)}` of formula (4)); existential variables
/// occurring more than once must match consistently within the atom.
pub(crate) fn head_witness(
    instance: &Instance,
    ic: &Ic,
    atom: &IcAtom,
    mode: SatMode,
    bindings: &[Option<Value>],
) -> bool {
    'tuples: for t in instance.relation(atom.rel) {
        let mut local: BTreeMap<VarId, &Value> = BTreeMap::new();
        for (pos, term) in atom.terms.iter().enumerate() {
            let checked = match mode {
                SatMode::NullAware => ic.relevant().is_relevant(atom.rel, pos),
                SatMode::Classical => true,
            };
            if !checked {
                continue;
            }
            let val = t.get(pos);
            match term {
                Term::Const(c) => {
                    if val != c {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => {
                    if let Some(bound) = &bindings[v.index()] {
                        if bound != val {
                            continue 'tuples;
                        }
                    } else {
                        // existential: bind locally, consistently.
                        match local.get(v) {
                            Some(prev) => {
                                if *prev != val {
                                    continue 'tuples;
                                }
                            }
                            None => {
                                local.insert(*v, val);
                            }
                        }
                    }
                }
            }
        }
        return true;
    }
    false
}

/// Literal Definition 4: build `D^{A(ψ)}` and evaluate `ψ^N` on it.
/// Used as a cross-check for the direct evaluator.
pub fn satisfies_via_projection(instance: &Instance, ic: &Ic) -> bool {
    // Projected relations, one per relation mentioned by ψ.
    let mut projected: BTreeMap<cqa_relational::RelId, Vec<Vec<Value>>> = BTreeMap::new();
    for rel in ic.relations() {
        let rows = ic
            .relevant()
            .project_relation(instance, rel)
            .into_iter()
            .map(|t| t.values().to_vec())
            .collect();
        projected.insert(rel, rows);
    }
    // Projected atoms: (rel, terms at kept positions).
    let shrink = |atom: &IcAtom| -> (cqa_relational::RelId, Vec<Term>) {
        let kept = ic.relevant().kept_positions(atom.rel);
        (
            atom.rel,
            kept.iter().map(|&p| atom.terms[p].clone()).collect(),
        )
    };
    let body: Vec<_> = ic.body().iter().map(&shrink).collect();
    let head: Vec<_> = ic.head().iter().map(&shrink).collect();

    // Enumerate assignments over the projected body.
    let mut bindings: Vec<Option<Value>> = vec![None; ic.var_count()];
    fn rec(
        ic: &Ic,
        projected: &BTreeMap<cqa_relational::RelId, Vec<Vec<Value>>>,
        body: &[(cqa_relational::RelId, Vec<Term>)],
        head: &[(cqa_relational::RelId, Vec<Term>)],
        depth: usize,
        bindings: &mut Vec<Option<Value>>,
    ) -> bool {
        if depth == body.len() {
            // ψ^N consequent: IsNull escapes ∨ projected head atoms ∨ ϕ.
            for v in ic.relevant().escape_vars() {
                if matches!(bindings[v.index()], Some(Value::Null)) {
                    return true;
                }
            }
            for b in ic.builtins() {
                if b.op
                    .eval(term_value(&b.lhs, bindings), term_value(&b.rhs, bindings))
                {
                    return true;
                }
            }
            'atoms: for (rel, terms) in head {
                'rows: for row in &projected[rel] {
                    let mut local: BTreeMap<VarId, &Value> = BTreeMap::new();
                    for (val, term) in row.iter().zip(terms) {
                        match term {
                            Term::Const(c) => {
                                if val != c {
                                    continue 'rows;
                                }
                            }
                            Term::Var(v) => {
                                if let Some(bound) = &bindings[v.index()] {
                                    if bound != val {
                                        continue 'rows;
                                    }
                                } else {
                                    match local.get(v) {
                                        Some(prev) => {
                                            if *prev != val {
                                                continue 'rows;
                                            }
                                        }
                                        None => {
                                            local.insert(*v, val);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    return true;
                }
                continue 'atoms;
            }
            return false;
        }
        let (rel, terms) = &body[depth];
        'rows: for row in &projected[rel] {
            let mut newly: Vec<VarId> = Vec::new();
            for (val, term) in row.iter().zip(terms) {
                match term {
                    Term::Const(c) => {
                        if val != c {
                            undo(bindings, &newly);
                            continue 'rows;
                        }
                    }
                    Term::Var(v) => match &bindings[v.index()] {
                        Some(bound) => {
                            if bound != val {
                                undo(bindings, &newly);
                                continue 'rows;
                            }
                        }
                        None => {
                            bindings[v.index()] = Some(*val);
                            newly.push(*v);
                        }
                    },
                }
            }
            let ok = rec(ic, projected, body, head, depth + 1, bindings);
            undo(bindings, &newly);
            if !ok {
                return false;
            }
        }
        true
    }
    rec(ic, &projected, &body, &head, 0, &mut bindings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{c, v, CmpOp, Constraint, Ic, IcSet, Nnc};
    use cqa_relational::{i, null, s, Instance, Schema};
    use std::sync::Arc;

    fn build(schema: &Schema, rows: &[(&str, Vec<Value>)]) -> Instance {
        let mut d = Instance::empty(Arc::new(schema.clone()));
        for (rel, vals) in rows {
            d.insert_named(rel, cqa_relational::Tuple::new(vals.clone()))
                .unwrap();
        }
        d
    }

    #[test]
    fn example11_consistent_database() {
        // ICs: (a) P(x,y,z) → R(x,y); (b) T(x) → ∃yz P(x,y,z).
        let schema = Schema::builder()
            .relation("P", ["A", "B", "C"])
            .relation("R", ["D", "E"])
            .relation("T", ["F"])
            .finish()
            .unwrap();
        let a = Ic::builder(&schema, "a")
            .body_atom("P", [v("x"), v("y"), v("z")])
            .head_atom("R", [v("x"), v("y")])
            .finish()
            .unwrap();
        let b = Ic::builder(&schema, "b")
            .body_atom("T", [v("x")])
            .head_atom("P", [v("x"), v("y"), v("z")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(a.clone()), Constraint::from(b.clone())]);
        let d = build(
            &schema,
            &[
                ("P", vec![s("a"), s("d"), s("e")]),
                ("P", vec![s("b"), null(), s("g")]),
                ("R", vec![s("a"), s("d")]),
                ("T", vec![s("b")]),
            ],
        );
        assert!(is_consistent(&d, &ics));
        assert!(satisfies_via_projection(&d, &a));
        assert!(satisfies_via_projection(&d, &b));

        // Adding P(f, d, null) breaks constraint (a):
        let mut d2 = d.clone();
        d2.insert_named("P", [s("f"), s("d"), null()]).unwrap();
        assert!(!is_consistent(&d2, &ics));
        assert!(!satisfies_via_projection(&d2, &a));
        let viols = violations(&d2, &ics, SatMode::NullAware);
        assert_eq!(viols.len(), 1);
        assert_eq!(viols[0].constraint_index, 0);
        assert!(!insertion_allowed(&d, &ics, "P", [s("f"), s("d"), null()]));
    }

    #[test]
    fn example12_join_through_null() {
        // ψ: P1(x,y,w) ∧ P2(y,z) → ∃u Q(x,z,u); D from the paper satisfies ψ.
        let schema = Schema::builder()
            .relation("P1", ["A", "B", "C"])
            .relation("P2", ["D", "E"])
            .relation("Q", ["F", "G", "H"])
            .finish()
            .unwrap();
        let psi = Ic::builder(&schema, "psi")
            .body_atom("P1", [v("x"), v("y"), v("w")])
            .body_atom("P2", [v("y"), v("z")])
            .head_atom("Q", [v("x"), v("z"), v("u")])
            .finish()
            .unwrap();
        let d = build(
            &schema,
            &[
                ("P1", vec![s("a"), s("b"), s("c")]),
                ("P1", vec![s("d"), null(), s("c")]),
                ("P1", vec![s("b"), s("e"), null()]),
                ("P1", vec![null(), s("b"), s("b")]),
                ("P2", vec![s("b"), s("a")]),
                ("P2", vec![s("e"), s("c")]),
                ("P2", vec![s("d"), null()]),
                ("P2", vec![null(), s("b")]),
                ("Q", vec![s("a"), s("a"), s("c")]),
                ("Q", vec![s("b"), null(), s("c")]),
                ("Q", vec![s("b"), s("c"), s("d")]),
                ("Q", vec![null(), s("c"), s("a")]),
            ],
        );
        let ics = IcSet::new([Constraint::from(psi.clone())]);
        assert!(is_consistent(&d, &ics));
        assert!(satisfies_via_projection(&d, &psi));
    }

    #[test]
    fn example13_null_witness_counts() {
        // ψ: P(x,y) → ∃z Q(x,z,z); D = {P(a,b), P(null,c), Q(a,null,null)}.
        let schema = Schema::builder()
            .relation("P", ["A", "B"])
            .relation("Q", ["X", "Y", "Z"])
            .finish()
            .unwrap();
        let psi = Ic::builder(&schema, "psi")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("z"), v("z")])
            .finish()
            .unwrap();
        let d = build(
            &schema,
            &[
                ("P", vec![s("a"), s("b")]),
                ("P", vec![null(), s("c")]),
                ("Q", vec![s("a"), null(), null()]),
            ],
        );
        let ics = IcSet::new([Constraint::from(psi.clone())]);
        assert!(is_consistent(&d, &ics));
        assert!(satisfies_via_projection(&d, &psi));
        // But Q(a, null, b) would NOT witness (z must repeat consistently):
        let mut d2 = build(
            &schema,
            &[
                ("P", vec![s("a"), s("b")]),
                ("Q", vec![s("a"), null(), s("b")]),
            ],
        );
        assert!(!is_consistent(&d2, &ics));
        d2.insert_named("Q", [s("a"), s("d"), s("d")]).unwrap();
        assert!(is_consistent(&d2, &ics));
    }

    #[test]
    fn example6_check_constraint() {
        // Emp(id,name,salary) → salary > 100.
        let schema = Schema::builder()
            .relation("Emp", ["ID", "Name", "Salary"])
            .finish()
            .unwrap();
        let chk = Ic::builder(&schema, "chk")
            .body_atom("Emp", [v("i"), v("n"), v("sal")])
            .builtin(v("sal"), CmpOp::Gt, c(100))
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(chk)]);
        let d = build(
            &schema,
            &[
                ("Emp", vec![i(32), null(), i(1000)]),
                ("Emp", vec![i(41), s("Paul"), null()]),
            ],
        );
        assert!(is_consistent(&d, &ics)); // null salary escapes
        assert!(!insertion_allowed(&d, &ics, "Emp", [i(32), null(), i(50)]));
    }

    #[test]
    fn example8_multirow_check() {
        // Person(x,y,z,w) ∧ Person(z,s,t,u) → u > w + 15 is approximated in
        // our builtin language as u > w (the paper's arithmetic is richer;
        // shape is identical): null age escapes.
        let schema = Schema::builder()
            .relation("Person", ["Name", "Dad", "Mom", "Age"])
            .finish()
            .unwrap();
        let chk = Ic::builder(&schema, "age")
            .body_atom("Person", [v("x"), v("y"), v("z"), v("w")])
            .body_atom("Person", [v("z"), v("s"), v("t"), v("u")])
            .builtin(v("u"), CmpOp::Gt, v("w"))
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(chk)]);
        let d = build(
            &schema,
            &[
                ("Person", vec![s("Lee"), s("Rod"), s("Mary"), i(27)]),
                ("Person", vec![s("Rod"), s("Joe"), s("Tess"), i(55)]),
                ("Person", vec![s("Mary"), s("Adam"), s("Ann"), null()]),
            ],
        );
        assert!(is_consistent(&d, &ics));
    }

    #[test]
    fn example9_null_in_referenced_attrs_is_no_witness() {
        // Course(x,y,z) → Employee(y,z); Employee(W04, null) does not
        // witness (W04, 34): inconsistent.
        let schema = Schema::builder()
            .relation("Course", ["Code", "Term", "ID"])
            .relation("Employee", ["Term", "ID"])
            .finish()
            .unwrap();
        let uic = Ic::builder(&schema, "ref")
            .body_atom("Course", [v("x"), v("y"), v("z")])
            .head_atom("Employee", [v("y"), v("z")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(uic.clone())]);
        let d = build(
            &schema,
            &[
                ("Course", vec![s("CS18"), s("W04"), i(34)]),
                ("Employee", vec![s("W04"), null()]),
            ],
        );
        assert!(!is_consistent(&d, &ics));
        assert!(!satisfies_via_projection(&d, &uic));
    }

    #[test]
    fn nnc_violations_found_classically() {
        let schema = Schema::builder()
            .relation("R", ["x", "y"])
            .finish()
            .unwrap();
        let nnc = Nnc::new(&schema, "nn", "R", 0).unwrap();
        let ics = IcSet::new([Constraint::from(nnc)]);
        let d = build(
            &schema,
            &[("R", vec![null(), s("a")]), ("R", vec![s("b"), null()])],
        );
        let viols = violations(&d, &ics, SatMode::NullAware);
        assert_eq!(viols.len(), 1);
        match &viols[0].kind {
            ViolationKind::NotNull { atom, position } => {
                assert_eq!(*position, 0);
                assert!(atom.tuple.get(0).is_null());
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn classical_mode_has_no_escapes() {
        // P(x,y) → R(x): with P(b, null) classical requires R(b)… and with
        // P(null, a) classical requires R(null).
        let schema = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("R", ["x"])
            .finish()
            .unwrap();
        let ic = Ic::builder(&schema, "ic")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("R", [v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic)]);
        let d = build(&schema, &[("P", vec![null(), s("a")])]);
        assert!(is_consistent(&d, &ics)); // null-aware: x is relevant & null
        assert_eq!(violations(&d, &ics, SatMode::Classical).len(), 1);
        // classical satisfied once R(null) exists (null as ordinary constant)
        let mut d2 = d.clone();
        d2.insert_named("R", [null()]).unwrap();
        assert!(violations(&d2, &ics, SatMode::Classical).is_empty());
    }

    #[test]
    fn non_relevant_null_does_not_escape() {
        // The semantics of [10] would accept {P(b, null)} wrt P(x,y) → R(x);
        // Definition 4 does not (remark after Definition 4).
        let schema = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("R", ["x"])
            .finish()
            .unwrap();
        let ic = Ic::builder(&schema, "ic")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("R", [v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic.clone())]);
        let d = build(&schema, &[("P", vec![s("b"), null()])]);
        assert!(!is_consistent(&d, &ics));
        assert!(!satisfies_via_projection(&d, &ic));
    }

    #[test]
    fn violation_display_mentions_constraint_and_values() {
        let schema = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("R", ["x"])
            .finish()
            .unwrap();
        let ic = Ic::builder(&schema, "myic")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("R", [v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic)]);
        let d = build(&schema, &[("P", vec![s("b"), s("c")])]);
        let viols = violations(&d, &ics, SatMode::NullAware);
        let text = viols[0].display(&schema, &ics);
        assert!(text.contains("myic"));
        assert!(text.contains("P(b, c)"));
        assert!(text.contains("x=b"));
    }

    #[test]
    fn empty_database_satisfies_everything() {
        let schema = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("R", ["x"])
            .finish()
            .unwrap();
        let ic = Ic::builder(&schema, "ic")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("R", [v("x")])
            .finish()
            .unwrap();
        let nnc = Nnc::new(&schema, "nn", "P", 0).unwrap();
        let ics = IcSet::new([Constraint::from(ic), Constraint::from(nnc)]);
        let d = Instance::empty(Arc::new(schema));
        assert!(is_consistent(&d, &ics));
    }
}
