//! Practice-level constraint constructors: keys, functional dependencies,
//! foreign keys, inclusion dependencies, checks, denials, NOT NULLs.
//!
//! These produce ordinary form-(1) constraints ([`crate::ast::Ic`]) and NOT
//! NULL constraints; nothing here extends the paper's constraint language —
//! it just packages the encodings the paper itself uses (functional
//! dependencies as implications with a single equality, primary keys as
//! FDs plus NOT NULLs, foreign keys as RICs, Example 19).

use crate::ast::{CmpOp, Constraint, Ic, Nnc, Term, TermSpec};
use crate::error::ConstraintError;
use cqa_relational::{Schema, Value};

fn var(i: usize) -> TermSpec {
    TermSpec::Var(format!("x{i}"))
}

fn var2(i: usize) -> TermSpec {
    TermSpec::Var(format!("y{i}"))
}

/// A functional dependency `R: determinant → dependent` encoded as
/// `R(x̄) ∧ R(x̄′) → x_dep = x′_dep` with the determinant positions shared
/// (one constraint per dependent position, as in the paper's preliminaries).
pub fn functional_dependency(
    schema: &Schema,
    relation: &str,
    determinant: &[usize],
    dependent: usize,
) -> Result<Ic, ConstraintError> {
    let rel = schema
        .rel_id(relation)
        .ok_or_else(|| ConstraintError::UnknownRelation(relation.to_string()))?;
    let arity = schema.relation(rel).arity();
    for &p in determinant.iter().chain([&dependent]) {
        if p >= arity {
            return Err(ConstraintError::InvalidBuilder(format!(
                "FD position {p} out of range for `{relation}` (arity {arity})"
            )));
        }
    }
    if determinant.contains(&dependent) {
        return Err(ConstraintError::InvalidBuilder(
            "FD dependent position inside the determinant is trivial".into(),
        ));
    }
    if determinant.is_empty() {
        return Err(ConstraintError::InvalidBuilder(
            "FD needs at least one determinant position".into(),
        ));
    }
    let first: Vec<TermSpec> = (0..arity).map(var).collect();
    let second: Vec<TermSpec> = (0..arity)
        .map(|i| {
            if determinant.contains(&i) {
                var(i)
            } else {
                var2(i)
            }
        })
        .collect();
    Ic::builder(schema, format!("fd_{relation}_{dependent}"))
        .body_atom(relation, first)
        .body_atom(relation, second)
        .builtin(var(dependent), CmpOp::Eq, var2(dependent))
        .finish()
}

/// A primary key: one FD per non-key position plus a NOT NULL constraint on
/// every key position ("with the keys set to be non-null", Section 4).
pub fn primary_key(
    schema: &Schema,
    relation: &str,
    key: &[usize],
) -> Result<Vec<Constraint>, ConstraintError> {
    let rel = schema
        .rel_id(relation)
        .ok_or_else(|| ConstraintError::UnknownRelation(relation.to_string()))?;
    let arity = schema.relation(rel).arity();
    if key.is_empty() {
        return Err(ConstraintError::InvalidBuilder(
            "primary key needs at least one attribute".into(),
        ));
    }
    let mut out = Vec::new();
    for dep in 0..arity {
        if !key.contains(&dep) {
            out.push(Constraint::from(functional_dependency(
                schema, relation, key, dep,
            )?));
        }
    }
    for &p in key {
        if p >= arity {
            return Err(ConstraintError::InvalidBuilder(format!(
                "key position {p} out of range for `{relation}` (arity {arity})"
            )));
        }
        out.push(Constraint::from(Nnc::new(
            schema,
            format!("pk_notnull_{relation}_{p}"),
            relation,
            p,
        )?));
    }
    Ok(out)
}

/// A referential IC / foreign key, form (3):
/// `∀x̄ (child(x̄) → ∃ȳ parent(…))` where `child_cols[i]` references
/// `parent_cols[i]` and every other parent position is existential.
pub fn foreign_key(
    schema: &Schema,
    child: &str,
    child_cols: &[usize],
    parent: &str,
    parent_cols: &[usize],
) -> Result<Ic, ConstraintError> {
    if child_cols.len() != parent_cols.len() || child_cols.is_empty() {
        return Err(ConstraintError::InvalidBuilder(format!(
            "foreign key column lists must be equal-length and non-empty \
             (got {} and {})",
            child_cols.len(),
            parent_cols.len()
        )));
    }
    let child_rel = schema
        .rel_id(child)
        .ok_or_else(|| ConstraintError::UnknownRelation(child.to_string()))?;
    let parent_rel = schema
        .rel_id(parent)
        .ok_or_else(|| ConstraintError::UnknownRelation(parent.to_string()))?;
    let child_arity = schema.relation(child_rel).arity();
    let parent_arity = schema.relation(parent_rel).arity();
    for &p in child_cols {
        if p >= child_arity {
            return Err(ConstraintError::InvalidBuilder(format!(
                "child column {p} out of range for `{child}`"
            )));
        }
    }
    for &p in parent_cols {
        if p >= parent_arity {
            return Err(ConstraintError::InvalidBuilder(format!(
                "parent column {p} out of range for `{parent}`"
            )));
        }
    }
    let body: Vec<TermSpec> = (0..child_arity).map(var).collect();
    let head: Vec<TermSpec> = (0..parent_arity)
        .map(|p| match parent_cols.iter().position(|&pc| pc == p) {
            Some(i) => var(child_cols[i]),
            None => var2(p),
        })
        .collect();
    Ic::builder(schema, format!("fk_{child}_{parent}"))
        .body_atom(child, body)
        .head_atom(parent, head)
        .finish()
}

/// A full inclusion dependency `R[cols] ⊆ S[cols]` as a universal IC (no
/// existentials): every position of `S` must be named by a child column.
pub fn full_inclusion(
    schema: &Schema,
    child: &str,
    child_cols: &[usize],
    parent: &str,
) -> Result<Ic, ConstraintError> {
    let child_rel = schema
        .rel_id(child)
        .ok_or_else(|| ConstraintError::UnknownRelation(child.to_string()))?;
    let parent_rel = schema
        .rel_id(parent)
        .ok_or_else(|| ConstraintError::UnknownRelation(parent.to_string()))?;
    if child_cols.len() != schema.relation(parent_rel).arity() {
        return Err(ConstraintError::InvalidBuilder(format!(
            "full inclusion into `{parent}` needs exactly {} child columns",
            schema.relation(parent_rel).arity()
        )));
    }
    let child_arity = schema.relation(child_rel).arity();
    for &p in child_cols {
        if p >= child_arity {
            return Err(ConstraintError::InvalidBuilder(format!(
                "child column {p} out of range for `{child}`"
            )));
        }
    }
    let body: Vec<TermSpec> = (0..child_arity).map(var).collect();
    let head: Vec<TermSpec> = child_cols.iter().map(|&p| var(p)).collect();
    Ic::builder(schema, format!("incl_{child}_{parent}"))
        .body_atom(child, body)
        .head_atom(parent, head)
        .finish()
}

/// A single-row check constraint comparing one column against a constant,
/// e.g. `Emp.salary > 100` (Example 6).
pub fn check_column(
    schema: &Schema,
    relation: &str,
    column: usize,
    op: CmpOp,
    constant: impl Into<Value>,
) -> Result<Ic, ConstraintError> {
    let rel = schema
        .rel_id(relation)
        .ok_or_else(|| ConstraintError::UnknownRelation(relation.to_string()))?;
    let arity = schema.relation(rel).arity();
    if column >= arity {
        return Err(ConstraintError::InvalidBuilder(format!(
            "check column {column} out of range for `{relation}`"
        )));
    }
    let body: Vec<TermSpec> = (0..arity).map(var).collect();
    Ic::builder(schema, format!("check_{relation}_{column}"))
        .body_atom(relation, body)
        .builtin(var(column), op, TermSpec::Const(constant.into()))
        .finish()
}

/// A NOT NULL constraint on one column.
pub fn not_null(schema: &Schema, relation: &str, column: usize) -> Result<Nnc, ConstraintError> {
    Nnc::new(schema, format!("nn_{relation}_{column}"), relation, column)
}

/// Extract, for a referential IC of form (3), the referencing positions in
/// the child and the referenced positions in the parent:
/// `(child_positions, parent_positions)` aligned pairwise.
///
/// Returns `None` if the constraint is not of form (3).
pub fn ric_column_map(ic: &Ic) -> Option<(Vec<usize>, Vec<usize>)> {
    if crate::classify::classify(ic) != crate::classify::IcClass::Referential {
        return None;
    }
    let body = &ic.body()[0];
    let head = &ic.head()[0];
    let mut child = Vec::new();
    let mut parent = Vec::new();
    for (hp, term) in head.terms.iter().enumerate() {
        match term {
            Term::Var(v) if !ic.is_existential(*v) => {
                let bp = body.terms.iter().position(|t| t.as_var() == Some(*v))?;
                child.push(bp);
                parent.push(hp);
            }
            Term::Const(_) => return None, // constants in the head: not a plain FK
            _ => {}
        }
    }
    if child.is_empty() {
        return None;
    }
    Some((child, parent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, IcClass};
    use crate::satisfaction::{is_consistent, violations, SatMode};
    use crate::IcSet;
    use cqa_relational::{i, null, s, Instance, Schema};
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::builder()
            .relation("R", ["A", "B"])
            .relation("S", ["U", "V"])
            .finish()
            .unwrap()
    }

    #[test]
    fn fd_detects_key_violation() {
        let sc = schema();
        let fd = functional_dependency(&sc, "R", &[0], 1).unwrap();
        assert_eq!(classify(&fd), IcClass::Universal);
        let ics = IcSet::new([Constraint::from(fd)]);
        let mut d = Instance::empty(Arc::new(sc));
        d.insert_named("R", [s("a"), s("b")]).unwrap();
        d.insert_named("R", [s("a"), s("c")]).unwrap();
        assert!(!is_consistent(&d, &ics));
        // violations come in both orientations of the pair
        assert_eq!(violations(&d, &ics, SatMode::NullAware).len(), 2);
    }

    #[test]
    fn fd_null_key_does_not_violate() {
        // Keys containing null escape via IsNull (the key attribute is
        // relevant); the NNC part of `primary_key` is what forbids them.
        let sc = schema();
        let fd = functional_dependency(&sc, "R", &[0], 1).unwrap();
        let ics = IcSet::new([Constraint::from(fd)]);
        let mut d = Instance::empty(Arc::new(sc));
        d.insert_named("R", [null(), s("b")]).unwrap();
        d.insert_named("R", [null(), s("c")]).unwrap();
        assert!(is_consistent(&d, &ics));
    }

    #[test]
    fn primary_key_bundles_fds_and_nncs() {
        let sc = schema();
        let pk = primary_key(&sc, "R", &[0]).unwrap();
        // one FD (for position 1) + one NNC (for position 0)
        assert_eq!(pk.len(), 2);
        let ics = IcSet::new(pk);
        let mut d = Instance::empty(Arc::new(sc));
        d.insert_named("R", [null(), s("b")]).unwrap();
        assert!(!is_consistent(&d, &ics)); // NNC bites
    }

    #[test]
    fn foreign_key_shape_and_example19() {
        // S[2] references R[1] (0-based: S column 1 → R column 0).
        let sc = schema();
        let fk = foreign_key(&sc, "S", &[1], "R", &[0]).unwrap();
        assert_eq!(classify(&fk), IcClass::Referential);
        assert_eq!(ric_column_map(&fk), Some((vec![1], vec![0])));
        let ics = IcSet::new([Constraint::from(fk)]);
        let mut d = Instance::empty(Arc::new(sc));
        d.insert_named("R", [s("a"), s("b")]).unwrap();
        d.insert_named("S", [s("e"), s("f")]).unwrap(); // f missing in R
        d.insert_named("S", [null(), s("a")]).unwrap(); // a present
        assert!(!is_consistent(&d, &ics));
        assert_eq!(violations(&d, &ics, SatMode::NullAware).len(), 1);
    }

    #[test]
    fn foreign_key_null_reference_is_consistent_simple_match() {
        let sc = schema();
        let fk = foreign_key(&sc, "S", &[1], "R", &[0]).unwrap();
        let ics = IcSet::new([Constraint::from(fk)]);
        let mut d = Instance::empty(Arc::new(sc));
        d.insert_named("S", [s("e"), null()]).unwrap();
        assert!(is_consistent(&d, &ics)); // simple match: null FK accepted
    }

    #[test]
    fn full_inclusion_is_universal() {
        let sc = Schema::builder()
            .relation("R", ["A", "B"])
            .relation("T", ["X"])
            .finish()
            .unwrap();
        let incl = full_inclusion(&sc, "R", &[0], "T").unwrap();
        assert_eq!(classify(&incl), IcClass::Universal);
    }

    #[test]
    fn check_column_example6() {
        let sc = Schema::builder()
            .relation("Emp", ["ID", "Name", "Salary"])
            .finish()
            .unwrap();
        let chk = check_column(&sc, "Emp", 2, CmpOp::Gt, 100).unwrap();
        let ics = IcSet::new([Constraint::from(chk)]);
        let mut d = Instance::empty(Arc::new(sc));
        d.insert_named("Emp", [i(32), null(), i(1000)]).unwrap();
        d.insert_named("Emp", [i(41), s("Paul"), null()]).unwrap();
        assert!(is_consistent(&d, &ics));
        let mut d2 = d.clone();
        d2.insert_named("Emp", [i(50), null(), i(50)]).unwrap();
        assert!(!is_consistent(&d2, &ics));
    }

    #[test]
    fn builder_errors() {
        let sc = schema();
        assert!(functional_dependency(&sc, "R", &[], 1).is_err());
        assert!(functional_dependency(&sc, "R", &[0], 0).is_err());
        assert!(functional_dependency(&sc, "R", &[5], 1).is_err());
        assert!(primary_key(&sc, "R", &[]).is_err());
        assert!(foreign_key(&sc, "S", &[0, 1], "R", &[0]).is_err());
        assert!(foreign_key(&sc, "S", &[9], "R", &[0]).is_err());
        assert!(full_inclusion(&sc, "R", &[0], "S").is_err()); // S has arity 2
        assert!(check_column(&sc, "R", 7, CmpOp::Gt, 0).is_err());
        assert!(not_null(&sc, "Z", 0).is_err());
    }

    #[test]
    fn ric_column_map_rejects_non_rics() {
        let sc = schema();
        let uic = full_inclusion(&sc, "R", &[0, 1], "S").unwrap();
        assert_eq!(ric_column_map(&uic), None);
    }
}
