//! Error type for constraint construction and validation.

use std::fmt;

/// Errors raised while building or validating integrity constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// The constraint references a relation missing from the schema.
    UnknownRelation(String),
    /// An atom's argument count does not match the relation's arity.
    ArityMismatch {
        /// Constraint name.
        ic: String,
        /// Relation name.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Number of terms written in the atom.
        actual: usize,
    },
    /// Form (1) requires at least one antecedent atom (`m ≥ 1`).
    EmptyBody(String),
    /// A head (consequent) variable set violates the form-(1) side
    /// conditions: existential variables must not be shared between
    /// distinct head atoms (`z̄ᵢ ∩ z̄ⱼ = ∅`).
    SharedExistential {
        /// Constraint name.
        ic: String,
        /// The offending variable.
        var: String,
    },
    /// ϕ must only use universally quantified (body) variables.
    BuiltinUsesNonBodyVar {
        /// Constraint name.
        ic: String,
        /// The offending variable.
        var: String,
    },
    /// `null` may not appear as a constant inside a form-(1) constraint;
    /// NOT NULL constraints are a separate syntactic class (Definition 5).
    NullConstant(String),
    /// A NOT NULL constraint refers to a position outside the relation.
    NncPositionOutOfRange {
        /// Relation name.
        relation: String,
        /// The 0-based position given.
        position: usize,
        /// The relation's arity.
        arity: usize,
    },
    /// A builder was asked for an impossible shape (e.g. a key with no
    /// attributes, or a foreign key with mismatched column counts).
    InvalidBuilder(String),
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            ConstraintError::ArityMismatch {
                ic,
                relation,
                expected,
                actual,
            } => write!(
                f,
                "constraint `{ic}`: atom over `{relation}` has {actual} terms, schema arity is {expected}"
            ),
            ConstraintError::EmptyBody(ic) => {
                write!(f, "constraint `{ic}`: form (1) requires m ≥ 1 body atoms")
            }
            ConstraintError::SharedExistential { ic, var } => write!(
                f,
                "constraint `{ic}`: existential variable `{var}` shared between head atoms (z̄ᵢ ∩ z̄ⱼ must be empty)"
            ),
            ConstraintError::BuiltinUsesNonBodyVar { ic, var } => write!(
                f,
                "constraint `{ic}`: builtin formula ϕ uses variable `{var}` that does not occur in the antecedent"
            ),
            ConstraintError::NullConstant(ic) => write!(
                f,
                "constraint `{ic}`: `null` cannot appear as a constant; use a NOT NULL constraint instead"
            ),
            ConstraintError::NncPositionOutOfRange {
                relation,
                position,
                arity,
            } => write!(
                f,
                "NOT NULL constraint on `{relation}` position {position} out of range (arity {arity})"
            ),
            ConstraintError::InvalidBuilder(msg) => write!(f, "invalid constraint builder: {msg}"),
        }
    }
}

impl std::error::Error for ConstraintError {}
