#![warn(missing_docs)]

//! # cqa-constraints
//!
//! Integrity constraints and the null-value satisfaction semantics `|=_N`
//! of Bravo & Bertossi, *Semantically Correct Query Answers in the Presence
//! of Null Values* (EDBT 2006).
//!
//! What lives here:
//!
//! * [`ast`] — the general constraint form (1) of the paper
//!   (`∀x̄ (∧ᵢ Pᵢ(x̄ᵢ) → ∃z̄ (∨ⱼ Qⱼ(ȳⱼ, z̄ⱼ) ∨ ϕ))`), NOT NULL constraints
//!   (Definition 5), validation, and a builder.
//! * [`builders`] — practice-level constructors: primary keys, functional
//!   dependencies, foreign keys / referential constraints, inclusion
//!   dependencies, check constraints, denial constraints.
//! * [`classify`] — the paper's syntactic classes: universal ICs (2),
//!   referential ICs (3), denials, checks.
//! * [`relevant`] — relevant attributes `A(ψ)` (Definition 2) and the
//!   projections `D^A` (Definition 3).
//! * [`satisfaction`] — `D |=_N ψ` (Definition 4) evaluated directly on the
//!   instance, plus the literal projection-based checker used as a
//!   cross-check, plus classical first-order satisfaction.
//! * [`alt`] — the competing null semantics the paper compares against:
//!   the all-null-tolerant semantics of Bravo & Bertossi 2004 (\[10\] in the
//!   paper), SQL:2003 simple/partial/full match for referential
//!   constraints, and the Levene–Loizou information-order semantics.
//! * [`graph`] — the dependency graph `G(IC)`, the contracted graph
//!   `G^C(IC)`, RIC-acyclicity (Definition 1), and the bilateral-predicate
//!   test of Theorem 5.
//! * [`incremental`] — index-probed joins and the delta API
//!   ([`violations_touching`], [`violation_active`]): re-check only the
//!   ground instantiations an atom-level change can affect, so repair
//!   search cost scales with conflict size rather than instance size.

pub mod alt;
pub mod ast;
pub mod builders;
pub mod classify;
pub mod error;
pub mod graph;
pub mod incremental;
pub mod relevant;
pub mod satisfaction;

pub use ast::{
    c, v, Builtin, CmpOp, Constraint, Ic, IcAtom, IcBuilder, IcSet, Nnc, Term, TermSpec, VarId,
};
pub use classify::{fd_key_columns, plan_class, FdKey, IcClass, PlanClass};
pub use error::ConstraintError;
pub use graph::{contracted_dependency_graph, dependency_graph, DependencyGraph};
pub use incremental::{violation_active, violations_touching};
pub use relevant::RelevantAttrs;
pub use satisfaction::{
    check_instance, first_violation, first_violation_naive, insertion_allowed, is_consistent,
    satisfies_via_projection, violations, violations_naive, SatMode, Violation, ViolationKind,
};
