//! Alternative null-value semantics: the baselines the paper compares its
//! `|=_N` against in Section 3 (Examples 4, 5, 9).
//!
//! * [`AltSemantics::Bb04`] — the semantics of Bravo & Bertossi 2004
//!   (reference \[10\] of the paper): a ground antecedent containing a tuple
//!   with a null *anywhere* never causes an inconsistency.
//! * [`AltSemantics::SimpleMatch`] — SQL:2003 simple match, the one
//!   commercial DBMSs implement for foreign keys, generalised to form (1)
//!   the way the paper does (this coincides with `|=_N` on the paper's
//!   examples; `|=_N` *is* its generalisation).
//! * [`AltSemantics::PartialMatch`] — SQL:2003 partial match: non-null
//!   referencing values must match; nulls act as wildcards; an all-null
//!   reference is satisfied outright.
//! * [`AltSemantics::FullMatch`] — SQL:2003 full match: either all
//!   referencing values are null, or none is and an exact witness exists.
//! * [`AltSemantics::LeveneLoizou`] — the information-order semantics of
//!   Levene & Loizou for inclusion dependencies (Example 9): the
//!   referencing vector must provide ≤ information than some referenced
//!   vector, i.e. nulls may only appear on the *referenced* side... note
//!   the direction: `t₁ ⊑ t₂` with `t₁` the referencing projection.
//!
//! The "referencing values" of a general form-(1) ground constraint are
//! taken to be the values of the relevant universal variables — exactly
//! the positions a DBMS would look at, and the set the paper's IsNull
//! escape quantifies over.

use crate::ast::{Ic, Term, VarId};
use crate::satisfaction::{for_each_body_match, head_witness, phi_escape, SatMode};
use cqa_relational::{Instance, Value};
use std::collections::BTreeMap;
use std::ops::ControlFlow;

/// The competing semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AltSemantics {
    /// Bravo & Bertossi 2004 (\[10\]): all-null-tolerant antecedents.
    Bb04,
    /// SQL:2003 simple match (generalised).
    SimpleMatch,
    /// SQL:2003 partial match (generalised).
    PartialMatch,
    /// SQL:2003 full match (generalised).
    FullMatch,
    /// Levene–Loizou null inclusion dependencies.
    LeveneLoizou,
}

impl AltSemantics {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            AltSemantics::Bb04 => "BB04 [10]",
            AltSemantics::SimpleMatch => "simple match",
            AltSemantics::PartialMatch => "partial match",
            AltSemantics::FullMatch => "full match",
            AltSemantics::LeveneLoizou => "Levene-Loizou",
        }
    }
}

/// Does `instance` satisfy `ic` under the given alternative semantics?
pub fn satisfies_alt(instance: &Instance, ic: &Ic, semantics: AltSemantics) -> bool {
    let result =
        for_each_body_match(instance, ic, &mut |bindings, atoms| {
            let ok =
                match semantics {
                    AltSemantics::Bb04 => {
                        atoms.iter().any(|a| a.has_null())
                            || phi_escape(ic, bindings)
                            || ic.head().iter().any(|h| {
                                head_witness(instance, ic, h, SatMode::NullAware, bindings)
                            })
                    }
                    AltSemantics::SimpleMatch => {
                        // Null in any relevant (referencing) value → satisfied;
                        // otherwise an exact witness on relevant attributes.
                        referencing_values(ic, bindings).iter().any(|v| v.is_null())
                            || phi_escape(ic, bindings)
                            || ic.head().iter().any(|h| {
                                head_witness(instance, ic, h, SatMode::NullAware, bindings)
                            })
                    }
                    AltSemantics::PartialMatch => {
                        let refs = referencing_values(ic, bindings);
                        refs.iter().all(|v| v.is_null()) && !refs.is_empty()
                            || phi_escape(ic, bindings)
                            || ic
                                .head()
                                .iter()
                                .any(|h| wildcard_witness(instance, ic, h, bindings))
                    }
                    AltSemantics::FullMatch => {
                        let refs = referencing_values(ic, bindings);
                        let nulls = refs.iter().filter(|v| v.is_null()).count();
                        if nulls == refs.len() && !refs.is_empty() {
                            true // all referencing values null
                        } else if nulls > 0 {
                            false // mixed: full match forbids partially-null references
                        } else {
                            phi_escape(ic, bindings)
                                || ic.head().iter().any(|h| {
                                    head_witness(instance, ic, h, SatMode::NullAware, bindings)
                                })
                        }
                    }
                    AltSemantics::LeveneLoizou => {
                        phi_escape(ic, bindings)
                            || ic
                                .head()
                                .iter()
                                .any(|h| leq_information_witness(instance, ic, h, bindings))
                    }
                };
            if ok {
                ControlFlow::Continue(())
            } else {
                ControlFlow::Break(())
            }
        });
    matches!(result, ControlFlow::Continue(()))
}

/// The values of the relevant universal variables under the assignment —
/// the generalised "referencing columns".
fn referencing_values(ic: &Ic, bindings: &[Option<Value>]) -> Vec<Value> {
    ic.relevant()
        .escape_vars()
        .iter()
        .filter_map(|v| bindings[v.index()])
        .collect()
}

/// Partial-match witness: bound values compare as wildcards when null.
fn wildcard_witness(
    instance: &Instance,
    ic: &Ic,
    atom: &crate::ast::IcAtom,
    bindings: &[Option<Value>],
) -> bool {
    'tuples: for t in instance.relation(atom.rel) {
        let mut local: BTreeMap<VarId, &Value> = BTreeMap::new();
        for (pos, term) in atom.terms.iter().enumerate() {
            if !ic.relevant().is_relevant(atom.rel, pos) {
                continue;
            }
            let val = t.get(pos);
            match term {
                Term::Const(c) => {
                    if val != c {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => {
                    if let Some(bound) = &bindings[v.index()] {
                        if !bound.is_null() && bound != val {
                            continue 'tuples;
                        }
                    } else {
                        match local.get(v) {
                            Some(prev) => {
                                if *prev != val {
                                    continue 'tuples;
                                }
                            }
                            None => {
                                local.insert(*v, val);
                            }
                        }
                    }
                }
            }
        }
        return true;
    }
    false
}

/// Levene–Loizou witness: the referencing value must equal the referenced
/// one, or be null itself... no: `t₁ ⊑ t₂` means the *referencing* value is
/// null or equal — nulls on the referenced side do **not** match a concrete
/// referencing value (Example 9: `(W04, 34)` is not ≤-covered by
/// `(W04, null)`).
fn leq_information_witness(
    instance: &Instance,
    ic: &Ic,
    atom: &crate::ast::IcAtom,
    bindings: &[Option<Value>],
) -> bool {
    'tuples: for t in instance.relation(atom.rel) {
        let mut local: BTreeMap<VarId, &Value> = BTreeMap::new();
        for (pos, term) in atom.terms.iter().enumerate() {
            if !ic.relevant().is_relevant(atom.rel, pos) {
                continue;
            }
            let val = t.get(pos);
            match term {
                Term::Const(c) => {
                    if val != c {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => {
                    if let Some(bound) = &bindings[v.index()] {
                        // bound ⊑ val: equal, or bound itself null.
                        if !bound.is_null() && bound != val {
                            continue 'tuples;
                        }
                    } else {
                        match local.get(v) {
                            Some(prev) => {
                                if *prev != val {
                                    continue 'tuples;
                                }
                            }
                            None => {
                                local.insert(*v, val);
                            }
                        }
                    }
                }
            }
        }
        return true;
    }
    false
}

/// One row of the Example 4 comparison matrix: verdicts of every
/// semantics (including the paper's `|=_N`) for one constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticsRow {
    /// Constraint name.
    pub constraint: String,
    /// `(semantics label, consistent?)` pairs, in a fixed order, with the
    /// paper's `|=_N` first.
    pub verdicts: Vec<(&'static str, bool)>,
}

/// Build the full comparison matrix for a set of form-(1) constraints.
pub fn semantics_matrix(instance: &Instance, ics: &[&Ic]) -> Vec<SemanticsRow> {
    let alts = [
        AltSemantics::Bb04,
        AltSemantics::SimpleMatch,
        AltSemantics::PartialMatch,
        AltSemantics::FullMatch,
        AltSemantics::LeveneLoizou,
    ];
    ics.iter()
        .map(|ic| {
            let mut verdicts = vec![(
                "|=_N (this paper)",
                crate::satisfaction::satisfies_via_projection(instance, ic),
            )];
            for alt in alts {
                verdicts.push((alt.label(), satisfies_alt(instance, ic, alt)));
            }
            SemanticsRow {
                constraint: ic.name().to_string(),
                verdicts,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{v, Ic};
    use cqa_relational::{i, null, s, Instance, Schema};
    use std::sync::Arc;

    /// Example 4's schema and database D = {P(a, b, null)}.
    fn example4() -> (Schema, Instance, Ic, Ic) {
        let sc = Schema::builder()
            .relation("P", ["A", "B", "C"])
            .relation("R", ["X", "Y"])
            .finish()
            .unwrap();
        let psi1 = Ic::builder(&sc, "psi1")
            .body_atom("P", [v("x"), v("y"), v("z")])
            .head_atom("R", [v("y"), v("z")])
            .finish()
            .unwrap();
        let psi2 = Ic::builder(&sc, "psi2")
            .body_atom("P", [v("x"), v("y"), v("z")])
            .head_atom("R", [v("x"), v("y")])
            .finish()
            .unwrap();
        let mut d = Instance::empty(Arc::new(sc.clone()));
        d.insert_named("P", [s("a"), s("b"), null()]).unwrap();
        (sc, d, psi1, psi2)
    }

    #[test]
    fn example4_psi1_verdicts() {
        let (_, d, psi1, _) = example4();
        // (a) consistent under BB04 (null in the tuple);
        assert!(satisfies_alt(&d, &psi1, AltSemantics::Bb04));
        // (b) consistent under simple match (null in a relevant attribute);
        assert!(satisfies_alt(&d, &psi1, AltSemantics::SimpleMatch));
        // (c) inconsistent under partial match (no R tuple with b first);
        assert!(!satisfies_alt(&d, &psi1, AltSemantics::PartialMatch));
        // (d) inconsistent under full match (mixed null reference).
        assert!(!satisfies_alt(&d, &psi1, AltSemantics::FullMatch));
        // the paper's semantics agrees with simple match here:
        assert!(crate::satisfaction::satisfies_via_projection(&d, &psi1));
    }

    #[test]
    fn example4_psi2_verdicts() {
        let (_, d, _, psi2) = example4();
        // Only BB04 accepts: the null is not in a relevant attribute.
        assert!(satisfies_alt(&d, &psi2, AltSemantics::Bb04));
        assert!(!satisfies_alt(&d, &psi2, AltSemantics::SimpleMatch));
        assert!(!satisfies_alt(&d, &psi2, AltSemantics::PartialMatch));
        assert!(!satisfies_alt(&d, &psi2, AltSemantics::FullMatch));
        assert!(!crate::satisfaction::satisfies_via_projection(&d, &psi2));
    }

    #[test]
    fn partial_match_wildcard_succeeds_when_referenced_row_exists() {
        let (sc, _, psi1, _) = example4();
        let mut d = Instance::empty(Arc::new(sc));
        d.insert_named("P", [s("a"), s("b"), null()]).unwrap();
        d.insert_named("R", [s("b"), s("anything")]).unwrap();
        // partial: non-null referencing value b matches R(b, _).
        assert!(satisfies_alt(&d, &psi1, AltSemantics::PartialMatch));
        // full: still rejected (mixed reference).
        assert!(!satisfies_alt(&d, &psi1, AltSemantics::FullMatch));
    }

    #[test]
    fn full_match_accepts_all_null_reference() {
        let (sc, _, psi1, _) = example4();
        let mut d = Instance::empty(Arc::new(sc));
        d.insert_named("P", [s("a"), null(), null()]).unwrap();
        assert!(satisfies_alt(&d, &psi1, AltSemantics::FullMatch));
        assert!(satisfies_alt(&d, &psi1, AltSemantics::PartialMatch));
    }

    #[test]
    fn example9_levene_loizou() {
        // Course(x,y,z) → Employee(y,z); (W04,34) vs Employee(W04,null):
        // inconsistent, because (W04,34) ⋢ (W04,null).
        let sc = Schema::builder()
            .relation("Course", ["Code", "Term", "ID"])
            .relation("Employee", ["Term", "ID"])
            .finish()
            .unwrap();
        let ic = Ic::builder(&sc, "ref")
            .body_atom("Course", [v("x"), v("y"), v("z")])
            .head_atom("Employee", [v("y"), v("z")])
            .finish()
            .unwrap();
        let mut d = Instance::empty(Arc::new(sc));
        d.insert_named("Course", [s("CS18"), s("W04"), i(34)])
            .unwrap();
        d.insert_named("Employee", [s("W04"), null()]).unwrap();
        assert!(!satisfies_alt(&d, &ic, AltSemantics::LeveneLoizou));
        // The *referencing* side may hold the null:
        let mut d2 = d.clone();
        d2.insert_named("Course", [s("CS19"), s("W05"), null()])
            .unwrap();
        d2.insert_named("Employee", [s("W05"), i(7)]).unwrap();
        d2.remove(
            d2.schema().rel_id("Course").unwrap(),
            &cqa_relational::Tuple::new(vec![s("CS18"), s("W04"), i(34)]),
        );
        assert!(satisfies_alt(&d2, &ic, AltSemantics::LeveneLoizou));
    }

    #[test]
    fn all_semantics_agree_on_null_free_instances() {
        let (sc, _, psi1, psi2) = example4();
        let mut d = Instance::empty(Arc::new(sc));
        d.insert_named("P", [s("a"), s("b"), s("c")]).unwrap();
        d.insert_named("R", [s("b"), s("c")]).unwrap();
        for alt in [
            AltSemantics::Bb04,
            AltSemantics::SimpleMatch,
            AltSemantics::PartialMatch,
            AltSemantics::FullMatch,
            AltSemantics::LeveneLoizou,
        ] {
            assert!(satisfies_alt(&d, &psi1, alt), "{:?}", alt);
            assert!(!satisfies_alt(&d, &psi2, alt), "{:?}", alt);
        }
    }

    #[test]
    fn matrix_shape() {
        let (_, d, psi1, psi2) = example4();
        let m = semantics_matrix(&d, &[&psi1, &psi2]);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].verdicts.len(), 6);
        assert_eq!(m[0].verdicts[0].0, "|=_N (this paper)");
        assert!(m[0].verdicts[0].1);
        assert!(!m[1].verdicts[0].1);
    }
}
